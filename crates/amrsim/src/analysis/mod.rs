//! In-situ analyses for the FLASH Sedov runs.
//!
//! | Paper id | Kernel | Cost shape |
//! |---|---|---|
//! | F1 | vorticity | O(cells), finite differences over every cell — the heavy one (3.5 s/step in the paper) |
//! | F2 | L1 error norms of density and pressure vs the Sedov reference | O(cells), two reductions (1.25 s/step) |
//! | F3 | L2 norms of the velocity components, strided sampling | O(cells/stride³) (2.3 ms/step) |

pub mod norms;
pub mod vorticity;

pub use norms::{L1ErrorNorm, L2VelocityNorm};
pub use vorticity::Vorticity;

/// Builds the paper's F1 analysis.
pub fn f1_vorticity() -> Vorticity {
    Vorticity::new("vorticity (F1)")
}

/// Builds the paper's F2 analysis.
pub fn f2_l1_norm() -> L1ErrorNorm {
    L1ErrorNorm::new("L1 error norm (F2)")
}

/// Builds the paper's F3 analysis (stride 8 reproduces the paper's
/// three-orders-of-magnitude F2→F3 cost drop).
pub fn f3_l2_norm() -> L2VelocityNorm {
    L2VelocityNorm::new("L2 error norm (F3)", 8)
}
