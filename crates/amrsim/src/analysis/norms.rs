//! Error norms (paper analyses F2 and F3).
//!
//! * **F2** — L1 error norms of density and pressure against the Sedov
//!   self-similar reference: `Σ |q - q_ref| / N` over every cell.
//! * **F3** — L2 norms of the three velocity components over a strided
//!   sample of cells. The stride reproduces the paper's cost ordering
//!   (F3 at 2.3 ms vs F2 at 1.25 s: three orders of magnitude cheaper).

use crate::block::FlowVar;
use crate::sim::FlashSim;
use insitu_core::runtime::Analysis;
use insitu_types::KernelTelemetry;

/// F2: L1 error norms of density and pressure vs the Sedov reference.
#[derive(Debug, Default)]
pub struct L1ErrorNorm {
    name: String,
    /// Last computed `(density, pressure)` L1 errors.
    pub last: (f64, f64),
    /// `(step, dens_err, pres_err)` history since last output.
    pub series: Vec<(usize, f64, f64)>,
    /// Bytes written at output steps.
    pub bytes_out: u64,
    /// Per-kernel execution telemetry (`hydro.l1norm`).
    pub telemetry: KernelTelemetry,
}

impl L1ErrorNorm {
    /// Creates the kernel.
    pub fn new(name: &str) -> Self {
        L1ErrorNorm {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Computes the norms at the simulation's current time.
    ///
    /// The self-similar reference is tabulated once per analysis step on a
    /// fine radial grid and linearly interpolated per cell — evaluating
    /// the closed-form profile (with its `powf`) in every cell would make
    /// this reduction cost more than the vorticity stencil, inverting the
    /// paper's F1 ≫ F2 ordering.
    pub fn compute(&mut self, sim: &FlashSim) -> (f64, f64) {
        let mesh = &sim.mesh;
        let centre = [
            mesh.domain[0] / 2.0,
            mesh.domain[1] / 2.0,
            mesh.domain[2] / 2.0,
        ];
        // radial lookup table of the reference profiles
        const TABLE: usize = 1024;
        let rmax = 0.5
            * (mesh.domain[0].powi(2) + mesh.domain[1].powi(2) + mesh.domain[2].powi(2)).sqrt();
        let mut dref_tab = [0.0f64; TABLE + 1];
        let mut pref_tab = [0.0f64; TABLE + 1];
        for (b, (d, p)) in dref_tab.iter_mut().zip(pref_tab.iter_mut()).enumerate() {
            let r = b as f64 / TABLE as f64 * rmax;
            *d = sim.setup.reference_density(r, sim.time);
            *p = sim.setup.reference_pressure(r, sim.time);
        }
        let inv_dr = TABLE as f64 / rmax;
        let lookup = |tab: &[f64; TABLE + 1], r: f64| -> f64 {
            let x = (r * inv_dr).min(TABLE as f64 - 1e-9);
            let b = x as usize;
            let f = x - b as f64;
            tab[b] * (1.0 - f) + tab[b + 1] * f
        };
        // the table build above stays serial; the per-cell reduction runs
        // over block-range chunks merged in ascending chunk order
        let d = mesh.dx();
        let nb = mesh.block_cells;
        let nblocks = mesh.blocks.len();
        let chunks = parallel::chunk_count(nblocks, 1);
        let ((dens_err, pres_err), stats) = parallel::reduce_chunks(
            &sim.exec,
            chunks,
            |c| {
                let mut dens_err = 0.0;
                let mut pres_err = 0.0;
                for bi in parallel::chunk_bounds(nblocks, chunks, c) {
                    let blk = &mesh.blocks[bi];
                    let base = [
                        blk.coords[0] * nb,
                        blk.coords[1] * nb,
                        blk.coords[2] * nb,
                    ];
                    for k in 0..nb {
                        let dz = (base[2] + k) as f64 * d[2] + 0.5 * d[2] - centre[2];
                        for j in 0..nb {
                            let dy = (base[1] + j) as f64 * d[1] + 0.5 * d[1] - centre[1];
                            let dyz2 = dy * dy + dz * dz;
                            for i in 0..nb {
                                let dx = (base[0] + i) as f64 * d[0] + 0.5 * d[0] - centre[0];
                                let r = (dx * dx + dyz2).sqrt();
                                dens_err +=
                                    (blk.cell(FlowVar::Dens, i, j, k) - lookup(&dref_tab, r)).abs();
                                pres_err +=
                                    (blk.cell(FlowVar::Pres, i, j, k) - lookup(&pref_tab, r)).abs();
                            }
                        }
                    }
                }
                (dens_err, pres_err)
            },
            (0.0f64, 0.0f64),
            |(da, pa), (db, pb)| (da + db, pa + pb),
        );
        self.telemetry.record(
            "hydro.l1norm",
            stats.threads_used,
            stats.chunks,
            stats.wall_s(),
            stats.merge_s(),
        );
        let n = mesh.total_cells() as f64;
        let result = (dens_err / n, pres_err / n);
        self.last = result;
        result
    }
}

impl Analysis<FlashSim> for L1ErrorNorm {
    fn name(&self) -> &str {
        &self.name
    }

    fn analyze(&mut self, state: &FlashSim) {
        let (d, p) = self.compute(state);
        self.series.push((state.step_count, d, p));
    }

    fn output(&mut self, _state: &FlashSim) {
        let mut text = String::new();
        for (s, d, p) in &self.series {
            text.push_str(&format!("{s} {d:.8e} {p:.8e}\n"));
        }
        self.bytes_out += text.len() as u64;
        self.series.clear();
    }
}

/// F3: L2 norms of x/y/z velocity over a strided cell sample.
#[derive(Debug, Default)]
pub struct L2VelocityNorm {
    name: String,
    stride: usize,
    /// Last computed `(|u|₂, |v|₂, |w|₂)`.
    pub last: [f64; 3],
    /// `(step, [norms])` history since last output.
    pub series: Vec<(usize, [f64; 3])>,
    /// Bytes written at output steps.
    pub bytes_out: u64,
    /// Per-kernel execution telemetry (`hydro.l2norm`).
    pub telemetry: KernelTelemetry,
}

impl L2VelocityNorm {
    /// Creates the kernel sampling every `stride`-th cell per axis.
    pub fn new(name: &str, stride: usize) -> Self {
        L2VelocityNorm {
            name: name.to_string(),
            stride: stride.max(1),
            ..Default::default()
        }
    }

    /// Computes the strided L2 norms.
    pub fn compute(&mut self, sim: &FlashSim) -> [f64; 3] {
        let mesh = &sim.mesh;
        let n = mesh.block_cells;
        let stride = self.stride;
        let nblocks = mesh.blocks.len();
        let chunks = parallel::chunk_count(nblocks, 1);
        let ((sums, count), stats) = parallel::reduce_chunks(
            &sim.exec,
            chunks,
            |c| {
                let mut sums = [0.0f64; 3];
                let mut count = 0usize;
                for bi in parallel::chunk_bounds(nblocks, chunks, c) {
                    let b = &mesh.blocks[bi];
                    let mut k = 0;
                    while k < n {
                        let mut j = 0;
                        while j < n {
                            let mut i = 0;
                            while i < n {
                                let u = b.cell(FlowVar::Velx, i, j, k);
                                let v = b.cell(FlowVar::Vely, i, j, k);
                                let w = b.cell(FlowVar::Velz, i, j, k);
                                sums[0] += u * u;
                                sums[1] += v * v;
                                sums[2] += w * w;
                                count += 1;
                                i += stride;
                            }
                            j += stride;
                        }
                        k += stride;
                    }
                }
                (sums, count)
            },
            ([0.0f64; 3], 0usize),
            |(sa, ca), (sb, cb)| ([sa[0] + sb[0], sa[1] + sb[1], sa[2] + sb[2]], ca + cb),
        );
        self.telemetry.record(
            "hydro.l2norm",
            stats.threads_used,
            stats.chunks,
            stats.wall_s(),
            stats.merge_s(),
        );
        let inv = 1.0 / count.max(1) as f64;
        let result = [
            (sums[0] * inv).sqrt(),
            (sums[1] * inv).sqrt(),
            (sums[2] * inv).sqrt(),
        ];
        self.last = result;
        result
    }

    /// Number of cells visited per analysis step.
    pub fn samples_per_step(&self, sim: &FlashSim) -> usize {
        let per_axis = sim.mesh.block_cells.div_ceil(self.stride);
        sim.mesh.blocks.len() * per_axis.pow(3)
    }
}

impl Analysis<FlashSim> for L2VelocityNorm {
    fn name(&self) -> &str {
        &self.name
    }

    fn analyze(&mut self, state: &FlashSim) {
        let norms = self.compute(state);
        self.series.push((state.step_count, norms));
    }

    fn output(&mut self, _state: &FlashSim) {
        let mut text = String::new();
        for (s, n) in &self.series {
            text.push_str(&format!("{s} {:.6e} {:.6e} {:.6e}\n", n[0], n[1], n[2]));
        }
        self.bytes_out += text.len() as u64;
        self.series.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sedov::SedovSetup;
    use crate::sim::FlashSim;
    use insitu_core::runtime::Simulator;

    #[test]
    fn l1_norm_zero_against_matching_reference_far_field() {
        // at t=0 the reference has rs=0, so everything is ambient except
        // the deposition sphere: the L1 error equals the deposition excess
        let sim = FlashSim::sedov(2, 8, SedovSetup::default());
        let mut f2 = L1ErrorNorm::new("f2");
        let (d, p) = f2.compute(&sim);
        assert!(d.abs() < 1e-12, "ambient density matches reference: {d}");
        assert!(p > 0.0, "blast pressure differs from reference: {p}");
    }

    #[test]
    fn l1_error_stays_bounded_during_run() {
        let mut sim = FlashSim::sedov(2, 8, SedovSetup::default());
        let mut f2 = L1ErrorNorm::new("f2");
        for _ in 0..10 {
            sim.advance();
        }
        let (d, _) = f2.compute(&sim);
        // first-order solver vs approximate reference: O(1) error at most
        assert!(d.is_finite() && d < 6.0, "density L1 {d}");
    }

    #[test]
    fn l2_norms_on_known_field() {
        let mut sim = FlashSim::sedov(1, 8, SedovSetup::default());
        let mut writes = Vec::new();
        sim.mesh.for_each_cell(|b, i, j, k, _| writes.push((b, i, j, k)));
        for (b, i, j, k) in writes {
            *sim.mesh.blocks[b].cell_mut(FlowVar::Velx, i, j, k) = 3.0;
            *sim.mesh.blocks[b].cell_mut(FlowVar::Vely, i, j, k) = -4.0;
            *sim.mesh.blocks[b].cell_mut(FlowVar::Velz, i, j, k) = 0.0;
        }
        let mut f3 = L2VelocityNorm::new("f3", 1);
        let n = f3.compute(&sim);
        assert!((n[0] - 3.0).abs() < 1e-12);
        assert!((n[1] - 4.0).abs() < 1e-12);
        assert!(n[2].abs() < 1e-12);
    }

    #[test]
    fn stride_reduces_sample_count_cubically() {
        let sim = FlashSim::sedov(2, 16, SedovSetup::default());
        let dense = L2VelocityNorm::new("f3", 1).samples_per_step(&sim);
        let strided = L2VelocityNorm::new("f3", 8).samples_per_step(&sim);
        assert_eq!(dense, 8 * 4096);
        assert_eq!(strided, 8 * 8);
        assert_eq!(dense / strided, 512, "8^3 fewer samples");
    }

    #[test]
    fn trait_plumbing_series_flush() {
        let mut sim = FlashSim::sedov(1, 6, SedovSetup::default());
        sim.advance();
        let mut f2 = L1ErrorNorm::new("f2");
        let mut f3 = L2VelocityNorm::new("f3", 2);
        f2.analyze(&sim);
        f3.analyze(&sim);
        assert_eq!(f2.series.len(), 1);
        assert_eq!(f3.series.len(), 1);
        f2.output(&sim);
        f3.output(&sim);
        assert!(f2.series.is_empty() && f3.series.is_empty());
        assert!(f2.bytes_out > 0 && f3.bytes_out > 0);
    }
}
