//! Vorticity (paper analysis F1).
//!
//! Computes `ω = ∇ × v` with central differences in every interior cell
//! (ghost layers provide the stencil across block faces), caches |ω| in
//! the scratch mesh variable, and tracks the maximum magnitude and total
//! enstrophy `∫ |ω|² dV`. This is the paper's compute-heavy FLASH analysis.

use crate::block::{FlowVar, GHOST};
use crate::sim::FlashSim;
use insitu_core::runtime::Analysis;
use insitu_types::KernelTelemetry;

/// Vorticity kernel.
#[derive(Debug, Default)]
pub struct Vorticity {
    name: String,
    /// Max |ω| from the last analysis step.
    pub max_magnitude: f64,
    /// Total enstrophy from the last analysis step.
    pub enstrophy: f64,
    /// `(step, max |ω|, enstrophy)` history since last output.
    pub series: Vec<(usize, f64, f64)>,
    /// Bytes written at output steps.
    pub bytes_out: u64,
    /// Per-kernel execution telemetry (`hydro.vorticity`).
    pub telemetry: KernelTelemetry,
}

impl Vorticity {
    /// Creates the kernel.
    pub fn new(name: &str) -> Self {
        Vorticity {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Computes vorticity over the whole mesh, caching |ω| in
    /// [`FlowVar::Vort`]; returns `(max |ω|, enstrophy)`.
    ///
    /// Block-range chunks produce `(max, enstrophy)` partials on
    /// `sim.exec`, merged in ascending chunk order — bitwise identical for
    /// any thread count.
    pub fn compute(&mut self, sim: &FlashSim) -> (f64, f64) {
        // NOTE: analyses get a shared reference; the scratch field write
        // happens on a local clone of each block's vort values instead.
        let mesh = &sim.mesh;
        let d = mesh.dx();
        let n = mesh.block_cells;
        let nblocks = mesh.blocks.len();
        let chunks = parallel::chunk_count(nblocks, 1);
        let ((max_mag, enstrophy), stats) = parallel::reduce_chunks(
            &sim.exec,
            chunks,
            |c| {
                let mut max_mag: f64 = 0.0;
                let mut enstrophy = 0.0;
                for bi in parallel::chunk_bounds(nblocks, chunks, c) {
                    let b = &mesh.blocks[bi];
                    for k in 0..n {
                        for j in 0..n {
                            for i in 0..n {
                                let (gi, gj, gk) = (i + GHOST, j + GHOST, k + GHOST);
                                let ddx = |v: FlowVar| {
                                    (b.at(v, gi + 1, gj, gk) - b.at(v, gi - 1, gj, gk))
                                        / (2.0 * d[0])
                                };
                                let ddy = |v: FlowVar| {
                                    (b.at(v, gi, gj + 1, gk) - b.at(v, gi, gj - 1, gk))
                                        / (2.0 * d[1])
                                };
                                let ddz = |v: FlowVar| {
                                    (b.at(v, gi, gj, gk + 1) - b.at(v, gi, gj, gk - 1))
                                        / (2.0 * d[2])
                                };
                                let wx = ddy(FlowVar::Velz) - ddz(FlowVar::Vely);
                                let wy = ddz(FlowVar::Velx) - ddx(FlowVar::Velz);
                                let wz = ddx(FlowVar::Vely) - ddy(FlowVar::Velx);
                                let mag2 = wx * wx + wy * wy + wz * wz;
                                max_mag = max_mag.max(mag2.sqrt());
                                enstrophy += mag2;
                            }
                        }
                    }
                }
                (max_mag, enstrophy)
            },
            (0.0f64, 0.0f64),
            |(m, e), (cm, ce)| (m.max(cm), e + ce),
        );
        let enstrophy = enstrophy * mesh.cell_volume();
        self.telemetry.record(
            "hydro.vorticity",
            stats.threads_used,
            stats.chunks,
            stats.wall_s(),
            stats.merge_s(),
        );
        self.max_magnitude = max_mag;
        self.enstrophy = enstrophy;
        (max_mag, enstrophy)
    }
}

impl Analysis<FlashSim> for Vorticity {
    fn name(&self) -> &str {
        &self.name
    }

    fn analyze(&mut self, state: &FlashSim) {
        let (m, e) = self.compute(state);
        self.series.push((state.step_count, m, e));
    }

    fn output(&mut self, _state: &FlashSim) {
        let mut text = String::new();
        for (s, m, e) in &self.series {
            text.push_str(&format!("{s} {m:.8e} {e:.8e}\n"));
        }
        self.bytes_out += text.len() as u64;
        self.series.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sedov::SedovSetup;
    use crate::sim::FlashSim;
    use insitu_core::runtime::Simulator;

    /// Installs a rigid-rotation velocity field ω = 2Ω ẑ.
    fn rigid_rotation(sim: &mut FlashSim, omega: f64) {
        let mesh = &mut sim.mesh;
        let centre = [0.5, 0.5, 0.5];
        let mut writes = Vec::new();
        mesh.for_each_cell(|b, i, j, k, c| {
            let x = c[0] - centre[0];
            let y = c[1] - centre[1];
            writes.push((b, i, j, k, -omega * y, omega * x));
        });
        for (b, i, j, k, u, v) in writes {
            *mesh.blocks[b].cell_mut(FlowVar::Velx, i, j, k) = u;
            *mesh.blocks[b].cell_mut(FlowVar::Vely, i, j, k) = v;
            *mesh.blocks[b].cell_mut(FlowVar::Velz, i, j, k) = 0.0;
        }
        mesh.exchange_ghosts();
    }

    #[test]
    fn rigid_rotation_curl_is_two_omega() {
        let mut sim = FlashSim::sedov(2, 8, SedovSetup::default());
        rigid_rotation(&mut sim, 3.0);
        let mut v = Vorticity::new("f1");
        let (max, ens) = v.compute(&sim);
        // interior cells see exactly 2Ω = 6 (central differences are exact
        // on linear fields); domain-boundary cells see outflow-ghost bias
        assert!((max - 6.0).abs() < 1e-9, "max |w| {max}");
        assert!(ens > 0.0);
    }

    #[test]
    fn quiescent_flow_has_zero_vorticity() {
        let sim = FlashSim::sedov(2, 8, SedovSetup::default());
        let mut v = Vorticity::new("f1");
        let (max, ens) = v.compute(&sim);
        assert!(max.abs() < 1e-12);
        assert!(ens.abs() < 1e-12);
    }

    #[test]
    fn radial_blast_stays_nearly_irrotational() {
        let mut sim = FlashSim::sedov(2, 10, SedovSetup::default());
        for _ in 0..15 {
            sim.advance();
        }
        let mut v = Vorticity::new("f1");
        let (max, _) = v.compute(&sim);
        // spherical blast through Cartesian cells: small numerical
        // vorticity only
        let u_scale = 1.0; // post-shock speeds are O(1)
        assert!(max < 0.5 * u_scale / sim.mesh.dx()[0], "spurious curl {max}");
    }

    #[test]
    fn series_and_output_accounting() {
        let mut sim = FlashSim::sedov(2, 6, SedovSetup::default());
        let mut v = Vorticity::new("f1");
        sim.advance();
        v.analyze(&sim);
        sim.advance();
        v.analyze(&sim);
        assert_eq!(v.series.len(), 2);
        v.output(&sim);
        assert!(v.series.is_empty());
        assert!(v.bytes_out > 0);
    }
}
