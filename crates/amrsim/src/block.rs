//! Mesh blocks: 16³ cells × 10 flow variables with ghost layers.

/// Cells per block edge in the paper's configuration.
pub const BLOCK_CELLS: usize = 16;
/// Ghost-layer width (one is enough for the first-order HLL stencil).
pub const GHOST: usize = 1;
/// Number of mesh variables per block ("each block consists of 10 mesh
/// variables", §5.2).
pub const NVARS: usize = 10;

/// The 10 FLASH-style mesh variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum FlowVar {
    /// Mass density ρ.
    Dens = 0,
    /// x-velocity.
    Velx = 1,
    /// y-velocity.
    Vely = 2,
    /// z-velocity.
    Velz = 3,
    /// Pressure.
    Pres = 4,
    /// Total specific energy.
    Ener = 5,
    /// Internal specific energy.
    Eint = 6,
    /// Temperature (ideal-gas proxy: p/ρ).
    Temp = 7,
    /// Adiabatic index (uniform γ here, stored per FLASH convention).
    Gamc = 8,
    /// Scratch variable (vorticity magnitude is cached here).
    Vort = 9,
}

impl FlowVar {
    /// Index of the variable in block storage.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One block: `n³` interior cells plus ghost layers, `NVARS` variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Interior cells per edge.
    pub n: usize,
    /// Storage: `NVARS` contiguous (n+2g)³ scalar fields.
    data: Vec<f64>,
    /// Block position in the mesh's block grid.
    pub coords: [usize; 3],
    /// Refinement level (0 = base; used by the refine module).
    pub level: u8,
}

impl Block {
    /// Width including ghosts.
    #[inline]
    pub fn width(&self) -> usize {
        self.n + 2 * GHOST
    }

    /// Creates a zeroed block at `coords`.
    pub fn new(n: usize, coords: [usize; 3]) -> Self {
        let w = n + 2 * GHOST;
        Block {
            n,
            data: vec![0.0; NVARS * w * w * w],
            coords,
            level: 0,
        }
    }

    /// Linear index of `(var, i, j, k)` where `i/j/k ∈ -GHOST..n+GHOST`
    /// as signed offsets passed via `usize` ghost-shifted coordinates
    /// `0..width`.
    #[inline]
    fn idx(&self, var: usize, gi: usize, gj: usize, gk: usize) -> usize {
        let w = self.width();
        ((var * w + gk) * w + gj) * w + gi
    }

    /// Value at ghost-shifted coordinates (`0..width` per axis; interior
    /// cells live at `GHOST..GHOST+n`).
    #[inline]
    pub fn at(&self, var: FlowVar, gi: usize, gj: usize, gk: usize) -> f64 {
        self.data[self.idx(var.index(), gi, gj, gk)]
    }

    /// Mutable access at ghost-shifted coordinates.
    #[inline]
    pub fn at_mut(&mut self, var: FlowVar, gi: usize, gj: usize, gk: usize) -> &mut f64 {
        let i = self.idx(var.index(), gi, gj, gk);
        &mut self.data[i]
    }

    /// Interior value at `0..n` per axis.
    #[inline]
    pub fn cell(&self, var: FlowVar, i: usize, j: usize, k: usize) -> f64 {
        self.at(var, i + GHOST, j + GHOST, k + GHOST)
    }

    /// Mutable interior value at `0..n` per axis.
    #[inline]
    pub fn cell_mut(&mut self, var: FlowVar, i: usize, j: usize, k: usize) -> &mut f64 {
        self.at_mut(var, i + GHOST, j + GHOST, k + GHOST)
    }

    /// Fills a variable (interior + ghosts) with a constant.
    pub fn fill(&mut self, var: FlowVar, value: f64) {
        let w = self.width();
        let v = var.index();
        let start = v * w * w * w;
        self.data[start..start + w * w * w]
            .iter_mut()
            .for_each(|x| *x = value);
    }

    /// Sum of a variable over interior cells.
    pub fn interior_sum(&self, var: FlowVar) -> f64 {
        let mut s = 0.0;
        for k in 0..self.n {
            for j in 0..self.n {
                for i in 0..self.n {
                    s += self.cell(var, i, j, k);
                }
            }
        }
        s
    }

    /// Bytes of storage held by this block.
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_block_dimensions() {
        let b = Block::new(BLOCK_CELLS, [0, 0, 0]);
        assert_eq!(b.width(), 18);
        // 10 vars × 18³ cells × 8 bytes
        assert_eq!(b.byte_size(), NVARS * 18 * 18 * 18 * 8);
    }

    #[test]
    fn interior_and_ghost_indexing_disjoint() {
        let mut b = Block::new(4, [0, 0, 0]);
        *b.cell_mut(FlowVar::Dens, 0, 0, 0) = 7.0;
        assert_eq!(b.at(FlowVar::Dens, GHOST, GHOST, GHOST), 7.0);
        *b.at_mut(FlowVar::Dens, 0, GHOST, GHOST) = 3.0; // ghost cell
        assert_eq!(b.cell(FlowVar::Dens, 0, 0, 0), 7.0, "interior untouched");
    }

    #[test]
    fn variables_do_not_alias() {
        let mut b = Block::new(4, [0, 0, 0]);
        b.fill(FlowVar::Dens, 1.0);
        b.fill(FlowVar::Pres, 2.0);
        assert_eq!(b.cell(FlowVar::Dens, 2, 2, 2), 1.0);
        assert_eq!(b.cell(FlowVar::Pres, 2, 2, 2), 2.0);
        *b.cell_mut(FlowVar::Velx, 1, 2, 3) = 9.0;
        assert_eq!(b.cell(FlowVar::Dens, 1, 2, 3), 1.0);
        assert_eq!(b.cell(FlowVar::Velx, 1, 2, 3), 9.0);
    }

    #[test]
    fn interior_sum_ignores_ghosts() {
        let mut b = Block::new(2, [0, 0, 0]);
        b.fill(FlowVar::Dens, 1.0); // fills ghosts too
        assert_eq!(b.interior_sum(FlowVar::Dens), 8.0);
    }

    #[test]
    fn flow_var_indices_cover_nvars() {
        assert_eq!(FlowVar::Dens.index(), 0);
        assert_eq!(FlowVar::Vort.index(), NVARS - 1);
    }
}
