//! First-order HLL finite-volume solver for the 3-D compressible Euler
//! equations on the block-structured mesh.
//!
//! State is kept in primitive variables (ρ, u, v, w, p) in the block
//! storage; each step converts to conservative form, accumulates HLL face
//! fluxes along all three axes (unsplit), and converts back. First-order
//! accuracy suffices: the scheduler consumes analysis *cost shapes*, and
//! the Sedov shock physics (self-similar expansion) is captured.

use crate::block::{Block, FlowVar, GHOST};
use crate::mesh::Mesh;
use insitu_types::KernelTelemetry;
use parallel::{Exec, ScratchPool};
use std::time::Instant;

/// Ratio of specific heats (FLASH's default ideal gamma for Sedov).
pub const GAMMA: f64 = 1.4;

/// Floor applied to density and pressure to keep the state physical.
pub const FLOOR: f64 = 1e-10;

/// Conservative state vector.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cons {
    rho: f64,
    mx: f64,
    my: f64,
    mz: f64,
    e: f64,
}

/// Primitive state vector.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Prim {
    rho: f64,
    u: f64,
    v: f64,
    w: f64,
    p: f64,
}

impl Prim {
    fn to_cons(self) -> Cons {
        let ke = 0.5 * self.rho * (self.u * self.u + self.v * self.v + self.w * self.w);
        Cons {
            rho: self.rho,
            mx: self.rho * self.u,
            my: self.rho * self.v,
            mz: self.rho * self.w,
            e: self.p / (GAMMA - 1.0) + ke,
        }
    }

    fn sound_speed(self) -> f64 {
        (GAMMA * self.p / self.rho).sqrt()
    }
}

impl Cons {
    fn to_prim(self) -> Prim {
        let rho = self.rho.max(FLOOR);
        let u = self.mx / rho;
        let v = self.my / rho;
        let w = self.mz / rho;
        let ke = 0.5 * rho * (u * u + v * v + w * w);
        let p = ((self.e - ke) * (GAMMA - 1.0)).max(FLOOR);
        Prim { rho, u, v, w, p }
    }
}

/// Physical flux of the Euler equations along `axis` (0/1/2).
fn flux(q: Prim, axis: usize) -> Cons {
    let vel = [q.u, q.v, q.w][axis];
    let c = q.to_cons();
    let mut f = Cons {
        rho: c.rho * vel,
        mx: c.mx * vel,
        my: c.my * vel,
        mz: c.mz * vel,
        e: (c.e + q.p) * vel,
    };
    match axis {
        0 => f.mx += q.p,
        1 => f.my += q.p,
        _ => f.mz += q.p,
    }
    f
}

/// HLL approximate Riemann flux between left and right states along `axis`.
fn hll(left: Prim, right: Prim, axis: usize) -> Cons {
    let ul = [left.u, left.v, left.w][axis];
    let ur = [right.u, right.v, right.w][axis];
    let cl = left.sound_speed();
    let cr = right.sound_speed();
    let sl = (ul - cl).min(ur - cr);
    let sr = (ul + cl).max(ur + cr);
    if sl >= 0.0 {
        return flux(left, axis);
    }
    if sr <= 0.0 {
        return flux(right, axis);
    }
    let fl = flux(left, axis);
    let fr = flux(right, axis);
    let qcl = left.to_cons();
    let qcr = right.to_cons();
    let inv = 1.0 / (sr - sl);
    Cons {
        rho: (sr * fl.rho - sl * fr.rho + sl * sr * (qcr.rho - qcl.rho)) * inv,
        mx: (sr * fl.mx - sl * fr.mx + sl * sr * (qcr.mx - qcl.mx)) * inv,
        my: (sr * fl.my - sl * fr.my + sl * sr * (qcr.my - qcl.my)) * inv,
        mz: (sr * fl.mz - sl * fr.mz + sl * sr * (qcr.mz - qcl.mz)) * inv,
        e: (sr * fl.e - sl * fr.e + sl * sr * (qcr.e - qcl.e)) * inv,
    }
}

fn prim_at(block: &crate::block::Block, gi: usize, gj: usize, gk: usize) -> Prim {
    Prim {
        rho: block.at(FlowVar::Dens, gi, gj, gk).max(FLOOR),
        u: block.at(FlowVar::Velx, gi, gj, gk),
        v: block.at(FlowVar::Vely, gi, gj, gk),
        w: block.at(FlowVar::Velz, gi, gj, gk),
        p: block.at(FlowVar::Pres, gi, gj, gk).max(FLOOR),
    }
}

/// Largest stable time step at CFL number `cfl`.
pub fn cfl_dt(mesh: &Mesh, cfl: f64) -> f64 {
    cfl_dt_ex(mesh, cfl, &Exec::from_env())
}

/// [`cfl_dt`] on an explicit execution context: per-block maximum rates
/// are reduced in block order (`max` is order-independent, so this is
/// exact for any thread count and chunking).
pub fn cfl_dt_ex(mesh: &Mesh, cfl: f64, exec: &Exec) -> f64 {
    let d = mesh.dx();
    let nblocks = mesh.blocks.len();
    let chunks = parallel::chunk_count(nblocks, 1);
    let (max_rate, _) = parallel::reduce_chunks(
        exec,
        chunks,
        |c| {
            let mut rate_max = 0.0f64;
            for bi in parallel::chunk_bounds(nblocks, chunks, c) {
                let b = &mesh.blocks[bi];
                for k in 0..b.n {
                    for j in 0..b.n {
                        for i in 0..b.n {
                            let q = prim_at(b, i + GHOST, j + GHOST, k + GHOST);
                            let c = q.sound_speed();
                            let rate = (q.u.abs() + c) / d[0]
                                + (q.v.abs() + c) / d[1]
                                + (q.w.abs() + c) / d[2];
                            rate_max = rate_max.max(rate);
                        }
                    }
                }
            }
            rate_max
        },
        0.0f64,
        f64::max,
    );
    if max_rate > 0.0 {
        cfl / max_rate
    } else {
        f64::INFINITY
    }
}

/// Advances the mesh by `dt` with one unsplit first-order HLL step.
/// Ghost layers must be current; they are refreshed at the end.
pub fn step(mesh: &mut Mesh, dt: f64) {
    step_ex(
        mesh,
        dt,
        &Exec::from_env(),
        &mut KernelTelemetry::new(),
        &ScratchPool::new(),
    );
}

/// [`step`] on an explicit execution context, recording telemetry.
///
/// Blocks read only their own cells + ghost layers and write only their
/// own cells, so the block sweep is embarrassingly parallel and trivially
/// deterministic; the ghost exchanges run the two-phase parallel
/// gather/scatter of [`Mesh::exchange_ghosts_ex`]. All per-step buffers
/// (ghost gather planes, per-block flux deltas) come from `pool`, so after
/// the first step a steady-state step allocates nothing.
pub fn step_ex(
    mesh: &mut Mesh,
    dt: f64,
    exec: &Exec,
    telemetry: &mut KernelTelemetry,
    pool: &ScratchPool,
) {
    let g0 = Instant::now();
    let s0 = pool.counters();
    mesh.exchange_ghosts_ex(exec, pool);
    let d = mesh.dx();
    let n = mesh.block_cells;
    let s1 = pool.counters();
    // Pre-warm the delta shelf to the worst-case number of concurrently
    // held buffers (one per worker thread). The sweep takes and returns a
    // buffer inside each block's closure, so without this the shelf depth
    // would depend on thread scheduling and a timed steady-state step could
    // still allocate; warming up-front makes steady state deterministic.
    let warm: Vec<_> = (0..exec.threads().min(mesh.blocks.len()))
        .map(|_| pool.take(5 * n * n * n))
        .collect();
    for buf in warm {
        pool.put(buf);
    }
    let stats = parallel::for_each_mut(exec, &mut mesh.blocks, |_, b| {
        let mut delta = pool.take(5 * n * n * n);
        update_block(b, n, d, dt, &mut delta);
        pool.put(delta);
    });
    let s2 = pool.counters();
    mesh.exchange_ghosts_ex(exec, pool);
    let s3 = pool.counters();
    // ghost time = total minus the block sweep
    let ghosts = (g0.elapsed().as_secs_f64() - stats.wall_s()).max(0.0);
    telemetry.record("hydro.ghosts", 1, 1, ghosts, 0.0);
    let (ga, gr) = (s1.since(&s0), s3.since(&s2));
    telemetry.record_scratch("hydro.ghosts", ga.allocs + gr.allocs, ga.reuses + gr.reuses);
    telemetry.record(
        "hydro.step",
        stats.threads_used,
        stats.chunks,
        stats.wall_s(),
        0.0,
    );
    let sw = s2.since(&s1);
    telemetry.record_scratch("hydro.step", sw.allocs, sw.reuses);
}

/// One HLL update of a single block's interior cells. `delta` is pooled
/// scratch of at least `5·n³` floats (one conservative update per cell);
/// every slot is overwritten before it is read.
fn update_block(b: &mut Block, n: usize, d: [f64; 3], dt: f64, delta: &mut [f64]) {
    {
        // snapshot conservative update per interior cell
        let mut idx = 0;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let (gi, gj, gk) = (i + GHOST, j + GHOST, k + GHOST);
                    let centre = prim_at(b, gi, gj, gk);
                    let mut du = Cons {
                        rho: 0.0,
                        mx: 0.0,
                        my: 0.0,
                        mz: 0.0,
                        e: 0.0,
                    };
                    for (axis, &spacing) in d.iter().enumerate() {
                        let (li, lj, lk, ri, rj, rk) = match axis {
                            0 => (gi - 1, gj, gk, gi + 1, gj, gk),
                            1 => (gi, gj - 1, gk, gi, gj + 1, gk),
                            _ => (gi, gj, gk - 1, gi, gj, gk + 1),
                        };
                        let left = prim_at(b, li, lj, lk);
                        let right = prim_at(b, ri, rj, rk);
                        let f_minus = hll(left, centre, axis);
                        let f_plus = hll(centre, right, axis);
                        let inv_dx = 1.0 / spacing;
                        du.rho -= (f_plus.rho - f_minus.rho) * inv_dx;
                        du.mx -= (f_plus.mx - f_minus.mx) * inv_dx;
                        du.my -= (f_plus.my - f_minus.my) * inv_dx;
                        du.mz -= (f_plus.mz - f_minus.mz) * inv_dx;
                        du.e -= (f_plus.e - f_minus.e) * inv_dx;
                    }
                    delta[idx] = du.rho;
                    delta[idx + 1] = du.mx;
                    delta[idx + 2] = du.my;
                    delta[idx + 3] = du.mz;
                    delta[idx + 4] = du.e;
                    idx += 5;
                }
            }
        }
        // apply updates
        let mut idx = 0;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let (gi, gj, gk) = (i + GHOST, j + GHOST, k + GHOST);
                    let q = prim_at(b, gi, gj, gk);
                    let mut c = q.to_cons();
                    c.rho += dt * delta[idx];
                    c.mx += dt * delta[idx + 1];
                    c.my += dt * delta[idx + 2];
                    c.mz += dt * delta[idx + 3];
                    c.e += dt * delta[idx + 4];
                    idx += 5;
                    let p = c.to_prim();
                    *b.at_mut(FlowVar::Dens, gi, gj, gk) = p.rho;
                    *b.at_mut(FlowVar::Velx, gi, gj, gk) = p.u;
                    *b.at_mut(FlowVar::Vely, gi, gj, gk) = p.v;
                    *b.at_mut(FlowVar::Velz, gi, gj, gk) = p.w;
                    *b.at_mut(FlowVar::Pres, gi, gj, gk) = p.p;
                    let ke = 0.5 * (p.u * p.u + p.v * p.v + p.w * p.w);
                    let eint = p.p / ((GAMMA - 1.0) * p.rho);
                    *b.at_mut(FlowVar::Ener, gi, gj, gk) = eint + ke;
                    *b.at_mut(FlowVar::Eint, gi, gj, gk) = eint;
                    *b.at_mut(FlowVar::Temp, gi, gj, gk) = p.p / p.rho;
                    *b.at_mut(FlowVar::Gamc, gi, gj, gk) = GAMMA;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::FlowVar;

    fn uniform_mesh(rho: f64, p: f64) -> Mesh {
        let mut m = Mesh::new([2, 1, 1], 8, [2.0, 1.0, 1.0]);
        for b in &mut m.blocks {
            b.fill(FlowVar::Dens, rho);
            b.fill(FlowVar::Pres, p);
            b.fill(FlowVar::Velx, 0.0);
            b.fill(FlowVar::Vely, 0.0);
            b.fill(FlowVar::Velz, 0.0);
        }
        m
    }

    #[test]
    fn uniform_state_is_stationary() {
        let mut m = uniform_mesh(1.0, 1.0);
        let dt = cfl_dt(&m, 0.4);
        for _ in 0..5 {
            step(&mut m, dt);
        }
        m.for_each_cell(|b, i, j, k, _| {
            assert!((m.blocks[b].cell(FlowVar::Dens, i, j, k) - 1.0).abs() < 1e-12);
            assert!(m.blocks[b].cell(FlowVar::Velx, i, j, k).abs() < 1e-12);
        });
    }

    #[test]
    fn cfl_dt_scales_with_sound_speed() {
        let slow = uniform_mesh(1.0, 0.1);
        let fast = uniform_mesh(1.0, 10.0);
        assert!(cfl_dt(&slow, 0.4) > cfl_dt(&fast, 0.4));
    }

    #[test]
    fn sod_like_shock_moves_right() {
        // left half high pressure, right half low: a shock should move into
        // the low-pressure side and the interface density should smear
        let mut m = Mesh::new([2, 1, 1], 8, [2.0, 1.0, 1.0]);
        m.for_each_cell(|_, _, _, _, _| {});
        for bi in 0..m.blocks.len() {
            for k in 0..8 {
                for j in 0..8 {
                    for i in 0..8 {
                        let x = m.cell_center(bi, i, j, k)[0];
                        let (rho, p) = if x < 1.0 { (1.0, 1.0) } else { (0.125, 0.1) };
                        let b = &mut m.blocks[bi];
                        *b.cell_mut(FlowVar::Dens, i, j, k) = rho;
                        *b.cell_mut(FlowVar::Pres, i, j, k) = p;
                    }
                }
            }
        }
        let mass0 = m.integral(FlowVar::Dens);
        let mut t = 0.0;
        while t < 0.2 {
            let dt = cfl_dt(&m, 0.4).min(0.2 - t);
            step(&mut m, dt);
            t += dt;
        }
        // mass conserved (nothing reached the outflow boundary yet)
        let mass1 = m.integral(FlowVar::Dens);
        assert!((mass1 - mass0).abs() / mass0 < 1e-6, "mass {mass0} -> {mass1}");
        // fluid moves right at the old interface
        let mut u_mid = 0.0;
        let mut rho_right_edge = 0.0;
        for bi in 0..m.blocks.len() {
            for i in 0..8 {
                let x = m.cell_center(bi, i, 4, 4)[0];
                if (x - 1.05).abs() < 0.07 {
                    u_mid = m.blocks[bi].cell(FlowVar::Velx, i, 4, 4);
                }
                if (x - 1.95).abs() < 0.07 {
                    rho_right_edge = m.blocks[bi].cell(FlowVar::Dens, i, 4, 4);
                }
            }
        }
        assert!(u_mid > 0.1, "post-shock velocity {u_mid} must point right");
        assert!((rho_right_edge - 0.125).abs() < 1e-3, "far field undisturbed");
        // positivity everywhere
        m.for_each_cell(|b, i, j, k, _| {
            assert!(m.blocks[b].cell(FlowVar::Dens, i, j, k) > 0.0);
            assert!(m.blocks[b].cell(FlowVar::Pres, i, j, k) > 0.0);
        });
    }

    #[test]
    fn momentum_conserved_in_closed_pulse() {
        // symmetric pressure pulse: net momentum must stay ~0
        let mut m = Mesh::new([1, 1, 1], 16, [1.0, 1.0, 1.0]);
        for k in 0..16 {
            for j in 0..16 {
                for i in 0..16 {
                    let c = m.cell_center(0, i, j, k);
                    let r2 = (c[0] - 0.5).powi(2) + (c[1] - 0.5).powi(2) + (c[2] - 0.5).powi(2);
                    let b = &mut m.blocks[0];
                    *b.cell_mut(FlowVar::Dens, i, j, k) = 1.0;
                    *b.cell_mut(FlowVar::Pres, i, j, k) = if r2 < 0.01 { 10.0 } else { 0.1 };
                }
            }
        }
        for _ in 0..10 {
            let dt = cfl_dt(&m, 0.4);
            step(&mut m, dt);
        }
        let mut px = 0.0;
        m.for_each_cell(|b, i, j, k, _| {
            px += m.blocks[b].cell(FlowVar::Dens, i, j, k) * m.blocks[b].cell(FlowVar::Velx, i, j, k);
        });
        assert!(px.abs() < 1e-9, "net x momentum {px}");
    }
}
