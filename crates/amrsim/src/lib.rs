//! A miniature FLASH: block-structured compressible hydrodynamics with
//! embedded in-situ analyses.
//!
//! The paper's second case study couples its scheduler to the FLASH
//! multiphysics code running the Sedov blast problem "using three
//! dimensions with 16³ cells per block; each block consists of 10 mesh
//! variables" (§5.2), with three analyses: vorticity (F1), L1 error norms
//! of density/pressure (F2) and L2 norms of the velocity components (F3).
//!
//! This crate is the stand-in:
//!
//! * [`block`] — 16³-cell blocks carrying 10 mesh variables with ghost
//!   layers,
//! * [`mesh`] — a block-structured mesh with ghost exchange and outflow
//!   boundaries,
//! * [`euler`] — a first-order HLL finite-volume solver for the 3-D
//!   compressible Euler equations with CFL-controlled time stepping,
//! * [`sedov`] — the Sedov blast initial condition and the self-similar
//!   `r_s(t) ∝ (E t²/ρ)^{1/5}` reference used by the error-norm analyses,
//! * [`refine`] — PARAMESH-style refinement flagging (second-derivative
//!   criterion) and prolongation/restriction operators,
//! * [`analysis`] — the F1/F2/F3 kernels implementing
//!   [`insitu_core::runtime::Analysis`],
//! * [`sim`] — the [`insitu_core::runtime::Simulator`] wrapper with
//!   checkpoint output.
//!
//! Fidelity note (documented in DESIGN.md): the solver runs on the
//! block-structured uniform grid; the AMR machinery (flagging, prolong/
//! restrict) is implemented and tested but the time integration does not
//! do multi-level flux correction — the paper's scheduling experiments
//! exercise analysis cost shapes, not AMR accuracy.

pub mod analysis;
pub mod block;
pub mod euler;
pub mod mesh;
pub mod refine;
pub mod sedov;
pub mod sim;

pub use block::{Block, FlowVar, BLOCK_CELLS, GHOST, NVARS};
pub use mesh::Mesh;
pub use sim::FlashSim;
