//! The block-structured mesh: block grid, ghost exchange, boundaries.

use crate::block::{Block, FlowVar, GHOST, NVARS};
use parallel::{Exec, ScratchPool};

/// A block-structured uniform mesh over an orthorhombic domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    /// Blocks per axis.
    pub block_dims: [usize; 3],
    /// Cells per block edge.
    pub block_cells: usize,
    /// Physical domain edge lengths.
    pub domain: [f64; 3],
    /// Blocks in x-fastest order.
    pub blocks: Vec<Block>,
}

/// Variables that participate in ghost exchange (the hydro state).
const EXCHANGED: [FlowVar; 6] = [
    FlowVar::Dens,
    FlowVar::Velx,
    FlowVar::Vely,
    FlowVar::Velz,
    FlowVar::Pres,
    FlowVar::Ener,
];

impl Mesh {
    /// Creates a zeroed mesh of `block_dims` blocks with `block_cells`
    /// cells per block edge over `domain`.
    pub fn new(block_dims: [usize; 3], block_cells: usize, domain: [f64; 3]) -> Self {
        let mut blocks = Vec::with_capacity(block_dims.iter().product());
        for bz in 0..block_dims[2] {
            for by in 0..block_dims[1] {
                for bx in 0..block_dims[0] {
                    blocks.push(Block::new(block_cells, [bx, by, bz]));
                }
            }
        }
        Mesh {
            block_dims,
            block_cells,
            domain,
            blocks,
        }
    }

    /// Cell size along each axis.
    pub fn dx(&self) -> [f64; 3] {
        [
            self.domain[0] / (self.block_dims[0] * self.block_cells) as f64,
            self.domain[1] / (self.block_dims[1] * self.block_cells) as f64,
            self.domain[2] / (self.block_dims[2] * self.block_cells) as f64,
        ]
    }

    /// Total interior cells.
    pub fn total_cells(&self) -> usize {
        self.blocks.len() * self.block_cells.pow(3)
    }

    /// Cell volume.
    pub fn cell_volume(&self) -> f64 {
        let d = self.dx();
        d[0] * d[1] * d[2]
    }

    /// Linear block index from block coordinates.
    pub fn block_index(&self, bx: usize, by: usize, bz: usize) -> usize {
        (bz * self.block_dims[1] + by) * self.block_dims[0] + bx
    }

    /// Physical centre of interior cell `(i, j, k)` of block `b`.
    pub fn cell_center(&self, b: usize, i: usize, j: usize, k: usize) -> [f64; 3] {
        let d = self.dx();
        let c = self.blocks[b].coords;
        [
            (c[0] * self.block_cells + i) as f64 * d[0] + 0.5 * d[0],
            (c[1] * self.block_cells + j) as f64 * d[1] + 0.5 * d[1],
            (c[2] * self.block_cells + k) as f64 * d[2] + 0.5 * d[2],
        ]
    }

    /// Applies `f` to every interior cell of every block:
    /// `f(block_index, i, j, k, centre)`.
    pub fn for_each_cell(&self, mut f: impl FnMut(usize, usize, usize, usize, [f64; 3])) {
        for b in 0..self.blocks.len() {
            for k in 0..self.block_cells {
                for j in 0..self.block_cells {
                    for i in 0..self.block_cells {
                        f(b, i, j, k, self.cell_center(b, i, j, k));
                    }
                }
            }
        }
    }

    /// Volume integral of a variable over the whole domain.
    pub fn integral(&self, var: FlowVar) -> f64 {
        self.blocks
            .iter()
            .map(|b| b.interior_sum(var))
            .sum::<f64>()
            * self.cell_volume()
    }

    /// Fills the ghost layers of every block: interior faces copy the
    /// neighbouring block's edge cells; domain faces use outflow
    /// (zero-gradient) boundaries.
    ///
    /// Serial convenience wrapper over [`Mesh::exchange_ghosts_ex`] with a
    /// transient scratch pool.
    pub fn exchange_ghosts(&mut self) {
        self.exchange_ghosts_ex(&Exec::serial(), &ScratchPool::new());
    }

    /// [`Mesh::exchange_ghosts`] on an explicit execution context, with
    /// gather buffers drawn from `pool`.
    ///
    /// Runs in two phases: **gather** reads, for every block, the six
    /// source planes (neighbour far-interior plane, or the block's own
    /// boundary plane for outflow faces) of all exchanged hydro variables
    /// into one pooled buffer per block; **scatter** writes each block's
    /// buffer into its own ghost planes. The gather phase reads *interior*
    /// cells only and the scatter phase writes *ghost* cells only, so the
    /// result is bitwise identical to the serial exchange at any thread
    /// count — no write is visible to any read.
    pub fn exchange_ghosts_ex(&mut self, exec: &Exec, pool: &ScratchPool) {
        let n = self.block_cells;
        let [nbx, nby, nbz] = self.block_dims;
        let plane = n * n;
        // six faces: (axis, negative side?)
        const FACES: [(usize, bool); 6] =
            [(0, true), (0, false), (1, true), (1, false), (2, true), (2, false)];
        // phase 1: gather. One flat buffer per block, laid out face-major
        // then variable-major: offset ((face*nvars + var)*n + row)*n + col.
        // Every slot is overwritten, so stale pooled contents are fine.
        let blocks = &self.blocks;
        let (gathered, _) = parallel::map_chunks(exec, blocks.len(), |b| {
            let bx = b % nbx;
            let by = (b / nbx) % nby;
            let bz = b / (nbx * nby);
            let mut buf = pool.take(6 * EXCHANGED.len() * plane);
            for (fi, &(axis, neg)) in FACES.iter().enumerate() {
                let nb_coord = |c: usize, dim: usize| -> Option<usize> {
                    if neg {
                        c.checked_sub(1)
                    } else if c + 1 < dim {
                        Some(c + 1)
                    } else {
                        None
                    }
                };
                let neighbor = match axis {
                    0 => nb_coord(bx, nbx).map(|x| (bz * nby + by) * nbx + x),
                    1 => nb_coord(by, nby).map(|y| (bz * nby + y) * nbx + bx),
                    _ => nb_coord(bz, nbz).map(|z| (z * nby + by) * nbx + bx),
                };
                // interior source plane: the neighbour's far plane, or our
                // own boundary plane (outflow / zero-gradient)
                let (src, sc) = match neighbor {
                    Some(s) => (s, if neg { n - 1 } else { 0 }),
                    None => (b, if neg { 0 } else { n - 1 }),
                };
                let sb = &blocks[src];
                for (vi, &var) in EXCHANGED.iter().enumerate() {
                    let base = (fi * EXCHANGED.len() + vi) * plane;
                    for v in 0..n {
                        for u in 0..n {
                            let (i, j, k) = match axis {
                                0 => (sc, u, v),
                                1 => (u, sc, v),
                                _ => (u, v, sc),
                            };
                            buf[base + v * n + u] = sb.cell(var, i, j, k);
                        }
                    }
                }
            }
            buf
        });
        // phase 2: scatter each block's gathered planes into its ghosts
        let gathered_ref = &gathered;
        parallel::for_each_mut(exec, &mut self.blocks, |b, db| {
            let buf = &gathered_ref[b];
            for (fi, &(axis, neg)) in FACES.iter().enumerate() {
                let gc = if neg { 0 } else { n + GHOST };
                for (vi, &var) in EXCHANGED.iter().enumerate() {
                    let base = (fi * EXCHANGED.len() + vi) * plane;
                    for v in 0..n {
                        for u in 0..n {
                            let (gi, gj, gk) = match axis {
                                0 => (gc, u + GHOST, v + GHOST),
                                1 => (u + GHOST, gc, v + GHOST),
                                _ => (u + GHOST, v + GHOST, gc),
                            };
                            *db.at_mut(var, gi, gj, gk) = buf[base + v * n + u];
                        }
                    }
                }
            }
        });
        for buf in gathered {
            pool.put(buf);
        }
        let _ = NVARS; // (documented: only the hydro state is exchanged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let m = Mesh::new([2, 1, 1], 4, [2.0, 1.0, 1.0]);
        assert_eq!(m.blocks.len(), 2);
        assert_eq!(m.dx(), [0.25, 0.25, 0.25]);
        assert_eq!(m.total_cells(), 128);
        // first cell of second block starts at x = 1.0
        let c = m.cell_center(1, 0, 0, 0);
        assert!((c[0] - 1.125).abs() < 1e-12);
    }

    #[test]
    fn ghost_exchange_copies_neighbor_interior() {
        let mut m = Mesh::new([2, 1, 1], 4, [2.0, 1.0, 1.0]);
        // block 0 density 1, block 1 density 2
        m.blocks[0].fill(FlowVar::Dens, 1.0);
        m.blocks[1].fill(FlowVar::Dens, 2.0);
        m.exchange_ghosts();
        // block 0's +x ghost plane must hold 2.0 (from block 1)
        let b0 = &m.blocks[0];
        assert_eq!(b0.at(FlowVar::Dens, 4 + GHOST, GHOST, GHOST), 2.0);
        // block 1's -x ghost plane must hold 1.0
        let b1 = &m.blocks[1];
        assert_eq!(b1.at(FlowVar::Dens, 0, GHOST, GHOST), 1.0);
    }

    #[test]
    fn outflow_boundaries_copy_edge() {
        let mut m = Mesh::new([1, 1, 1], 4, [1.0, 1.0, 1.0]);
        // gradient in x: cell value = i
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    *m.blocks[0].cell_mut(FlowVar::Pres, i, j, k) = i as f64;
                }
            }
        }
        m.exchange_ghosts();
        let b = &m.blocks[0];
        assert_eq!(b.at(FlowVar::Pres, 0, GHOST, GHOST), 0.0); // -x ghost = cell 0
        assert_eq!(b.at(FlowVar::Pres, 5, GHOST, GHOST), 3.0); // +x ghost = cell 3
    }

    #[test]
    fn parallel_ghost_exchange_matches_serial() {
        let mut serial = Mesh::new([2, 2, 2], 4, [1.0, 1.0, 1.0]);
        for (bi, b) in serial.blocks.iter_mut().enumerate() {
            for (vi, &var) in EXCHANGED.iter().enumerate() {
                for i in 0..4 {
                    for j in 0..4 {
                        for k in 0..4 {
                            *b.cell_mut(var, i, j, k) =
                                (bi * 1000 + vi * 100 + i * 16 + j * 4 + k) as f64 * 0.375;
                        }
                    }
                }
            }
        }
        let mut par = serial.clone();
        serial.exchange_ghosts();
        let pool = ScratchPool::new();
        par.exchange_ghosts_ex(&Exec::with_threads(4), &pool);
        assert_eq!(serial, par, "ghost exchange must be thread-count invariant");
        // a second exchange reuses every gather buffer
        let before = pool.counters();
        par.exchange_ghosts_ex(&Exec::with_threads(4), &pool);
        let after = pool.counters();
        assert_eq!(after.allocs, before.allocs, "warm exchange must not allocate");
        assert_eq!(after.reuses, before.reuses + par.blocks.len());
    }

    #[test]
    fn integral_scales_with_volume() {
        let mut m = Mesh::new([2, 2, 2], 4, [1.0, 1.0, 1.0]);
        for b in &mut m.blocks {
            b.fill(FlowVar::Dens, 3.0);
        }
        assert!((m.integral(FlowVar::Dens) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn for_each_cell_covers_all() {
        let m = Mesh::new([2, 1, 1], 3, [1.0, 1.0, 1.0]);
        let mut count = 0;
        m.for_each_cell(|_, _, _, _, c| {
            count += 1;
            assert!(c[0] > 0.0 && c[0] < 1.0);
        });
        assert_eq!(count, m.total_cells());
    }
}
