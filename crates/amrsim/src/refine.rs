//! PARAMESH-style refinement machinery: flagging, prolongation,
//! restriction.
//!
//! FLASH marks blocks for refinement with a normalized second-derivative
//! (Löhner) criterion and moves data between levels with prolongation
//! (parent → children, here trilinear injection) and restriction (children
//! → parent, volume averaging). This module implements and tests those
//! operators; the time integrator runs on the base level (see crate docs
//! for the fidelity note).

use crate::block::{Block, FlowVar, GHOST};
use crate::mesh::Mesh;

/// Normalized second-derivative refinement estimator of one block for one
/// variable: `max |Δ²q| / (|Δq⁺| + |Δq⁻| + ε·|q|)` over interior cells and
/// axes — the Löhner error estimator used by FLASH/PARAMESH.
pub fn lohner_estimator(block: &Block, var: FlowVar, eps: f64) -> f64 {
    let n = block.n;
    let mut worst = 0.0f64;
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let (gi, gj, gk) = (i + GHOST, j + GHOST, k + GHOST);
                for axis in 0..3 {
                    let (pi, pj, pk, mi, mj, mk) = match axis {
                        0 => (gi + 1, gj, gk, gi - 1, gj, gk),
                        1 => (gi, gj + 1, gk, gi, gj - 1, gk),
                        _ => (gi, gj, gk + 1, gi, gj, gk - 1),
                    };
                    let qc = block.at(var, gi, gj, gk);
                    let qp = block.at(var, pi, pj, pk);
                    let qm = block.at(var, mi, mj, mk);
                    let num = (qp - 2.0 * qc + qm).abs();
                    let den = (qp - qc).abs() + (qc - qm).abs() + eps * qc.abs();
                    if den > 0.0 {
                        worst = worst.max(num / den);
                    }
                }
            }
        }
    }
    worst
}

/// Flags blocks whose density estimator exceeds `threshold`.
pub fn flag_for_refinement(mesh: &Mesh, threshold: f64) -> Vec<bool> {
    mesh.blocks
        .iter()
        .map(|b| lohner_estimator(b, FlowVar::Dens, 0.01) > threshold)
        .collect()
}

/// Prolongation: fills 8 child blocks (2× finer) from a parent block by
/// piecewise-constant injection (each parent cell maps to a 2×2×2 child
/// cell group). Children are returned in z-major octant order.
pub fn prolong(parent: &Block) -> [Block; 8] {
    let n = parent.n;
    assert!(n.is_multiple_of(2), "block size must be even to refine");
    let mut children: Vec<Block> = (0..8)
        .map(|o| {
            let mut c = Block::new(n, parent.coords);
            c.level = parent.level + 1;
            let _ = o;
            c
        })
        .collect();
    for var_idx in 0..crate::block::NVARS {
        let var = [
            FlowVar::Dens,
            FlowVar::Velx,
            FlowVar::Vely,
            FlowVar::Velz,
            FlowVar::Pres,
            FlowVar::Ener,
            FlowVar::Eint,
            FlowVar::Temp,
            FlowVar::Gamc,
            FlowVar::Vort,
        ][var_idx];
        for (o, child) in children.iter_mut().enumerate() {
            let ox = (o & 1) * n / 2;
            let oy = ((o >> 1) & 1) * n / 2;
            let oz = ((o >> 2) & 1) * n / 2;
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        let v = parent.cell(var, ox + i / 2, oy + j / 2, oz + k / 2);
                        *child.cell_mut(var, i, j, k) = v;
                    }
                }
            }
        }
    }
    children.try_into().expect("exactly 8 children")
}

/// Restriction: rebuilds a parent block from its 8 children by volume
/// averaging (the adjoint of piecewise-constant prolongation).
pub fn restrict(children: &[Block; 8]) -> Block {
    let n = children[0].n;
    let mut parent = Block::new(n, children[0].coords);
    parent.level = children[0].level.saturating_sub(1);
    for var in [
        FlowVar::Dens,
        FlowVar::Velx,
        FlowVar::Vely,
        FlowVar::Velz,
        FlowVar::Pres,
        FlowVar::Ener,
        FlowVar::Eint,
        FlowVar::Temp,
        FlowVar::Gamc,
        FlowVar::Vort,
    ] {
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    // which octant does this parent cell come from?
                    let o = (i >= n / 2) as usize
                        + 2 * ((j >= n / 2) as usize)
                        + 4 * ((k >= n / 2) as usize);
                    let ci = (i % (n / 2)) * 2;
                    let cj = (j % (n / 2)) * 2;
                    let ck = (k % (n / 2)) * 2;
                    let child = &children[o];
                    let mut sum = 0.0;
                    for dz in 0..2 {
                        for dy in 0..2 {
                            for dx in 0..2 {
                                sum += child.cell(var, ci + dx, cj + dy, ck + dz);
                            }
                        }
                    }
                    *parent.cell_mut(var, i, j, k) = sum / 8.0;
                }
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_field_not_flagged() {
        let mut b = Block::new(8, [0, 0, 0]);
        // linear field: zero second derivative
        for k in 0..10 {
            for j in 0..10 {
                for i in 0..10 {
                    *b.at_mut(FlowVar::Dens, i, j, k) = 1.0 + 0.1 * i as f64;
                }
            }
        }
        assert!(lohner_estimator(&b, FlowVar::Dens, 0.01) < 1e-9);
    }

    #[test]
    fn discontinuity_flagged() {
        let mut b = Block::new(8, [0, 0, 0]);
        for k in 0..10 {
            for j in 0..10 {
                for i in 0..10 {
                    *b.at_mut(FlowVar::Dens, i, j, k) = if i < 5 { 1.0 } else { 6.0 };
                }
            }
        }
        assert!(lohner_estimator(&b, FlowVar::Dens, 0.01) > 0.5);
    }

    #[test]
    fn flagging_targets_shock_blocks() {
        use crate::sedov::SedovSetup;
        let mut m = Mesh::new([4, 4, 4], 8, [1.0, 1.0, 1.0]);
        let s = SedovSetup::default();
        s.init(&mut m);
        // evolve a little so a shock shell exists
        for _ in 0..20 {
            let dt = crate::euler::cfl_dt(&m, 0.4);
            crate::euler::step(&mut m, dt);
        }
        let flags = flag_for_refinement(&m, 0.6);
        let flagged = flags.iter().filter(|&&f| f).count();
        assert!(flagged > 0, "shock must flag blocks");
        assert!(
            flagged < m.blocks.len(),
            "far-field blocks must stay unflagged"
        );
        // the central blocks (blast) should be among the flagged ones
        let centre_flagged = (0..m.blocks.len())
            .filter(|&b| flags[b])
            .any(|b| m.blocks[b].coords.iter().all(|&c| c == 1 || c == 2));
        assert!(centre_flagged);
    }

    #[test]
    fn prolong_restrict_round_trips_constants() {
        let mut parent = Block::new(8, [2, 3, 4]);
        parent.fill(FlowVar::Dens, 5.0);
        parent.fill(FlowVar::Pres, 2.0);
        let children = prolong(&parent);
        assert!(children.iter().all(|c| c.level == 1));
        let back = restrict(&children);
        for k in 0..8 {
            for j in 0..8 {
                for i in 0..8 {
                    assert_eq!(back.cell(FlowVar::Dens, i, j, k), 5.0);
                    assert_eq!(back.cell(FlowVar::Pres, i, j, k), 2.0);
                }
            }
        }
        assert_eq!(back.coords, [2, 3, 4]);
        assert_eq!(back.level, 0);
    }

    #[test]
    fn restriction_conserves_mean() {
        // arbitrary pattern: restriction of prolongation preserves means,
        // and restriction alone averages children exactly
        let mut parent = Block::new(4, [0, 0, 0]);
        for k in 0..4 {
            for j in 0..4 {
                for i in 0..4 {
                    *parent.cell_mut(FlowVar::Dens, i, j, k) = (i + 10 * j + 100 * k) as f64;
                }
            }
        }
        let children = prolong(&parent);
        let back = restrict(&children);
        for k in 0..4 {
            for j in 0..4 {
                for i in 0..4 {
                    assert_eq!(
                        back.cell(FlowVar::Dens, i, j, k),
                        parent.cell(FlowVar::Dens, i, j, k)
                    );
                }
            }
        }
    }

    #[test]
    fn octant_geometry() {
        // child octant 0 covers the low corner of the parent
        let mut parent = Block::new(4, [0, 0, 0]);
        *parent.cell_mut(FlowVar::Dens, 0, 0, 0) = 9.0;
        let children = prolong(&parent);
        assert_eq!(children[0].cell(FlowVar::Dens, 0, 0, 0), 9.0);
        assert_eq!(children[0].cell(FlowVar::Dens, 1, 1, 1), 9.0);
        assert_eq!(children[7].cell(FlowVar::Dens, 0, 0, 0), parent.cell(FlowVar::Dens, 2, 2, 2));
    }
}
