//! The Sedov blast problem and its self-similar reference solution.
//!
//! "Sedov evolves a blast wave from a delta-function initial pressure
//! perturbation" (§5.2). The initial condition deposits energy `E` into a
//! small sphere; the blast then expands self-similarly with shock radius
//! `r_s(t) = ξ₀ (E t² / ρ₀)^{1/5}`.
//!
//! The reference profile used by the error-norm analyses (F2) is the
//! standard strong-shock approximation: ambient state outside the shock, a
//! power-law interior density profile reaching the Rankine–Hugoniot jump
//! `ρ₂ = ρ₀ (γ+1)/(γ-1)` at the shock front. The full Sedov ODE solution
//! is replaced by this closed form (documented substitution in DESIGN.md):
//! the scheduler consumes the *cost* of evaluating a reference, and the
//! self-similar scaling — the physically meaningful check — is exact.

use crate::block::FlowVar;
use crate::euler::GAMMA;
use crate::mesh::Mesh;

/// Sedov problem parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SedovSetup {
    /// Deposited blast energy.
    pub energy: f64,
    /// Ambient density.
    pub rho0: f64,
    /// Ambient pressure (small).
    pub p0: f64,
    /// Initial energy-deposition radius (a few cells).
    pub r_init: f64,
}

impl Default for SedovSetup {
    fn default() -> Self {
        SedovSetup {
            energy: 1.0,
            rho0: 1.0,
            p0: 1e-5,
            r_init: 0.08,
        }
    }
}

/// Dimensionless self-similar constant ξ₀ for γ = 1.4 (Sedov's α ≈ 0.851
/// gives ξ₀ = (1/α)^{1/5} ≈ 1.033).
pub const XI0: f64 = 1.033;

impl SedovSetup {
    /// Initializes `mesh` with the blast centred in the domain: ambient
    /// (ρ₀, p₀) everywhere, blast energy spread uniformly as pressure over
    /// the sphere of radius `r_init`.
    pub fn init(&self, mesh: &mut Mesh) {
        let centre = [
            mesh.domain[0] / 2.0,
            mesh.domain[1] / 2.0,
            mesh.domain[2] / 2.0,
        ];
        let vol_init = 4.0 / 3.0 * std::f64::consts::PI * self.r_init.powi(3);
        let p_blast = (GAMMA - 1.0) * self.energy / vol_init;
        let mut assignments: Vec<(usize, usize, usize, usize, f64)> = Vec::new();
        mesh.for_each_cell(|b, i, j, k, c| {
            let r2 = (c[0] - centre[0]).powi(2)
                + (c[1] - centre[1]).powi(2)
                + (c[2] - centre[2]).powi(2);
            let p = if r2 < self.r_init * self.r_init {
                p_blast
            } else {
                self.p0
            };
            assignments.push((b, i, j, k, p));
        });
        for (b, i, j, k, p) in assignments {
            let blk = &mut mesh.blocks[b];
            *blk.cell_mut(FlowVar::Dens, i, j, k) = self.rho0;
            *blk.cell_mut(FlowVar::Velx, i, j, k) = 0.0;
            *blk.cell_mut(FlowVar::Vely, i, j, k) = 0.0;
            *blk.cell_mut(FlowVar::Velz, i, j, k) = 0.0;
            *blk.cell_mut(FlowVar::Pres, i, j, k) = p;
            let eint = p / ((GAMMA - 1.0) * self.rho0);
            *blk.cell_mut(FlowVar::Ener, i, j, k) = eint;
            *blk.cell_mut(FlowVar::Eint, i, j, k) = eint;
            *blk.cell_mut(FlowVar::Temp, i, j, k) = p / self.rho0;
            *blk.cell_mut(FlowVar::Gamc, i, j, k) = GAMMA;
        }
        mesh.exchange_ghosts();
    }

    /// Self-similar shock radius at time `t`.
    pub fn shock_radius(&self, t: f64) -> f64 {
        XI0 * (self.energy * t * t / self.rho0).powf(0.2)
    }

    /// Reference density at radius `r` and time `t` (strong-shock
    /// approximation: power-law interior, RH jump at the front).
    pub fn reference_density(&self, r: f64, t: f64) -> f64 {
        let rs = self.shock_radius(t);
        if rs <= 0.0 || r >= rs {
            return self.rho0;
        }
        let rho2 = self.rho0 * (GAMMA + 1.0) / (GAMMA - 1.0);
        // steep interior power law (the exact Sedov interior falls off very
        // fast towards the origin); exponent 3/(γ-1) mimics that decay
        let exponent = 3.0 / (GAMMA - 1.0);
        rho2 * (r / rs).powf(exponent)
    }

    /// Reference pressure at radius `r` and time `t` (strong-shock value
    /// behind the front, roughly flat towards the centre at ~0.3 p₂).
    pub fn reference_pressure(&self, r: f64, t: f64) -> f64 {
        let rs = self.shock_radius(t);
        if rs <= 0.0 || r >= rs {
            return self.p0;
        }
        let us = 0.4 * rs / t.max(1e-12); // dr_s/dt = (2/5) r_s / t
        let p2 = 2.0 / (GAMMA + 1.0) * self.rho0 * us * us;
        let x = r / rs;
        p2 * (0.3 + 0.7 * x * x)
    }
}

/// Measured shock radius: the radius of maximum radial density gradient
/// (robust against profile details).
pub fn measured_shock_radius(mesh: &Mesh) -> f64 {
    let centre = [
        mesh.domain[0] / 2.0,
        mesh.domain[1] / 2.0,
        mesh.domain[2] / 2.0,
    ];
    // bin density by radius, then find the outermost steep drop
    let nbins = 64usize;
    let rmax = mesh.domain[0] / 2.0;
    let mut sum = vec![0.0f64; nbins];
    let mut cnt = vec![0usize; nbins];
    mesh.for_each_cell(|b, i, j, k, c| {
        let r = ((c[0] - centre[0]).powi(2)
            + (c[1] - centre[1]).powi(2)
            + (c[2] - centre[2]).powi(2))
        .sqrt();
        let bin = ((r / rmax) * nbins as f64) as usize;
        if bin < nbins {
            sum[bin] += mesh.blocks[b].cell(FlowVar::Dens, i, j, k);
            cnt[bin] += 1;
        }
    });
    let prof: Vec<f64> = sum
        .iter()
        .zip(&cnt)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    // peak density bin marks the shell just behind the shock
    let mut best = 0usize;
    for b in 1..nbins {
        if prof[b] > prof[best] {
            best = b;
        }
    }
    (best as f64 + 0.5) / nbins as f64 * rmax
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::{cfl_dt, step};

    #[test]
    fn shock_radius_scales_t_two_fifths() {
        let s = SedovSetup::default();
        let r1 = s.shock_radius(1.0);
        let r2 = s.shock_radius(32.0);
        // t -> 32t multiplies r by 32^(2/5) = 4
        assert!((r2 / r1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn reference_profiles_jump_at_shock() {
        let s = SedovSetup::default();
        let t = 0.05;
        let rs = s.shock_radius(t);
        let just_in = s.reference_density(rs * 0.999, t);
        let outside = s.reference_density(rs * 1.001, t);
        assert!((just_in / s.rho0 - 6.0).abs() < 0.1, "RH jump ~6 for gamma 1.4");
        assert_eq!(outside, s.rho0);
        assert!(s.reference_pressure(rs * 0.5, t) > s.p0);
        assert!(s.reference_density(rs * 0.1, t) < just_in * 0.01, "steep interior");
    }

    #[test]
    fn initialization_deposits_energy() {
        let mut m = Mesh::new([2, 2, 2], 8, [1.0, 1.0, 1.0]);
        let s = SedovSetup::default();
        s.init(&mut m);
        // total internal energy ≈ blast energy + ambient
        let mut etot = 0.0;
        m.for_each_cell(|b, i, j, k, _| {
            etot += m.blocks[b].cell(FlowVar::Dens, i, j, k)
                * m.blocks[b].cell(FlowVar::Eint, i, j, k);
        });
        etot *= m.cell_volume();
        // coarse sphere rasterization: within 40%
        assert!((etot - 1.0).abs() < 0.4, "deposited {etot}");
    }

    #[test]
    fn blast_expands_self_similarly() {
        let mut m = Mesh::new([2, 2, 2], 12, [1.0, 1.0, 1.0]);
        let s = SedovSetup::default();
        s.init(&mut m);
        let mut t = 0.0f64;
        let mut radii: Vec<(f64, f64)> = Vec::new();
        while t < 0.04 {
            let dt = cfl_dt(&m, 0.4);
            step(&mut m, dt);
            t += dt;
            if t > 0.01 {
                radii.push((t, measured_shock_radius(&m)));
            }
        }
        let (t1, r1) = radii[0];
        let (t2, r2) = *radii.last().unwrap();
        assert!(r2 > r1, "shock must expand: {r1} -> {r2}");
        // growth exponent near 2/5 (coarse grid: generous tolerance)
        let exponent = (r2 / r1).ln() / (t2 / t1).ln();
        assert!(
            (exponent - 0.4).abs() < 0.25,
            "self-similar exponent {exponent}"
        );
        // spherical symmetry: octant masses agree
        let mut octants = [0.0f64; 8];
        m.for_each_cell(|b, i, j, k, c| {
            let o = (c[0] > 0.5) as usize + 2 * ((c[1] > 0.5) as usize) + 4 * ((c[2] > 0.5) as usize);
            octants[o] += m.blocks[b].cell(FlowVar::Dens, i, j, k);
        });
        let mean = octants.iter().sum::<f64>() / 8.0;
        for o in octants {
            assert!((o - mean).abs() / mean < 1e-6, "octant asymmetry {octants:?}");
        }
    }
}
