//! The FLASH-style simulation driver.

use crate::euler::{cfl_dt_ex, step_ex};
use crate::mesh::Mesh;
use crate::sedov::SedovSetup;
use insitu_core::runtime::Simulator;
use insitu_types::KernelTelemetry;
use parallel::{Exec, ScratchPool};
use std::time::Instant;

/// A running Sedov simulation: mesh + clock + checkpoint accounting.
#[derive(Debug, Clone)]
pub struct FlashSim {
    /// The block-structured mesh.
    pub mesh: Mesh,
    /// Problem setup (kept for the reference solution).
    pub setup: SedovSetup,
    /// Physical time.
    pub time: f64,
    /// Completed steps.
    pub step_count: usize,
    /// CFL number.
    pub cfl: f64,
    /// Bytes of checkpoint output written so far.
    pub checkpoint_bytes: u64,
    /// Number of checkpoints written.
    pub checkpoints: usize,
    /// Execution context for the parallel kernels (thread count). Set from
    /// `INSITU_THREADS` at construction; results are bitwise identical for
    /// any value (see the `parallel` crate docs).
    pub exec: Exec,
    /// Accumulated per-kernel telemetry (block sweep, CFL reduction, ...).
    pub telemetry: KernelTelemetry,
    /// Reusable scratch buffers for the hydro step (ghost gather planes,
    /// per-block flux deltas): once warm, a step allocates nothing. A
    /// cloned sim starts with an empty pool and re-warms on first step.
    pub scratch: ScratchPool,
    /// Trace sink for kernel-boundary spans (`hydro.cfl_dt`,
    /// `hydro.step`). Disabled by default; attach a handle to see the
    /// simulation's kernels inside a coupled-run timeline.
    pub tracer: obs::TraceHandle,
}

impl FlashSim {
    /// Builds a Sedov run on `blocks_per_side³` blocks of
    /// `cells_per_block³` cells over a unit cube.
    pub fn sedov(blocks_per_side: usize, cells_per_block: usize, setup: SedovSetup) -> Self {
        let mut mesh = Mesh::new(
            [blocks_per_side; 3],
            cells_per_block,
            [1.0, 1.0, 1.0],
        );
        setup.init(&mut mesh);
        FlashSim {
            mesh,
            setup,
            time: 0.0,
            step_count: 0,
            cfl: 0.4,
            checkpoint_bytes: 0,
            checkpoints: 0,
            exec: Exec::from_env(),
            telemetry: KernelTelemetry::new(),
            scratch: ScratchPool::new(),
            tracer: obs::TraceHandle::disabled(),
        }
    }

    /// Size of one checkpoint (all blocks, all variables).
    pub fn checkpoint_size(&self) -> u64 {
        self.mesh
            .blocks
            .iter()
            .map(|b| b.byte_size() as u64)
            .sum()
    }
}

impl Simulator for FlashSim {
    type State = FlashSim;

    fn state(&self) -> &FlashSim {
        self
    }

    fn advance(&mut self) {
        let tracer = self.tracer.clone();
        let t0 = Instant::now();
        let dt = {
            let mut span = tracer.span("hydro.cfl_dt");
            span.tag("threads", self.exec.threads());
            cfl_dt_ex(&self.mesh, self.cfl, &self.exec)
        };
        self.telemetry.record(
            "hydro.cfl_dt",
            self.exec.threads(),
            parallel::chunk_count(self.mesh.blocks.len(), 1),
            t0.elapsed().as_secs_f64(),
            0.0,
        );
        {
            let mut span = tracer.span("hydro.step");
            span.tag("threads", self.exec.threads());
            step_ex(
                &mut self.mesh,
                dt,
                &self.exec,
                &mut self.telemetry,
                &self.scratch,
            );
        }
        self.time += dt;
        self.step_count += 1;
    }

    fn kernel_telemetry(&self) -> Option<&KernelTelemetry> {
        Some(&self.telemetry)
    }

    fn write_output(&mut self) {
        // checkpoints are modelled (counted), not persisted: the Table-7
        // experiment reasons about their cost through the machine model
        self.checkpoint_bytes += self.checkpoint_size();
        self.checkpoints += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::FlowVar;

    #[test]
    fn simulation_advances_time_and_shock() {
        let mut sim = FlashSim::sedov(2, 8, SedovSetup::default());
        let p0 = sim.mesh.blocks[0].cell(FlowVar::Pres, 0, 0, 0);
        for _ in 0..10 {
            sim.advance();
        }
        assert_eq!(sim.step_count, 10);
        assert!(sim.time > 0.0);
        // far corner still ambient after a few steps
        let p1 = sim.mesh.blocks[0].cell(FlowVar::Pres, 0, 0, 0);
        assert!((p1 - p0).abs() < 1e-6);
    }

    #[test]
    fn checkpoints_accumulate() {
        let mut sim = FlashSim::sedov(2, 8, SedovSetup::default());
        let one = sim.checkpoint_size();
        assert_eq!(one, 8 * 10 * 10 * 10 * 10 * 8); // 8 blocks x 10 vars x 10^3 x 8B
        sim.write_output();
        sim.write_output();
        assert_eq!(sim.checkpoints, 2);
        assert_eq!(sim.checkpoint_bytes, 2 * one);
    }

    #[test]
    fn hydro_scratch_pool_reaches_steady_state() {
        let mut sim = FlashSim::sedov(2, 8, SedovSetup::default());
        sim.advance();
        let cold = sim.scratch.counters();
        assert!(cold.allocs > 0, "first step must populate the pool");
        for _ in 0..3 {
            sim.advance();
        }
        let warm = sim.scratch.counters();
        assert_eq!(
            warm.allocs, cold.allocs,
            "steady-state steps must allocate nothing"
        );
        assert!(warm.reuses > cold.reuses);
        // the counts are attributed to the hydro kernels in telemetry
        let step = sim.telemetry.get("hydro.step").unwrap();
        assert!(step.scratch_reuses > 0);
        let ghosts = sim.telemetry.get("hydro.ghosts").unwrap();
        assert!(ghosts.scratch_reuses > 0);
    }

    #[test]
    fn state_exposes_self() {
        let sim = FlashSim::sedov(2, 4, SedovSetup::default());
        assert_eq!(sim.state().step_count, 0);
    }

    #[test]
    fn kernel_spans_emitted_when_traced() {
        let mut sim = FlashSim::sedov(2, 4, SedovSetup::default());
        let tracer = std::sync::Arc::new(obs::Tracer::with_capacity(64));
        sim.tracer = obs::TraceHandle::new(tracer.clone());
        sim.advance();
        sim.advance();
        let tl = tracer.timeline();
        assert_eq!(tl.spans_named("hydro.cfl_dt").count(), 2);
        assert_eq!(tl.spans_named("hydro.step").count(), 2);
        assert!(sim.kernel_telemetry().unwrap().get("hydro.step").is_some());
    }
}
