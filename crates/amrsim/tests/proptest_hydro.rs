//! Property tests for the hydro substrate: positivity, conservation and
//! symmetry must hold for random blast configurations.

use amrsim::block::FlowVar;
use amrsim::euler::{cfl_dt, step};
use amrsim::mesh::Mesh;
use amrsim::refine::{prolong, restrict};
use amrsim::sedov::SedovSetup;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn blast_preserves_positivity_and_symmetry(
        energy in 0.2f64..3.0,
        r_init in 0.05f64..0.15,
        nsteps in 1usize..8,
    ) {
        let mut mesh = Mesh::new([2, 2, 2], 8, [1.0, 1.0, 1.0]);
        let setup = SedovSetup {
            energy,
            r_init,
            ..Default::default()
        };
        setup.init(&mut mesh);
        let mass0 = mesh.integral(FlowVar::Dens);
        for _ in 0..nsteps {
            let dt = cfl_dt(&mesh, 0.4);
            prop_assert!(dt.is_finite() && dt > 0.0);
            step(&mut mesh, dt);
        }
        // positivity
        let mut all_positive = true;
        mesh.for_each_cell(|b, i, j, k, _| {
            let rho = mesh.blocks[b].cell(FlowVar::Dens, i, j, k);
            let p = mesh.blocks[b].cell(FlowVar::Pres, i, j, k);
            if !(rho > 0.0 && p > 0.0 && rho.is_finite() && p.is_finite()) {
                all_positive = false;
            }
        });
        prop_assert!(all_positive);
        // mass conservation while the blast is interior
        let mass1 = mesh.integral(FlowVar::Dens);
        prop_assert!((mass1 - mass0).abs() / mass0 < 1e-6, "{mass0} -> {mass1}");
        // octant symmetry (blast is centred)
        let mut octants = [0.0f64; 8];
        mesh.for_each_cell(|b, i, j, k, c| {
            let o = (c[0] > 0.5) as usize
                + 2 * ((c[1] > 0.5) as usize)
                + 4 * ((c[2] > 0.5) as usize);
            octants[o] += mesh.blocks[b].cell(FlowVar::Dens, i, j, k);
        });
        let mean = octants.iter().sum::<f64>() / 8.0;
        for o in octants {
            prop_assert!((o - mean).abs() / mean < 1e-6, "{octants:?}");
        }
    }

    #[test]
    fn prolong_restrict_identity(seed in 0u64..1000) {
        // pseudo-random parent block: restriction(prolongation(x)) == x
        let mut parent = amrsim::block::Block::new(8, [0, 0, 0]);
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        for k in 0..8 {
            for j in 0..8 {
                for i in 0..8 {
                    state = state
                        .wrapping_mul(2862933555777941757)
                        .wrapping_add(3037000493);
                    let v = (state >> 11) as f64 / (1u64 << 53) as f64;
                    *parent.cell_mut(FlowVar::Dens, i, j, k) = v + 0.1;
                    *parent.cell_mut(FlowVar::Pres, i, j, k) = 2.0 * v + 0.1;
                }
            }
        }
        let children = prolong(&parent);
        let back = restrict(&children);
        for k in 0..8 {
            for j in 0..8 {
                for i in 0..8 {
                    prop_assert!(
                        (back.cell(FlowVar::Dens, i, j, k)
                            - parent.cell(FlowVar::Dens, i, j, k))
                        .abs()
                            < 1e-12
                    );
                    prop_assert!(
                        (back.cell(FlowVar::Pres, i, j, k)
                            - parent.cell(FlowVar::Pres, i, j, k))
                        .abs()
                            < 1e-12
                    );
                }
            }
        }
    }
}
