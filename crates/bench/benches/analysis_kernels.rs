//! Criterion bench: the in-situ analysis kernels across problem sizes
//! (the measured substrate behind Figure 4's relative cost profile).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insitu_core::runtime::Analysis as _;
use mdsim::analysis::{a1_hydronium_rdf, a4_msd, r1_gyration, r2_membrane_histogram};
use mdsim::{rhodopsin_proxy, water_ions, BuilderParams};

fn bench_md_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("md_analysis_kernels");
    for &n in &[4_000usize, 12_000] {
        let sys = water_ions(&BuilderParams {
            n_particles: n,
            ..Default::default()
        });
        g.bench_with_input(BenchmarkId::new("rdf_a1", n), &sys, |b, s| {
            let mut rdf = a1_hydronium_rdf();
            b.iter(|| rdf.accumulate(s));
        });
        g.bench_with_input(BenchmarkId::new("msd_a4", n), &sys, |b, s| {
            let mut msd = a4_msd();
            msd.setup(s);
            b.iter(|| std::hint::black_box(msd.compute(s)));
        });
        let rho = rhodopsin_proxy(&BuilderParams {
            n_particles: n,
            ..Default::default()
        });
        g.bench_with_input(BenchmarkId::new("gyration_r1", n), &rho, |b, s| {
            let r1 = r1_gyration();
            b.iter(|| std::hint::black_box(r1.compute(s)));
        });
        g.bench_with_input(BenchmarkId::new("histogram_r2", n), &rho, |b, s| {
            let mut r2 = r2_membrane_histogram(64);
            b.iter(|| r2.accumulate(s));
        });
    }
    g.finish();
}

fn bench_flash_kernels(c: &mut Criterion) {
    use amrsim::analysis::{f1_vorticity, f2_l1_norm, f3_l2_norm};
    use amrsim::sedov::SedovSetup;
    use amrsim::FlashSim;
    use insitu_core::runtime::Simulator;

    let mut g = c.benchmark_group("flash_analysis_kernels");
    let mut sim = FlashSim::sedov(3, 12, SedovSetup::default());
    for _ in 0..5 {
        sim.advance();
    }
    g.bench_function("vorticity_f1", |b| {
        let mut f1 = f1_vorticity();
        b.iter(|| std::hint::black_box(f1.compute(&sim)));
    });
    g.bench_function("l1_norm_f2", |b| {
        let mut f2 = f2_l1_norm();
        b.iter(|| std::hint::black_box(f2.compute(&sim)));
    });
    g.bench_function("l2_norm_f3", |b| {
        let mut f3 = f3_l2_norm();
        b.iter(|| std::hint::black_box(f3.compute(&sim)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_md_kernels, bench_flash_kernels
}
criterion_main!(benches);
