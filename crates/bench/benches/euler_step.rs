//! Criterion bench: the hydro substrate itself (cost per mesh step at two
//! block counts, and one MD force step) — the simulation side of the
//! coupling whose per-step time defines the Table-5 threshold base.

use amrsim::euler::{cfl_dt, step};
use amrsim::sedov::SedovSetup;
use amrsim::FlashSim;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdsim::{water_ions, BuilderParams};

fn bench_hydro(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_steps");
    for &bps in &[2usize, 3] {
        let mut sim = FlashSim::sedov(bps, 12, SedovSetup::default());
        let dt = cfl_dt(&sim.mesh, 0.4);
        g.bench_with_input(
            BenchmarkId::new("euler_step_blocks", bps * bps * bps),
            &dt,
            |b, &dt| {
                b.iter(|| step(&mut sim.mesh, dt));
            },
        );
    }
    for &n in &[4_000usize, 12_000] {
        let mut sys = water_ions(&BuilderParams {
            n_particles: n,
            ..Default::default()
        });
        g.bench_with_input(BenchmarkId::new("md_step_atoms", n), &n, |b, _| {
            b.iter(|| sys.step());
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hydro
}
criterion_main!(benches);
