//! Criterion bench: bilinear-interpolation prediction queries (Figure 2's
//! machinery must be cheap enough to evaluate for every candidate scale).

use criterion::{criterion_group, criterion_main, Criterion};
use perfmodel::laws::{KernelLaw, MemoryLaw};
use perfmodel::{KernelMeasurement, PerfPredictor};

fn synth_grid() -> Vec<KernelMeasurement> {
    let compute = KernelLaw::scalable(2e-6, 0.0);
    let comm = KernelLaw {
        a: 0.0,
        b: 3e-4,
        c: 1e-3,
        d: 0.0,
    };
    let mem = MemoryLaw {
        base: 1e6,
        per_elem: 16.0,
    };
    let mut out = Vec::new();
    for &p in &[256.0f64, 1024.0, 4096.0, 16384.0] {
        let diameter = 4.0 + p.log2();
        for &n in &[1e6, 4e6, 16e6, 64e6] {
            out.push(KernelMeasurement {
                problem_size: n,
                procs: p,
                diameter,
                compute_time: compute.time(n, p),
                comm_time: comm.time(n, p) + 1e-5 * diameter,
                mem_bytes: mem.aggregate(n, p),
            });
        }
    }
    out
}

fn bench_interp(c: &mut Criterion) {
    let grid = synth_grid();
    c.bench_function("predictor_build_4x4", |b| {
        b.iter(|| PerfPredictor::from_measurements(std::hint::black_box(&grid)))
    });
    let pred = PerfPredictor::from_measurements(&grid);
    c.bench_function("predictor_query", |b| {
        b.iter(|| {
            std::hint::black_box(
                pred.compute_time(1e8, 32768.0)
                    + pred.comm_time(1e8, 20.0)
                    + pred.memory(1e8, 32768.0),
            )
        })
    });
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
