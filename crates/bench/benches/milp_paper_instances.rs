//! Criterion bench: solver time on the paper's scheduling instances.
//!
//! §5.3 reports CPLEX 12.6.1 solve times of 0.17–1.36 s across all the
//! paper's instances. This bench times our from-scratch solver on the same
//! instances (aggregate form); the reproduction claim is "well inside the
//! paper's envelope".
//!
//! Each instance is swept over worker-thread counts (1 / 2 / 4, see
//! `docs/SOLVER.md` for the determinism contract). Before timing, one
//! un-timed solve per thread count prints the solver telemetry
//! ([`milp::SolveStats`]) and asserts the parallel objective is bitwise
//! identical to the serial one.

use bench::scale::paper_quoted;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insitu_core::aggregate::solve_aggregate_counts;
use insitu_types::{ResourceConfig, ScheduleProblem, GIB};
use milp::SolveOptions;

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

fn opts_with(threads: usize) -> SolveOptions {
    SolveOptions {
        threads,
        ..SolveOptions::default()
    }
}

fn bench_instances(c: &mut Criterion) {
    let mut g = c.benchmark_group("milp_paper_instances");
    let cases: Vec<(&str, ScheduleProblem)> = vec![
        (
            "table5_10pct",
            ScheduleProblem::new(
                paper_quoted::waterions_table5(),
                ResourceConfig::from_total_threshold(1000, 64.69, 1024.0 * GIB, GIB),
            )
            .unwrap(),
        ),
        (
            "table6_100s",
            ScheduleProblem::new(
                paper_quoted::rhodopsin_table6(),
                ResourceConfig::from_total_threshold(1000, 100.0, 1024.0 * GIB, GIB),
            )
            .unwrap(),
        ),
        (
            "table8_weighted",
            ScheduleProblem::new(
                paper_quoted::flash_table8([2.0, 1.0, 2.0]),
                ResourceConfig::from_total_threshold(1000, 43.5, 1024.0 * GIB, GIB),
            )
            .unwrap(),
        ),
    ];
    for (name, problem) in cases {
        // one un-timed telemetry pass per thread count, checking the
        // parallel solves reproduce the serial objective bitwise
        let serial = solve_aggregate_counts(&problem, &opts_with(1)).unwrap();
        for threads in THREAD_SWEEP {
            let agg = solve_aggregate_counts(&problem, &opts_with(threads)).unwrap();
            assert_eq!(
                agg.objective.to_bits(),
                serial.objective.to_bits(),
                "{name}: parallel objective diverged at {threads} threads"
            );
            println!("  {name} [{threads} thr]: {}", agg.stats.summary());
        }
        for threads in THREAD_SWEEP {
            let opts = opts_with(threads);
            g.bench_with_input(
                BenchmarkId::new(name, threads),
                &problem,
                |b, problem| {
                    b.iter(|| {
                        solve_aggregate_counts(std::hint::black_box(problem), &opts).unwrap()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_instances
}
criterion_main!(benches);
