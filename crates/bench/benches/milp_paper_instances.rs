//! Criterion bench: solver time on the paper's scheduling instances.
//!
//! §5.3 reports CPLEX 12.6.1 solve times of 0.17–1.36 s across all the
//! paper's instances. This bench times our from-scratch solver on the same
//! instances (aggregate form); the reproduction claim is "well inside the
//! paper's envelope".

use bench::scale::paper_quoted;
use criterion::{criterion_group, criterion_main, Criterion};
use insitu_core::aggregate::solve_aggregate_counts;
use insitu_types::{ResourceConfig, ScheduleProblem, GIB};
use milp::SolveOptions;

fn bench_instances(c: &mut Criterion) {
    let mut g = c.benchmark_group("milp_paper_instances");
    let cases: Vec<(&str, ScheduleProblem)> = vec![
        (
            "table5_10pct",
            ScheduleProblem::new(
                paper_quoted::waterions_table5(),
                ResourceConfig::from_total_threshold(1000, 64.69, 1024.0 * GIB, GIB),
            )
            .unwrap(),
        ),
        (
            "table6_100s",
            ScheduleProblem::new(
                paper_quoted::rhodopsin_table6(),
                ResourceConfig::from_total_threshold(1000, 100.0, 1024.0 * GIB, GIB),
            )
            .unwrap(),
        ),
        (
            "table8_weighted",
            ScheduleProblem::new(
                paper_quoted::flash_table8([2.0, 1.0, 2.0]),
                ResourceConfig::from_total_threshold(1000, 43.5, 1024.0 * GIB, GIB),
            )
            .unwrap(),
        ),
    ];
    for (name, problem) in cases {
        g.bench_function(name, |b| {
            b.iter(|| {
                solve_aggregate_counts(std::hint::black_box(&problem), &SolveOptions::default())
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_instances
}
criterion_main!(benches);
