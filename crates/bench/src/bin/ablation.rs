//! Reproduction binary: prints the design-choice ablation report.
fn main() {
    println!("{}", bench::experiments::ablation::run().report);
}
