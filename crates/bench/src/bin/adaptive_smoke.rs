//! CI smoke test for closed-loop adaptive rescheduling: reproduces the
//! budget-blowout scenario of `docs/ADAPTIVE.md` end to end. A 40-step
//! run is scheduled from a stale calibration (the "hog" analysis is
//! modeled at 1 ms/analyze but spins 20 ms); the static schedule blows
//! the 90 ms budget, the adaptive coupler catches it at the first hog
//! run, re-solves, and finishes within budget. The exported timeline
//! must carry the `reschedule` event and the adopted schedule must be
//! certified.
//!
//! Usage: `adaptive_smoke [--out DIR]` (default `target/`). Exits
//! non-zero (panics) on any failure; prints `adaptive smoke OK` on
//! success — staged in `scripts/verify.sh`.

use insitu_core::adaptive::{AdaptiveConfig, TriggerReason};
use insitu_core::advisor::Advisor;
use insitu_core::attribution::attribute_with_predicted;
use insitu_core::runtime::{
    run_coupled, run_coupled_adaptive, Analysis, CouplerConfig, Simulator, EVENT_RESCHEDULE,
};
use insitu_types::json::Value;
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem};
use std::sync::Arc;

const STEPS: usize = 40;
const BUDGET_S: f64 = 0.090;
const HOG_MODELED_S: f64 = 0.001;
const HOG_ACTUAL_S: f64 = 0.020;
const LITE_S: f64 = 0.0002;

struct TickSim(usize);
impl Simulator for TickSim {
    type State = usize;
    fn state(&self) -> &usize {
        &self.0
    }
    fn advance(&mut self) {
        self.0 += 1;
    }
}

struct Spin {
    name: &'static str,
    analyze_s: f64,
}
impl Analysis<usize> for Spin {
    fn name(&self) -> &str {
        self.name
    }
    fn analyze(&mut self, _state: &usize) {
        let sw = perfmodel::Stopwatch::start();
        while sw.elapsed() < self.analyze_s {}
    }
}

fn spinners() -> Vec<Box<dyn Analysis<usize>>> {
    vec![
        Box::new(Spin { name: "hog", analyze_s: HOG_ACTUAL_S }),
        Box::new(Spin { name: "lite", analyze_s: LITE_S }),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "target".into());

    let problem = ScheduleProblem::new(
        vec![
            AnalysisProfile::new("hog")
                .with_compute(HOG_MODELED_S, 0.0)
                .with_interval(4),
            AnalysisProfile::new("lite")
                .with_compute(LITE_S, 0.0)
                .with_interval(4),
        ],
        ResourceConfig::from_total_threshold(STEPS, BUDGET_S, 1e9, 1e9),
    )
    .expect("valid problem");

    // the static schedule is PROVED under the (stale) model
    let rec = Advisor::default().recommend(&problem).expect("solvable");
    assert_eq!(rec.verdict, certify::Verdict::Proved);
    assert_eq!(rec.counts, vec![10, 10], "scenario baseline moved");

    // --- static leg: blows the budget in reality ---
    let static_report = run_coupled(
        &mut TickSim(0),
        &mut spinners(),
        &rec.schedule,
        &CouplerConfig { steps: STEPS, sim_output_every: 0 },
    );
    let static_total = static_report.total_analysis_time();
    assert!(
        static_total > BUDGET_S,
        "static leg must exceed the {BUDGET_S} s budget, spent {static_total}"
    );

    // --- adaptive leg: same workload, recovers within budget ---
    let tracer = Arc::new(obs::Tracer::with_capacity(16 * 1024));
    let handle = obs::TraceHandle::new(tracer.clone());
    let adaptive = run_coupled_adaptive(
        &mut TickSim(0),
        &mut spinners(),
        &problem,
        &rec.schedule,
        &CouplerConfig { steps: STEPS, sim_output_every: 0 },
        &AdaptiveConfig::default(),
        &handle,
    )
    .expect("adaptive run");
    let adaptive_total = adaptive.run.total_analysis_time();
    assert!(
        adaptive_total <= BUDGET_S,
        "adaptive leg must stay within {BUDGET_S} s, spent {adaptive_total}"
    );
    assert!(adaptive.adopted_count() >= 1, "no reschedule adopted");
    let first = &adaptive.reschedules[0];
    assert_eq!(first.step, 4, "first hog run trips the budget trigger");
    assert_eq!(first.reason, TriggerReason::Budget);
    assert!(
        first.verdict == "PROVED" || first.verdict == "FEASIBLE-ONLY",
        "adopted schedule must be certified, got {}",
        first.verdict
    );
    assert!(
        adaptive.schedule.per_analysis[0].count() < 10,
        "the hog must be throttled"
    );

    // --- the reschedule event survives export and re-parse ---
    let timeline = tracer.timeline();
    timeline.validate().expect("well-formed timeline");
    assert!(timeline.events_named(EVENT_RESCHEDULE).count() >= 1);
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let tl_path = format!("{out_dir}/adaptive_smoke.timeline.json");
    std::fs::write(&tl_path, timeline.to_json_string()).expect("write timeline");
    let doc = Value::parse(&std::fs::read_to_string(&tl_path).unwrap())
        .expect("timeline JSON re-parses");
    let exported_reschedules = doc
        .get("events")
        .and_then(Value::as_array)
        .expect("events array")
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some(EVENT_RESCHEDULE))
        .count();
    assert!(exported_reschedules >= 1, "reschedule event lost in export");

    // --- reschedule/v1 records and drift vs the spliced prediction ---
    let rs_path = format!("{out_dir}/adaptive_smoke.reschedules.json");
    std::fs::write(&rs_path, adaptive.reschedules_json().to_string_pretty())
        .expect("write reschedule records");
    let rs = Value::parse(&std::fs::read_to_string(&rs_path).unwrap()).expect("re-parses");
    assert!(rs.as_array().is_some_and(|a| !a.is_empty()));

    let drift = attribute_with_predicted(
        &problem,
        &adaptive.schedule,
        &timeline,
        &adaptive.predicted,
    )
    .expect("drift report");
    assert!(
        !drift.per_step.last().unwrap().threshold_violated,
        "adaptive run must end within the pro-rated budget: {}",
        drift.summary()
    );

    println!(
        "adaptive smoke OK: static {static_total:.3}s > {BUDGET_S}s, adaptive \
         {adaptive_total:.3}s <= {BUDGET_S}s after {} reschedule(s) ({}) -> {tl_path}, {rs_path}",
        adaptive.adopted_count(),
        first.verdict,
    );
}
