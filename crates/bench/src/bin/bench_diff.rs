//! Compares two `BENCH_*.json` artifacts and flags metric regressions.
//!
//! Usage: `bench_diff BASELINE.json CANDIDATE.json [--threshold PCT]`
//!
//! Every numeric leaf of both files is flattened into a dotted path
//! (`points[2].requests_per_sec`, `latency.points[0].classes.hit.p99`, …)
//! and matched by path. The direction a metric is allowed to move is
//! inferred from its name:
//!
//! * **higher is better** — path ends in `per_sec`, `rate`, `speedup`,
//!   or `hits`: a drop beyond the threshold is a regression;
//! * **lower is better** — path ends in `wall_s`, `wall_ms`, `_ms`,
//!   `latency_s`, `p50`/`p90`/`p99`, `nodes`, `evictions`, or `misses`:
//!   a rise beyond the threshold is a regression;
//! * everything else (counts, seeds, schema constants) is informational
//!   and never fails the diff.
//!
//! The threshold is a relative percentage (default 20). Exit status is 0
//! when no tracked metric regresses beyond it, 1 otherwise, 2 on usage or
//! parse errors. Comparing a file against itself always exits 0 — the
//! `verify.sh` smoke stage relies on that.

use bench::table::{cells, TextTable};
use insitu_types::json::Value;

/// Which way a metric is allowed to move without counting as a regression.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
    Informational,
}

/// Infers the regression direction from the final path segment.
fn direction(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    let leaf = leaf.split('[').next().unwrap_or(leaf);
    let higher = ["per_sec", "rate", "speedup", "hits"];
    let lower = [
        "wall_s",
        "wall_ms",
        "merge_ms",
        "analysis_ms",
        "step_ms",
        "latency_s",
        "p50",
        "p90",
        "p99",
        "nodes",
        "evictions",
        "misses",
    ];
    if higher.iter().any(|h| leaf.ends_with(h)) {
        Direction::HigherIsBetter
    } else if lower.iter().any(|l| leaf.ends_with(l)) {
        Direction::LowerIsBetter
    } else {
        Direction::Informational
    }
}

/// Recursively flattens every numeric leaf into `(dotted.path, value)`.
fn flatten(prefix: &str, v: &Value, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Number(n) => out.push((prefix.to_string(), *n)),
        Value::Object(map) => {
            for (k, child) in map {
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&p, child, out);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), child, out);
            }
        }
        _ => {}
    }
}

fn load(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let value = Value::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_diff: {path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let mut leaves = Vec::new();
    flatten("", &value, &mut leaves);
    leaves.sort_by(|a, b| a.0.cmp(&b.0));
    leaves
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold_pct = 20.0_f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold_pct = args
                    .get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("bench_diff: --threshold needs a number");
                        std::process::exit(2);
                    });
            }
            other if other.starts_with("--") => {
                eprintln!(
                    "unknown argument {other}; usage: bench_diff BASELINE.json CANDIDATE.json [--threshold PCT]"
                );
                std::process::exit(2);
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_diff BASELINE.json CANDIDATE.json [--threshold PCT]");
        std::process::exit(2);
    }

    let baseline = load(&paths[0]);
    let candidate = load(&paths[1]);
    let base: std::collections::BTreeMap<&str, f64> =
        baseline.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let cand: std::collections::BTreeMap<&str, f64> =
        candidate.iter().map(|(k, v)| (k.as_str(), *v)).collect();

    let mut table = TextTable::new(&["metric", "baseline", "candidate", "delta%", "verdict"]);
    let mut regressions = 0usize;
    let mut compared = 0usize;
    let mut only_base = 0usize;

    for (path, b) in &base {
        let Some(c) = cand.get(path) else {
            only_base += 1;
            continue;
        };
        compared += 1;
        let dir = direction(path);
        let delta_pct = if *b == 0.0 {
            if *c == 0.0 {
                0.0
            } else {
                f64::INFINITY.copysign(*c)
            }
        } else {
            (*c - *b) / b.abs() * 100.0
        };
        let regressed = match dir {
            Direction::HigherIsBetter => delta_pct < -threshold_pct,
            Direction::LowerIsBetter => delta_pct > threshold_pct,
            Direction::Informational => false,
        };
        let verdict = if regressed {
            regressions += 1;
            "REGRESSION"
        } else if dir == Direction::Informational {
            "info"
        } else {
            "ok"
        };
        // Only surface rows that moved or regressed; identical runs stay quiet.
        if delta_pct.abs() > 1e-9 || regressed {
            table.row(&cells([
                path,
                &format!("{b:.6}"),
                &format!("{c:.6}"),
                &format!("{delta_pct:+.2}"),
                &verdict,
            ]));
        }
    }
    let only_cand = cand.keys().filter(|k| !base.contains_key(*k)).count();

    println!(
        "bench_diff: {} vs {} ({} metrics compared, threshold {:.1}%)",
        paths[0], paths[1], compared, threshold_pct
    );
    if only_base > 0 || only_cand > 0 {
        println!(
            "note: {only_base} metric(s) only in baseline, {only_cand} only in candidate (shape change, not scored)"
        );
    }
    let rendered = table.render();
    if rendered.lines().count() > 2 {
        println!("{rendered}");
    } else {
        println!("no metric changed.");
    }
    if regressions > 0 {
        println!("{regressions} regression(s) beyond {threshold_pct:.1}%");
        std::process::exit(1);
    }
    println!("no regressions beyond {threshold_pct:.1}%");
}
