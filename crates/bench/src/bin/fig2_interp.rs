//! Reproduction binary: prints the fig2_interp experiment report.
fn main() {
    println!("{}", bench::experiments::fig2_interp::run().report);
}
