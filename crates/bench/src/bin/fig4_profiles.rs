//! Reproduction binary: prints the fig4_profiles experiment report.
fn main() {
    println!("{}", bench::experiments::fig4_profiles::run().report);
}
