//! Reproduction binary: prints the fig5_moldable experiment report.
fn main() {
    println!("{}", bench::experiments::fig5_moldable::run().report);
}
