//! End-to-end observability smoke test, run as a `verify.sh` stage.
//!
//! Usage: `obs_smoke [--out DIR]` (artifacts default to the current
//! directory).
//!
//! Replays the smoke request stream through a fully-instrumented
//! [`service::SolveService`] at 1 and 4 workers and asserts the
//! observability contracts that the ISSUE pins down:
//!
//! 1. the wall-clock-free `service.request.objective` histogram snapshot
//!    is **bitwise identical** across worker counts (`obs/hist/v1`);
//! 2. trace ids are derived from fingerprints + stream position, so the
//!    per-request trace-id sequence is identical across worker counts;
//! 3. every span recorded during the batch carries a resolvable
//!    `trace_id`, and the Chrome export routes each request to its own
//!    named lane (plus the always-present `dropped_records` metadata);
//! 4. a forced certification reject produces a parseable `flightrec/v1`
//!    post-mortem naming the offending fingerprint and verdict;
//! 5. the solver's search certificate renders to a `milp/searchtrace/v1`
//!    document that round-trips through its own JSON.
//!
//! Artifacts written to `--out`: `obs_smoke_timeline.json`,
//! `obs_smoke_timeline.chrome.json`, `obs_smoke_flightrec.json`,
//! `obs_smoke_searchtrace.json` — the first and last are `trace_view`
//! inputs, which `verify.sh` renders as its next stage.

use bench::experiments::service_bench::{stream, STREAM_SMOKE};
use insitu_types::json::Value;
use insitu_types::{AnalysisProfile, ResourceConfig, ResponseSource, ScheduleProblem, Schedule};
use service::{CacheEntry, ServiceConfig, SolveService};
use std::sync::Arc;

fn traced_service(cache_capacity: usize) -> (SolveService, Arc<obs::Tracer>) {
    let tracer = Arc::new(obs::Tracer::with_capacity(1 << 16));
    let svc = SolveService::new(ServiceConfig {
        cache_capacity,
        ..ServiceConfig::default()
    })
    .with_observability(
        Arc::new(obs::Registry::new()),
        obs::TraceHandle::new(tracer.clone()),
    );
    (svc, tracer)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| ".".into());

    let requests = stream(&STREAM_SMOKE);
    println!(
        "obs_smoke: {} requests, workers 1 vs 4, artifacts -> {out_dir}",
        requests.len()
    );

    // --- 1+2+3: determinism + lanes across worker counts -------------
    let mut runs = Vec::new();
    for workers in [1usize, 4] {
        let (svc, tracer) = traced_service(STREAM_SMOKE.cache_capacity);
        let replies = svc.process_batch(&requests, workers);
        assert!(
            replies.iter().all(|r| r.is_ok()),
            "smoke stream must be fully solvable"
        );
        let snap = svc.registry().snapshot();
        let objective_hist = snap
            .hist("service.request.objective")
            .expect("objective histogram registered")
            .to_json_string();
        let tl = tracer.timeline();
        assert_eq!(tl.dropped, 0, "smoke tracer must not overflow");
        tl.validate().expect("timeline is structurally sound");
        assert!(
            tl.spans.iter().all(|s| s.trace_id.is_some()),
            "every span recorded during the batch must carry a trace id"
        );
        let cert = replies
            .iter()
            .flatten()
            .find_map(|r| r.certificate.clone());
        runs.push((workers, objective_hist, tl, cert));
    }
    let (_, serial_hist, serial_tl, cert) = &runs[0];
    let (_, parallel_hist, parallel_tl, _) = &runs[1];
    assert_eq!(
        serial_hist, parallel_hist,
        "objective histogram must be bitwise identical across worker counts"
    );
    assert_eq!(
        serial_tl.trace_ids(),
        parallel_tl.trace_ids(),
        "trace-id set must be identical across worker counts"
    );
    println!(
        "PASS determinism: objective hist bitwise-identical, {} trace ids match at 1 vs 4 workers",
        serial_tl.trace_ids().len()
    );

    let chrome = serial_tl.to_chrome_trace_string();
    for t in serial_tl.trace_ids() {
        let lane = format!("request {}", obs::trace_id_hex(t));
        assert!(chrome.contains(&lane), "chrome export missing lane {lane}");
    }
    assert!(chrome.contains("\"name\":\"dropped_records\""));
    println!(
        "PASS chrome lanes: {} per-request lanes + dropped_records metadata",
        serial_tl.trace_ids().len()
    );

    // --- 4: forced certify-reject dumps flightrec/v1 ------------------
    let mk = |names_ct: &[(&str, f64)]| -> ScheduleProblem {
        ScheduleProblem::new(
            names_ct
                .iter()
                .map(|&(n, ct)| {
                    AnalysisProfile::new(n)
                        .with_compute(ct, 0.0)
                        .with_interval(10)
                        .with_output(0.1, 0.0, 1)
                })
                .collect(),
            ResourceConfig::from_total_threshold(100, 8.0, 1e9, 1e9),
        )
        .unwrap()
    };
    let (svc, _tracer) = traced_service(16);
    let target = mk(&[("rdf", 0.5), ("msd", 1.0)]);
    let decoy = mk(&[("a", 0.9), ("b", 1.3), ("c", 0.2)]);
    let d = svc.solve(&decoy).expect("decoy solves");
    svc.inject_cache_entry_for_test(
        certify::fingerprint(&target),
        Arc::new(CacheEntry {
            problem: decoy.clone(),
            counts: vec![0; 3],
            output_counts: vec![0; 3],
            schedule: Schedule::empty(3),
            objective: d.objective,
            certificate: d.certificate.clone().expect("fresh solve certifies"),
            nodes: d.nodes,
            hint_accepted: false,
            solved_warm: false,
        }),
    );
    let r = svc.solve(&target).expect("service recovers from the reject");
    assert_eq!(r.source, ResponseSource::Fresh, "reject must fall back to a fresh solve");
    let dump = svc
        .last_flight_dump()
        .expect("certify reject leaves a flight dump");
    let v = Value::parse(&dump).expect("dump is valid JSON");
    assert_eq!(v.get("schema").and_then(Value::as_str), Some("flightrec/v1"));
    assert_eq!(v.get("reason").and_then(Value::as_str), Some("certify-reject"));
    assert_eq!(v.get("verdict").and_then(Value::as_str), Some("INVALID"));
    assert_eq!(
        v.get("fingerprint").and_then(Value::as_str),
        Some(certify::fingerprint(&target).to_hex().as_str())
    );
    assert!(!v.get("entries").and_then(Value::as_array).unwrap().is_empty());
    println!("PASS flightrec: forced certify-reject dumped parseable flightrec/v1");

    // --- 5: search trace from a real workload certificate -------------
    let cert = cert.as_ref().expect("smoke stream includes a fresh certified solve");
    let trace = milp::SearchTrace::from_certificate(cert, 64);
    let trace_json = trace.to_json_string();
    let round = milp::SearchTrace::from_json(&trace_json).expect("searchtrace round-trips");
    assert_eq!(&round, &trace);
    println!(
        "PASS searchtrace: {} nodes ({} sampled) round-trip {}",
        trace.total_nodes,
        trace.nodes.len(),
        milp::SEARCHTRACE_SCHEMA
    );

    // --- artifacts -----------------------------------------------------
    let write = |name: &str, body: &str| {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, format!("{body}\n")).unwrap_or_else(|e| {
            eprintln!("obs_smoke: cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    };
    write("obs_smoke_timeline.json", &serial_tl.to_json_string());
    write("obs_smoke_timeline.chrome.json", &chrome);
    write("obs_smoke_flightrec.json", &dump);
    write("obs_smoke_searchtrace.json", &trace_json);
    println!("obs_smoke: all observability contracts hold");
}
