//! Runs every table/figure reproduction and prints the combined report.
fn main() {
    println!("{}", bench::experiments::run_all());
}
