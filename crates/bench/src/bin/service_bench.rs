//! Solve-service throughput benchmark: replays a Zipf request stream
//! against a fresh [`service::SolveService`] at each worker count and
//! writes `BENCH_service.json` (schema documented in `EXPERIMENTS.md`).
//!
//! Usage: `service_bench [--smoke] [--out PATH]`
//!
//! `--smoke` runs the reduced CI grid; `--out` overrides the JSON path
//! (default `BENCH_service.json` in the current directory).

use bench::experiments::service_bench::{run, STREAM_FULL, STREAM_SMOKE, WORKERS_FULL, WORKERS_SMOKE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_service.json".into());
    if let Some(bad) = args
        .iter()
        .enumerate()
        .find(|&(i, a)| {
            a != "--smoke" && a != "--out" && !(i > 0 && args[i - 1] == "--out")
        })
        .map(|(_, a)| a)
    {
        eprintln!("unknown argument {bad}; usage: service_bench [--smoke] [--out PATH]");
        std::process::exit(2);
    }

    let outcome = if smoke {
        run(&WORKERS_SMOKE, &STREAM_SMOKE)
    } else {
        run(&WORKERS_FULL, &STREAM_FULL)
    };
    println!("{}", outcome.report);
    let json = outcome.to_json().to_string_pretty();
    std::fs::write(&out, json + "\n").expect("write BENCH_service.json");
    if let (Some(first), Some(last)) = (outcome.points.first(), outcome.points.last()) {
        println!(
            "hit rate {:.3}; {:.0} req/s at {} workers vs {:.0} at {} -> {out}",
            last.hit_rate,
            last.requests_per_sec,
            last.workers,
            first.requests_per_sec,
            first.workers,
        );
    }
}
