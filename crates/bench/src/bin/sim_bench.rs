//! Simulation-kernel benchmark: mdsim + amrsim step and analysis kernels
//! over (system size × thread count). Writes `BENCH_sim.json` (schema
//! documented in `EXPERIMENTS.md`) and prints the report table.
//!
//! Usage: `sim_bench [--smoke] [--out PATH]`
//!
//! `--smoke` runs the reduced CI grid; `--out` overrides the JSON path
//! (default `BENCH_sim.json` in the current directory).

use bench::experiments::sim_bench::{
    run, AMR_SIZES_FULL, AMR_SIZES_SMOKE, MD_SIZES_FULL, MD_SIZES_SMOKE, THREADS_FULL,
    THREADS_SMOKE,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".into());
    if let Some(bad) = args
        .iter()
        .enumerate()
        .find(|&(i, a)| {
            a != "--smoke"
                && a != "--out"
                && !(i > 0 && args[i - 1] == "--out")
        })
        .map(|(_, a)| a)
    {
        eprintln!("unknown argument {bad}; usage: sim_bench [--smoke] [--out PATH]");
        std::process::exit(2);
    }

    let outcome = if smoke {
        run(&MD_SIZES_SMOKE, &AMR_SIZES_SMOKE, &THREADS_SMOKE)
    } else {
        run(&MD_SIZES_FULL, &AMR_SIZES_FULL, &THREADS_FULL)
    };
    println!("{}", outcome.report);
    let json = outcome.to_json().to_string_pretty();
    std::fs::write(&out, json + "\n").expect("write BENCH_sim.json");
    let max_t = outcome.points.iter().map(|p| p.threads).max().unwrap_or(1);
    println!(
        "largest instances at {max_t} threads: md {:.2}x, amr {:.2}x -> {out}",
        outcome.speedup_largest("md", max_t).unwrap_or(0.0),
        outcome.speedup_largest("amr", max_t).unwrap_or(0.0),
    );

    // unified sink: rebuild per-kernel telemetry from the sweep and print
    // one registry snapshot (same names a traced coupled run reports)
    let registry = obs::Registry::new();
    let mut kernels = insitu_types::KernelTelemetry::new();
    for p in &outcome.points {
        let (step_name, analysis_name) = if p.proxy == "md" {
            ("md.force", "md.rdf")
        } else {
            ("hydro.step", "hydro.vorticity")
        };
        for (name, r) in [(step_name, &p.step_kernel), (analysis_name, &p.analysis_kernel)] {
            for _ in 0..r.calls {
                // KernelTelemetry::record accumulates; spread the totals
                // evenly so calls and sums land exactly
                kernels.record(
                    name,
                    r.threads,
                    r.chunks,
                    r.wall_s / r.calls.max(1) as f64,
                    r.merge_s / r.calls.max(1) as f64,
                );
            }
        }
        registry.observe(&format!("bench.{}.step_ms", p.proxy), p.step_ms);
        registry.observe(&format!("bench.{}.analysis_ms", p.proxy), p.analysis_ms);
    }
    kernels.export_into("bench.kernel", &registry);
    println!("\nunified telemetry registry:");
    print!("{}", registry.snapshot().table());
}
