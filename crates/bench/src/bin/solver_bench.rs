//! Engine benchmark: sparse revised simplex vs the dense-tableau oracle
//! on the paper-shaped `(Steps, |A|)` sweep, plus the branching and cut
//! ablations. Writes `BENCH_milp.json` (schema documented in
//! `EXPERIMENTS.md`) and prints the report tables.
//!
//! Usage: `solver_bench [--smoke] [--check-cuts] [--out PATH]`
//!
//! `--smoke` runs the reduced CI grid; `--check-cuts` exits nonzero
//! unless the cut ablation's total cuts-on node count is no larger than
//! cuts-off (the CI regression gate in `scripts/verify.sh`); `--out`
//! overrides the JSON path (default `BENCH_milp.json` in the current
//! directory).

use bench::experiments::solver_bench::{
    geomean_node_reduction, run, ABLATION_FULL_GRID, ABLATION_SMOKE_GRID, CUTS_FULL_GRID,
    CUTS_SMOKE_GRID, FULL_GRID, SMOKE_GRID,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_cuts = args.iter().any(|a| a == "--check-cuts");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_milp.json".into());
    if let Some(bad) = args
        .iter()
        .enumerate()
        .find(|&(i, a)| {
            a != "--smoke"
                && a != "--check-cuts"
                && a != "--out"
                && !(i > 0 && args[i - 1] == "--out")
        })
        .map(|(_, a)| a)
    {
        eprintln!(
            "unknown argument {bad}; usage: solver_bench [--smoke] [--check-cuts] [--out PATH]"
        );
        std::process::exit(2);
    }

    let grid: &[(usize, usize)] = if smoke { &SMOKE_GRID } else { &FULL_GRID };
    let ablation: &[(usize, usize)] = if smoke {
        &ABLATION_SMOKE_GRID
    } else {
        &ABLATION_FULL_GRID
    };
    let cuts_grid: &[(usize, usize)] = if smoke {
        &CUTS_SMOKE_GRID
    } else {
        &CUTS_FULL_GRID
    };
    let outcome = run(grid, ablation, cuts_grid);
    println!("{}", outcome.report);
    let json = outcome.to_json().to_string_pretty();
    std::fs::write(&out, json + "\n").expect("write BENCH_milp.json");
    let largest = outcome.points.last().expect("non-empty grid");
    println!(
        "largest instance (Steps={}, |A|={}): LP speedup {:.1}x -> {out}",
        largest.steps,
        largest.analyses,
        largest.lp_speedup()
    );
    if let Some(flagship) = outcome.branching.last() {
        println!(
            "flagship ablation (Steps={}, |A|={}): node ratio {:.1}x, wall ratio {:.1}x",
            flagship.steps,
            flagship.analyses,
            flagship.node_ratio(),
            flagship.wall_ratio()
        );
    }
    println!(
        "cut ablation geomean node reduction @ Steps>=64: {:.2}x",
        geomean_node_reduction(&outcome.cuts)
    );
    if check_cuts {
        let off: usize = outcome.cuts.iter().map(|c| c.off.nodes).sum();
        let on: usize = outcome.cuts.iter().map(|c| c.root.nodes).sum();
        if on > off {
            eprintln!("--check-cuts: cuts-on explored {on} nodes > cuts-off {off}");
            std::process::exit(1);
        }
        println!("--check-cuts: cuts-on nodes {on} <= cuts-off {off}");
    }

    // unified sink: both engines' sweep totals through one registry (same
    // milp.* names SolveStats::export_into uses for a single solve)
    let registry = obs::Registry::new();
    for p in &outcome.points {
        for (engine, run) in [("revised", &p.revised), ("dense", &p.dense)] {
            registry.add(&format!("milp.{engine}.nodes"), run.nodes as u64);
            registry.add(&format!("milp.{engine}.pivots"), run.total_pivots as u64);
            registry.observe(&format!("milp.{engine}.milp_wall_ms"), run.milp_wall_ms);
            registry.observe(&format!("milp.{engine}.lp_wall_ms"), run.lp_wall_ms);
        }
        registry.add(
            "milp.lp.refactorizations",
            p.revised.refactorizations as u64,
        );
        registry.observe("milp.lp.max_eta_len", p.revised.max_eta_len as f64);
        registry.observe("milp.lp.ftran_s", p.revised.ftran_ms / 1e3);
        registry.observe("milp.lp.btran_s", p.revised.btran_ms / 1e3);
    }
    // cut-ablation totals, same milp.cuts.* names SolveStats::export_into
    // uses for a single solve (Root-policy runs; node cuts from Full)
    for c in &outcome.cuts {
        registry.add("milp.cuts.gomory", c.root.gomory_generated as u64);
        registry.add("milp.cuts.cover", c.root.cover_generated as u64);
        registry.add("milp.cuts.applied", c.root.cuts_applied as u64);
        registry.add("milp.cuts.aged_out", c.root.cuts_aged_out as u64);
        registry.add("milp.cuts.node", c.full.node_cuts as u64);
        registry.observe("milp.cuts.separation_s", c.root.separation_ms / 1e3);
        registry.observe("milp.cuts.root_gap_closed", c.root.root_gap_closed);
    }
    println!("\nunified telemetry registry:");
    print!("{}", registry.snapshot().table());
}
