//! Engine benchmark: sparse revised simplex vs the dense-tableau oracle
//! on the paper-shaped `(Steps, |A|)` sweep. Writes `BENCH_milp.json`
//! (schema documented in `EXPERIMENTS.md`) and prints the report table.
//!
//! Usage: `solver_bench [--smoke] [--out PATH]`
//!
//! `--smoke` runs the reduced CI grid; `--out` overrides the JSON path
//! (default `BENCH_milp.json` in the current directory).

use bench::experiments::solver_bench::{run, FULL_GRID, SMOKE_GRID};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_milp.json".into());
    if let Some(bad) = args
        .iter()
        .enumerate()
        .find(|&(i, a)| {
            a != "--smoke"
                && a != "--out"
                && !(i > 0 && args[i - 1] == "--out")
        })
        .map(|(_, a)| a)
    {
        eprintln!("unknown argument {bad}; usage: solver_bench [--smoke] [--out PATH]");
        std::process::exit(2);
    }

    let grid: &[(usize, usize)] = if smoke { &SMOKE_GRID } else { &FULL_GRID };
    let outcome = run(grid);
    println!("{}", outcome.report);
    let json = outcome.to_json().to_string_pretty();
    std::fs::write(&out, json + "\n").expect("write BENCH_milp.json");
    let largest = outcome.points.last().expect("non-empty grid");
    println!(
        "largest instance (Steps={}, |A|={}): LP speedup {:.1}x -> {out}",
        largest.steps,
        largest.analyses,
        largest.lp_speedup()
    );
}
