//! Engine benchmark: sparse revised simplex vs the dense-tableau oracle
//! on the paper-shaped `(Steps, |A|)` sweep. Writes `BENCH_milp.json`
//! (schema documented in `EXPERIMENTS.md`) and prints the report table.
//!
//! Usage: `solver_bench [--smoke] [--out PATH]`
//!
//! `--smoke` runs the reduced CI grid; `--out` overrides the JSON path
//! (default `BENCH_milp.json` in the current directory).

use bench::experiments::solver_bench::{
    run, ABLATION_FULL_GRID, ABLATION_SMOKE_GRID, FULL_GRID, SMOKE_GRID,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_milp.json".into());
    if let Some(bad) = args
        .iter()
        .enumerate()
        .find(|&(i, a)| {
            a != "--smoke"
                && a != "--out"
                && !(i > 0 && args[i - 1] == "--out")
        })
        .map(|(_, a)| a)
    {
        eprintln!("unknown argument {bad}; usage: solver_bench [--smoke] [--out PATH]");
        std::process::exit(2);
    }

    let grid: &[(usize, usize)] = if smoke { &SMOKE_GRID } else { &FULL_GRID };
    let ablation: &[(usize, usize)] = if smoke {
        &ABLATION_SMOKE_GRID
    } else {
        &ABLATION_FULL_GRID
    };
    let outcome = run(grid, ablation);
    println!("{}", outcome.report);
    let json = outcome.to_json().to_string_pretty();
    std::fs::write(&out, json + "\n").expect("write BENCH_milp.json");
    let largest = outcome.points.last().expect("non-empty grid");
    println!(
        "largest instance (Steps={}, |A|={}): LP speedup {:.1}x -> {out}",
        largest.steps,
        largest.analyses,
        largest.lp_speedup()
    );
    if let Some(flagship) = outcome.branching.last() {
        println!(
            "flagship ablation (Steps={}, |A|={}): node ratio {:.1}x, wall ratio {:.1}x",
            flagship.steps,
            flagship.analyses,
            flagship.node_ratio(),
            flagship.wall_ratio()
        );
    }

    // unified sink: both engines' sweep totals through one registry (same
    // milp.* names SolveStats::export_into uses for a single solve)
    let registry = obs::Registry::new();
    for p in &outcome.points {
        for (engine, run) in [("revised", &p.revised), ("dense", &p.dense)] {
            registry.add(&format!("milp.{engine}.nodes"), run.nodes as u64);
            registry.add(&format!("milp.{engine}.pivots"), run.total_pivots as u64);
            registry.observe(&format!("milp.{engine}.milp_wall_ms"), run.milp_wall_ms);
            registry.observe(&format!("milp.{engine}.lp_wall_ms"), run.lp_wall_ms);
        }
        registry.add(
            "milp.lp.refactorizations",
            p.revised.refactorizations as u64,
        );
        registry.observe("milp.lp.max_eta_len", p.revised.max_eta_len as f64);
        registry.observe("milp.lp.ftran_s", p.revised.ftran_ms / 1e3);
        registry.observe("milp.lp.btran_s", p.revised.btran_ms / 1e3);
    }
    println!("\nunified telemetry registry:");
    print!("{}", registry.snapshot().table());
}
