//! Reproduction binary: prints the table4_postproc experiment report.
fn main() {
    println!("{}", bench::experiments::table4_postproc::run().report);
}
