//! Reproduction binary: prints the table5_threshold experiment report.
fn main() {
    println!("{}", bench::experiments::table5_threshold::run().report);
}
