//! Reproduction binary: prints the Table-6 (total threshold) report.
fn main() {
    println!("{}", bench::experiments::table6_total::run().report);
}
