//! Reproduction binary: prints the Table-7 (output time) report.
fn main() {
    println!("{}", bench::experiments::table7_output::run().report);
}
