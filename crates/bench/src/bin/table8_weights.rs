//! Reproduction binary: prints the table8_weights experiment report.
fn main() {
    println!("{}", bench::experiments::table8_weights::run().report);
}
