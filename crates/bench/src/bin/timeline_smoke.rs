//! CI smoke test for the unified tracing layer: runs a small coupled
//! md run with tracing attached, exports the timeline in **both**
//! formats (`obs/timeline/v1` JSON and Chrome trace events), re-parses
//! the files and validates them, and checks the drift report's
//! predicted series against `certify`'s exact Eq. 2–4 replay bitwise.
//!
//! Usage: `timeline_smoke [--out DIR]` (default `target/`). Exits
//! non-zero (panics) on any validation failure; prints `timeline smoke
//! OK` on success — staged in `scripts/verify.sh`.

use insitu_core::attribution::attribute;
use insitu_core::runtime::{run_coupled_traced, Analysis, CouplerConfig, SPAN_STEP};
use insitu_types::json::Value;
use insitu_types::{
    AnalysisProfile, AnalysisSchedule, ResourceConfig, Schedule, ScheduleProblem,
};
use mdsim::analysis::{a1_hydronium_rdf, a2_ion_rdf};
use mdsim::{water_ions, BuilderParams, System};
use std::sync::Arc;

const ATOMS: usize = 2_000;
const STEPS: usize = 24;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "target".into());

    // --- a small but real coupled run, fully traced ---
    let mut sys = water_ions(&BuilderParams {
        n_particles: ATOMS,
        ..Default::default()
    });
    let tracer = Arc::new(obs::Tracer::with_capacity(16 * 1024));
    let handle = obs::TraceHandle::new(tracer.clone());
    sys.tracer = handle.clone();

    let problem = ScheduleProblem::new(
        vec![
            AnalysisProfile::new("a1_hydronium_rdf")
                .with_compute(5e-3, 8e6)
                .with_output(1e-3, 2e6, 1)
                .with_interval(4),
            AnalysisProfile::new("a2_ion_rdf")
                .with_compute(5e-3, 8e6)
                .with_output(1e-3, 2e6, 1)
                .with_interval(8),
        ],
        ResourceConfig::from_total_threshold(STEPS, 10.0, 2e9, 1e9),
    )
    .expect("valid problem");
    let mut schedule = Schedule::empty(2);
    schedule.per_analysis[0] = AnalysisSchedule::new(vec![4, 8, 12, 16, 20, 24], vec![12, 24]);
    schedule.per_analysis[1] = AnalysisSchedule::new(vec![8, 16, 24], vec![24]);

    let mut analyses: Vec<Box<dyn Analysis<System>>> =
        vec![Box::new(a1_hydronium_rdf()), Box::new(a2_ion_rdf())];
    let report = run_coupled_traced(
        &mut sys,
        &mut analyses,
        &schedule,
        &CouplerConfig {
            steps: STEPS,
            sim_output_every: 0,
        },
        &handle,
    );
    assert!(report.sim_time > 0.0, "simulation did not run");
    assert!(
        report.kernel_telemetry.get("md.force").is_some(),
        "per-kernel attribution missing from the run report"
    );

    let timeline = tracer.timeline();
    timeline.validate().expect("well-formed timeline");
    assert_eq!(timeline.dropped, 0, "smoke run must not overflow the ring");

    // --- export both formats and re-parse from disk ---
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let json_path = format!("{out_dir}/timeline_smoke.timeline.json");
    let chrome_path = format!("{out_dir}/timeline_smoke.chrome.json");
    std::fs::write(&json_path, timeline.to_json_string()).expect("write timeline JSON");
    std::fs::write(&chrome_path, timeline.to_chrome_trace_string()).expect("write chrome trace");

    let doc = Value::parse(&std::fs::read_to_string(&json_path).unwrap())
        .expect("timeline JSON re-parses");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some(obs::timeline::TIMELINE_SCHEMA),
        "schema marker"
    );
    let spans = doc
        .get("spans")
        .and_then(Value::as_array)
        .expect("spans array");
    assert_eq!(spans.len(), timeline.spans.len(), "span count round-trips");
    for s in spans {
        for key in ["id", "name", "tid", "start_ns", "dur_ns", "tags"] {
            assert!(s.get(key).is_some(), "span field {key} present");
        }
    }

    let chrome = Value::parse(&std::fs::read_to_string(&chrome_path).unwrap())
        .expect("chrome trace re-parses");
    let events = chrome.as_array().expect("chrome trace is a JSON array");
    // spans + events as X/i records; "M" metadata records (lane names,
    // the always-present dropped_records count) ride along on top
    let data_events = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) != Some("M"))
        .count();
    assert_eq!(data_events, timeline.spans.len() + timeline.events.len());
    assert!(
        events
            .iter()
            .any(|e| e.get("name").and_then(Value::as_str) == Some("dropped_records")),
        "dropped_records metadata present"
    );
    for e in events {
        assert!(e.get("name").is_some() && e.get("ph").is_some());
        let ph = e.get("ph").and_then(Value::as_str).unwrap();
        assert!(ph == "X" || ph == "i" || ph == "M", "unexpected phase {ph}");
        if ph != "M" {
            assert!(e.get("ts").is_some());
        }
        if ph == "X" {
            assert!(e.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
        }
    }

    // --- step spans: one per step, monotonic and non-overlapping ---
    let mut steps: Vec<_> = timeline.spans_named(SPAN_STEP).collect();
    steps.sort_by_key(|s| s.start_ns);
    assert_eq!(steps.len(), STEPS, "one step span per simulation step");
    for (k, pair) in steps.windows(2).enumerate() {
        assert_eq!(pair[0].tag_i64("step"), Some(k as i64 + 1), "step order");
        assert!(
            pair[1].start_ns >= pair[0].start_ns + pair[0].dur_ns,
            "step spans overlap: step {} ends at {} but step {} starts at {}",
            k + 1,
            pair[0].start_ns + pair[0].dur_ns,
            k + 2,
            pair[1].start_ns
        );
    }

    // --- drift report: predicted side must equal certify's exact replay ---
    let drift = attribute(&problem, &schedule, &timeline).expect("drift report");
    let series = certify::replay_time_series(&problem, &schedule).expect("exact replay");
    assert_eq!(drift.per_step.len(), STEPS);
    for d in &drift.per_step {
        assert_eq!(
            d.predicted_cum.to_bits(),
            series[d.step].to_f64().to_bits(),
            "predicted series diverges from certify at step {}",
            d.step
        );
    }
    let drift_json = drift.to_json().to_string_pretty();
    Value::parse(&drift_json).expect("drift JSON re-parses");

    println!(
        "timeline smoke OK: {} spans ({} steps), {} chrome events, drift bitwise-consistent \
         -> {json_path}, {chrome_path}",
        timeline.spans.len(),
        STEPS,
        events.len()
    );
}
