//! Renders recorded trace artifacts as a text tree and a Chrome export.
//!
//! Usage: `trace_view INPUT.json [--chrome OUT.json]`
//!
//! The input schema is auto-detected:
//!
//! * `obs/timeline/v1` — a tracer timeline (written by `obs_smoke`, the
//!   runtime's `--trace` flags, or a flight-recorder dump's sibling):
//!   printed as a span tree with durations, trace ids and tags. A
//!   warning line reports the exact dropped-record count whenever the
//!   tracer overflowed, because a lossy tree is easy to misread as a
//!   complete one.
//! * `milp/searchtrace/v1` — a branch-&-bound search trace (see
//!   `milp::SearchTrace`): printed via its own text-tree renderer.
//!
//! `--chrome OUT.json` additionally writes the Chrome trace-event array
//! for `chrome://tracing` / `ui.perfetto.dev`; for timelines this is the
//! per-request-lane export including the `dropped_records` metadata.

use insitu_types::json::Value;
use obs::{EventRecord, SpanRecord, TagValue, Timeline};
use std::fmt::Write as _;

/// Interns a parsed string so it can live in the `&'static str` fields of
/// [`SpanRecord`]/[`EventRecord`]. A viewer process renders one file and
/// exits, so the leak is bounded by the input size.
fn intern(s: &str) -> &'static str {
    Box::leak(s.to_string().into_boxed_str())
}

fn parse_trace_id(v: Option<&Value>) -> Option<u64> {
    v.and_then(Value::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
}

fn parse_tags(v: Option<&Value>) -> Vec<(&'static str, TagValue)> {
    let Some(obj) = v.and_then(Value::as_object) else {
        return Vec::new();
    };
    obj.iter()
        .map(|(k, val)| {
            let tag = match val {
                Value::Bool(b) => TagValue::Bool(*b),
                Value::String(s) => TagValue::Str(s.clone()),
                // JSON numbers are all f64; show whole values as ints
                Value::Number(n) if n.fract() == 0.0 && n.abs() < 9e15 => {
                    TagValue::Int(*n as i64)
                }
                Value::Number(n) => TagValue::Float(*n),
                other => TagValue::Str(other.to_string()),
            };
            (intern(k), tag)
        })
        .collect()
}

/// Rebuilds a [`Timeline`] from its `obs/timeline/v1` JSON document.
fn timeline_from_json(v: &Value) -> Result<Timeline, String> {
    let num = |o: &Value, key: &str| -> Result<f64, String> {
        o.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("missing number `{key}`"))
    };
    let spans = v
        .get("spans")
        .and_then(Value::as_array)
        .ok_or("missing `spans` array")?
        .iter()
        .map(|s| -> Result<SpanRecord, String> {
            Ok(SpanRecord {
                id: num(s, "id")? as u64,
                parent: s.get("parent").and_then(Value::as_f64).map(|p| p as u64),
                name: intern(
                    s.get("name")
                        .and_then(Value::as_str)
                        .ok_or("span missing `name`")?,
                ),
                tid: num(s, "tid")? as u32,
                start_ns: num(s, "start_ns")? as u64,
                dur_ns: num(s, "dur_ns")? as u64,
                trace_id: parse_trace_id(s.get("trace_id")),
                tags: parse_tags(s.get("tags")),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let events = v
        .get("events")
        .and_then(Value::as_array)
        .ok_or("missing `events` array")?
        .iter()
        .map(|e| -> Result<EventRecord, String> {
            Ok(EventRecord {
                parent: e.get("parent").and_then(Value::as_f64).map(|p| p as u64),
                name: intern(
                    e.get("name")
                        .and_then(Value::as_str)
                        .ok_or("event missing `name`")?,
                ),
                tid: num(e, "tid")? as u32,
                ts_ns: num(e, "ts_ns")? as u64,
                trace_id: parse_trace_id(e.get("trace_id")),
                tags: parse_tags(e.get("tags")),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Timeline {
        spans,
        events,
        dropped: num(v, "dropped")? as u64,
    })
}

fn tag_suffix(tags: &[(&'static str, TagValue)]) -> String {
    let mut out = String::new();
    for (k, v) in tags {
        let _ = match v {
            TagValue::Int(i) => write!(out, " {k}={i}"),
            TagValue::Float(f) => write!(out, " {k}={f}"),
            TagValue::Str(s) => write!(out, " {k}={s:?}"),
            TagValue::Bool(b) => write!(out, " {k}={b}"),
        };
    }
    out
}

/// Renders the timeline span tree: roots first (record order), children
/// sorted by open time, box-drawing connectors, events attached to their
/// parent span.
fn render_timeline(tl: &Timeline) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} spans, {} events, {} request lane(s)",
        obs::TIMELINE_SCHEMA,
        tl.spans.len(),
        tl.events.len(),
        tl.trace_ids().len(),
    );
    if tl.dropped > 0 {
        let _ = writeln!(
            out,
            "warning: {} record(s) dropped (tracer buffer overflow) — the tree below is incomplete",
            tl.dropped
        );
    }
    fn line(out: &mut String, prefix: &str, connector: &str, s: &SpanRecord) {
        let _ = write!(
            out,
            "{prefix}{connector}{} [{:.3} ms]",
            s.name,
            s.dur_ns as f64 / 1e6
        );
        if let Some(t) = s.trace_id {
            let _ = write!(out, " trace={}", obs::trace_id_hex(t));
        }
        out.push_str(&tag_suffix(&s.tags));
        out.push('\n');
    }
    fn walk(out: &mut String, tl: &Timeline, id: u64, prefix: &str) {
        let mut kids = tl.children_of(id);
        kids.sort_by_key(|s| (s.start_ns, s.id));
        let events: Vec<&EventRecord> =
            tl.events.iter().filter(|e| e.parent == Some(id)).collect();
        let total = kids.len() + events.len();
        for (i, e) in events.iter().enumerate() {
            let last = i + 1 == total;
            let _ = write!(
                out,
                "{prefix}{}event {}",
                if last { "└─ " } else { "├─ " },
                e.name
            );
            out.push_str(&tag_suffix(&e.tags));
            out.push('\n');
        }
        for (i, k) in kids.iter().enumerate() {
            let last = events.len() + i + 1 == total;
            line(out, prefix, if last { "└─ " } else { "├─ " }, k);
            let deeper = format!("{prefix}{}", if last { "   " } else { "│  " });
            walk(out, tl, k.id, &deeper);
        }
    }
    let ids: std::collections::BTreeSet<u64> = tl.spans.iter().map(|s| s.id).collect();
    let mut roots: Vec<&SpanRecord> = tl
        .spans
        .iter()
        .filter(|s| match s.parent {
            None => true,
            // dropped parents leave orphans; promote them to roots
            Some(p) => !ids.contains(&p),
        })
        .collect();
    roots.sort_by_key(|s| (s.start_ns, s.id));
    for r in roots {
        line(&mut out, "", "", r);
        walk(&mut out, tl, r.id, "");
    }
    for e in tl.events.iter().filter(|e| {
        e.parent.is_none() || e.parent.is_some_and(|p| !ids.contains(&p))
    }) {
        let _ = write!(&mut out, "event {}", e.name);
        out.push_str(&tag_suffix(&e.tags));
        out.push('\n');
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut chrome_out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--chrome" => {
                i += 1;
                chrome_out = args.get(i).cloned().or_else(|| {
                    eprintln!("trace_view: --chrome needs an output path");
                    std::process::exit(2);
                });
            }
            other if other.starts_with("--") => {
                eprintln!("unknown argument {other}; usage: trace_view INPUT.json [--chrome OUT.json]");
                std::process::exit(2);
            }
            other => {
                if input.replace(other.to_string()).is_some() {
                    eprintln!("usage: trace_view INPUT.json [--chrome OUT.json]");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    let Some(input) = input else {
        eprintln!("usage: trace_view INPUT.json [--chrome OUT.json]");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&input).unwrap_or_else(|e| {
        eprintln!("trace_view: cannot read {input}: {e}");
        std::process::exit(2);
    });
    let value = Value::parse(&text).unwrap_or_else(|e| {
        eprintln!("trace_view: {input} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let schema = value.get("schema").and_then(Value::as_str).unwrap_or("");
    let chrome = match schema {
        obs::TIMELINE_SCHEMA => {
            let tl = timeline_from_json(&value).unwrap_or_else(|e| {
                eprintln!("trace_view: malformed {}: {e}", obs::TIMELINE_SCHEMA);
                std::process::exit(2);
            });
            print!("{}", render_timeline(&tl));
            tl.to_chrome_trace_string()
        }
        milp::SEARCHTRACE_SCHEMA => {
            let trace = milp::SearchTrace::from_json(&text).unwrap_or_else(|e| {
                eprintln!("trace_view: malformed {}: {e}", milp::SEARCHTRACE_SCHEMA);
                std::process::exit(2);
            });
            print!("{}", trace.to_text_tree());
            trace.to_chrome_trace_string()
        }
        other => {
            eprintln!(
                "trace_view: unsupported schema `{other}` (expected {} or {})",
                obs::TIMELINE_SCHEMA,
                milp::SEARCHTRACE_SCHEMA
            );
            std::process::exit(2);
        }
    };
    if let Some(path) = chrome_out {
        std::fs::write(&path, chrome).unwrap_or_else(|e| {
            eprintln!("trace_view: cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("chrome trace written to {path}");
    }
}
