//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Plunging** in branch & bound vs pure best-first (node counts),
//! 2. **log-log-log interpolation** vs raw linear interpolation for
//!    paper-scale extrapolation,
//! 3. **Optimal MILP schedule** vs the greedy heuristic vs the paper's
//!    status-quo fixed-frequency baseline, across budgets.

use crate::table::TextTable;
use insitu_core::baseline::{feasible_objective, fixed_frequency, greedy};
use insitu_core::solve_aggregate;
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem};
use milp::{solve, Model, SolveOptions};
use perfmodel::BilinearGrid;

/// Outcome of the three ablations.
#[derive(Debug)]
pub struct Outcome {
    /// `(nodes with plunging, nodes pure best-first)`.
    pub bnb_nodes: (usize, usize),
    /// `(relative error log-space, relative error raw-linear)` at a 4x
    /// extrapolation of a power-law kernel.
    pub interp_err: (f64, f64),
    /// Rows of `(budget, optimal, greedy, fixed-frequency-objective)`;
    /// fixed frequency is `None` when it blows the budget.
    pub baseline_rows: Vec<(f64, f64, f64, Option<f64>)>,
    /// Printable report.
    pub report: String,
}

/// The instance class that motivated plunging: a time-indexed scheduling
/// formulation whose LP bound sits on a wide fractional plateau above the
/// integer optimum. Without an incumbent nothing prunes, and pure
/// best-first explores the plateau breadth-first (measured: 30k+ nodes,
/// still no incumbent); a single dive reaches an integral leaf in ~30
/// nodes and the integral-objective gap then prunes the plateau.
fn hard_instance() -> Model {
    let p = ScheduleProblem::new(
        vec![
            AnalysisProfile::new("a")
                .with_compute(1.0, 0.0)
                .with_output(0.5, 0.0, 1)
                .with_interval(4),
            AnalysisProfile::new("b")
                .with_compute(3.0, 0.0)
                .with_output(0.5, 0.0, 1)
                .with_interval(6)
                .with_weight(2.0),
        ],
        ResourceConfig::from_total_threshold(24, 12.0, 1e9, 1e9),
    )
    .expect("valid");
    insitu_core::formulation::build_exact(&p).0
}

fn scheduling_problem(budget: f64) -> ScheduleProblem {
    ScheduleProblem::new(
        vec![
            AnalysisProfile::new("cheap")
                .with_compute(0.5, 0.0)
                .with_output(0.1, 0.0, 1)
                .with_interval(50),
            AnalysisProfile::new("mid")
                .with_compute(2.0, 0.0)
                .with_output(0.5, 0.0, 1)
                .with_interval(100)
                .with_weight(2.0),
            AnalysisProfile::new("dear")
                .with_compute(9.0, 0.0)
                .with_output(3.0, 0.0, 1)
                .with_interval(100)
                .with_weight(3.0),
        ],
        ResourceConfig::from_total_threshold(1000, budget, 1e12, 1e9),
    )
    .unwrap()
}

/// Runs all three ablations.
pub fn run() -> Outcome {
    // --- 1. plunging ---
    // rounding is disabled in both arms so the ablation isolates how each
    // search order *finds* its first incumbent: that is exactly what
    // plunging is for (with rounding on, both arms start with the same
    // incumbent and explore nearly identical trees)
    let m = hard_instance();
    let base = SolveOptions {
        rounding_heuristic: false,
        abs_gap: 0.999, // integral objective
        max_nodes: 400,
        ..SolveOptions::default()
    };
    let with = solve(&m, &base).expect("plunging solves this");
    let bnb_nodes = match solve(
        &m,
        &SolveOptions {
            plunge: false,
            ..base
        },
    ) {
        Ok(sol) => {
            assert!((with.objective - sol.objective).abs() < 1e-9);
            (with.nodes, sol.nodes)
        }
        // pure best-first commonly exhausts the node budget here — report
        // the cap as a lower bound on its cost
        Err(milp::SolveError::NodeLimit { nodes, .. }) => (with.nodes, nodes),
        Err(e) => panic!("unexpected solver error: {e}"),
    };

    // --- 2. interpolation space ---
    let f = |n: f64, p: f64| 2e-6 * n / p;
    let xs = [1e6, 4e6, 16e6];
    let ys = [512.0, 2048.0, 8192.0];
    let z: Vec<f64> = ys
        .iter()
        .flat_map(|&y| xs.iter().map(move |&x| f(x, y)))
        .collect();
    let raw = BilinearGrid::new(xs.to_vec(), ys.to_vec(), z.clone());
    let log = BilinearGrid::with_scales(xs.to_vec(), ys.to_vec(), z, true, true, true);
    // 4x beyond the grid in both axes: the paper-scale extrapolation regime
    let (nq, pq) = (64e6, 32768.0);
    let truth = f(nq, pq);
    let interp_err = (
        (log.query(nq, pq) - truth).abs() / truth,
        (raw.query(nq, pq) - truth).abs() / truth,
    );

    // --- 3. optimal vs heuristics ---
    let opts = SolveOptions {
        abs_gap: 0.999,
        ..SolveOptions::default()
    };
    let mut baseline_rows = Vec::new();
    for budget in [10.0, 30.0, 60.0, 120.0, 240.0] {
        let p = scheduling_problem(budget);
        let (_, optimal) = solve_aggregate(&p, &opts).expect("solvable");
        let g = greedy(&p);
        let gobj = feasible_objective(&p, &g).expect("greedy feasible");
        let ff = fixed_frequency(&p, 100, 1);
        let fobj = feasible_objective(&p, &ff);
        baseline_rows.push((budget, optimal, gobj, fobj));
    }

    // --- report ---
    let mut t = TextTable::new(&["budget (s)", "optimal", "greedy", "fixed every-100"]);
    for &(b, o, g, f) in &baseline_rows {
        t.row(&[
            format!("{b}"),
            format!("{o}"),
            format!("{g}"),
            f.map_or("infeasible".into(), |v| format!("{v}")),
        ]);
    }
    let report = format!(
        "B&B nodes on the plateau instance: plunging {} vs pure best-first {} (node cap = lower bound)\n\
         Power-law extrapolation (4x beyond grid): log-space err {:.2e} vs raw linear {:.1}%\n\
         Scheduling objective vs baselines:\n{}",
        bnb_nodes.0,
        bnb_nodes.1,
        interp_err.0,
        interp_err.1 * 100.0,
        t.render()
    );
    Outcome {
        bnb_nodes,
        interp_err,
        baseline_rows,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plunging_explores_far_fewer_nodes() {
        let o = run();
        assert!(
            o.bnb_nodes.0 * 4 <= o.bnb_nodes.1,
            "plunging {} not clearly better than best-first {}",
            o.bnb_nodes.0,
            o.bnb_nodes.1
        );
    }

    #[test]
    fn log_space_extrapolation_wins() {
        let o = run();
        assert!(o.interp_err.0 < 1e-9, "power laws exact in log space");
        assert!(o.interp_err.1 > 0.5, "raw linear is badly wrong at 4x");
    }

    #[test]
    fn optimal_dominates_heuristics() {
        let o = run();
        for &(budget, opt, greedy, fixed) in &o.baseline_rows {
            assert!(greedy <= opt + 1e-6, "greedy beat optimal at {budget}");
            if let Some(f) = fixed {
                assert!(f <= opt + 1e-6, "fixed beat optimal at {budget}");
            }
        }
        // the fixed-frequency status quo must be infeasible somewhere —
        // that is the paper's core motivation
        assert!(
            o.baseline_rows.iter().any(|&(_, _, _, f)| f.is_none()),
            "fixed frequency should blow at least one budget"
        );
        // and greedy must be strictly sub-optimal somewhere
        assert!(
            o.baseline_rows.iter().any(|&(_, o, g, _)| g < o - 1e-6),
            "greedy should lose somewhere: {:?}",
            o.baseline_rows
        );
    }
}
