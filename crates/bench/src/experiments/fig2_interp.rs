//! Figure 2: bilinear-interpolation prediction accuracy.
//!
//! The paper measures a few (problem size × process count) points, fills
//! the rest by bilinear interpolation, and reports <6 % compute-time and
//! <8 % communication-time prediction error. We do the same with the real
//! RDF kernel: measure it at a coarse grid of *local* problem sizes (a
//! rank's share of the atoms), train the predictor, and validate against
//! held-out measurements at intermediate scales. Communication times come
//! from the machine model across the BG/Q partition diameters.

use crate::table::TextTable;
use machine::{Machine, Torus};
use mdsim::analysis::a1_hydronium_rdf;
use mdsim::{water_ions, BuilderParams};
use perfmodel::{KernelMeasurement, PerfPredictor, PredictionErrors, Stopwatch};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

static CACHE: Mutex<Option<HashMap<usize, f64>>> = Mutex::new(None);

fn cache_lock() -> MutexGuard<'static, Option<HashMap<usize, f64>>> {
    CACHE.lock().expect("cache lock")
}

/// Seeds the measurement cache — lets tests drive the full pipeline with
/// deterministic "measurements" instead of live (noisy) timings.
pub fn seed_measurement(local_atoms: usize, seconds: f64) {
    cache_lock()
        .get_or_insert_with(HashMap::new)
        .insert(local_atoms, seconds);
}

/// The set of rank-local sizes `run_with_reps` will query, exposed so
/// tests can seed all of them.
pub fn local_sizes_queried() -> Vec<usize> {
    let machine = Machine::mira();
    let mut out = Vec::new();
    for (sizes, nodes) in [
        (TRAIN_SIZES.as_slice(), TRAIN_NODES.as_slice()),
        (HOLDOUT_SIZES.as_slice(), HOLDOUT_NODES.as_slice()),
    ] {
        for &n in nodes {
            let procs = machine.partition(n, 16).expect("block").ranks() as f64;
            for &s in sizes {
                out.push(((s / procs) as usize).max(256));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

const TRAIN_SIZES: [f64; 3] = [128.0e6, 256.0e6, 512.0e6];
const TRAIN_NODES: [usize; 3] = [128, 512, 2048];
const HOLDOUT_SIZES: [f64; 2] = [192.0e6, 384.0e6];
const HOLDOUT_NODES: [usize; 2] = [256, 1024];

/// Measures the RDF accumulate time at a given local atom count (min of
/// `reps`), memoized per local size so the same rank-local workload
/// always maps to one consistent measurement (as a profiling database
/// would).
fn measure_rdf(local_atoms: usize, reps: usize) -> f64 {
    let mut guard = cache_lock();
    let cache = guard.get_or_insert_with(std::collections::HashMap::new);
    if let Some(&t) = cache.get(&local_atoms) {
        return t;
    }
    let sys = water_ions(&BuilderParams {
        n_particles: local_atoms,
        ..Default::default()
    });
    let mut rdf = a1_hydronium_rdf();
    rdf.accumulate(&sys); // warm-up
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let sw = Stopwatch::start();
            rdf.accumulate(&sys);
            sw.elapsed()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // min-of-reps: the most repeatable statistic for short timings (noise
    // is strictly additive), which is what a profiling database would keep
    let best = samples[0];
    cache.insert(local_atoms, best);
    best
}

fn grid(total_sizes: &[f64], node_counts: &[usize], machine: &Machine, reps: usize) -> Vec<KernelMeasurement> {
    let mut out = Vec::new();
    for &nodes in node_counts {
        let part = machine.partition(nodes, 16).expect("BG/Q block");
        let procs = part.ranks() as f64;
        let diameter = part.topology.diameter() as f64;
        for &n in total_sizes {
            let local = (n / procs) as usize;
            let compute = measure_rdf(local.max(256), reps);
            let comm = machine.allreduce_time(3.0 * 100.0 * 8.0, &part);
            // memory: histogram + cell-list bookkeeping per rank, aggregated
            let mem = (3.0 * 100.0 * 8.0 + 32.0 * local as f64) * procs;
            out.push(KernelMeasurement {
                problem_size: n,
                procs,
                diameter,
                compute_time: compute,
                comm_time: comm,
                mem_bytes: mem,
            });
        }
    }
    out
}

/// Experiment result.
#[derive(Debug)]
pub struct Outcome {
    /// Compute-time prediction errors.
    pub compute: PredictionErrors,
    /// Communication-time prediction errors.
    pub comm: PredictionErrors,
    /// Memory prediction errors.
    pub memory: PredictionErrors,
    /// Printable report.
    pub report: String,
}

/// Runs the experiment.
pub fn run() -> Outcome {
    run_with_reps(7)
}

/// Runs with a given number of timing repetitions (tests shrink this).
pub fn run_with_reps(reps: usize) -> Outcome {
    let machine = Machine::mira();
    // train: coarse grid, validate: intermediate points. Sizes and node
    // counts are chosen so every rank-local share stays >= ~4k atoms —
    // below that, fixed cell-list overheads bend the power law exactly
    // like sub-second kernels polluted the paper's own measurements.
    let train = grid(&TRAIN_SIZES, &TRAIN_NODES, &machine, reps);
    let holdout = grid(&HOLDOUT_SIZES, &HOLDOUT_NODES, &machine, reps);
    let predictor = PerfPredictor::from_measurements(&train);
    let (compute, comm, memory) = predictor.validate(&holdout);

    let mut t = TextTable::new(&["quantity", "mean err %", "max err %", "paper bound %"]);
    t.row(&[
        "compute time".into(),
        format!("{:.2}", compute.mean_percent()),
        format!("{:.2}", compute.max_percent()),
        "< 6".into(),
    ]);
    t.row(&[
        "communication time".into(),
        format!("{:.2}", comm.mean_percent()),
        format!("{:.2}", comm.max_percent()),
        "< 8".into(),
    ]);
    t.row(&[
        "memory".into(),
        format!("{:.2}", memory.mean_percent()),
        format!("{:.2}", memory.max_percent()),
        "(none quoted)".into(),
    ]);
    let report = format!(
        "RDF kernel measured at {} train points (real executions of the\n\
         rank-local share), validated on {} held-out points; communication\n\
         via the BG/Q torus model over partition diameters {:?}.\n{}",
        train.len(),
        holdout.len(),
        TRAIN_NODES
            .iter()
            .map(|&n| Torus::bgq_partition(n).unwrap().diameter())
            .collect::<Vec<_>>(),
        t.render()
    );
    Outcome {
        compute,
        comm,
        memory,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_errors_in_paper_regime() {
        // Seed the measurement cache with a deterministic kernel law plus
        // 2% deterministic "measurement noise" — the test then checks the
        // full pipeline (grid building, diameters, holdout validation)
        // without depending on live wall-clock timings, which are noisy on
        // shared CI boxes. The binary performs live measurements.
        for local in local_sizes_queried() {
            let noise = 1.0 + 0.02 * ((local as f64).sqrt().sin());
            seed_measurement(local, 4.1e-6 * local as f64 * noise);
        }
        let o = run_with_reps(1);
        assert!(
            o.compute.max_percent() < 6.0,
            "compute err {}%",
            o.compute.max_percent()
        );
        // the comm model is analytic: interpolation over diameters must be
        // well inside the paper's 8%
        assert!(o.comm.max_percent() < 8.0, "comm err {}%", o.comm.max_percent());
        assert!(o.memory.max_percent() < 12.0, "mem err {}%", o.memory.max_percent());
        assert!(!o.compute.is_empty());
    }
}
