//! Figure 4: relative execution-time and memory profiles of all analyses.
//!
//! The paper's Figure 4 is a qualitative scatter of the ten analyses on a
//! (time × memory) plane: A4 in the heavy corner, R1/F3 in the trivial
//! corner, the RDFs and norms in between. We reproduce it from the
//! paper-scale modeled profiles and render an ASCII scatter plus the raw
//! numbers.

use crate::scale::modeled;
use crate::table::TextTable;
use insitu_types::units::{fmt_bytes, fmt_seconds};
use insitu_types::AnalysisProfile;
use machine::Machine;

/// One analysis point on the (time, memory) plane.
#[derive(Debug, Clone)]
pub struct Point {
    /// Analysis name.
    pub name: String,
    /// Per-analysis-step time (ct + amortized ot), seconds.
    pub time: f64,
    /// Peak memory footprint, bytes.
    pub memory: f64,
}

/// Experiment result.
#[derive(Debug)]
pub struct Outcome {
    /// All ten analyses.
    pub points: Vec<Point>,
    /// Printable report.
    pub report: String,
}

fn point(p: &AnalysisProfile) -> Point {
    Point {
        name: p.name.clone(),
        time: p.compute_time + p.output_time,
        memory: p.fixed_mem + p.compute_mem + p.output_mem + p.step_mem * 100.0,
    }
}

/// Runs the experiment.
pub fn run() -> Outcome {
    let machine = Machine::mira();
    let p16k = machine.partition_for_ranks(16_384).expect("partition");
    let p32k = machine.partition_for_ranks(32_768).expect("partition");
    let mut points: Vec<Point> = Vec::new();
    points.extend(modeled::waterions(100e6, &p16k, &machine).iter().map(point));
    points.extend(modeled::rhodopsin(1e9, &p32k, &machine).iter().map(point));
    points.extend(
        modeled::flash(4096.0 * 4096.0, &p16k, &machine)
            .iter()
            .map(point),
    );

    // numeric table
    let mut t = TextTable::new(&["analysis", "time/step", "memory"]);
    for p in &points {
        t.row(&[p.name.clone(), fmt_seconds(p.time), fmt_bytes(p.memory)]);
    }

    // ASCII scatter (log-log), 48x14
    const W: usize = 48;
    const H: usize = 14;
    let lt: Vec<f64> = points.iter().map(|p| p.time.max(1e-6).log10()).collect();
    let lm: Vec<f64> = points.iter().map(|p| p.memory.max(1.0).log10()).collect();
    let (t0, t1) = (
        lt.iter().cloned().fold(f64::INFINITY, f64::min),
        lt.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let (m0, m1) = (
        lm.iter().cloned().fold(f64::INFINITY, f64::min),
        lm.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let mut canvas = vec![vec![' '; W]; H];
    let labels = ["A1", "A2", "A3", "A4", "R1", "R2", "R3", "F1", "F2", "F3"];
    for (i, p) in points.iter().enumerate() {
        let x = (((lt[i] - t0) / (t1 - t0).max(1e-9)) * (W - 3) as f64) as usize;
        let y = (((lm[i] - m0) / (m1 - m0).max(1e-9)) * (H - 1) as f64) as usize;
        let row = H - 1 - y;
        let label = labels.get(i).unwrap_or(&"??");
        for (k, ch) in label.chars().enumerate() {
            if x + k < W {
                canvas[row][x + k] = ch;
            }
        }
        let _ = p;
    }
    let mut scatter = String::from("memory ^ (log)  time -> (log)\n");
    for row in canvas {
        scatter.push('|');
        scatter.extend(row);
        scatter.push('\n');
    }
    scatter.push_str(&format!("+{}\n", "-".repeat(W)));

    let report = format!(
        "Per-analysis (time, memory) at paper scale (modeled from kernel\n\
         unit costs measured at {} thread(s)):\n{}\n{}",
        crate::measure::unit_costs().anchor_threads,
        t.render(),
        scatter
    );
    Outcome { points, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_profile_matches_figure4() {
        let o = run();
        assert_eq!(o.points.len(), 10);
        let by_name = |needle: &str| {
            o.points
                .iter()
                .find(|p| p.name.contains(needle))
                .unwrap_or_else(|| panic!("missing {needle}"))
        };
        let a1 = by_name("A1");
        let a4 = by_name("A4");
        let r1 = by_name("R1");
        let f1 = by_name("F1");
        let f2 = by_name("F2");
        let f3 = by_name("F3");
        // A4 sits in the heavy corner: more time AND more memory than A1
        assert!(a4.time > a1.time * 10.0);
        assert!(a4.memory > a1.memory);
        // R1 is the cheapest of the rhodopsin analyses
        assert!(r1.time < by_name("R2").time / 100.0);
        // FLASH ordering F1 > F2 > F3
        assert!(f1.time > f2.time && f2.time > f3.time);
        assert!(o.report.contains("A4"));
    }
}
