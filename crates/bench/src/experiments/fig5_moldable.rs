//! Figure 5: strong scaling of the scheduled analyses (moldable jobs).
//!
//! 100 M-atom water+ions run at five sizes, 2048 → 32 768 cores; the
//! threshold is fixed at 10 % of the (shrinking) simulation time, so the
//! analysis budget shrinks as the job scales out. A1/A2 strong-scale, so
//! they stay at frequency 10 throughout; A4 does not scale, so its
//! frequency collapses from 10 at 2 048 cores to 1 at 32 768 — that is
//! exactly the stacked-bar shape of the paper's Figure 5.
//!
//! This experiment exercises the full pipeline: measured kernel unit
//! costs → machine model → profiles → optimizer.

use crate::scale::modeled;
use crate::table::TextTable;
use insitu_core::{Advisor, AdvisorOptions};
use insitu_types::{ResourceConfig, ScheduleProblem};
use machine::Machine;

/// Paper inputs: (cores, simulation seconds per step).
pub const CORE_COUNTS: [(usize, f64); 5] = [
    (2048, 4.16),
    (4096, 2.12),
    (8192, 1.08),
    (16384, 0.61),
    (32768, 0.40),
];

/// Paper's recommended A4 frequencies at those core counts (10 → 1).
pub const PAPER_A4: [usize; 5] = [10, 8, 4, 2, 1];

/// Number of atoms in the problem.
pub const N_ATOMS: f64 = 100e6;

/// One reproduced bar of the figure.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Core count.
    pub cores: usize,
    /// Counts of (A1, A2, A4).
    pub counts: [usize; 3],
    /// Stacked per-analysis total seconds (A1, A2, A4).
    pub times: [f64; 3],
    /// Budget at this scale.
    pub budget: f64,
}

/// Experiment result.
#[derive(Debug)]
pub struct Outcome {
    /// One bar per core count.
    pub bars: Vec<Bar>,
    /// Printable report.
    pub report: String,
}

/// Runs the experiment.
pub fn run() -> Outcome {
    let machine = Machine::mira();
    let advisor = Advisor::new(AdvisorOptions::default());
    let mut bars = Vec::new();
    let mut t = TextTable::new(&[
        "cores",
        "budget (s)",
        "A1",
        "A2",
        "A4",
        "tA1 (s)",
        "tA2 (s)",
        "tA4 (s)",
        "| paper A4",
    ]);
    for (idx, &(cores, step_time)) in CORE_COUNTS.iter().enumerate() {
        let part = machine
            .partition_for_ranks(cores)
            .expect("paper core counts map to BG/Q partitions");
        let mut profiles = modeled::waterions(N_ATOMS, &part, &machine);
        // Figure 5 schedules A1, A2 and A4 (A3 is not shown)
        profiles.remove(2);
        let sim_time = step_time * 1000.0;
        let budget = 0.10 * sim_time;
        let problem = ScheduleProblem::new(
            profiles.clone(),
            ResourceConfig::from_total_threshold(
                1000,
                budget,
                machine.analysis_memory(&part, 8.0 * 1024.0f64.powi(3)),
                machine.write_bandwidth(&part, machine::StorageTier::ParallelFs),
            ),
        )
        .expect("valid problem");
        let rec = advisor.recommend(&problem).expect("solvable");
        let times: Vec<f64> = (0..3)
            .map(|i| {
                profiles[i].total_time(1000, rec.counts[i], rec.output_counts[i])
            })
            .collect();
        let bar = Bar {
            cores,
            counts: [rec.counts[0], rec.counts[1], rec.counts[2]],
            times: [times[0], times[1], times[2]],
            budget,
        };
        t.row(&[
            cores.to_string(),
            format!("{budget:.1}"),
            bar.counts[0].to_string(),
            bar.counts[1].to_string(),
            bar.counts[2].to_string(),
            format!("{:.2}", bar.times[0]),
            format!("{:.2}", bar.times[1]),
            format!("{:.2}", bar.times[2]),
            format!("| {}", PAPER_A4[idx]),
        ]);
        bars.push(bar);
    }
    let report = format!(
        "Water+ions, 100M atoms, threshold = 10% of simulation time; profiles\n\
         modeled from measured kernel unit costs + the Mira machine model.\n{}",
        t.render()
    );
    Outcome { bars, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a4_frequency_collapses_with_scale() {
        let o = run();
        assert_eq!(o.bars.len(), 5);
        // A1/A2 strong-scale: max frequency everywhere
        for b in &o.bars {
            assert_eq!(b.counts[0], 10, "A1 @ {} cores", b.cores);
            assert_eq!(b.counts[1], 10, "A2 @ {} cores", b.cores);
            // within budget
            let total: f64 = b.times.iter().sum();
            assert!(total <= b.budget * 1.001, "{total} > {}", b.budget);
        }
        let a4: Vec<usize> = o.bars.iter().map(|b| b.counts[2]).collect();
        assert!(a4.windows(2).all(|w| w[0] >= w[1]), "A4 decays: {a4:?}");
        assert!(
            a4[0] >= 5,
            "large budget at 2048 cores fits many A4 runs: {a4:?}"
        );
        assert!(a4[4] <= 2, "tight budget at 32768 cores: {a4:?}");
        assert!(a4[0] > a4[4], "the collapse is the Figure-5 story");
    }

    #[test]
    fn a4_time_is_flat_while_budget_shrinks() {
        // the paper's explanation: "the MSD analyses (A4) does not scale
        // and takes similar times on all core counts" — compared on the
        // bars that actually schedule A4 (the tightest budgets may not
        // fit a single non-scaling run)
        let o = run();
        let scheduled: Vec<&Bar> = o.bars.iter().filter(|b| b.counts[2] > 0).collect();
        assert!(scheduled.len() >= 2, "A4 runs at several scales");
        let per_run_small = scheduled[0].times[2] / scheduled[0].counts[2] as f64;
        let last = scheduled.last().unwrap();
        let per_run_large = last.times[2] / last.counts[2] as f64;
        assert!(
            (per_run_small / per_run_large - 1.0).abs() < 0.25,
            "A4 per-run time flat: {per_run_small} vs {per_run_large}"
        );
    }
}
