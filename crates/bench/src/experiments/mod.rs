//! One module per paper table/figure. Each returns a structured result
//! plus a printable report, so the `src/bin` wrappers stay thin and the
//! integration tests can assert on the *shape* of every experiment.

pub mod ablation;
pub mod fig2_interp;
pub mod fig4_profiles;
pub mod fig5_moldable;
pub mod service_bench;
pub mod sim_bench;
pub mod solver_bench;
pub mod table4_postproc;
pub mod table5_threshold;
pub mod table6_total;
pub mod table7_output;
pub mod table8_weights;

/// A reproduction section: display title + report generator.
type Section = (&'static str, fn() -> String);

/// Runs every experiment and concatenates the reports (the
/// `reproduce_all` binary).
pub fn run_all() -> String {
    let mut out = String::new();
    let sections: [Section; 9] = [
        ("Figure 2 (interpolation accuracy)", || {
            fig2_interp::run().report
        }),
        ("Figure 4 (relative analysis profiles)", || {
            fig4_profiles::run().report
        }),
        ("Table 4 (post-processing vs in-situ)", || {
            table4_postproc::run().report
        }),
        ("Table 5 (threshold % sweep)", || table5_threshold::run().report),
        ("Figure 5 (moldable jobs / strong scaling)", || {
            fig5_moldable::run().report
        }),
        ("Table 6 (total threshold sweep)", || table6_total::run().report),
        ("Table 7 (output time vs analyses)", || {
            table7_output::run().report
        }),
        ("Table 8 (importance weights)", || table8_weights::run().report),
        ("Ablations (design choices)", || ablation::run().report),
    ];
    for (title, f) in sections {
        out.push_str(&format!("\n=== {title} ===\n"));
        out.push_str(&f());
    }
    out
}
