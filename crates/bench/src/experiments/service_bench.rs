//! Solve-service throughput sweep: a Zipf-distributed request stream
//! hammers one [`service::SolveService`] at 1/4/16 worker threads.
//!
//! The stream draws from a fixed universe of distinct instances with a
//! Zipf(`s`) popularity law — a few hot instances dominate, a long tail
//! stays cold — which is the workload the instance cache is built for.
//! Every request shuffles its analysis order (the canonicalizer must
//! still hit), and a fixed fraction perturbs one compute time to
//! exercise the warm-start path. Each worker count gets a **fresh**
//! service, so hit/dedup/warm counters are comparable across the sweep.
//!
//! [`Outcome::to_json`] serializes the `bench/service-sweep/v1` schema
//! documented in `EXPERIMENTS.md` (`BENCH_service.json`). Interpret
//! `requests_per_sec` against the recorded `host_cores`: on a 1-core
//! host the worker sweep measures contention overhead only — worker
//! scaling needs real cores.

use std::collections::BTreeMap;
use std::time::Instant;

use insitu_types::json::Value;
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use service::{ServiceConfig, SolveService};

use crate::table::{cells, TextTable};

/// Worker-thread counts for the full sweep (the ISSUE's 1/4/16 grid).
pub const WORKERS_FULL: [usize; 3] = [1, 4, 16];
/// Worker-thread counts for `--smoke` (CI).
pub const WORKERS_SMOKE: [usize; 2] = [1, 4];

/// Stream shape: universe size, request count, Zipf exponent, cache.
#[derive(Debug, Clone, Copy)]
pub struct StreamParams {
    /// Number of distinct base instances requests draw from.
    pub universe: usize,
    /// Requests per worker-count run.
    pub requests: usize,
    /// Zipf popularity exponent (`w_r ∝ 1/r^s`).
    pub zipf_s: f64,
    /// Fraction of requests that perturb one compute time (near miss).
    pub near_miss: f64,
    /// Service cache capacity.
    pub cache_capacity: usize,
    /// RNG seed for universe + stream.
    pub seed: u64,
}

/// Full-run stream: 24 instances, 480 requests, hot-headed Zipf.
pub const STREAM_FULL: StreamParams = StreamParams {
    universe: 24,
    requests: 480,
    zipf_s: 1.1,
    near_miss: 0.15,
    cache_capacity: 64,
    seed: 2015_0815,
};

/// Reduced CI stream.
pub const STREAM_SMOKE: StreamParams = StreamParams {
    universe: 8,
    requests: 64,
    zipf_s: 1.1,
    near_miss: 0.15,
    cache_capacity: 32,
    seed: 2015_0815,
};

/// Outcome classes a request can resolve to, in report order.
pub const CLASSES: [&str; 4] = ["hit", "dedup", "warm", "fresh"];

/// Latency quantiles of one outcome class at one worker count.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Outcome class (`hit`/`dedup`/`warm`/`fresh`).
    pub class: &'static str,
    /// Requests that resolved to this class.
    pub count: u64,
    /// Estimated median latency (seconds).
    pub p50: f64,
    /// Estimated 90th-percentile latency (seconds).
    pub p90: f64,
    /// Estimated 99th-percentile latency (seconds).
    pub p99: f64,
}

/// One worker-count measurement.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Worker threads serving the batch.
    pub workers: usize,
    /// Requests served (== stream length).
    pub requests: u64,
    /// Cache hits.
    pub hits: u64,
    /// Requests that piggybacked on an identical in-flight solve.
    pub dedup_waits: u64,
    /// Cache misses (each one led a solve).
    pub misses: u64,
    /// Actual solver invocations.
    pub solves: u64,
    /// Solves whose incumbent was seeded from a cached neighbor.
    pub warm_starts: u64,
    /// Cache evictions.
    pub evictions: u64,
    /// `hits / requests`.
    pub hit_rate: f64,
    /// Wall time of the whole batch (seconds).
    pub wall_s: f64,
    /// Served requests per second of wall time.
    pub requests_per_sec: f64,
    /// Solver invocations per second of wall time.
    pub solves_per_sec: f64,
    /// Per-class latency quantiles (classes with zero requests omitted).
    pub latency: Vec<LatencyRow>,
    /// `obs/hist/v1` snapshot of the per-request objective histogram —
    /// wall-clock-free, so it must be bitwise identical at every worker
    /// count (asserted by [`run`]).
    pub objective_hist: String,
}

/// Sweep result.
#[derive(Debug)]
pub struct Outcome {
    /// Stream the sweep replayed.
    pub params: StreamParams,
    /// One point per worker count, ascending.
    pub points: Vec<SweepPoint>,
    /// Printable report.
    pub report: String,
}

/// Deterministic universe of distinct, solvable instances. All costs
/// are **dyadic** (multiples of 1/64) so every feasible schedule's total
/// time is an exact `f64` sum: the float solver and the exact-rational
/// certifier agree even on budget-saturating optima, and no request can
/// fail on a roundoff sliver.
fn universe(params: &StreamParams) -> Vec<ScheduleProblem> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    (0..params.universe)
        .map(|i| {
            let n = 2 + i % 3;
            let analyses = (0..n)
                .map(|j| {
                    AnalysisProfile::new(format!("a{j}"))
                        .with_compute(
                            0.5 + rng.gen_range(1..=36) as f64 / 8.0,
                            rng.gen_range(0..=8) as f64 * 1e6,
                        )
                        .with_interval(1 << rng.gen_range(0..=3u32))
                        .with_weight(rng.gen_range(1..=8) as f64 / 2.0)
                        .with_output(0.0625 * rng.gen_range(1..=4) as f64, 0.0, 1)
                })
                .collect();
            // 240 steps keeps each solve non-trivial (milliseconds, not
            // microseconds) so the sweep measures solver throughput and
            // not just cache-lock handoff
            ScheduleProblem::new(
                analyses,
                ResourceConfig::from_total_threshold(240, 48.0, 1e9, 1e9),
            )
            .expect("generated instance must validate")
        })
        .collect()
}

/// Inverse-CDF Zipf sampler over ranks `0..k` (the vendored rand shim
/// has no distributions module, so roll the CDF by hand).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(k: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(k);
        let mut total = 0.0;
        for r in 1..=k {
            total += 1.0 / (r as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The request stream: Zipf-popular bases, shuffled analysis order,
/// `near_miss` fraction with one compute time nudged. Public so tests
/// can replay exactly what the sweep replays.
pub fn stream(params: &StreamParams) -> Vec<ScheduleProblem> {
    let bases = universe(params);
    let zipf = Zipf::new(bases.len(), params.zipf_s);
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x5EED);
    (0..params.requests)
        .map(|_| {
            let mut p = bases[zipf.sample(&mut rng)].clone();
            for i in (1..p.analyses.len()).rev() {
                let j = rng.gen_range(0..=i);
                p.analyses.swap(i, j);
            }
            if rng.gen::<f64>() < params.near_miss {
                // dyadic nudge: stays exactly representable (see universe)
                let k = rng.gen_range(0..p.analyses.len());
                p.analyses[k].compute_time += rng.gen_range(1..=5) as f64 / 64.0;
            }
            p
        })
        .collect()
}

fn counter(service: &SolveService, name: &str) -> u64 {
    service.registry().snapshot().counter(name).unwrap_or(0)
}

/// Runs the sweep: one fresh service per worker count, same stream.
pub fn run(workers: &[usize], params: &StreamParams) -> Outcome {
    let requests = stream(params);
    let mut points = Vec::with_capacity(workers.len());
    for &w in workers {
        let svc = SolveService::new(ServiceConfig {
            cache_capacity: params.cache_capacity,
            ..ServiceConfig::default()
        });
        let t0 = Instant::now();
        let replies = svc.process_batch(&requests, w);
        let wall_s = t0.elapsed().as_secs_f64();
        let failed = replies.iter().filter(|r| r.is_err()).count();
        assert_eq!(failed, 0, "bench universe produced unsolvable requests");
        let served = counter(&svc, "service.requests");
        let hits = counter(&svc, "service.hits");
        let solves = counter(&svc, "service.solves");
        let snap = svc.registry().snapshot();
        let latency: Vec<LatencyRow> = CLASSES
            .iter()
            .filter_map(|&class| {
                let h = snap.hist(&format!("service.request.latency_s.{class}"))?;
                Some(LatencyRow {
                    class,
                    count: h.count,
                    p50: h.quantile(0.50).unwrap_or(0.0),
                    p90: h.quantile(0.90).unwrap_or(0.0),
                    p99: h.quantile(0.99).unwrap_or(0.0),
                })
            })
            .collect();
        let objective_hist = snap
            .hist("service.request.objective")
            .map(|h| h.to_json_string())
            .unwrap_or_default();
        points.push(SweepPoint {
            workers: w,
            requests: served,
            hits,
            dedup_waits: counter(&svc, "service.dedup_waits"),
            misses: counter(&svc, "service.misses"),
            solves,
            warm_starts: counter(&svc, "service.warm_starts"),
            evictions: counter(&svc, "service.evictions"),
            hit_rate: hits as f64 / served.max(1) as f64,
            wall_s,
            requests_per_sec: served as f64 / wall_s.max(1e-9),
            solves_per_sec: solves as f64 / wall_s.max(1e-9),
            latency,
            objective_hist,
        });
    }

    // the objective histogram depends only on the request multiset —
    // worker count, claiming order and merge order are all invisible in
    // it, so every sweep point must snapshot byte-identically
    for p in &points[1..] {
        assert_eq!(
            p.objective_hist, points[0].objective_hist,
            "objective histogram must be bitwise identical across worker counts"
        );
    }

    let mut table = TextTable::new(&[
        "workers", "requests", "hits", "dedup", "misses", "warm", "hit-rate", "req/s", "solves/s",
    ]);
    for p in &points {
        table.row(&cells([
            &p.workers,
            &p.requests,
            &p.hits,
            &p.dedup_waits,
            &p.misses,
            &p.warm_starts,
            &format!("{:.3}", p.hit_rate),
            &format!("{:.0}", p.requests_per_sec),
            &format!("{:.0}", p.solves_per_sec),
        ]));
    }
    let mut lat_table = TextTable::new(&["workers", "class", "count", "p50(s)", "p90(s)", "p99(s)"]);
    for p in &points {
        for row in &p.latency {
            lat_table.row(&cells([
                &p.workers,
                &row.class,
                &row.count,
                &format!("{:.4}", row.p50),
                &format!("{:.4}", row.p90),
                &format!("{:.4}", row.p99),
            ]));
        }
    }
    let report = format!(
        "service sweep: {} requests over {} instances, Zipf s={}, cache {}\n{}\nper-class latency quantiles (log2-bucket estimate, <2x error):\n{}",
        params.requests,
        params.universe,
        params.zipf_s,
        params.cache_capacity,
        table.render(),
        lat_table.render()
    );
    Outcome {
        params: *params,
        points,
        report,
    }
}

impl Outcome {
    /// Serializes the `bench/service-sweep/v1` schema.
    pub fn to_json(&self) -> Value {
        let points: Vec<Value> = self
            .points
            .iter()
            .map(|p| {
                let mut o = BTreeMap::new();
                o.insert("workers".into(), Value::Number(p.workers as f64));
                o.insert("requests".into(), Value::Number(p.requests as f64));
                o.insert("hits".into(), Value::Number(p.hits as f64));
                o.insert("dedup_waits".into(), Value::Number(p.dedup_waits as f64));
                o.insert("misses".into(), Value::Number(p.misses as f64));
                o.insert("solves".into(), Value::Number(p.solves as f64));
                o.insert("warm_starts".into(), Value::Number(p.warm_starts as f64));
                o.insert("evictions".into(), Value::Number(p.evictions as f64));
                o.insert("hit_rate".into(), Value::Number(p.hit_rate));
                o.insert("wall_s".into(), Value::Number(p.wall_s));
                o.insert(
                    "requests_per_sec".into(),
                    Value::Number(p.requests_per_sec),
                );
                o.insert("solves_per_sec".into(), Value::Number(p.solves_per_sec));
                Value::Object(o)
            })
            .collect();
        let latency_points: Vec<Value> = self
            .points
            .iter()
            .map(|p| {
                let mut classes = BTreeMap::new();
                for row in &p.latency {
                    let mut c = BTreeMap::new();
                    c.insert("count".into(), Value::Number(row.count as f64));
                    c.insert("p50".into(), Value::Number(row.p50));
                    c.insert("p90".into(), Value::Number(row.p90));
                    c.insert("p99".into(), Value::Number(row.p99));
                    classes.insert(row.class.to_string(), Value::Object(c));
                }
                let mut o = BTreeMap::new();
                o.insert("workers".into(), Value::Number(p.workers as f64));
                o.insert("classes".into(), Value::Object(classes));
                o.insert(
                    "objective_hist".into(),
                    Value::parse(&p.objective_hist).unwrap_or(Value::Null),
                );
                Value::Object(o)
            })
            .collect();
        let mut latency = BTreeMap::new();
        latency.insert(
            "schema".into(),
            Value::String("bench/service-latency/v1".into()),
        );
        latency.insert("points".into(), Value::Array(latency_points));
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut stream = BTreeMap::new();
        stream.insert("universe".into(), Value::Number(self.params.universe as f64));
        stream.insert("requests".into(), Value::Number(self.params.requests as f64));
        stream.insert("zipf_s".into(), Value::Number(self.params.zipf_s));
        stream.insert("near_miss".into(), Value::Number(self.params.near_miss));
        stream.insert(
            "cache_capacity".into(),
            Value::Number(self.params.cache_capacity as f64),
        );
        stream.insert("seed".into(), Value::Number(self.params.seed as f64));
        let mut root = BTreeMap::new();
        root.insert(
            "schema".into(),
            Value::String("bench/service-sweep/v1".into()),
        );
        root.insert("host_cores".into(), Value::Number(host as f64));
        root.insert("stream".into(), Value::Object(stream));
        root.insert("points".into(), Value::Array(points));
        root.insert("latency".into(), Value::Object(latency));
        Value::Object(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_accounts_for_every_request() {
        let outcome = run(&[1, 2], &STREAM_SMOKE);
        assert_eq!(outcome.points.len(), 2);
        for p in &outcome.points {
            assert_eq!(p.requests, STREAM_SMOKE.requests as u64);
            assert_eq!(p.requests, p.hits + p.dedup_waits + p.misses);
            assert!(p.solves <= p.misses, "solves can only come from misses");
            assert!(p.hit_rate > 0.0, "Zipf stream must produce cache hits");
        }
        let json = outcome.to_json().to_string_pretty();
        assert!(json.contains("bench/service-sweep/v1"));
        assert!(json.contains("bench/service-latency/v1"));
        assert!(json.contains("\"p99\""));
    }

    #[test]
    fn latency_rows_cover_every_served_class_and_objective_hist_reproduces() {
        let outcome = run(&[1, 2], &STREAM_SMOKE);
        for p in &outcome.points {
            let lat_total: u64 = p.latency.iter().map(|r| r.count).sum();
            assert_eq!(lat_total, p.requests, "every request lands in a class hist");
            for r in &p.latency {
                assert!(r.p50 <= r.p90 && r.p90 <= r.p99, "quantiles must be monotone");
                assert!(r.p99 > 0.0);
            }
            // wall-clock-free histogram: identical across worker counts
            // (run() also asserts this internally)
            assert_eq!(p.objective_hist, outcome.points[0].objective_hist);
            assert!(p.objective_hist.contains("obs/hist/v1"));
        }
    }

    #[test]
    fn zipf_sampler_is_head_heavy() {
        let z = Zipf::new(16, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 16];
        for _ in 0..4000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[8], "rank 0 must dominate the tail");
        assert!(counts.iter().sum::<usize>() == 4000);
    }
}
