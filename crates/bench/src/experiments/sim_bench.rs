//! Simulation-kernel sweep: mdsim + amrsim proxy steps and their heaviest
//! analysis kernels over (system size × thread count).
//!
//! Each grid point builds a fresh proxy, pins its [`parallel::Exec`] to an
//! explicit thread count, and times
//!
//! * the **simulation step** (MD: cell rebuild + LJ force loop; hydro:
//!   CFL reduction + Euler block sweep), and
//! * one **analysis kernel** pass (MD: the A1 RDF; hydro: the F1
//!   vorticity stencil) — the compute-heavy analyses of the paper's two
//!   application sets.
//!
//! The chunked kernels are bitwise deterministic in the thread count (see
//! `docs/KERNELS.md`), so the sweep measures pure wall-time scaling: the
//! physics at every `(size, threads)` point is identical. Per-kernel
//! [`insitu_types::KernelTelemetry`] (threads, chunks, merge time) rides
//! along into the JSON.
//!
//! [`Outcome::to_json`] serializes the sweep in the `BENCH_sim.json`
//! schema documented in `EXPERIMENTS.md`.

use amrsim::analysis::f1_vorticity;
use amrsim::sedov::SedovSetup;
use amrsim::FlashSim;
use insitu_core::runtime::Simulator;
use insitu_types::json::Value;
use insitu_types::KernelRecord;
use mdsim::analysis::a1_hydronium_rdf;
use mdsim::{water_ions, BuilderParams};
use parallel::Exec;
use std::collections::BTreeMap;
use std::time::Instant;

/// MD system sizes (particles) for the full sweep.
pub const MD_SIZES_FULL: [usize; 3] = [4_000, 16_000, 64_000];
/// Hydro mesh sizes (blocks per side of 12³-cell blocks) for the full sweep.
pub const AMR_SIZES_FULL: [usize; 3] = [2, 3, 4];
/// Thread counts for the full sweep.
pub const THREADS_FULL: [usize; 3] = [1, 2, 4];
/// MD system sizes for `--smoke` (CI).
pub const MD_SIZES_SMOKE: [usize; 2] = [2_000, 8_000];
/// Hydro mesh sizes for `--smoke`.
pub const AMR_SIZES_SMOKE: [usize; 2] = [2, 3];
/// Thread counts for `--smoke`.
pub const THREADS_SMOKE: [usize; 2] = [1, 2];

/// Timed simulation steps per grid point (after one warm-up step).
const TIMED_STEPS: usize = 3;

/// One `(size, threads)` measurement for either proxy.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// `"md"` or `"amr"`.
    pub proxy: &'static str,
    /// Particles (MD) or total cells (hydro).
    pub elements: usize,
    /// Thread count the kernels ran at.
    pub threads: usize,
    /// Mean wall time of one simulation step (milliseconds).
    pub step_ms: f64,
    /// Mean wall time of one analysis pass (milliseconds).
    pub analysis_ms: f64,
    /// Telemetry of the dominant step kernel (`md.force` / `hydro.step`).
    pub step_kernel: KernelRecord,
    /// Telemetry of the analysis kernel (`md.rdf` / `hydro.vorticity`).
    pub analysis_kernel: KernelRecord,
}

/// Sweep result.
#[derive(Debug)]
pub struct Outcome {
    /// All grid points, sizes ascending, threads ascending within a size.
    pub points: Vec<SweepPoint>,
    /// Printable report.
    pub report: String,
}

impl Outcome {
    /// Step-time speedup of `threads` vs 1 thread on the largest instance
    /// of `proxy` (`None` if either point is missing).
    pub fn speedup_largest(&self, proxy: &str, threads: usize) -> Option<f64> {
        let largest = self
            .points
            .iter()
            .filter(|p| p.proxy == proxy)
            .map(|p| p.elements)
            .max()?;
        let at = |t: usize| {
            self.points
                .iter()
                .find(|p| p.proxy == proxy && p.elements == largest && p.threads == t)
                .map(|p| p.step_ms)
        };
        Some(at(1)? / at(threads)?.max(1e-9))
    }
}

fn md_point(n_particles: usize, threads: usize) -> SweepPoint {
    let mut sys = water_ions(&BuilderParams {
        n_particles,
        ..Default::default()
    });
    sys.exec = Exec::with_threads(threads);
    sys.step(); // warm-up: builds the cell list, faults pages
    sys.telemetry.clear();
    let t0 = Instant::now();
    for _ in 0..TIMED_STEPS {
        sys.step();
    }
    let step_ms = t0.elapsed().as_secs_f64() * 1e3 / TIMED_STEPS as f64;

    let mut rdf = a1_hydronium_rdf();
    rdf.accumulate(&sys); // warm-up
    rdf.telemetry.clear();
    let t1 = Instant::now();
    for _ in 0..TIMED_STEPS {
        rdf.accumulate(&sys);
    }
    let analysis_ms = t1.elapsed().as_secs_f64() * 1e3 / TIMED_STEPS as f64;

    SweepPoint {
        proxy: "md",
        elements: n_particles,
        threads,
        step_ms,
        analysis_ms,
        step_kernel: sys.telemetry.get("md.force").copied().unwrap_or_default(),
        analysis_kernel: rdf.telemetry.get("md.rdf").copied().unwrap_or_default(),
    }
}

fn amr_point(blocks_per_side: usize, threads: usize) -> SweepPoint {
    let mut sim = FlashSim::sedov(blocks_per_side, 12, SedovSetup::default());
    sim.exec = Exec::with_threads(threads);
    sim.advance(); // warm-up
    sim.telemetry.clear();
    let t0 = Instant::now();
    for _ in 0..TIMED_STEPS {
        sim.advance();
    }
    let step_ms = t0.elapsed().as_secs_f64() * 1e3 / TIMED_STEPS as f64;

    let mut vort = f1_vorticity();
    vort.compute(&sim); // warm-up
    vort.telemetry.clear();
    let t1 = Instant::now();
    for _ in 0..TIMED_STEPS {
        vort.compute(&sim);
    }
    let analysis_ms = t1.elapsed().as_secs_f64() * 1e3 / TIMED_STEPS as f64;

    SweepPoint {
        proxy: "amr",
        elements: sim.mesh.total_cells(),
        threads,
        step_ms,
        analysis_ms,
        step_kernel: sim.telemetry.get("hydro.step").copied().unwrap_or_default(),
        analysis_kernel: vort
            .telemetry
            .get("hydro.vorticity")
            .copied()
            .unwrap_or_default(),
    }
}

/// Runs the sweep over the given size and thread grids.
pub fn run(md_sizes: &[usize], amr_sizes: &[usize], thread_counts: &[usize]) -> Outcome {
    let mut points = Vec::new();
    for &n in md_sizes {
        for &t in thread_counts {
            points.push(md_point(n, t));
        }
    }
    for &b in amr_sizes {
        for &t in thread_counts {
            points.push(amr_point(b, t));
        }
    }

    let mut table = crate::table::TextTable::new(&[
        "proxy",
        "elements",
        "threads",
        "step (ms)",
        "analysis (ms)",
        "chunks",
        "merge (ms)",
    ]);
    for p in &points {
        table.row(&[
            p.proxy.to_string(),
            p.elements.to_string(),
            p.threads.to_string(),
            format!("{:.3}", p.step_ms),
            format!("{:.3}", p.analysis_ms),
            p.step_kernel.chunks.to_string(),
            format!("{:.3}", p.step_kernel.merge_s * 1e3 / p.step_kernel.calls.max(1) as f64),
        ]);
    }
    let outcome = Outcome {
        points,
        report: String::new(),
    };
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedups = thread_counts
        .iter()
        .filter(|&&t| t > 1)
        .map(|&t| {
            format!(
                "{}T: md {:.2}x, amr {:.2}x",
                t,
                outcome.speedup_largest("md", t).unwrap_or(0.0),
                outcome.speedup_largest("amr", t).unwrap_or(0.0),
            )
        })
        .collect::<Vec<_>>()
        .join("; ");
    let report = format!(
        "Simulation + analysis kernel sweep ({host} host core(s); results\n\
         are bitwise identical across thread counts). Step speedup vs 1\n\
         thread on the largest instances: {speedups}.\n{}",
        table.render()
    );
    Outcome { report, ..outcome }
}

fn kernel_json(r: &KernelRecord) -> Value {
    let mut o = BTreeMap::new();
    o.insert("calls".into(), Value::Number(r.calls as f64));
    o.insert("threads".into(), Value::Number(r.threads as f64));
    o.insert("chunks".into(), Value::Number(r.chunks as f64));
    o.insert("wall_ms".into(), Value::Number(r.wall_s * 1e3));
    o.insert("merge_ms".into(), Value::Number(r.merge_s * 1e3));
    o.insert("scratch_allocs".into(), Value::Number(r.scratch_allocs as f64));
    o.insert("scratch_reuses".into(), Value::Number(r.scratch_reuses as f64));
    Value::Object(o)
}

impl Outcome {
    /// Serializes the sweep in the `BENCH_sim.json` schema (see
    /// `EXPERIMENTS.md`).
    pub fn to_json(&self) -> Value {
        let points: Vec<Value> = self
            .points
            .iter()
            .map(|p| {
                let mut o = BTreeMap::new();
                o.insert("proxy".into(), Value::String(p.proxy.into()));
                o.insert("elements".into(), Value::Number(p.elements as f64));
                o.insert("threads".into(), Value::Number(p.threads as f64));
                o.insert("step_ms".into(), Value::Number(p.step_ms));
                o.insert("analysis_ms".into(), Value::Number(p.analysis_ms));
                o.insert("step_kernel".into(), kernel_json(&p.step_kernel));
                o.insert("analysis_kernel".into(), kernel_json(&p.analysis_kernel));
                Value::Object(o)
            })
            .collect();
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        let max_t = self.points.iter().map(|p| p.threads).max().unwrap_or(1);
        let mut root = BTreeMap::new();
        root.insert(
            "schema".into(),
            Value::String("bench/sim-kernel-sweep/v1".into()),
        );
        root.insert("host_cores".into(), Value::Number(host as f64));
        root.insert("points".into(), Value::Array(points));
        root.insert(
            "md_speedup_largest".into(),
            Value::Number(self.speedup_largest("md", max_t).unwrap_or(0.0)),
        );
        root.insert(
            "amr_speedup_largest".into(),
            Value::Number(self.speedup_largest("amr", max_t).unwrap_or(0.0)),
        );
        Value::Object(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_runs_and_serializes() {
        let o = run(&MD_SIZES_SMOKE[..1], &AMR_SIZES_SMOKE[..1], &THREADS_SMOKE);
        assert_eq!(o.points.len(), 2 * THREADS_SMOKE.len());
        for p in &o.points {
            assert!(p.step_ms > 0.0 && p.analysis_ms > 0.0, "{p:?}");
            assert_eq!(p.step_kernel.calls, TIMED_STEPS, "{p:?}");
            assert!(p.step_kernel.chunks > 0, "telemetry flows: {p:?}");
            // the timed window starts after a warm-up step, so the scratch
            // pools must already be at steady state: zero allocations.
            assert_eq!(p.step_kernel.scratch_allocs, 0, "{p:?}");
            assert!(p.step_kernel.scratch_reuses > 0, "{p:?}");
        }
        // chunk counts are a function of size only, never of threads
        for w in o.points.chunks(THREADS_SMOKE.len()) {
            for p in &w[1..] {
                assert_eq!(p.step_kernel.chunks, w[0].step_kernel.chunks);
                assert_eq!(p.analysis_kernel.chunks, w[0].analysis_kernel.chunks);
            }
        }
        let json = o.to_json().to_string_pretty();
        assert!(json.contains("bench/sim-kernel-sweep/v1"));
        assert!(json.contains("md_speedup_largest"));
        insitu_types::json::Value::parse(&json).expect("valid JSON");
    }
}
