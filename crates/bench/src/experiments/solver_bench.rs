//! Engine sweep: sparse revised simplex vs the dense-tableau oracle on
//! paper-shaped scheduling instances of growing size.
//!
//! For each `(Steps, |A|)` grid point we build the **exact time-indexed
//! formulation** (Eqs. 1–9; `2·|A|·Steps` binaries — the LP family the
//! paper's GAMS/CPLEX stack solved) and measure, per engine,
//!
//! * the root **LP relaxation** wall time and pivot count — the number the
//!   `≥ 3×` sparse-vs-dense acceptance bar is measured on, and
//! * the full **MILP** solve (wall time, branch & bound nodes, total
//!   pivots, plus revised-engine telemetry: refactorizations, eta peak,
//!   FTRAN/BTRAN time).
//!
//! A second sweep ablates the **branching rule** on the paper's
//! production formulation — the count-based **aggregate model**
//! (`insitu_core::build_aggregate`, the model `certify`, the service tier
//! and the fuzz harness all solve) — over memory-tight instances
//! ([`ablation_instance`]) whose unary `(k, q)` expansions form a
//! multidimensional knapsack, the structure where variable selection
//! actually decides tree size. (The exact time-indexed formulation is a
//! poor branching testbed: its telescoped per-step binaries are so
//! symmetric and its LPs so degenerate that every rule explores
//! near-identical trees — root-solved or uniformly hopeless.) Every
//! ablation instance is solved with the legacy most-fractional rule and
//! with the default two-tier pseudocost/strong-branching rule
//! (`docs/SOLVER.md`), both on the revised engine at one thread with
//! cuts held at `CutPolicy::Off` (the default root cut pool solves
//! these instances at the root, which would leave no tree for the
//! branching rules to differ on), reporting node counts, wall time and
//! proof status. The flagship point
//! (`Steps=512, |A|=16`) is the 10×-scale acceptance measurement: the
//! two-tier rule must at least halve the node count or the wall time.
//! Node counts are deterministic and machine-independent, so the
//! committed ratios are comparable across hosts.
//!
//! A third sweep ablates the **cut policy** (`CutPolicy::Off` vs the
//! default `Root` Gomory + cover pool vs `Full` with node covers, see
//! `docs/SOLVER.md`) over [`cut_instance`] — the ablation family with a
//! tighter budget and memory threshold so the root relaxation is
//! genuinely fractional and the knapsack-shaped memory rows carry
//! violated covers. All three policies must agree on the optimum
//! bitwise (half-integer weights put the objective on a 0.5 grid); the
//! acceptance number is the geometric-mean off/root node reduction over
//! the `Steps >= 64` points ([`geomean_node_reduction`]), which must be
//! `>= 2x`. Node counts are deterministic, so the committed number is
//! host-independent.
//!
//! [`Outcome::to_json`] serializes all three sweeps in the
//! `BENCH_milp.json` schema documented in `EXPERIMENTS.md` (the cut
//! ablation under the nested `bench/milp-cuts/v1` schema).

use std::time::Instant;

use insitu_core::formulation::build_exact;
use insitu_types::json::Value;
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem};
use milp::{
    solve_lp_relaxation, BranchRule, CutPolicy, Sense, SimplexEngine, SolveError, SolveOptions,
};

/// Sweep grid for the full benchmark: `(Steps, |A|)`.
pub const FULL_GRID: [(usize, usize); 6] = [(16, 2), (32, 2), (32, 4), (64, 2), (64, 4), (96, 4)];

/// Sweep grid for `--smoke` (CI): small but still two sizes per axis.
pub const SMOKE_GRID: [(usize, usize); 2] = [(8, 2), (16, 3)];

/// Branching-ablation grid for the full benchmark. The last point is the
/// 10×-scale flagship (`Steps=512, |A|=16`).
pub const ABLATION_FULL_GRID: [(usize, usize); 4] =
    [(64, 4), (128, 8), (256, 12), (512, 16)];

/// Branching-ablation grid for `--smoke`: three paper-shaped instances.
pub const ABLATION_SMOKE_GRID: [(usize, usize); 3] = [(16, 2), (32, 4), (64, 4)];

/// Node budget for ablation solves: big enough that the two-tier rule
/// proves every grid point, small enough that a most-fractional blowup
/// terminates. A capped run reports `proven: false` with `nodes` at the
/// cap — an honest lower bound on its tree size.
pub const ABLATION_NODE_CAP: usize = 50_000;

/// Cut-ablation grid for the full benchmark. All points sit at
/// `Steps >= 64`, the band the `>= 2x` geometric-mean node-reduction
/// acceptance bar is measured on.
pub const CUTS_FULL_GRID: [(usize, usize); 4] = [(64, 6), (96, 8), (128, 10), (192, 12)];

/// Cut-ablation grid for `--smoke`: one small and one acceptance-band
/// instance.
pub const CUTS_SMOKE_GRID: [(usize, usize); 2] = [(16, 3), (64, 6)];

/// Per-engine measurements on one instance.
#[derive(Debug, Clone, Copy)]
pub struct EngineRun {
    /// Root LP relaxation wall time (milliseconds).
    pub lp_wall_ms: f64,
    /// Simplex pivots in the root LP relaxation.
    pub lp_pivots: usize,
    /// Full MILP solve wall time (milliseconds).
    pub milp_wall_ms: f64,
    /// Branch & bound nodes in the full solve.
    pub nodes: usize,
    /// Total simplex pivots across the full solve.
    pub total_pivots: usize,
    /// Basis refactorizations (0 for the dense engine).
    pub refactorizations: usize,
    /// Peak eta-file length (0 for the dense engine).
    pub max_eta_len: usize,
    /// Time inside FTRAN solves (milliseconds; 0 for the dense engine).
    pub ftran_ms: f64,
    /// Time inside BTRAN solves (milliseconds; 0 for the dense engine).
    pub btran_ms: f64,
}

/// One grid point: the instance dimensions and both engines' runs.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Simulation steps (`Steps`).
    pub steps: usize,
    /// Number of analyses (`|A|`).
    pub analyses: usize,
    /// Constraint rows in the exact model.
    pub rows: usize,
    /// Variables in the exact model.
    pub cols: usize,
    /// Sparse revised simplex run.
    pub revised: EngineRun,
    /// Dense tableau run.
    pub dense: EngineRun,
}

impl SweepPoint {
    /// Dense-over-revised wall-time ratio on the root LP relaxation.
    pub fn lp_speedup(&self) -> f64 {
        self.dense.lp_wall_ms / self.revised.lp_wall_ms.max(1e-3)
    }
}

/// One branching rule's run on one ablation instance.
#[derive(Debug, Clone, Copy)]
pub struct BranchRun {
    /// Full MILP solve wall time (milliseconds).
    pub wall_ms: f64,
    /// Branch & bound nodes explored (the cap if `proven` is false).
    pub nodes: usize,
    /// Child LPs solved by strong-branching probes.
    pub strong_branch_lps: usize,
    /// Nodes branched from pseudocost estimates alone.
    pub pseudocost_branches: usize,
    /// True when optimality was proven within [`ABLATION_NODE_CAP`].
    pub proven: bool,
}

/// One branching-ablation grid point: both rules on the same instance.
#[derive(Debug, Clone, Copy)]
pub struct BranchPoint {
    /// Simulation steps (`Steps`).
    pub steps: usize,
    /// Number of analyses (`|A|`).
    pub analyses: usize,
    /// Legacy rule: branch on the most-fractional variable.
    pub most_fractional: BranchRun,
    /// Default two-tier rule: pseudocosts + shallow strong branching.
    pub pseudocost: BranchRun,
}

impl BranchPoint {
    /// Most-fractional over two-tier node ratio (>1 = two-tier searched a
    /// smaller tree). When most-fractional hit the node cap this is a
    /// lower bound.
    pub fn node_ratio(&self) -> f64 {
        self.most_fractional.nodes as f64 / self.pseudocost.nodes.max(1) as f64
    }

    /// Most-fractional over two-tier wall-time ratio.
    pub fn wall_ratio(&self) -> f64 {
        self.most_fractional.wall_ms / self.pseudocost.wall_ms.max(1e-3)
    }
}

/// One cut policy's run on one cut-ablation instance.
#[derive(Debug, Clone, Copy)]
pub struct CutRun {
    /// Full MILP solve wall time (milliseconds).
    pub wall_ms: f64,
    /// Branch & bound nodes explored (the cap if `proven` is false).
    pub nodes: usize,
    /// Optimal objective (0.0 when `proven` is false).
    pub objective: f64,
    /// Gomory mixed-integer cuts generated at the root.
    pub gomory_generated: usize,
    /// Knapsack cover cuts generated at the root.
    pub cover_generated: usize,
    /// Cuts applied in total (root pool + node cuts).
    pub cuts_applied: usize,
    /// Root cuts evicted by slack-based aging.
    pub cuts_aged_out: usize,
    /// Cover cuts separated at non-root nodes (`CutPolicy::Full` only).
    pub node_cuts: usize,
    /// Time inside cut separation (milliseconds).
    pub separation_ms: f64,
    /// Fraction of the root integrality gap closed by the cut loop.
    pub root_gap_closed: f64,
    /// True when optimality was proven within [`ABLATION_NODE_CAP`].
    pub proven: bool,
}

/// One cut-ablation grid point: the same memory-tight aggregate
/// instance solved with cuts off, root-only (the default policy), and
/// full (root pool + per-node cover separation).
#[derive(Debug, Clone, Copy)]
pub struct CutPoint {
    /// Simulation steps (`Steps`).
    pub steps: usize,
    /// Number of analyses (`|A|`).
    pub analyses: usize,
    /// `CutPolicy::Off` run.
    pub off: CutRun,
    /// `CutPolicy::Root` run (the solver default).
    pub root: CutRun,
    /// `CutPolicy::Full` run.
    pub full: CutRun,
}

impl CutPoint {
    /// Off-over-root node ratio (>1 = root cuts shrank the tree). When
    /// the cuts-off run hit the node cap this is a lower bound.
    pub fn node_reduction(&self) -> f64 {
        self.off.nodes as f64 / self.root.nodes.max(1) as f64
    }

    /// Off-over-full node ratio.
    pub fn node_reduction_full(&self) -> f64 {
        self.off.nodes as f64 / self.full.nodes.max(1) as f64
    }
}

/// Geometric mean of the off/root node reduction over the `Steps >= 64`
/// grid points — the committed acceptance number for the cut-generating
/// solver (node counts are deterministic, so this is host-independent).
pub fn geomean_node_reduction(points: &[CutPoint]) -> f64 {
    let logs: Vec<f64> = points
        .iter()
        .filter(|p| p.steps >= 64)
        .map(|p| p.node_reduction().max(f64::MIN_POSITIVE).ln())
        .collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Sweep result.
#[derive(Debug)]
pub struct Outcome {
    /// One entry per grid point, in sweep order (largest last).
    pub points: Vec<SweepPoint>,
    /// One entry per branching-ablation grid point, in sweep order.
    pub branching: Vec<BranchPoint>,
    /// One entry per cut-ablation grid point, in sweep order.
    pub cuts: Vec<CutPoint>,
    /// Printable report.
    pub report: String,
}

/// A paper-shaped instance: |A| analyses with spread compute/output costs,
/// interval `Steps/8`, integral weights (so the integral-objective gap
/// trick keeps the MILP solve exact and fast) and a budget that forces a
/// nontrivial trade-off.
pub fn instance(steps: usize, n: usize) -> ScheduleProblem {
    let itv = (steps / 8).max(1);
    let kmax = (steps / itv) as f64;
    let mut analyses = Vec::with_capacity(n);
    let mut rough = 0.0;
    for i in 0..n {
        let ct = 1.0 + i as f64 * 1.5;
        let ot = 0.25 * (1 + i % 2) as f64;
        rough += kmax * (ct + ot);
        analyses.push(
            AnalysisProfile::new(format!("A{i}"))
                .with_compute(ct, 0.0)
                .with_output(ot, 0.0, 1)
                .with_weight((1 + i % 3) as f64)
                .with_interval(itv),
        );
    }
    ScheduleProblem::new(
        analyses,
        ResourceConfig::from_total_threshold(steps, rough * 0.6, 1e12, 1e9),
    )
    .expect("valid instance")
}

fn opts(engine: SimplexEngine) -> SolveOptions {
    SolveOptions {
        engine,
        threads: 1,
        // weights are integral => objective integral => gap < 1 is exact
        abs_gap: 0.999,
        ..SolveOptions::default()
    }
}

fn run_engine(problem: &ScheduleProblem, engine: SimplexEngine) -> EngineRun {
    let (model, _) = build_exact(problem);
    let o = opts(engine);

    let t0 = Instant::now();
    let lp = solve_lp_relaxation(&model, &o).expect("LP relaxation solvable");
    let lp_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let sol = milp::solve(&model, &o).expect("MILP solvable");
    let milp_wall_ms = t1.elapsed().as_secs_f64() * 1e3;

    EngineRun {
        lp_wall_ms,
        lp_pivots: lp.iterations,
        milp_wall_ms,
        nodes: sol.nodes,
        total_pivots: sol.stats.lp_pivots,
        refactorizations: sol.stats.refactorizations,
        max_eta_len: sol.stats.max_eta_len,
        ftran_ms: sol.stats.ftran_time.as_secs_f64() * 1e3,
        btran_ms: sol.stats.btran_time.as_secs_f64() * 1e3,
    }
}

/// A memory-tight paper-shaped ablation instance: |A| analyses with
/// deterministically spread compute/output costs, **accumulating memory**
/// (per-step state and compute buffers that Eq. 6 frees only at outputs)
/// and a memory threshold at 35 % of the rough peak, so the aggregate
/// model's unary `(k, q)` expansion becomes a multidimensional knapsack —
/// time budget against memory peaks. Weights are half-integer, so the
/// objective lives on a 0.5 grid and `abs_gap = 0.499` is still an exact
/// optimality proof.
pub fn ablation_instance(steps: usize, n: usize) -> ScheduleProblem {
    let mut analyses = Vec::with_capacity(n);
    let mut rough_cost = 0.0;
    let mut rough_peak = 0.0;
    for i in 0..n {
        let kmax = 4 + 4 * (i % 4);
        let itv = (steps / kmax).max(1);
        let k = (steps / itv) as f64;
        let ct = 0.5 * (1 + (i * 7) % 11) as f64;
        let cm = 4.0 * ((i * 5) % 9) as f64;
        let ot = 0.25 * (1 + i % 3) as f64;
        let om = 3.0 * ((i * 3) % 7) as f64;
        let im = 0.5 * ((i * 2) % 5) as f64;
        let weight = 0.5 * (1 + (i * 3) % 6) as f64;
        rough_cost += k * (ct + ot);
        rough_peak += im * steps as f64 + k * cm + om;
        analyses.push(
            AnalysisProfile::new(format!("A{i}"))
                .with_per_step(0.0, im)
                .with_compute(ct, cm)
                .with_output(ot, om, 1)
                .with_weight(weight)
                .with_interval(itv),
        );
    }
    ScheduleProblem::new(
        analyses,
        ResourceConfig::from_total_threshold(
            steps,
            rough_cost * 0.6,
            rough_peak * 0.35,
            1e6,
        ),
    )
    .expect("valid instance")
}

fn run_branch_rule(problem: &ScheduleProblem, rule: BranchRule) -> BranchRun {
    let model = insitu_core::build_aggregate(problem)
        .expect("aggregate model builds")
        .model;
    let o = SolveOptions {
        branch_rule: rule,
        max_nodes: ABLATION_NODE_CAP,
        // half-integer weights => objective on a 0.5 grid => exact
        abs_gap: 0.499,
        // hold cuts fixed at Off so the ablation isolates the branching
        // rule — the default root pool solves these instances at the
        // root, leaving no tree for the rules to differ on (the cut
        // ablation below measures that effect on its own axis)
        cut_policy: CutPolicy::Off,
        ..opts(SimplexEngine::Revised)
    };
    let t0 = Instant::now();
    match milp::solve(&model, &o) {
        Ok(sol) => BranchRun {
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            nodes: sol.nodes,
            strong_branch_lps: sol.stats.strong_branch_lps,
            pseudocost_branches: sol.stats.pseudocost_branches,
            proven: true,
        },
        Err(SolveError::NodeLimit { nodes, .. }) => BranchRun {
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            nodes,
            strong_branch_lps: 0,
            pseudocost_branches: 0,
            proven: false,
        },
        Err(e) => panic!("ablation instance failed: {e}"),
    }
}

/// Runs the branching ablation over `grid`.
pub fn run_ablation(grid: &[(usize, usize)]) -> Vec<BranchPoint> {
    grid.iter()
        .map(|&(steps, n)| {
            let problem = ablation_instance(steps, n);
            BranchPoint {
                steps,
                analyses: n,
                most_fractional: run_branch_rule(&problem, BranchRule::MostFractional),
                pseudocost: run_branch_rule(&problem, BranchRule::Pseudocost),
            }
        })
        .collect()
}

/// A cut-friendly variant of [`ablation_instance`]: the same
/// accumulating-memory family with a tighter time budget (45 % of the
/// rough cost) and memory threshold (30 % of the rough peak), so the
/// root LP sits well off the integer hull — fractional enough that GMI
/// rounds bite and the knapsack-shaped memory rows carry violated
/// covers. Weights stay half-integer, so `abs_gap = 0.499` is exact.
pub fn cut_instance(steps: usize, n: usize) -> ScheduleProblem {
    let mut analyses = Vec::with_capacity(n);
    let mut rough_cost = 0.0;
    let mut rough_peak = 0.0;
    for i in 0..n {
        let kmax = 4 + 4 * (i % 4);
        let itv = (steps / kmax).max(1);
        let k = (steps / itv) as f64;
        let ct = 0.5 * (1 + (i * 7) % 11) as f64;
        let cm = 4.0 * ((i * 5) % 9) as f64;
        let ot = 0.25 * (1 + i % 3) as f64;
        let om = 3.0 * ((i * 3) % 7) as f64;
        let im = 0.5 * ((i * 2) % 5) as f64;
        let weight = 0.5 * (1 + (i * 3) % 6) as f64;
        rough_cost += k * (ct + ot);
        rough_peak += im * steps as f64 + k * cm + om;
        analyses.push(
            AnalysisProfile::new(format!("A{i}"))
                .with_per_step(0.0, im)
                .with_compute(ct, cm)
                .with_output(ot, om, 1)
                .with_weight(weight)
                .with_interval(itv),
        );
    }
    ScheduleProblem::new(
        analyses,
        ResourceConfig::from_total_threshold(
            steps,
            rough_cost * 0.45,
            rough_peak * 0.30,
            1e6,
        ),
    )
    .expect("valid instance")
}

fn run_cut_policy(problem: &ScheduleProblem, policy: CutPolicy) -> CutRun {
    let model = insitu_core::build_aggregate(problem)
        .expect("aggregate model builds")
        .model;
    let maximize = matches!(model.sense, Sense::Maximize);
    let o = SolveOptions {
        cut_policy: policy,
        max_nodes: ABLATION_NODE_CAP,
        // half-integer weights => objective on a 0.5 grid => exact
        abs_gap: 0.499,
        ..opts(SimplexEngine::Revised)
    };
    let t0 = Instant::now();
    match milp::solve(&model, &o) {
        Ok(sol) => {
            let c = &sol.stats.cuts;
            CutRun {
                wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                nodes: sol.nodes,
                objective: sol.objective,
                gomory_generated: c.gomory_generated,
                cover_generated: c.cover_generated,
                cuts_applied: c.cuts_applied,
                cuts_aged_out: c.cuts_aged_out,
                node_cuts: c.node_cuts,
                separation_ms: c.separation_time.as_secs_f64() * 1e3,
                root_gap_closed: c.root_gap_closed(sol.objective, maximize),
                proven: true,
            }
        }
        Err(SolveError::NodeLimit { nodes, .. }) => CutRun {
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            nodes,
            objective: 0.0,
            gomory_generated: 0,
            cover_generated: 0,
            cuts_applied: 0,
            cuts_aged_out: 0,
            node_cuts: 0,
            separation_ms: 0.0,
            root_gap_closed: 0.0,
            proven: false,
        },
        Err(e) => panic!("cut-ablation instance failed: {e}"),
    }
}

/// Runs the cut ablation over `grid`: each instance with
/// `CutPolicy::{Off, Root, Full}`. Panics if two proven policies
/// disagree on the optimum — cuts must never change the answer, and the
/// half-integer objective grid makes "agree within `abs_gap`" bitwise.
pub fn run_cuts(grid: &[(usize, usize)]) -> Vec<CutPoint> {
    grid.iter()
        .map(|&(steps, n)| {
            let problem = cut_instance(steps, n);
            let off = run_cut_policy(&problem, CutPolicy::Off);
            let root = run_cut_policy(&problem, CutPolicy::Root);
            let full = run_cut_policy(&problem, CutPolicy::Full);
            for (name, run) in [("root", &root), ("full", &full)] {
                assert!(
                    !(off.proven && run.proven)
                        || off.objective.to_bits() == run.objective.to_bits(),
                    "Steps={steps} |A|={n}: cuts-{name} optimum {} != cuts-off {}",
                    run.objective,
                    off.objective
                );
            }
            CutPoint {
                steps,
                analyses: n,
                off,
                root,
                full,
            }
        })
        .collect()
}

/// Runs the engine sweep over `grid`, the branching ablation over
/// `ablation_grid`, and the cut ablation over `cuts_grid`.
pub fn run(
    grid: &[(usize, usize)],
    ablation_grid: &[(usize, usize)],
    cuts_grid: &[(usize, usize)],
) -> Outcome {
    let mut points = Vec::with_capacity(grid.len());
    let mut t = crate::table::TextTable::new(&[
        "Steps",
        "|A|",
        "rows x cols",
        "LP revised (ms)",
        "LP dense (ms)",
        "LP speedup",
        "MILP revised (ms)",
        "MILP dense (ms)",
        "nodes",
    ]);
    for &(steps, n) in grid {
        let problem = instance(steps, n);
        let (model, _) = build_exact(&problem);
        let (rows, cols) = (model.num_cons(), model.num_vars());
        let revised = run_engine(&problem, SimplexEngine::Revised);
        let dense = run_engine(&problem, SimplexEngine::DenseTableau);
        let p = SweepPoint {
            steps,
            analyses: n,
            rows,
            cols,
            revised,
            dense,
        };
        t.row(&[
            steps.to_string(),
            n.to_string(),
            format!("{rows} x {cols}"),
            format!("{:.2}", revised.lp_wall_ms),
            format!("{:.2}", dense.lp_wall_ms),
            format!("{:.1}x", p.lp_speedup()),
            format!("{:.2}", revised.milp_wall_ms),
            format!("{:.2}", dense.milp_wall_ms),
            format!("{}/{}", revised.nodes, dense.nodes),
        ]);
        points.push(p);
    }
    let branching = run_ablation(ablation_grid);
    let mut bt = crate::table::TextTable::new(&[
        "Steps",
        "|A|",
        "MF nodes",
        "PC nodes",
        "node ratio",
        "MF wall (ms)",
        "PC wall (ms)",
        "wall ratio",
        "sb lps / pc nodes",
    ]);
    for b in &branching {
        let status = |r: &BranchRun| {
            if r.proven {
                r.nodes.to_string()
            } else {
                format!("{}+ (cap)", r.nodes)
            }
        };
        bt.row(&[
            b.steps.to_string(),
            b.analyses.to_string(),
            status(&b.most_fractional),
            status(&b.pseudocost),
            format!("{:.1}x", b.node_ratio()),
            format!("{:.2}", b.most_fractional.wall_ms),
            format!("{:.2}", b.pseudocost.wall_ms),
            format!("{:.1}x", b.wall_ratio()),
            format!(
                "{} / {}",
                b.pseudocost.strong_branch_lps, b.pseudocost.pseudocost_branches
            ),
        ]);
    }
    let cuts = run_cuts(cuts_grid);
    let mut ct = crate::table::TextTable::new(&[
        "Steps",
        "|A|",
        "off nodes",
        "root nodes",
        "full nodes",
        "node redn",
        "gmy/cvr gen",
        "applied",
        "aged",
        "node cuts",
        "gap closed",
        "off wall (ms)",
        "root wall (ms)",
    ]);
    for c in &cuts {
        let status = |r: &CutRun| {
            if r.proven {
                r.nodes.to_string()
            } else {
                format!("{}+ (cap)", r.nodes)
            }
        };
        ct.row(&[
            c.steps.to_string(),
            c.analyses.to_string(),
            status(&c.off),
            status(&c.root),
            status(&c.full),
            format!("{:.1}x", c.node_reduction()),
            format!("{} / {}", c.root.gomory_generated, c.root.cover_generated),
            c.root.cuts_applied.to_string(),
            c.root.cuts_aged_out.to_string(),
            c.full.node_cuts.to_string(),
            format!("{:.0}%", c.root.root_gap_closed * 100.0),
            format!("{:.2}", c.off.wall_ms),
            format!("{:.2}", c.root.wall_ms),
        ]);
    }
    let report = format!(
        "Exact time-indexed formulation (2*|A|*Steps binaries), both LP\n\
         engines; LP columns time the root relaxation, MILP columns the\n\
         full branch & bound. nodes column is revised/dense.\n{}\n\
         Branching ablation (revised engine): legacy most-fractional (MF)\n\
         vs default pseudocost + strong branching (PC); ratios are MF/PC,\n\
         so >1 favours the two-tier rule. '+ (cap)' marks node-capped\n\
         unproven runs ({} nodes).\n{}\n\
         Cut ablation (revised engine, default branching): CutPolicy Off\n\
         vs Root (default: Gomory + cover root pool) vs Full (root pool +\n\
         node covers) on the same memory-tight aggregate instances; node\n\
         redn is off/root, so >1 favours cuts. gen/applied/aged/gap\n\
         columns are the Root run's CutStats; node cuts is the Full\n\
         run's. Geometric-mean node reduction @ Steps>=64: {:.1}x.\n{}",
        t.render(),
        ABLATION_NODE_CAP,
        bt.render(),
        geomean_node_reduction(&cuts),
        ct.render()
    );
    Outcome {
        points,
        branching,
        cuts,
        report,
    }
}

fn engine_json(r: &EngineRun) -> Value {
    let mut o = std::collections::BTreeMap::new();
    o.insert("lp_wall_ms".into(), Value::Number(r.lp_wall_ms));
    o.insert("lp_pivots".into(), Value::Number(r.lp_pivots as f64));
    o.insert("milp_wall_ms".into(), Value::Number(r.milp_wall_ms));
    o.insert("nodes".into(), Value::Number(r.nodes as f64));
    o.insert("total_pivots".into(), Value::Number(r.total_pivots as f64));
    o.insert(
        "refactorizations".into(),
        Value::Number(r.refactorizations as f64),
    );
    o.insert("max_eta_len".into(), Value::Number(r.max_eta_len as f64));
    o.insert("ftran_ms".into(), Value::Number(r.ftran_ms));
    o.insert("btran_ms".into(), Value::Number(r.btran_ms));
    Value::Object(o)
}

fn cut_run_json(r: &CutRun) -> Value {
    let mut o = std::collections::BTreeMap::new();
    o.insert("wall_ms".into(), Value::Number(r.wall_ms));
    o.insert("nodes".into(), Value::Number(r.nodes as f64));
    o.insert("objective".into(), Value::Number(r.objective));
    o.insert(
        "gomory_generated".into(),
        Value::Number(r.gomory_generated as f64),
    );
    o.insert(
        "cover_generated".into(),
        Value::Number(r.cover_generated as f64),
    );
    o.insert("cuts_applied".into(), Value::Number(r.cuts_applied as f64));
    o.insert(
        "cuts_aged_out".into(),
        Value::Number(r.cuts_aged_out as f64),
    );
    o.insert("node_cuts".into(), Value::Number(r.node_cuts as f64));
    o.insert("separation_ms".into(), Value::Number(r.separation_ms));
    o.insert(
        "root_gap_closed".into(),
        Value::Number(r.root_gap_closed),
    );
    o.insert("proven".into(), Value::Bool(r.proven));
    Value::Object(o)
}

fn branch_run_json(r: &BranchRun) -> Value {
    let mut o = std::collections::BTreeMap::new();
    o.insert("wall_ms".into(), Value::Number(r.wall_ms));
    o.insert("nodes".into(), Value::Number(r.nodes as f64));
    o.insert(
        "strong_branch_lps".into(),
        Value::Number(r.strong_branch_lps as f64),
    );
    o.insert(
        "pseudocost_branches".into(),
        Value::Number(r.pseudocost_branches as f64),
    );
    o.insert("proven".into(), Value::Bool(r.proven));
    Value::Object(o)
}

impl Outcome {
    /// Serializes the sweep in the `BENCH_milp.json` schema (see
    /// `EXPERIMENTS.md`).
    pub fn to_json(&self) -> Value {
        let instances: Vec<Value> = self
            .points
            .iter()
            .map(|p| {
                let mut o = std::collections::BTreeMap::new();
                o.insert("steps".into(), Value::Number(p.steps as f64));
                o.insert("analyses".into(), Value::Number(p.analyses as f64));
                o.insert("rows".into(), Value::Number(p.rows as f64));
                o.insert("cols".into(), Value::Number(p.cols as f64));
                o.insert("revised".into(), engine_json(&p.revised));
                o.insert("dense_tableau".into(), engine_json(&p.dense));
                o.insert("lp_speedup".into(), Value::Number(p.lp_speedup()));
                Value::Object(o)
            })
            .collect();
        let mut root = std::collections::BTreeMap::new();
        root.insert(
            "schema".into(),
            Value::String("bench/milp-engine-sweep/v1".into()),
        );
        root.insert("instances".into(), Value::Array(instances));
        root.insert(
            "largest_lp_speedup".into(),
            Value::Number(self.points.last().map_or(0.0, |p| p.lp_speedup())),
        );
        let branching: Vec<Value> = self
            .branching
            .iter()
            .map(|b| {
                let mut o = std::collections::BTreeMap::new();
                o.insert("steps".into(), Value::Number(b.steps as f64));
                o.insert("analyses".into(), Value::Number(b.analyses as f64));
                o.insert(
                    "most_fractional".into(),
                    branch_run_json(&b.most_fractional),
                );
                o.insert("pseudocost".into(), branch_run_json(&b.pseudocost));
                o.insert("node_ratio".into(), Value::Number(b.node_ratio()));
                o.insert("wall_ratio".into(), Value::Number(b.wall_ratio()));
                Value::Object(o)
            })
            .collect();
        root.insert("branching".into(), Value::Array(branching));
        root.insert(
            "flagship_node_ratio".into(),
            Value::Number(self.branching.last().map_or(0.0, |b| b.node_ratio())),
        );
        let cut_points: Vec<Value> = self
            .cuts
            .iter()
            .map(|c| {
                let mut o = std::collections::BTreeMap::new();
                o.insert("steps".into(), Value::Number(c.steps as f64));
                o.insert("analyses".into(), Value::Number(c.analyses as f64));
                o.insert("off".into(), cut_run_json(&c.off));
                o.insert("root".into(), cut_run_json(&c.root));
                o.insert("full".into(), cut_run_json(&c.full));
                o.insert(
                    "node_reduction".into(),
                    Value::Number(c.node_reduction()),
                );
                o.insert(
                    "node_reduction_full".into(),
                    Value::Number(c.node_reduction_full()),
                );
                Value::Object(o)
            })
            .collect();
        let mut cuts = std::collections::BTreeMap::new();
        cuts.insert("schema".into(), Value::String("bench/milp-cuts/v1".into()));
        cuts.insert("instances".into(), Value::Array(cut_points));
        cuts.insert(
            "geomean_node_reduction_steps64".into(),
            Value::Number(geomean_node_reduction(&self.cuts)),
        );
        root.insert("cuts".into(), Value::Object(cuts));
        Value::Object(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_runs_and_serializes() {
        let o = run(&SMOKE_GRID, &ABLATION_SMOKE_GRID[..1], &CUTS_SMOKE_GRID[..1]);
        assert_eq!(o.points.len(), SMOKE_GRID.len());
        for p in &o.points {
            // both engines reached the same search outcome
            assert!(p.revised.lp_pivots > 0 && p.dense.lp_pivots > 0);
            assert!(p.revised.refactorizations > 0, "revised telemetry flows");
            assert_eq!(p.dense.refactorizations, 0, "dense has no eta file");
        }
        assert_eq!(o.branching.len(), 1);
        for b in &o.branching {
            assert!(b.most_fractional.proven && b.pseudocost.proven);
            // a root-solved instance legitimately reports 0 nodes
            assert!(b.pseudocost.nodes <= b.most_fractional.nodes.max(1));
            assert!(b.pseudocost.wall_ms > 0.0);
        }
        assert_eq!(o.cuts.len(), 1);
        for c in &o.cuts {
            // run_cuts already asserts equal optima; proof status too
            assert!(c.off.proven && c.root.proven && c.full.proven);
            assert!(c.root.nodes <= c.off.nodes, "root cuts must not grow the tree");
        }
        let json = o.to_json().to_string_pretty();
        assert!(json.contains("bench/milp-engine-sweep/v1"));
        assert!(json.contains("bench/milp-cuts/v1"));
        assert!(json.contains("largest_lp_speedup"));
        assert!(json.contains("flagship_node_ratio"));
        assert!(json.contains("geomean_node_reduction_steps64"));
        assert!(json.contains("most_fractional"));
        assert!(json.contains("gomory_generated"));
        // the schema round-trips through the vendored parser
        insitu_types::json::Value::parse(&json).expect("valid JSON");
    }

    #[test]
    fn engines_agree_on_smoke_objectives() {
        for &(steps, n) in &SMOKE_GRID {
            let problem = instance(steps, n);
            let (model, _) = insitu_core::formulation::build_exact(&problem);
            let r = milp::solve(&model, &opts(SimplexEngine::Revised)).unwrap();
            let d = milp::solve(&model, &opts(SimplexEngine::DenseTableau)).unwrap();
            assert!(
                (r.objective - d.objective).abs() < 1e-6,
                "steps={steps} n={n}: revised {} vs dense {}",
                r.objective,
                d.objective
            );
        }
    }
}
