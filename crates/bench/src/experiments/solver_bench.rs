//! Engine sweep: sparse revised simplex vs the dense-tableau oracle on
//! paper-shaped scheduling instances of growing size.
//!
//! For each `(Steps, |A|)` grid point we build the **exact time-indexed
//! formulation** (Eqs. 1–9; `2·|A|·Steps` binaries — the LP family the
//! paper's GAMS/CPLEX stack solved) and measure, per engine,
//!
//! * the root **LP relaxation** wall time and pivot count — the number the
//!   `≥ 3×` sparse-vs-dense acceptance bar is measured on, and
//! * the full **MILP** solve (wall time, branch & bound nodes, total
//!   pivots, plus revised-engine telemetry: refactorizations, eta peak,
//!   FTRAN/BTRAN time).
//!
//! [`Outcome::to_json`] serializes the sweep in the `BENCH_milp.json`
//! schema documented in `EXPERIMENTS.md`.

use std::time::Instant;

use insitu_core::formulation::build_exact;
use insitu_types::json::Value;
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem};
use milp::{solve_lp_relaxation, SimplexEngine, SolveOptions};

/// Sweep grid for the full benchmark: `(Steps, |A|)`.
pub const FULL_GRID: [(usize, usize); 6] = [(16, 2), (32, 2), (32, 4), (64, 2), (64, 4), (96, 4)];

/// Sweep grid for `--smoke` (CI): small but still two sizes per axis.
pub const SMOKE_GRID: [(usize, usize); 2] = [(8, 2), (16, 3)];

/// Per-engine measurements on one instance.
#[derive(Debug, Clone, Copy)]
pub struct EngineRun {
    /// Root LP relaxation wall time (milliseconds).
    pub lp_wall_ms: f64,
    /// Simplex pivots in the root LP relaxation.
    pub lp_pivots: usize,
    /// Full MILP solve wall time (milliseconds).
    pub milp_wall_ms: f64,
    /// Branch & bound nodes in the full solve.
    pub nodes: usize,
    /// Total simplex pivots across the full solve.
    pub total_pivots: usize,
    /// Basis refactorizations (0 for the dense engine).
    pub refactorizations: usize,
    /// Peak eta-file length (0 for the dense engine).
    pub max_eta_len: usize,
    /// Time inside FTRAN solves (milliseconds; 0 for the dense engine).
    pub ftran_ms: f64,
    /// Time inside BTRAN solves (milliseconds; 0 for the dense engine).
    pub btran_ms: f64,
}

/// One grid point: the instance dimensions and both engines' runs.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Simulation steps (`Steps`).
    pub steps: usize,
    /// Number of analyses (`|A|`).
    pub analyses: usize,
    /// Constraint rows in the exact model.
    pub rows: usize,
    /// Variables in the exact model.
    pub cols: usize,
    /// Sparse revised simplex run.
    pub revised: EngineRun,
    /// Dense tableau run.
    pub dense: EngineRun,
}

impl SweepPoint {
    /// Dense-over-revised wall-time ratio on the root LP relaxation.
    pub fn lp_speedup(&self) -> f64 {
        self.dense.lp_wall_ms / self.revised.lp_wall_ms.max(1e-3)
    }
}

/// Sweep result.
#[derive(Debug)]
pub struct Outcome {
    /// One entry per grid point, in sweep order (largest last).
    pub points: Vec<SweepPoint>,
    /// Printable report.
    pub report: String,
}

/// A paper-shaped instance: |A| analyses with spread compute/output costs,
/// interval `Steps/8`, integral weights (so the integral-objective gap
/// trick keeps the MILP solve exact and fast) and a budget that forces a
/// nontrivial trade-off.
pub fn instance(steps: usize, n: usize) -> ScheduleProblem {
    let itv = (steps / 8).max(1);
    let kmax = (steps / itv) as f64;
    let mut analyses = Vec::with_capacity(n);
    let mut rough = 0.0;
    for i in 0..n {
        let ct = 1.0 + i as f64 * 1.5;
        let ot = 0.25 * (1 + i % 2) as f64;
        rough += kmax * (ct + ot);
        analyses.push(
            AnalysisProfile::new(format!("A{i}"))
                .with_compute(ct, 0.0)
                .with_output(ot, 0.0, 1)
                .with_weight((1 + i % 3) as f64)
                .with_interval(itv),
        );
    }
    ScheduleProblem::new(
        analyses,
        ResourceConfig::from_total_threshold(steps, rough * 0.6, 1e12, 1e9),
    )
    .expect("valid instance")
}

fn opts(engine: SimplexEngine) -> SolveOptions {
    SolveOptions {
        engine,
        threads: 1,
        // weights are integral => objective integral => gap < 1 is exact
        abs_gap: 0.999,
        ..SolveOptions::default()
    }
}

fn run_engine(problem: &ScheduleProblem, engine: SimplexEngine) -> EngineRun {
    let (model, _) = build_exact(problem);
    let o = opts(engine);

    let t0 = Instant::now();
    let lp = solve_lp_relaxation(&model, &o).expect("LP relaxation solvable");
    let lp_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let sol = milp::solve(&model, &o).expect("MILP solvable");
    let milp_wall_ms = t1.elapsed().as_secs_f64() * 1e3;

    EngineRun {
        lp_wall_ms,
        lp_pivots: lp.iterations,
        milp_wall_ms,
        nodes: sol.nodes,
        total_pivots: sol.stats.lp_pivots,
        refactorizations: sol.stats.refactorizations,
        max_eta_len: sol.stats.max_eta_len,
        ftran_ms: sol.stats.ftran_time.as_secs_f64() * 1e3,
        btran_ms: sol.stats.btran_time.as_secs_f64() * 1e3,
    }
}

/// Runs the sweep over `grid`.
pub fn run(grid: &[(usize, usize)]) -> Outcome {
    let mut points = Vec::with_capacity(grid.len());
    let mut t = crate::table::TextTable::new(&[
        "Steps",
        "|A|",
        "rows x cols",
        "LP revised (ms)",
        "LP dense (ms)",
        "LP speedup",
        "MILP revised (ms)",
        "MILP dense (ms)",
        "nodes",
    ]);
    for &(steps, n) in grid {
        let problem = instance(steps, n);
        let (model, _) = build_exact(&problem);
        let (rows, cols) = (model.num_cons(), model.num_vars());
        let revised = run_engine(&problem, SimplexEngine::Revised);
        let dense = run_engine(&problem, SimplexEngine::DenseTableau);
        let p = SweepPoint {
            steps,
            analyses: n,
            rows,
            cols,
            revised,
            dense,
        };
        t.row(&[
            steps.to_string(),
            n.to_string(),
            format!("{rows} x {cols}"),
            format!("{:.2}", revised.lp_wall_ms),
            format!("{:.2}", dense.lp_wall_ms),
            format!("{:.1}x", p.lp_speedup()),
            format!("{:.2}", revised.milp_wall_ms),
            format!("{:.2}", dense.milp_wall_ms),
            format!("{}/{}", revised.nodes, dense.nodes),
        ]);
        points.push(p);
    }
    let report = format!(
        "Exact time-indexed formulation (2*|A|*Steps binaries), both LP\n\
         engines; LP columns time the root relaxation, MILP columns the\n\
         full branch & bound. nodes column is revised/dense.\n{}",
        t.render()
    );
    Outcome { points, report }
}

fn engine_json(r: &EngineRun) -> Value {
    let mut o = std::collections::BTreeMap::new();
    o.insert("lp_wall_ms".into(), Value::Number(r.lp_wall_ms));
    o.insert("lp_pivots".into(), Value::Number(r.lp_pivots as f64));
    o.insert("milp_wall_ms".into(), Value::Number(r.milp_wall_ms));
    o.insert("nodes".into(), Value::Number(r.nodes as f64));
    o.insert("total_pivots".into(), Value::Number(r.total_pivots as f64));
    o.insert(
        "refactorizations".into(),
        Value::Number(r.refactorizations as f64),
    );
    o.insert("max_eta_len".into(), Value::Number(r.max_eta_len as f64));
    o.insert("ftran_ms".into(), Value::Number(r.ftran_ms));
    o.insert("btran_ms".into(), Value::Number(r.btran_ms));
    Value::Object(o)
}

impl Outcome {
    /// Serializes the sweep in the `BENCH_milp.json` schema (see
    /// `EXPERIMENTS.md`).
    pub fn to_json(&self) -> Value {
        let instances: Vec<Value> = self
            .points
            .iter()
            .map(|p| {
                let mut o = std::collections::BTreeMap::new();
                o.insert("steps".into(), Value::Number(p.steps as f64));
                o.insert("analyses".into(), Value::Number(p.analyses as f64));
                o.insert("rows".into(), Value::Number(p.rows as f64));
                o.insert("cols".into(), Value::Number(p.cols as f64));
                o.insert("revised".into(), engine_json(&p.revised));
                o.insert("dense_tableau".into(), engine_json(&p.dense));
                o.insert("lp_speedup".into(), Value::Number(p.lp_speedup()));
                Value::Object(o)
            })
            .collect();
        let mut root = std::collections::BTreeMap::new();
        root.insert(
            "schema".into(),
            Value::String("bench/milp-engine-sweep/v1".into()),
        );
        root.insert("instances".into(), Value::Array(instances));
        root.insert(
            "largest_lp_speedup".into(),
            Value::Number(self.points.last().map_or(0.0, |p| p.lp_speedup())),
        );
        Value::Object(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_runs_and_serializes() {
        let o = run(&SMOKE_GRID);
        assert_eq!(o.points.len(), SMOKE_GRID.len());
        for p in &o.points {
            // both engines reached the same search outcome
            assert!(p.revised.lp_pivots > 0 && p.dense.lp_pivots > 0);
            assert!(p.revised.refactorizations > 0, "revised telemetry flows");
            assert_eq!(p.dense.refactorizations, 0, "dense has no eta file");
        }
        let json = o.to_json().to_string_pretty();
        assert!(json.contains("bench/milp-engine-sweep/v1"));
        assert!(json.contains("largest_lp_speedup"));
        // the schema round-trips through the vendored parser
        insitu_types::json::Value::parse(&json).expect("valid JSON");
    }

    #[test]
    fn engines_agree_on_smoke_objectives() {
        for &(steps, n) in &SMOKE_GRID {
            let problem = instance(steps, n);
            let (model, _) = insitu_core::formulation::build_exact(&problem);
            let r = milp::solve(&model, &opts(SimplexEngine::Revised)).unwrap();
            let d = milp::solve(&model, &opts(SimplexEngine::DenseTableau)).unwrap();
            assert!(
                (r.objective - d.objective).abs() < 1e-6,
                "steps={steps} n={n}: revised {} vs dense {}",
                r.objective,
                d.objective
            );
        }
    }
}
