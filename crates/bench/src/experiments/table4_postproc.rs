//! Table 4: post-processing vs in-situ MSD — for real.
//!
//! The simulation writes its trajectory to disk; a serial post-processing
//! pass then re-reads every frame and computes the MSD, while the in-situ
//! path computes the same MSD from live memory at the same cadence. The
//! paper's observation (12 544 atoms: 23.89 s read + 1.03 s analyze vs
//! 0.01 s in-situ; 100 352 atoms: 2413 s + 17.85 s vs 0.03 s): reading
//! dominates, the gap grows with the atom count, and in-situ wins by
//! orders of magnitude. We report measured local numbers plus the modeled
//! read time on HPC shared storage (serial reader, as in the paper).

use crate::table::TextTable;
use insitu_core::runtime::Analysis as _;
use insitu_types::{AnalysisSchedule, Schedule};
use mdsim::analysis::Msd;
use mdsim::dump::{Frame, TrajectoryReader, TrajectoryWriter};
use mdsim::{water_ions, BuilderParams, Species};
use perfmodel::Stopwatch;

/// Paper rows: (atoms, read s, post-process s, in-situ s).
pub const PAPER_ROWS: [(usize, f64, f64, f64); 2] =
    [(12_544, 23.89, 1.03, 0.01), (100_352, 2413.11, 17.85, 0.03)];

/// Experiment configuration (shrunk in unit tests).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Atom counts to run.
    pub atom_counts: [usize; 2],
    /// Simulation steps.
    pub steps: usize,
    /// Trajectory output cadence (steps per frame — paper: 10 frames).
    pub output_every: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            atom_counts: [12_544, 100_352],
            steps: 100,
            output_every: 10,
        }
    }
}

/// One reproduced row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Number of atoms.
    pub atoms: usize,
    /// Measured local trajectory read(+parse) time.
    pub read_time: f64,
    /// Modeled read time on a serial HPC reader (paper's setting).
    pub modeled_hpc_read: f64,
    /// Measured post-processing MSD analyze time (all frames).
    pub postprocess_time: f64,
    /// Measured in-situ MSD analyze time (all analysis steps).
    pub insitu_time: f64,
    /// Trajectory size in bytes.
    pub traj_bytes: u64,
}

/// Experiment result.
#[derive(Debug)]
pub struct Outcome {
    /// One row per atom count.
    pub rows: Vec<Row>,
    /// Printable report.
    pub report: String,
}

/// Computes the MSD of tracked species of `frame` against reference
/// positions captured from the first frame (serial post-processing tool).
fn frame_msd(reference: &[(usize, [f64; 3])], frame: &Frame) -> f64 {
    let mut sum = 0.0;
    for &(i, r) in reference {
        let dx = frame.pos[0][i] - r[0];
        let dy = frame.pos[1][i] - r[1];
        let dz = frame.pos[2][i] - r[2];
        sum += dx * dx + dy * dy + dz * dz;
    }
    sum / reference.len().max(1) as f64
}

/// Runs the experiment with an explicit configuration.
pub fn run_with(cfg: Config) -> Outcome {
    let mut rows = Vec::new();
    let tmp = std::env::temp_dir();
    for &atoms in &cfg.atom_counts {
        let mut sys = water_ions(&BuilderParams {
            n_particles: atoms,
            ..Default::default()
        });
        // --- coupled run: in-situ MSD + trajectory output ---
        let analysis_steps: Vec<usize> = (1..=cfg.steps)
            .filter(|j| j % cfg.output_every == 0)
            .collect();
        let mut schedule = Schedule::empty(1);
        schedule.per_analysis[0] = AnalysisSchedule::new(analysis_steps.clone(), vec![]);
        let path = tmp.join(format!("table4_{}_{}.trj", std::process::id(), atoms));
        let mut writer = TrajectoryWriter::create(&path).expect("create trajectory");
        let mut msd = Msd::new("msd (A4)", vec![Species::Hydronium, Species::Ion]);
        msd.setup(&sys);
        let mut insitu_time = 0.0;
        for j in 1..=cfg.steps {
            sys.step();
            if j % cfg.output_every == 0 {
                let sw = Stopwatch::start();
                msd.analyze(&sys);
                insitu_time += sw.elapsed();
                writer
                    .write_frame(&Frame::capture(&sys))
                    .expect("write frame");
            }
        }
        let traj_bytes = writer.finish().expect("finish trajectory");

        // --- post-processing: read everything back, then analyze ---
        let sw = Stopwatch::start();
        let mut reader = TrajectoryReader::open(&path).expect("open trajectory");
        let frames = reader.read_all().expect("read frames");
        let read_time = sw.elapsed();
        let sw = Stopwatch::start();
        let first = &frames[0];
        let reference: Vec<(usize, [f64; 3])> = first
            .of_species(Species::Hydronium)
            .into_iter()
            .chain(first.of_species(Species::Ion))
            .map(|i| (i, [first.pos[0][i], first.pos[1][i], first.pos[2][i]]))
            .collect();
        let mut acc = 0.0;
        for f in &frames {
            acc += frame_msd(&reference, f);
        }
        std::hint::black_box(acc);
        let postprocess_time = sw.elapsed();
        std::fs::remove_file(&path).ok();

        // serial HPC reader model: one rank parsing a text-ish trajectory
        // from shared storage at ~40 MB/s effective (the paper's custom
        // serial tool on a workstation reading HPC output)
        let modeled_hpc_read = traj_bytes as f64 / 40.0e6;

        rows.push(Row {
            atoms,
            read_time,
            modeled_hpc_read,
            postprocess_time,
            insitu_time,
            traj_bytes,
        });
    }
    let mut t = TextTable::new(&[
        "atoms",
        "read (s)",
        "HPC-model read (s)",
        "post-proc (s)",
        "in-situ (s)",
        "| paper read",
        "paper pp",
        "paper insitu",
    ]);
    for (row, &(patoms, pread, ppp, pis)) in rows.iter().zip(&PAPER_ROWS) {
        t.row(&[
            row.atoms.to_string(),
            format!("{:.3}", row.read_time),
            format!("{:.1}", row.modeled_hpc_read),
            format!("{:.3}", row.postprocess_time),
            format!("{:.4}", row.insitu_time),
            format!("| {pread} ({patoms})"),
            format!("{ppp}"),
            format!("{pis}"),
        ]);
    }
    let report = format!(
        "MSD analysis of water+ions, {} steps, trajectory frame every {}\n\
         steps. Post-processing must read the trajectory back; in-situ\n\
         computes from live memory.\n{}",
        cfg.steps,
        cfg.output_every,
        t.render()
    );
    Outcome { rows, report }
}

/// Runs at the paper's atom counts.
pub fn run() -> Outcome {
    run_with(Config::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_core::runtime::{run_coupled, CouplerConfig};

    fn small() -> Config {
        Config {
            atom_counts: [4_000, 16_000],
            steps: 30,
            output_every: 10,
        }
    }

    #[test]
    fn insitu_beats_postprocessing() {
        let o = run_with(small());
        for r in &o.rows {
            let post = r.read_time + r.postprocess_time;
            assert!(
                post > r.insitu_time,
                "{} atoms: post {post} !> insitu {}",
                r.atoms,
                r.insitu_time
            );
            // the modeled HPC read alone dwarfs the in-situ analysis
            assert!(r.modeled_hpc_read > 10.0 * r.insitu_time);
        }
    }

    #[test]
    fn gap_grows_with_atom_count() {
        let o = run_with(small());
        assert!(o.rows[1].traj_bytes > 3 * o.rows[0].traj_bytes);
        assert!(o.rows[1].modeled_hpc_read > 3.0 * o.rows[0].modeled_hpc_read);
    }

    #[test]
    fn msd_values_agree_between_paths() {
        // the post-processing frame_msd and the in-situ kernel measure the
        // same quantity on the final frame (up to image unwrapping, which
        // stays zero over a short run)
        let mut sys = water_ions(&BuilderParams {
            n_particles: 2_000,
            ..Default::default()
        });
        let mut msd = Msd::new("m", vec![Species::Hydronium, Species::Ion]);
        msd.setup(&sys);
        let f0 = Frame::capture(&sys);
        let reference: Vec<(usize, [f64; 3])> = f0
            .of_species(Species::Hydronium)
            .into_iter()
            .chain(f0.of_species(Species::Ion))
            .map(|i| (i, [f0.pos[0][i], f0.pos[1][i], f0.pos[2][i]]))
            .collect();
        for _ in 0..5 {
            sys.step();
        }
        let live = msd.compute(&sys);
        let replay = frame_msd(&reference, &Frame::capture(&sys));
        assert!(
            (live - replay).abs() < 1e-9 + live * 1e-6,
            "in-situ {live} vs post {replay}"
        );
    }

    #[test]
    fn coupler_variant_matches_manual_loop() {
        // sanity: the runtime coupler drives the same analysis cadence
        let mut sys = water_ions(&BuilderParams {
            n_particles: 1_000,
            ..Default::default()
        });
        let mut schedule = Schedule::empty(1);
        schedule.per_analysis[0] = AnalysisSchedule::new(vec![5, 10], vec![]);
        let msd = Msd::new("m", vec![Species::Ion]);
        let mut analyses: Vec<Box<dyn insitu_core::runtime::Analysis<mdsim::System>>> =
            vec![Box::new(msd)];
        let report = run_coupled(
            &mut sys,
            &mut analyses,
            &schedule,
            &CouplerConfig {
                steps: 10,
                sim_output_every: 0,
            },
        );
        assert_eq!(report.analysis_times[0].analyze_count, 2);
        assert_eq!(report.trace.sim_steps(), 10);
    }
}
