//! Table 5: analyses frequencies vs threshold (% of simulation time).
//!
//! 100 M-atom water+ions on 16 384 cores of Mira, 1000 steps, equal
//! weights, `itv = 100`. The paper's total simulation time is 646.78 s;
//! thresholds 20/10/5/1 % of that. Expected shape: A1–A3 pinned at 10
//! (max frequency), A4 decaying with the threshold and dropping to 0 at
//! 1 %, actual analysis time always within the threshold.

use crate::scale::paper_quoted;
use crate::table::TextTable;
use insitu_core::{Advisor, AdvisorOptions};
use insitu_types::{ResourceConfig, ScheduleProblem, GIB};

/// Paper's Table 5 rows: (threshold %, A1, A2, A3, A4, analyses time, % within).
pub const PAPER_ROWS: [(f64, usize, usize, usize, usize, f64, f64); 4] = [
    (20.0, 10, 10, 10, 4, 103.47, 80.0),
    (10.0, 10, 10, 10, 2, 52.79, 81.6),
    (5.0, 10, 10, 10, 1, 27.45, 84.87),
    (1.0, 10, 10, 10, 0, 2.11, 32.66),
];

/// Total simulation time for 1000 steps on 16 384 cores (paper §5.3.2).
pub const SIM_TIME: f64 = 646.78;

/// One reproduced row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Threshold as a percentage of simulation time.
    pub threshold_pct: f64,
    /// Recommended counts for A1..A4.
    pub counts: [usize; 4],
    /// Predicted total analyses time.
    pub analyses_time: f64,
    /// Percentage of the threshold actually used.
    pub within_pct: f64,
}

/// Experiment result.
#[derive(Debug)]
pub struct Outcome {
    /// Reproduced rows, same order as [`PAPER_ROWS`].
    pub rows: Vec<Row>,
    /// Printable report.
    pub report: String,
}

/// Runs the experiment.
pub fn run() -> Outcome {
    let advisor = Advisor::new(AdvisorOptions::default());
    let mut rows = Vec::new();
    let mut telemetry = String::new();
    let mut t = TextTable::new(&[
        "Threshold % (s)",
        "A1",
        "A2",
        "A3",
        "A4",
        "time (s)",
        "% within",
        "| paper A1-A4",
        "paper time",
        "paper %",
    ]);
    for &(pct, pa1, pa2, pa3, pa4, ptime, ppct) in &PAPER_ROWS {
        let budget = SIM_TIME * pct / 100.0;
        let problem = ScheduleProblem::new(
            paper_quoted::waterions_table5(),
            ResourceConfig::from_total_threshold(1000, budget, 1024.0 * GIB, GIB),
        )
        .expect("valid problem");
        let rec = advisor.recommend(&problem).expect("solvable");
        telemetry.push_str(&format!(
            "  {pct:>4}%: {}\n",
            rec.solver_stats.summary()
        ));
        let row = Row {
            threshold_pct: pct,
            counts: [rec.counts[0], rec.counts[1], rec.counts[2], rec.counts[3]],
            analyses_time: rec.predicted_time,
            within_pct: rec.budget_utilization_percent(),
        };
        t.row(&[
            format!("{pct} ({budget:.2})"),
            row.counts[0].to_string(),
            row.counts[1].to_string(),
            row.counts[2].to_string(),
            row.counts[3].to_string(),
            format!("{:.2}", row.analyses_time),
            format!("{:.1}", row.within_pct),
            format!("| {pa1} {pa2} {pa3} {pa4}"),
            format!("{ptime:.2}"),
            format!("{ppct}"),
        ]);
        rows.push(row);
    }
    let report = format!(
        "Water+ions, 100M atoms, 16384 cores, 1000 steps, itv=100.\n\
         Inputs reverse-engineered from the paper's own Table 5 (see scale::paper_quoted).\n{}\
         solver telemetry per row:\n{telemetry}",
        t.render()
    );
    Outcome { rows, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let o = run();
        assert_eq!(o.rows.len(), 4);
        for r in &o.rows {
            // A1–A3 always at max frequency
            assert_eq!(r.counts[0], 10, "A1 @ {}%", r.threshold_pct);
            assert_eq!(r.counts[1], 10);
            assert_eq!(r.counts[2], 10);
            // never exceeds the threshold
            assert!(r.within_pct <= 100.0 + 1e-9);
        }
        // A4 decays monotonically and hits 0 at 1%
        let a4: Vec<usize> = o.rows.iter().map(|r| r.counts[3]).collect();
        assert!(a4.windows(2).all(|w| w[0] >= w[1]), "A4 decays: {a4:?}");
        assert!(a4[0] >= 4, "generous threshold fits at least the paper's 4");
        assert_eq!(a4[3], 0, "A4 infeasible at 1%");
        assert!(o.report.contains("A4"));
    }
}
