//! Table 6: analyses frequencies under a *total* time threshold.
//!
//! 1 B-atom rhodopsin on 32 768 cores, 1000 steps, equal weights,
//! `itv = 100`; the user specifies an absolute budget (200…10 s) instead
//! of a percentage. Expected shape: cheap R1 pinned at 10 everywhere;
//! R2/R3 shrink with the budget and vanish at 20 s and 10 s; utilization
//! high (>85 %) except at the degenerate 10 s row.

use crate::scale::paper_quoted;
use crate::table::TextTable;
use insitu_core::{Advisor, AdvisorOptions};
use insitu_types::{ResourceConfig, ScheduleProblem, GIB};

/// Paper rows: (threshold s, R1, R2, R3, % within threshold).
pub const PAPER_ROWS: [(f64, usize, usize, usize, f64); 5] = [
    (200.0, 10, 4, 7, 94.59),
    (100.0, 10, 2, 3, 85.99),
    (60.0, 10, 1, 2, 86.01),
    (20.0, 10, 1, 0, 86.11),
    (10.0, 10, 0, 0, 0.3),
];

/// One reproduced row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Total threshold in seconds.
    pub threshold: f64,
    /// Counts for R1..R3.
    pub counts: [usize; 3],
    /// Percentage of the threshold used.
    pub within_pct: f64,
}

/// Experiment result.
#[derive(Debug)]
pub struct Outcome {
    /// Reproduced rows.
    pub rows: Vec<Row>,
    /// Printable report.
    pub report: String,
}

/// Runs the experiment.
pub fn run() -> Outcome {
    let advisor = Advisor::new(AdvisorOptions::default());
    let mut rows = Vec::new();
    let mut telemetry = String::new();
    let mut t = TextTable::new(&[
        "Threshold (s)",
        "R1",
        "R2",
        "R3",
        "% within",
        "| paper R1-R3",
        "paper %",
    ]);
    for &(threshold, p1, p2, p3, ppct) in &PAPER_ROWS {
        let problem = ScheduleProblem::new(
            paper_quoted::rhodopsin_table6(),
            ResourceConfig::from_total_threshold(1000, threshold, 1024.0 * GIB, GIB),
        )
        .expect("valid problem");
        let rec = advisor.recommend(&problem).expect("solvable");
        telemetry.push_str(&format!(
            "  {threshold:>5}s: {}\n",
            rec.solver_stats.summary()
        ));
        let row = Row {
            threshold,
            counts: [rec.counts[0], rec.counts[1], rec.counts[2]],
            within_pct: rec.budget_utilization_percent(),
        };
        t.row(&[
            format!("{threshold}"),
            row.counts[0].to_string(),
            row.counts[1].to_string(),
            row.counts[2].to_string(),
            format!("{:.1}", row.within_pct),
            format!("| {p1} {p2} {p3}"),
            format!("{ppct}"),
        ]);
        rows.push(row);
    }
    let report = format!(
        "Rhodopsin, 1B atoms, 32768 cores, 1000 steps; per-(analysis+output)\n\
         times 0.003/17.193/17.194 s as quoted by the paper.\n{}\
         solver telemetry per row:\n{telemetry}",
        t.render()
    );
    Outcome { rows, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let o = run();
        assert_eq!(o.rows.len(), 5);
        // R1 always at max frequency (it is essentially free)
        for r in &o.rows {
            assert_eq!(r.counts[0], 10, "R1 @ {}s", r.threshold);
            assert!(r.within_pct <= 100.0 + 1e-9);
        }
        // total heavy-analysis count decays with the budget
        let heavy: Vec<usize> = o.rows.iter().map(|r| r.counts[1] + r.counts[2]).collect();
        assert!(
            heavy.windows(2).all(|w| w[0] >= w[1]),
            "R2+R3 decays: {heavy:?}"
        );
        assert!(heavy[0] >= 8, "200s fits many heavy analyses: {}", heavy[0]);
        assert_eq!(heavy[4], 0, "10s fits none");
        // generous budgets are used efficiently (paper: >85%)
        assert!(o.rows[0].within_pct > 85.0, "{}", o.rows[0].within_pct);
        // the degenerate row uses almost nothing (paper: 0.3%)
        assert!(o.rows[4].within_pct < 5.0, "{}", o.rows[4].within_pct);
    }
}
