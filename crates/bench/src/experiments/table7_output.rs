//! Table 7: trading simulation-output frequency for in-situ analyses.
//!
//! The 1 B-atom rhodopsin simulation writes 91 GB per output step, by
//! default every 100 steps (10 outputs per 1000-step run). The paper's
//! point: halving the output frequency halves the output time, and the
//! freed seconds can be handed to the in-situ analysis threshold, raising
//! the number of feasible analyses (12 → 18 → 21 in the paper). The same
//! experiment also quantifies the NVRAM what-if (§5.3.5's "higher
//! bandwidth storage").

use crate::scale::paper_quoted;
use crate::table::TextTable;
use insitu_core::{Advisor, AdvisorOptions};
use insitu_types::{ResourceConfig, ScheduleProblem, GIB};
use machine::{Machine, StorageTier};

/// Paper rows: (output time s, threshold s, number of analyses).
pub const PAPER_ROWS: [(f64, f64, usize); 3] =
    [(200.6, 50.0, 12), (100.3, 150.3, 18), (50.1, 200.5, 21)];

/// Simulation output volume per output step (paper: 91 GB).
pub const OUTPUT_BYTES: f64 = 91.0e9;

/// One reproduced row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Number of simulation output steps in the run.
    pub sim_outputs: usize,
    /// Modeled total simulation-output time.
    pub output_time: f64,
    /// Analysis threshold granted (base + freed output time).
    pub threshold: f64,
    /// Total number of scheduled analyses.
    pub analyses: usize,
}

/// Experiment result.
#[derive(Debug)]
pub struct Outcome {
    /// One row per output frequency (10, 5, 2.5 outputs-equivalents).
    pub rows: Vec<Row>,
    /// NVRAM what-if: analyses count with output redirected to NVRAM at
    /// the default output frequency.
    pub nvram_analyses: usize,
    /// Printable report.
    pub report: String,
}

/// Runs the experiment.
pub fn run() -> Outcome {
    let machine = Machine::mira();
    let part = machine.partition_for_ranks(32_768).expect("2048 nodes");
    let advisor = Advisor::new(AdvisorOptions::default());
    let one_output = machine.write_time(OUTPUT_BYTES, &part, StorageTier::ParallelFs);
    let base_threshold = 50.0; // the paper's first-row user threshold

    let mut telemetry = String::new();
    let mut solve = |threshold: f64| -> usize {
        let problem = ScheduleProblem::new(
            paper_quoted::rhodopsin_table6(),
            ResourceConfig::from_total_threshold(1000, threshold, 1024.0 * GIB, GIB),
        )
        .expect("valid problem");
        let rec = advisor.recommend(&problem).expect("solvable");
        telemetry.push_str(&format!(
            "  thr {threshold:>6.1}s: {}\n",
            rec.solver_stats.summary()
        ));
        rec.total_analyses()
    };

    let mut rows = Vec::new();
    let mut t = TextTable::new(&[
        "sim outputs",
        "output time (s)",
        "threshold (s)",
        "# analyses",
        "| paper out (s)",
        "paper thr",
        "paper #",
    ]);
    for (idx, &(p_out, p_thr, p_n)) in PAPER_ROWS.iter().enumerate() {
        let sim_outputs = 10usize >> idx; // 10, 5, 2 (paper halves twice)
        let output_time = one_output * sim_outputs as f64;
        // freed time relative to the default 10-output schedule
        let freed = one_output * (10 - sim_outputs) as f64;
        let threshold = base_threshold + freed;
        let analyses = solve(threshold);
        t.row(&[
            sim_outputs.to_string(),
            format!("{output_time:.1}"),
            format!("{threshold:.1}"),
            analyses.to_string(),
            format!("| {p_out}"),
            format!("{p_thr}"),
            p_n.to_string(),
        ]);
        rows.push(Row {
            sim_outputs,
            output_time,
            threshold,
            analyses,
        });
    }

    // NVRAM what-if: all 10 outputs, but to a 2 GB/s-per-node NVRAM tier
    let nv_machine = Machine::mira_with_nvram(2.0e9);
    let nv_out = nv_machine.write_time(OUTPUT_BYTES, &part, StorageTier::Nvram);
    let nv_threshold = base_threshold + (one_output - nv_out) * 10.0;
    let nvram_analyses = solve(nv_threshold);

    let report = format!(
        "Rhodopsin, 1B atoms, 32768 cores (2048 nodes); 91 GB per simulation\n\
         output step through the Mira I/O model ({:.1} s per write).\n{}\
         NVRAM what-if: 10 outputs to NVRAM ({:.1} s each) frees enough time\n\
         for {} analyses at the same base threshold.\n\
         solver telemetry per solve:\n{telemetry}",
        one_output,
        t.render(),
        nv_out,
        nvram_analyses,
    );
    Outcome {
        rows,
        nvram_analyses,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fewer_outputs_mean_more_analyses() {
        let o = run();
        assert_eq!(o.rows.len(), 3);
        // output time halves with frequency
        assert!((o.rows[1].output_time / o.rows[0].output_time - 0.5).abs() < 0.01);
        // analyses count strictly grows as the freed time is reinvested
        let n: Vec<usize> = o.rows.iter().map(|r| r.analyses).collect();
        assert!(n.windows(2).all(|w| w[1] > w[0]), "monotone growth: {n:?}");
        // same order of magnitude as the paper's 12 -> 21
        assert!(n[0] >= 10 && n[0] <= 16, "first row {n:?}");
        assert!(*n.last().unwrap() >= 18, "last row {n:?}");
    }

    #[test]
    fn output_time_magnitude_matches_paper() {
        // paper: 200.6 s for 10 writes of 91 GB on 2048 nodes
        let o = run();
        let ten_outputs = o.rows[0].output_time;
        assert!(
            ten_outputs > 80.0 && ten_outputs < 500.0,
            "10x91GB write time {ten_outputs}"
        );
    }

    #[test]
    fn nvram_beats_parallel_fs() {
        let o = run();
        assert!(
            o.nvram_analyses >= o.rows[2].analyses,
            "NVRAM frees at least as much time as skipping outputs"
        );
    }
}
