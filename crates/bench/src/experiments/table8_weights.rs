//! Table 8: the effect of importance weights on the FLASH schedule.
//!
//! Sedov on 16 384 cores, 1000 steps, 5 % threshold of an 870 s simulation
//! (43.5 s budget). Under equal importance I1 = (1,1,1) the optimizer
//! spends the budget on the cheap-per-second F2/F3; re-weighting to
//! I2 = (2,1,2) shifts budget from F2 to the now-more-valuable F1 — the
//! paper's headline "importance flips the schedule" observation
//! (paper rows: I1 → (1, 10, 10), I2 → (5, 0, 10)).

use crate::scale::paper_quoted;
use crate::table::TextTable;
use insitu_core::{Advisor, AdvisorOptions};
use insitu_types::{ResourceConfig, ScheduleProblem, GIB};

/// The paper's frequencies: (weights, F1, F2, F3).
pub const PAPER_ROWS: [([f64; 3], usize, usize, usize); 2] =
    [([1.0, 1.0, 1.0], 1, 10, 10), ([2.0, 1.0, 2.0], 5, 0, 10)];

/// Time budget: 5 % of the 870 s simulation.
pub const BUDGET: f64 = 43.5;

/// One reproduced row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Importance weights used.
    pub weights: [f64; 3],
    /// Recommended frequencies F1..F3.
    pub counts: [usize; 3],
}

/// Experiment result.
#[derive(Debug)]
pub struct Outcome {
    /// Row per weighting.
    pub rows: Vec<Row>,
    /// Printable report.
    pub report: String,
}

/// Runs the experiment.
pub fn run() -> Outcome {
    let advisor = Advisor::new(AdvisorOptions::default());
    let mut rows = Vec::new();
    let mut telemetry = String::new();
    let mut t = TextTable::new(&["weights", "F1", "F2", "F3", "| paper F1-F3"]);
    for &(weights, p1, p2, p3) in &PAPER_ROWS {
        let problem = ScheduleProblem::new(
            paper_quoted::flash_table8(weights),
            ResourceConfig::from_total_threshold(1000, BUDGET, 1024.0 * GIB, GIB),
        )
        .expect("valid problem");
        let rec = advisor.recommend(&problem).expect("solvable");
        telemetry.push_str(&format!(
            "  {weights:?}: {}\n",
            rec.solver_stats.summary()
        ));
        let row = Row {
            weights,
            counts: [rec.counts[0], rec.counts[1], rec.counts[2]],
        };
        t.row(&[
            format!("{:?}", weights),
            row.counts[0].to_string(),
            row.counts[1].to_string(),
            row.counts[2].to_string(),
            format!("| {p1} {p2} {p3}"),
        ]);
        rows.push(row);
    }
    let report = format!(
        "FLASH Sedov, 16384 cores, 1000 steps, 43.5 s budget (5% of 870 s).\n\
         F1/F2/F3 step times 3.5 s / 1.25 s / 2.3 ms as quoted by the paper.\n{}\
         solver telemetry per row:\n{telemetry}",
        t.render()
    );
    Outcome { rows, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_flip_shifts_budget_to_f1() {
        let o = run();
        let equal = &o.rows[0];
        let biased = &o.rows[1];
        // cheap F3 maxed out in both cases
        assert_eq!(equal.counts[2], 10);
        assert_eq!(biased.counts[2], 10);
        // I2 trades F2 frequency for F1 frequency
        assert!(
            biased.counts[0] > equal.counts[0],
            "F1 gains: {} -> {}",
            equal.counts[0],
            biased.counts[0]
        );
        assert!(
            biased.counts[1] < equal.counts[1],
            "F2 loses: {} -> {}",
            equal.counts[1],
            biased.counts[1]
        );
    }
}
