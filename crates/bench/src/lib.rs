//! Benchmark & reproduction harness.
//!
//! One binary per paper table/figure (see `src/bin/`), backed by this
//! library:
//!
//! * [`measure`] — runs the *real* mdsim/amrsim kernels at laptop scale and
//!   extracts per-element unit costs (the workspace's HPM profiling pass),
//! * [`scale`] — combines those unit costs with the [`machine`] model
//!   (partition sizes, network diameters, collective and I/O costs) to
//!   produce paper-scale [`insitu_types::AnalysisProfile`]s — the same
//!   measure-small/predict-big methodology as the paper's §4,
//! * [`table`] — text-table formatting for the reproduction reports.
//!
//! Absolute numbers will differ from the paper (its substrate was a Blue
//! Gene/Q; ours is a calibrated model), but each binary prints the paper's
//! values next to ours so the *shape* — who wins, what decays, where the
//! crossovers sit — can be compared directly.

pub mod experiments;
pub mod measure;
pub mod scale;
pub mod table;
