//! Laptop-scale measurement of the real analysis kernels.
//!
//! Each function runs an actual mdsim/amrsim kernel on a real system at two
//! or three sizes, times it with [`perfmodel::Stopwatch`], and returns a
//! per-element unit cost (seconds per particle / per cell). These unit
//! costs are the measured anchors that [`crate::scale`] extrapolates to
//! paper scale — the same "measure a few points, predict the rest"
//! methodology as the paper's §4.

use amrsim::analysis::{f1_vorticity, f2_l1_norm, f3_l2_norm};
use amrsim::sedov::SedovSetup;
use amrsim::FlashSim;
use insitu_core::runtime::Simulator;
use mdsim::analysis::{a1_hydronium_rdf, a2_ion_rdf, a4_msd, r1_gyration, r2_membrane_histogram};
use mdsim::{water_ions, BuilderParams};
use parallel::Exec;
use perfmodel::Stopwatch;
use std::sync::OnceLock;

/// Per-element unit costs of every analysis kernel (seconds/element) plus
/// simulation step costs.
#[derive(Debug, Clone, Copy)]
pub struct UnitCosts {
    /// RDF accumulation cost per particle (A1/A2 shape).
    pub rdf_per_particle: f64,
    /// MSD cost per *tracked* particle (A4 shape; non-scaling kernel).
    pub msd_per_particle: f64,
    /// VACF correlation cost per tracked particle per window entry.
    pub vacf_per_particle: f64,
    /// Radius-of-gyration cost per member particle (R1 shape).
    pub gyration_per_particle: f64,
    /// 2-D density histogram cost per particle (R2/R3 shape).
    pub histogram_per_particle: f64,
    /// MD step cost per particle.
    pub md_step_per_particle: f64,
    /// Vorticity cost per cell (F1 shape).
    pub vorticity_per_cell: f64,
    /// L1-norm cost per cell (F2 shape).
    pub l1_per_cell: f64,
    /// L2-norm cost per sampled cell (F3 shape).
    pub l2_per_cell: f64,
    /// Hydro step cost per cell.
    pub hydro_step_per_cell: f64,
    /// Thread count the anchors were measured at. Pinned to 1 so that the
    /// extrapolated profiles stay comparable across machines regardless of
    /// `INSITU_THREADS`; recorded here so profile metadata can state it.
    pub anchor_threads: usize,
}

fn time_per<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    // warm-up
    f();
    let sw = Stopwatch::start();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    sw.elapsed() / reps as f64
}

/// Measures every unit cost once per process (cached).
pub fn unit_costs() -> &'static UnitCosts {
    static COSTS: OnceLock<UnitCosts> = OnceLock::new();
    COSTS.get_or_init(measure_all)
}

fn measure_all() -> UnitCosts {
    // --- MD side: one 20k-atom water+ions system ---
    let n_md = 20_000;
    let mut sys = water_ions(&BuilderParams {
        n_particles: n_md,
        ..Default::default()
    });
    // anchors are measured single-threaded whatever INSITU_THREADS says:
    // unit costs feed the machine model, which reasons about serial work
    sys.exec = Exec::serial();
    // a few steps so velocities/forces are realistic
    for _ in 0..3 {
        sys.step();
    }
    let mut a1 = a1_hydronium_rdf();
    let rdf_t = time_per(3, || a1.accumulate(&sys));
    let mut a2 = a2_ion_rdf();
    let _ = time_per(1, || a2.accumulate(&sys));

    use insitu_core::runtime::Analysis as _;
    let mut msd = a4_msd();
    msd.setup(&sys);
    let tracked = msd_tracked(&sys);
    let msd_t = time_per(5, || std::hint::black_box(msd.compute(&sys)));

    let mut vacf = mdsim::analysis::a3_vacf(16);
    vacf.setup(&sys);
    for _ in 0..16 {
        vacf.record(&sys);
    }
    let vacf_t = time_per(5, || {
        vacf.compute();
        vacf.correlation.len()
    });

    let mut rho = mdsim::rhodopsin_proxy(&BuilderParams {
        n_particles: n_md,
        ..Default::default()
    });
    rho.exec = Exec::serial();
    let r1 = r1_gyration();
    let protein = rho.species_count(mdsim::Species::Protein).max(1);
    let r1_t = time_per(5, || std::hint::black_box(r1.compute(&rho)));
    let mut r2 = r2_membrane_histogram(64);
    let r2_t = time_per(3, || r2.accumulate(&rho));

    let step_t = time_per(3, || sys.step());

    // --- hydro side: 4³ blocks of 12³ cells ---
    let mut sim = FlashSim::sedov(4, 12, SedovSetup::default());
    sim.exec = Exec::serial();
    for _ in 0..3 {
        sim.advance();
    }
    let cells = sim.mesh.total_cells() as f64;
    let mut f1 = f1_vorticity();
    let f1_t = time_per(3, || std::hint::black_box(f1.compute(&sim)));
    let mut f2 = f2_l1_norm();
    let f2_t = time_per(3, || std::hint::black_box(f2.compute(&sim)));
    let mut f3 = f3_l2_norm();
    let f3_samples = f3.samples_per_step(&sim) as f64;
    let f3_t = time_per(5, || std::hint::black_box(f3.compute(&sim)));
    let hydro_t = time_per(2, || sim.advance());

    let vacf_window = 16.0;
    UnitCosts {
        rdf_per_particle: rdf_t / n_md as f64,
        msd_per_particle: msd_t / tracked as f64,
        vacf_per_particle: vacf_t / (n_md as f64 * vacf_window),
        gyration_per_particle: r1_t / protein as f64,
        histogram_per_particle: r2_t / n_md as f64,
        md_step_per_particle: step_t / n_md as f64,
        vorticity_per_cell: f1_t / cells,
        l1_per_cell: f2_t / cells,
        l2_per_cell: f3_t / f3_samples,
        hydro_step_per_cell: hydro_t / cells,
        anchor_threads: 1,
    }
}

/// Number of particles the MSD kernel tracks in a water+ions system.
pub fn msd_tracked(sys: &mdsim::System) -> usize {
    (sys.species_count(mdsim::Species::Hydronium) + sys.species_count(mdsim::Species::Ion)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_costs_positive_and_sane() {
        let c = unit_costs();
        for (name, v) in [
            ("rdf", c.rdf_per_particle),
            ("msd", c.msd_per_particle),
            ("vacf", c.vacf_per_particle),
            ("gyration", c.gyration_per_particle),
            ("histogram", c.histogram_per_particle),
            ("md step", c.md_step_per_particle),
            ("vorticity", c.vorticity_per_cell),
            ("l1", c.l1_per_cell),
            ("l2", c.l2_per_cell),
            ("hydro step", c.hydro_step_per_cell),
        ] {
            assert!(v > 0.0 && v < 1e-2, "{name} unit cost {v}");
        }
    }

    #[test]
    fn cost_ordering_matches_figure4() {
        // Fig. 4 / §5: RDFs are mid-cost, gyration is trivially cheap per
        // particle group, vorticity is the heavy FLASH kernel.
        let c = unit_costs();
        assert!(
            c.vorticity_per_cell > c.l1_per_cell,
            "F1 per-cell must exceed F2"
        );
        assert!(
            c.md_step_per_particle > c.histogram_per_particle,
            "a full force step outweighs a histogram pass"
        );
    }
}
