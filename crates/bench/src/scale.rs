//! Paper-scale profile construction.
//!
//! Two independent sources for the Table-1 inputs of each experiment:
//!
//! * [`paper_quoted`] — the values the paper itself states (Table 5's
//!   implied per-analysis costs, Table 6's "0.003 / 17.193 / 17.194 sec",
//!   Table 8's "3.5 s / 1.25 s / 2.3 ms"). Feeding these into OUR solver
//!   isolates the scheduling formulation: its recommendations can be
//!   compared row-by-row against the paper's tables.
//! * [`modeled`] — profiles synthesized from the measured unit costs of
//!   the real mini-app kernels ([`crate::measure`]) extrapolated through
//!   the [`machine`] model (partition size, network diameter, collective
//!   and storage costs). Feeding these exercises the full pipeline:
//!   measurement → performance model → machine model → scheduler.

use insitu_types::{AnalysisProfile, Seconds, GIB, KIB, MIB};
use machine::{Machine, Partition, StorageTier};

use crate::measure::unit_costs;

/// The paper's standard run length.
pub const STEPS: usize = 1000;
/// The paper's standard minimum interval between analyses.
pub const ITV: usize = 100;

/// Profiles built from values the paper states directly.
pub mod paper_quoted {
    use super::*;

    /// Table 5's four water+ions analyses (100 M atoms, 16 384 cores).
    /// Unit costs reverse-engineered from the table itself: A1–A3 cost
    /// ~2.11 s for 30 executions total; A4's marginal cost is ~25.3 s
    /// (e.g. 52.79 − 27.45 ≈ 25.3 between the A4=2 and A4=1 rows).
    pub fn waterions_table5() -> Vec<AnalysisProfile> {
        let mk = |name: &str, ct: Seconds, ot: Seconds, cm: f64| {
            AnalysisProfile::new(name)
                .with_compute(ct, cm)
                .with_output(ot, cm / 4.0, 1)
                .with_interval(ITV)
        };
        vec![
            mk("hydronium rdf (A1)", 0.065, 0.005, 0.1 * GIB),
            mk("ion rdf (A2)", 0.065, 0.005, 0.1 * GIB),
            mk("vacf (A3)", 0.066, 0.005, 0.2 * GIB),
            mk("msd (A4)", 20.0, 5.34, 8.0 * GIB),
        ]
    }

    /// Table 6's three rhodopsin analyses (1 B atoms, 32 768 cores): the
    /// paper quotes analysis+output times 0.003 / 17.193 / 17.194 s.
    pub fn rhodopsin_table6() -> Vec<AnalysisProfile> {
        let mk = |name: &str, ct: Seconds, ot: Seconds, cm: f64| {
            AnalysisProfile::new(name)
                .with_compute(ct, cm)
                .with_output(ot, cm / 4.0, 1)
                .with_interval(ITV)
        };
        vec![
            mk("radius of gyration (R1)", 0.002, 0.001, MIB),
            mk("membrane histogram (R2)", 12.0, 5.193, 2.0 * GIB),
            mk("protein histogram (R3)", 12.0, 5.194, 2.0 * GIB),
        ]
    }

    /// Table 8's three FLASH analyses (16 384 cores): compute times
    /// 3.5 s / 1.25 s / 2.3 ms, output costs chosen as in §5.3.6's
    /// "taking into account the analyses and output times".
    pub fn flash_table8(weights: [f64; 3]) -> Vec<AnalysisProfile> {
        let mk = |name: &str, ct: Seconds, ot: Seconds, w: f64| {
            AnalysisProfile::new(name)
                .with_compute(ct, 0.5 * GIB)
                .with_output(ot, 0.1 * GIB, 1)
                .with_interval(ITV)
                .with_weight(w)
        };
        vec![
            mk("vorticity (F1)", 3.5, 0.5, weights[0]),
            mk("L1 error norm (F2)", 1.25, 1.25, weights[1]),
            mk("L2 error norm (F3)", 0.0023, 0.0027, weights[2]),
        ]
    }
}

/// Profiles synthesized from measured kernel unit costs + machine model.
pub mod modeled {
    use super::*;

    /// Fraction of water+ions atoms that are tracked ionic species
    /// (hydronium + ions, ~4 % per the builder).
    const IONIC_FRACTION: f64 = 0.04;

    /// Water+ions analyses (A1–A4) at `n_atoms` on `part`.
    pub fn waterions(n_atoms: f64, part: &Partition, mach: &Machine) -> Vec<AnalysisProfile> {
        let u = unit_costs();
        let ranks = part.ranks() as f64;
        let local = n_atoms / ranks;
        let tracked = n_atoms * IONIC_FRACTION;

        // A1/A2: RDF — embarrassingly parallel pass + histogram allreduce.
        let hist_bytes = 3.0 * 100.0 * 8.0;
        let rdf_ct = u.rdf_per_particle * local + mach.allreduce_time(hist_bytes, part);
        let rdf_out_bytes = 16.0 * KIB;
        let rdf = |name: &str| {
            AnalysisProfile::new(name)
                .with_compute(rdf_ct, 64.0 * MIB)
                .with_output(
                    mach.write_time(rdf_out_bytes, part, StorageTier::ParallelFs),
                    rdf_out_bytes,
                    1,
                )
                .with_interval(ITV)
        };

        // A3: VACF — per-step velocity copy (it/im), windowed correlation.
        let window = 16.0;
        let copy_bytes_rank = 3.0 * 8.0 * local;
        let mem_bw = 8.0e9; // bytes/s per rank for the history memcpy
        let vacf_it = copy_bytes_rank / mem_bw;
        let vacf_im = 3.0 * 8.0 * n_atoms; // aggregate bytes appended per step
        let vacf_ct =
            u.vacf_per_particle * local * window + mach.allreduce_time(8.0 * window, part);
        let vacf_out = 64.0 * KIB;
        let vacf = AnalysisProfile::new("vacf (A3)")
            .with_per_step(vacf_it, vacf_im / STEPS as f64)
            .with_compute(vacf_ct, 0.0)
            .with_output(
                mach.write_time(vacf_out, part, StorageTier::ParallelFs),
                vacf_out,
                1,
            )
            .with_interval(ITV);

        // A4: MSD — the non-scaling kernel: per-molecule displacement
        // series are gathered and correlated over ALL tracked particles
        // against many time origins (multiple-origin averaging is what
        // makes production MSD expensive), so the cost is O(tracked ×
        // origins) independent of the core count (§5.3.3: "takes similar
        // times on all core counts").
        // origin count chosen so that, with the measured per-origin kernel
        // cost, A4 lands in the paper's Figure-5 regime (~20 s per run at
        // 100 M atoms: frequency 10 at 2048 cores collapsing to 1–2 at
        // 32768)
        let origins = 1024.0;
        let msd_ct = u.msd_per_particle * tracked * origins;
        let msd_fm = 3.0 * 8.0 * tracked; // reference positions, aggregate
        let msd_out_bytes = 8.0 * tracked / 100.0;
        let msd = AnalysisProfile::new("msd (A4)")
            .with_fixed(0.0, msd_fm)
            .with_compute(msd_ct, 0.5 * msd_fm)
            .with_output(
                mach.write_time(msd_out_bytes, part, StorageTier::ParallelFs),
                msd_out_bytes,
                1,
            )
            .with_interval(ITV);

        vec![
            rdf("hydronium rdf (A1)"),
            rdf("ion rdf (A2)"),
            vacf,
            msd,
        ]
    }

    /// Rhodopsin analyses (R1–R3) at `n_atoms` on `part`.
    pub fn rhodopsin(n_atoms: f64, part: &Partition, mach: &Machine) -> Vec<AnalysisProfile> {
        let u = unit_costs();
        let ranks = part.ranks() as f64;
        // builder geometry: ~0.7% protein, ~20% membrane of all atoms
        let protein = n_atoms * 0.007;
        let membrane = n_atoms * 0.20;

        let r1_ct = u.gyration_per_particle * protein / ranks + mach.allreduce_time(32.0, part);
        let r1 = AnalysisProfile::new("radius of gyration (R1)")
            .with_compute(r1_ct, MIB)
            .with_output(
                mach.write_time(KIB, part, StorageTier::ParallelFs),
                KIB,
                1,
            )
            .with_interval(ITV);

        // R2/R3: high-resolution stacked 2-D histograms; the dominant cost
        // at scale is the grid reduction + output of the full grid stack.
        let grid_bytes = 4096.0 * 4096.0 * 8.0; // one plane
        let planes = 16.0; // slab-resolved stack
        let hist = |name: &str, subset: f64| {
            let ct = u.histogram_per_particle * subset / ranks
                + mach.allreduce_time(grid_bytes, part) * planes;
            let out_bytes = grid_bytes * planes;
            AnalysisProfile::new(name)
                .with_compute(ct, grid_bytes * planes)
                .with_output(
                    mach.write_time(out_bytes, part, StorageTier::ParallelFs),
                    out_bytes,
                    1,
                )
                .with_interval(ITV)
        };
        vec![
            r1,
            hist("membrane histogram (R2)", membrane),
            hist("protein histogram (R3)", protein),
        ]
    }

    /// FLASH Sedov analyses (F1–F3) at `n_cells` on `part`.
    pub fn flash(n_cells: f64, part: &Partition, mach: &Machine) -> Vec<AnalysisProfile> {
        let u = unit_costs();
        let ranks = part.ranks() as f64;
        let local = n_cells / ranks;
        let f1_ct = u.vorticity_per_cell * local + mach.allreduce_time(16.0, part);
        let f2_ct = u.l1_per_cell * local + mach.allreduce_time(16.0, part);
        let f3_ct = u.l2_per_cell * local / 512.0 + mach.allreduce_time(24.0, part);
        let mk = |name: &str, ct: f64, out_bytes: f64| {
            AnalysisProfile::new(name)
                .with_compute(ct, 8.0 * local)
                .with_output(
                    mach.write_time(out_bytes, part, StorageTier::ParallelFs),
                    out_bytes,
                    1,
                )
                .with_interval(ITV)
        };
        vec![
            mk("vorticity (F1)", f1_ct, 8.0 * n_cells / 64.0),
            mk("L1 error norm (F2)", f2_ct, 4.0 * KIB),
            mk("L2 error norm (F3)", f3_ct, 4.0 * KIB),
        ]
    }

    /// MD simulation time per step at `n_atoms` on `part` (for thresholds
    /// expressed as a fraction of simulation time).
    pub fn md_step_time(n_atoms: f64, part: &Partition) -> Seconds {
        unit_costs().md_step_per_particle * n_atoms / part.ranks() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mira_16k() -> (Machine, Partition) {
        let m = Machine::mira();
        let p = m.partition_for_ranks(16_384).unwrap();
        (m, p)
    }

    #[test]
    fn modeled_waterions_shape_matches_paper() {
        let (m, p) = mira_16k();
        let profiles = modeled::waterions(100e6, &p, &m);
        assert_eq!(profiles.len(), 4);
        let a1 = &profiles[0];
        let a4 = &profiles[3];
        // A4 is the expensive, memory-hungry one (paper §5.3.2)
        assert!(
            a4.compute_time > 10.0 * a1.compute_time,
            "A4 {} vs A1 {}",
            a4.compute_time,
            a1.compute_time
        );
        assert!(a4.fixed_mem > a1.compute_mem);
        for pr in &profiles {
            pr.validate().unwrap();
        }
    }

    #[test]
    fn a4_does_not_scale_with_cores() {
        // Fig. 5: A4 takes similar times on all core counts
        let m = Machine::mira();
        let p_small = m.partition_for_ranks(2048 * 16 / 16).unwrap(); // 2048 ranks? use 2048 cores
        let p_small = {
            let _ = p_small;
            m.partition(128, 16).unwrap() // 2048 ranks
        };
        let p_big = m.partition(2048, 16).unwrap(); // 32768 ranks
        let small = modeled::waterions(100e6, &p_small, &m);
        let big = modeled::waterions(100e6, &p_big, &m);
        let ratio_a4 = small[3].compute_time / big[3].compute_time;
        let ratio_a1 = small[0].compute_time / big[0].compute_time;
        assert!((ratio_a4 - 1.0).abs() < 0.05, "A4 must be flat: {ratio_a4}");
        assert!(ratio_a1 > 4.0, "A1 must strong-scale: {ratio_a1}");
    }

    #[test]
    fn rhodopsin_r1_is_cheapest() {
        let m = Machine::mira();
        let p = m.partition(2048, 16).unwrap();
        let profiles = modeled::rhodopsin(1e9, &p, &m);
        let unit = |a: &AnalysisProfile| a.compute_time + a.output_time;
        assert!(unit(&profiles[0]) < unit(&profiles[1]) / 100.0);
        assert!(unit(&profiles[1]) > 1.0, "R2 in the seconds regime at 1B atoms");
    }

    #[test]
    fn flash_cost_ordering_f1_f2_f3() {
        let (m, p) = mira_16k();
        // paper-scale-ish cell count: 16384^... use 4096 blocks of 16^3
        let profiles = modeled::flash(4096.0 * 4096.0, &p, &m);
        assert!(profiles[0].compute_time > profiles[1].compute_time);
        assert!(profiles[1].compute_time > profiles[2].compute_time);
    }

    #[test]
    fn paper_quoted_sets_validate() {
        for p in paper_quoted::waterions_table5()
            .into_iter()
            .chain(paper_quoted::rhodopsin_table6())
            .chain(paper_quoted::flash_table8([1.0, 1.0, 1.0]))
        {
            p.validate().unwrap();
            assert_eq!(p.min_interval, ITV);
        }
    }
}
