//! Plain-text table rendering for the reproduction binaries.

/// A simple left-padded text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{:>w$}", s, w = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = line(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }
}

/// Convenience macro-free row builder: formats anything `Display`.
pub fn cells<const N: usize>(items: [&dyn std::fmt::Display; N]) -> Vec<String> {
    items.iter().map(|i| i.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&cells([&"alpha", &1]));
        t.row(&cells([&"b", &1234]));
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("1234"));
        // all rows same width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&cells([&1]));
    }
}
