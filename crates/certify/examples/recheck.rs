//! Re-verifies a solved instance from a JSON case file.
//!
//! ```text
//! cargo run -p certify --example recheck -- tests/corpus/<case>.json
//! ```
//!
//! The case file holds a `problem` (a [`ScheduleProblem`]), a `schedule`
//! and optionally the solver's `certificate`; the corpus files under
//! `tests/corpus/` and the artifacts written by the differential fuzz
//! harness all use this shape. Prints the exact replay numbers and the
//! final verdict; exits non-zero for INVALID so the command composes in
//! scripts.

use insitu_types::json::{FromJson, Value};
use insitu_types::{Schedule, ScheduleProblem, SearchCertificate};

fn main() {
    let mut args = std::env::args().skip(1);
    let path = match args.next() {
        Some(p) => p,
        None => {
            eprintln!("usage: recheck <case.json>");
            eprintln!("  case.json: {{\"problem\": ..., \"schedule\": ..., \"certificate\"?: ...}}");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("recheck: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let doc = match Value::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("recheck: {path} is not valid JSON: {e}");
            std::process::exit(2);
        }
    };
    let obj = match &doc {
        Value::Object(m) => m,
        _ => {
            eprintln!("recheck: top level of {path} must be an object");
            std::process::exit(2);
        }
    };
    let problem = match obj.get("problem").map(ScheduleProblem::from_json) {
        Some(Ok(p)) => p,
        Some(Err(e)) => {
            eprintln!("recheck: bad `problem`: {e}");
            std::process::exit(2);
        }
        None => {
            eprintln!("recheck: missing `problem`");
            std::process::exit(2);
        }
    };
    let schedule = match obj.get("schedule").map(Schedule::from_json) {
        Some(Ok(s)) => s,
        Some(Err(e)) => {
            eprintln!("recheck: bad `schedule`: {e}");
            std::process::exit(2);
        }
        None => {
            // problem-only reproducers (what the fuzz shrinker writes)
            // carry nothing to certify; the differential harness re-solves
            // them: cargo test -p integration-tests --test certify_differential
            println!("case      {path}");
            println!(
                "analyses  {} over {} steps",
                problem.len(),
                problem.resources.steps
            );
            println!("schedule  (none — problem-only reproducer, nothing to certify)");
            match problem.validate() {
                Ok(()) => std::process::exit(0),
                Err(e) => {
                    println!("  problem: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    let certificate = match obj.get("certificate").map(SearchCertificate::from_json) {
        Some(Ok(c)) => Some(c),
        Some(Err(e)) => {
            eprintln!("recheck: bad `certificate`: {e}");
            std::process::exit(2);
        }
        None => None,
    };

    let c = certify::certify(&problem, &schedule, certificate.as_ref());
    println!("case      {path}");
    println!(
        "analyses  {} over {} steps",
        problem.len(),
        problem.resources.steps
    );
    if let Some(r) = &c.replay {
        let budget = r
            .time_budget
            .as_ref()
            .map_or("unbounded".to_string(), |b| {
                format!("{} s (exact {b})", b.to_f64())
            });
        println!(
            "time      {} (exact {}) / {budget}",
            r.total_time.to_f64(),
            r.total_time,
        );
        println!(
            "memory    peak {} / {} bytes",
            r.peak_memory.to_f64(),
            problem.resources.mem_threshold
        );
        println!("objective {} (exact {})", r.objective.to_f64(), r.objective);
    }
    match &certificate {
        Some(cert) => println!(
            "cert      {} nodes, dual bound {}, gap {}",
            cert.nodes.len(),
            cert.dual_bound,
            cert.abs_gap
        ),
        None => println!("cert      (none supplied)"),
    }
    println!("verdict   {}", c.verdict);
    for p in &c.problems {
        println!("  problem: {p}");
    }
    if c.verdict == certify::Verdict::Invalid {
        std::process::exit(1);
    }
}
