//! Branch-and-bound pruning-certificate verification.
//!
//! A [`SearchCertificate`] is the solver's claim that its search tree was
//! *closed*: every node was either branched on (and both children are in
//! the log), integral (and no better than the claimed optimum), pruned by
//! bound (its LP relaxation could not beat the optimum within `abs_gap`),
//! or pruned as infeasible. This module re-checks the closure structure
//! and every bound inequality without any solver code.
//!
//! # Trust model
//!
//! The checks here are *structural*: the LP bound attached to each node
//! and the infeasibility claims are attested by the solver (re-deriving
//! them would require re-solving the LPs, i.e. trusting a second solver).
//! What the checker does establish is that **if** every recorded LP bound
//! is a valid relaxation bound, **then** no leaf of the tree can hide a
//! solution better than `objective + abs_gap`. Combined with the exact
//! feasibility replay of [`crate::replay()`], a PROVED verdict means: the
//! schedule is feasible beyond doubt, and optimality rests only on the
//! LP bounds, not on any branching or bookkeeping logic. See
//! `docs/CERTIFY.md` for the full argument.

use crate::rational::{Rat, RatError};
use insitu_types::{CutProof, GomoryVar, NodeOutcome, SearchCertificate};
use std::collections::BTreeMap;

/// Absolute slack allowed on solver-attested f64 bounds. This does *not*
/// loosen feasibility (which is checked exactly in rationals); it only
/// absorbs representation noise in the recorded LP objectives.
pub const BOUND_TOL: f64 = 1e-6;

/// Checks the closure of a pruning certificate against the claimed
/// `objective`. Returns every problem found (empty = certificate holds).
pub fn check_certificate(cert: &SearchCertificate, objective: f64) -> Vec<String> {
    let mut problems = Vec::new();
    // sense-adjusted value: larger is better in both senses
    let adj = |x: f64| if cert.maximize { x } else { -x };

    if !cert.objective.is_finite() || !cert.dual_bound.is_finite() {
        problems.push("certificate objective/dual bound not finite".into());
        return problems;
    }
    if (cert.objective - objective).abs() > BOUND_TOL {
        problems.push(format!(
            "certificate claims objective {}, caller expected {}",
            cert.objective, objective
        ));
    }
    if cert.nodes.is_empty() {
        problems.push("certificate has no nodes".into());
        return problems;
    }

    let mut by_id: BTreeMap<u64, &insitu_types::NodeCert> = BTreeMap::new();
    for n in &cert.nodes {
        if by_id.insert(n.id, n).is_some() {
            problems.push(format!("duplicate node id {}", n.id));
        }
        if !n.lp_bound.is_finite() {
            problems.push(format!("node {}: non-finite lp bound", n.id));
        }
    }

    // exactly one root, and its bound is the claimed dual bound
    let roots: Vec<_> = cert.nodes.iter().filter(|n| n.parent.is_none()).collect();
    if roots.len() != 1 {
        problems.push(format!("expected exactly one root, found {}", roots.len()));
    }
    if let Some(root) = roots.first() {
        if (root.lp_bound - cert.dual_bound).abs() > BOUND_TOL {
            problems.push(format!(
                "root bound {} disagrees with claimed dual bound {}",
                root.lp_bound, cert.dual_bound
            ));
        }
        // the optimum cannot beat the root relaxation
        if adj(cert.objective) > adj(root.lp_bound) + BOUND_TOL {
            problems.push(format!(
                "objective {} beats the root relaxation bound {}",
                cert.objective, root.lp_bound
            ));
        }
    }

    // parent links: resolve, point at Branched nodes, bounds monotone
    let mut child_count: BTreeMap<u64, usize> = BTreeMap::new();
    for n in &cert.nodes {
        if let Some(p) = n.parent {
            match by_id.get(&p) {
                None => problems.push(format!("node {}: dangling parent {p}", n.id)),
                Some(parent) => {
                    if !matches!(parent.outcome, NodeOutcome::Branched) {
                        problems.push(format!(
                            "node {}: parent {p} was not branched on",
                            n.id
                        ));
                    }
                    // a child's relaxation is tighter: its bound can only
                    // move away from the optimum, never toward it
                    if adj(n.lp_bound) > adj(parent.lp_bound) + BOUND_TOL {
                        problems.push(format!(
                            "node {}: bound {} improves on parent {} bound {}",
                            n.id, n.lp_bound, p, parent.lp_bound
                        ));
                    }
                }
            }
            *child_count.entry(p).or_insert(0) += 1;
        }
    }

    // per-node closure conditions
    for n in &cert.nodes {
        match n.outcome {
            NodeOutcome::Branched => {
                // binary branching on one variable: both sides must appear
                let c = child_count.get(&n.id).copied().unwrap_or(0);
                if c != 2 {
                    problems.push(format!(
                        "branched node {} has {c} recorded children, expected 2",
                        n.id
                    ));
                }
            }
            NodeOutcome::Integral { objective: leaf } => {
                if !leaf.is_finite() {
                    problems.push(format!("node {}: non-finite leaf objective", n.id));
                } else if adj(leaf) > adj(cert.objective) + BOUND_TOL {
                    problems.push(format!(
                        "integral leaf {} has objective {leaf}, better than claimed {}",
                        n.id, cert.objective
                    ));
                }
            }
            NodeOutcome::PrunedBound => {
                // prune is justified iff the subtree cannot beat the
                // optimum by more than the configured gap
                if adj(n.lp_bound) > adj(cert.objective) + cert.abs_gap + BOUND_TOL {
                    problems.push(format!(
                        "node {} pruned by bound {} which still beats objective {} + gap {}",
                        n.id, n.lp_bound, cert.objective, cert.abs_gap
                    ));
                }
            }
            // infeasibility is solver-attested; nothing structural to check
            NodeOutcome::PrunedInfeasible => {}
        }
    }

    if !cert.abs_gap.is_finite() || cert.abs_gap < 0.0 {
        problems.push(format!("invalid absolute gap {}", cert.abs_gap));
    }

    // every recorded cutting plane must carry a closing validity proof
    for (k, cut) in cert.cuts.iter().enumerate() {
        if let Err(why) = check_cut(cut) {
            problems.push(format!("cut {k}: {why}"));
        }
    }
    problems
}

/// Exact floor of a rational (denominator is normalized positive).
fn floor_rat(r: &Rat) -> Result<Rat, RatError> {
    Rat::new(r.numer().div_euclid(r.denom()), 1)
}

/// Exact fractional part in `[0, 1)`.
fn frac_rat(r: &Rat) -> Result<Rat, RatError> {
    r.sub(&floor_rat(r)?)
}

fn rat(x: f64, what: &str) -> Result<Rat, String> {
    Rat::from_f64_exact(x).map_err(|e| format!("{what} {x} not exactly representable: {e:?}"))
}

fn overflow(what: &str) -> impl Fn(RatError) -> String + '_ {
    move |e| format!("rational arithmetic failed while {what}: {e:?}")
}

/// Re-derives one cut in exact `i128` rational arithmetic and verifies the
/// recorded cut is implied by the derivation. `Err` describes the first
/// failure; `Ok(())` means the cut is valid *conditional on its attested
/// source data* (base row / knapsack row, bounds, integrality flags) —
/// the same trust class as the per-node LP bounds.
fn check_cut(cut: &CutProof) -> Result<(), String> {
    match cut {
        CutProof::Cover { row, rhs, members } => check_cover(row, *rhs, members),
        CutProof::Gomory {
            vars,
            base_rhs,
            cut,
            cut_rhs,
        } => check_gomory(vars, *base_rhs, cut, *cut_rhs),
    }
}

/// A cover cut `Σ_{members} x ≤ |members| − 1` is valid when the members'
/// (positive) knapsack coefficients sum to strictly more than the row's
/// right-hand side: all members at 1 would violate the attested row.
fn check_cover(row: &[(usize, f64)], rhs: f64, members: &[usize]) -> Result<(), String> {
    if members.is_empty() {
        return Err("cover has no members".into());
    }
    let mut coeffs: BTreeMap<usize, Rat> = BTreeMap::new();
    for &(v, c) in row {
        if coeffs.insert(v, rat(c, "row coefficient")?).is_some() {
            return Err(format!("duplicate variable {v} in cover row"));
        }
    }
    let rhs = rat(rhs, "row rhs")?;
    let mut seen = std::collections::BTreeSet::new();
    let mut sum = Rat::ZERO;
    for &m in members {
        if !seen.insert(m) {
            return Err(format!("duplicate cover member {m}"));
        }
        let c = coeffs
            .get(&m)
            .ok_or_else(|| format!("cover member {m} not in the row"))?;
        if c.signum() <= 0 {
            return Err(format!("cover member {m} has non-positive coefficient"));
        }
        sum = sum.add(c).map_err(overflow("summing the cover"))?;
    }
    // strict: the full cover must overshoot the capacity
    if sum.le(&rhs).map_err(overflow("comparing cover weight"))? {
        return Err(format!(
            "cover weight {sum} does not exceed the row capacity {rhs}"
        ));
    }
    Ok(())
}

/// Replays a Gomory mixed-integer derivation exactly and checks dominance.
///
/// Shifted space: `t_j = x_j − bound_j` (or `bound_j − x_j` when
/// `at_upper`), all `t_j ≥ 0`. The attested base equality becomes
/// `Σ d_j t_j = b′` with `d_j = ±coeff_j`; with `f0 = frac(b′) ∈ (0,1)`
/// the GMI cut is `Σ g_j t_j ≥ f0` where for integral `t_j`
/// `g_j = min(frac(d_j), f0·(1−frac(d_j))/(1−f0))` and for continuous
/// `t_j` `g_j = max(d_j,0) + f0/(1−f0)·max(−d_j,0)`. The recorded cut is
/// valid iff its shifted coefficients dominate (`h_j ≥ g_j`) and its
/// shifted right-hand side is no larger than `f0` — then
/// `Σ h t ≥ Σ g t ≥ f0 ≥ rhs_t` for every feasible point.
fn check_gomory(
    vars: &[GomoryVar],
    base_rhs: f64,
    cut: &[(usize, f64)],
    cut_rhs: f64,
) -> Result<(), String> {
    if vars.is_empty() {
        return Err("gomory base row has no variables".into());
    }
    let mut base: BTreeMap<usize, &GomoryVar> = BTreeMap::new();
    for g in vars {
        if base.insert(g.var, g).is_some() {
            return Err(format!("duplicate variable {} in base row", g.var));
        }
    }
    // shifted right-hand side b' = base_rhs - sum coeff_j * bound_j
    let mut bp = rat(base_rhs, "base rhs")?;
    for g in vars {
        let shift = rat(g.coeff, "base coefficient")?
            .mul(&rat(g.bound, "shift bound")?)
            .map_err(overflow("shifting the base row"))?;
        bp = bp.sub(&shift).map_err(overflow("shifting the base row"))?;
    }
    let f0 = frac_rat(&bp).map_err(overflow("taking frac(b')"))?;
    if f0.is_zero() {
        return Err("base row is integral at the recorded basis (f0 = 0)".into());
    }
    let one = Rat::from_int(1);
    let one_minus_f0 = one.sub(&f0).map_err(overflow("computing 1-f0"))?;
    let ratio = f0
        .div(&one_minus_f0)
        .map_err(overflow("computing f0/(1-f0)"))?;

    // recorded cut, indexed; every term must sit on a base-row variable
    let mut rec: BTreeMap<usize, Rat> = BTreeMap::new();
    for &(v, c) in cut {
        if !base.contains_key(&v) {
            return Err(format!("cut references variable {v} outside its base row"));
        }
        if rec.insert(v, rat(c, "cut coefficient")?).is_some() {
            return Err(format!("duplicate variable {v} in cut"));
        }
    }

    for g in vars {
        let d = rat(g.coeff, "base coefficient")?;
        let d = if g.at_upper {
            Rat::ZERO.sub(&d).map_err(overflow("negating d_j"))?
        } else {
            d
        };
        let exact = if g.integral {
            // the integer treatment is only sound when the shift keeps the
            // variable on the integer lattice
            if !frac_rat(&rat(g.bound, "shift bound")?)
                .map_err(overflow("checking bound integrality"))?
                .is_zero()
            {
                return Err(format!(
                    "variable {} flagged integral but its shift bound {} is not",
                    g.var, g.bound
                ));
            }
            let fj = frac_rat(&d).map_err(overflow("taking frac(d_j)"))?;
            let alt = ratio
                .mul(&one.sub(&fj).map_err(overflow("computing 1-f_j"))?)
                .map_err(overflow("scaling 1-f_j"))?;
            if fj.le(&alt).map_err(overflow("comparing GMI branches"))? {
                fj
            } else {
                alt
            }
        } else {
            let pos = d.max(&Rat::ZERO).map_err(overflow("max(d,0)"))?;
            let neg = Rat::ZERO.sub(&d).map_err(overflow("-d"))?;
            let neg = neg.max(&Rat::ZERO).map_err(overflow("max(-d,0)"))?;
            pos.add(&ratio.mul(&neg).map_err(overflow("scaling max(-d,0)"))?)
                .map_err(overflow("continuous GMI coefficient"))?
        };
        // shifted recorded coefficient h_j = ±c_j (0 when the var is absent)
        let c = rec.get(&g.var).copied().unwrap_or(Rat::ZERO);
        let h = if g.at_upper {
            Rat::ZERO.sub(&c).map_err(overflow("negating h_j"))?
        } else {
            c
        };
        if !exact.le(&h).map_err(overflow("dominance comparison"))? {
            return Err(format!(
                "cut coefficient on variable {} is {} in shifted space, \
                 below the exact GMI coefficient {}",
                g.var, h, exact
            ));
        }
    }

    // shifted recorded rhs must not exceed f0
    let mut rhs_t = rat(cut_rhs, "cut rhs")?;
    for (&v, c) in &rec {
        let shift = c
            .mul(&rat(base[&v].bound, "shift bound")?)
            .map_err(overflow("shifting the cut rhs"))?;
        rhs_t = rhs_t.sub(&shift).map_err(overflow("shifting the cut rhs"))?;
    }
    if !rhs_t.le(&f0).map_err(overflow("rhs dominance"))? {
        return Err(format!(
            "cut rhs is {rhs_t} in shifted space, above the exact GMI rhs {f0}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::NodeCert;

    /// A hand-built valid certificate: root branched into an integral
    /// leaf at the optimum and a bound-pruned leaf.
    fn good() -> SearchCertificate {
        SearchCertificate {
            objective: 5.0,
            dual_bound: 5.5,
            abs_gap: 1e-9,
            maximize: true,
            proven_optimal: true,
            nodes: vec![
                NodeCert {
                    id: 0,
                    parent: None,
                    lp_bound: 5.5,
                    outcome: NodeOutcome::Branched,
                },
                NodeCert {
                    id: 1,
                    parent: Some(0),
                    lp_bound: 5.0,
                    outcome: NodeOutcome::Integral { objective: 5.0 },
                },
                NodeCert {
                    id: 2,
                    parent: Some(0),
                    lp_bound: 4.2,
                    outcome: NodeOutcome::PrunedBound,
                },
            ],
            cuts: Vec::new(),
        }
    }

    /// The worked GMI example from `docs/CERTIFY.md`: base row
    /// `x0 + 0.5·x1 = 2.25` with integer `x0` and continuous `x1`, both
    /// shifted at lower bound 0. Then `f0 = 0.25`, `g0 = frac(1) = 0`,
    /// `g1 = max(0.5, 0) = 0.5`, so the exact cut is `0.5·x1 ≥ 0.25`.
    fn gomory_example() -> CutProof {
        CutProof::Gomory {
            vars: vec![
                GomoryVar {
                    var: 0,
                    coeff: 1.0,
                    bound: 0.0,
                    integral: true,
                    at_upper: false,
                },
                GomoryVar {
                    var: 1,
                    coeff: 0.5,
                    bound: 0.0,
                    integral: false,
                    at_upper: false,
                },
            ],
            base_rhs: 2.25,
            cut: vec![(1, 0.5)],
            cut_rhs: 0.25,
        }
    }

    fn cover_example() -> CutProof {
        // 3·x0 + 2·x2 ≤ 4 with both at 1 gives 5 > 4: x0 + x2 ≤ 1 valid
        CutProof::Cover {
            row: vec![(0, 3.0), (2, 2.0)],
            rhs: 4.0,
            members: vec![0, 2],
        }
    }

    fn with_cuts(cuts: Vec<CutProof>) -> SearchCertificate {
        let mut c = good();
        c.cuts = cuts;
        c
    }

    #[test]
    fn valid_cuts_pass() {
        let c = with_cuts(vec![gomory_example(), cover_example()]);
        assert!(check_certificate(&c, 5.0).is_empty());
    }

    #[test]
    fn weakened_gomory_cut_passes() {
        // a coefficient strictly above the exact GMI value and a rhs
        // strictly below f0 only weaken the cut — still valid
        let weak = CutProof::Gomory {
            vars: match gomory_example() {
                CutProof::Gomory { vars, .. } => vars,
                _ => unreachable!(),
            },
            base_rhs: 2.25,
            cut: vec![(0, 0.25), (1, 0.75)],
            cut_rhs: 0.125,
        };
        assert!(check_certificate(&with_cuts(vec![weak]), 5.0).is_empty());
    }

    #[test]
    fn tampered_gomory_coefficient_rejected() {
        let bad = CutProof::Gomory {
            vars: match gomory_example() {
                CutProof::Gomory { vars, .. } => vars,
                _ => unreachable!(),
            },
            base_rhs: 2.25,
            cut: vec![(1, 0.25)], // below the exact 0.5: claims too much
            cut_rhs: 0.25,
        };
        let p = check_certificate(&with_cuts(vec![bad]), 5.0);
        assert!(
            p.iter().any(|m| m.contains("below the exact GMI")),
            "{p:?}"
        );
    }

    #[test]
    fn tampered_gomory_rhs_rejected() {
        let bad = CutProof::Gomory {
            vars: match gomory_example() {
                CutProof::Gomory { vars, .. } => vars,
                _ => unreachable!(),
            },
            base_rhs: 2.25,
            cut: vec![(1, 0.5)],
            cut_rhs: 0.5, // above f0 = 0.25: cuts off feasible points
        };
        let p = check_certificate(&with_cuts(vec![bad]), 5.0);
        assert!(p.iter().any(|m| m.contains("above the exact GMI")), "{p:?}");
    }

    #[test]
    fn gomory_integral_flag_needs_integral_bound() {
        let bad = CutProof::Gomory {
            vars: vec![GomoryVar {
                var: 0,
                coeff: 1.0,
                bound: 0.5, // fractional shift breaks the integer lattice
                integral: true,
                at_upper: false,
            }],
            base_rhs: 0.75,
            cut: vec![(0, 1.0)],
            cut_rhs: 0.25,
        };
        let p = check_certificate(&with_cuts(vec![bad]), 5.0);
        assert!(p.iter().any(|m| m.contains("flagged integral")), "{p:?}");
    }

    #[test]
    fn gomory_cut_outside_base_row_rejected() {
        let bad = CutProof::Gomory {
            vars: match gomory_example() {
                CutProof::Gomory { vars, .. } => vars,
                _ => unreachable!(),
            },
            base_rhs: 2.25,
            cut: vec![(1, 0.5), (7, 1.0)], // var 7 is not in the base row
            cut_rhs: 0.25,
        };
        let p = check_certificate(&with_cuts(vec![bad]), 5.0);
        assert!(p.iter().any(|m| m.contains("outside its base row")), "{p:?}");
    }

    #[test]
    fn gomory_at_upper_shift_is_sign_flipped() {
        // base row −x0 = −1.75 read with x0 shifted at upper bound 2:
        // t = 2 − x0, d = +1 (coeff −1 negated), b′ = −1.75 + 2 = 0.25,
        // f0 = 0.25, x0 integer ⇒ g = min(frac(1), …) = 0. In model space
        // the cut −0.0·x0 ≥ … is trivial; record rhs ≤ f0 − 0·2 and a
        // model coefficient of 0. A *negative* model coefficient (h = +c
        // flipped) of −0.5 would give h = 0.5 ≥ 0: also fine. Tamper with
        // a +0.5 model coefficient instead: h = −0.5 < 0 must fail.
        let vars = vec![GomoryVar {
            var: 0,
            coeff: -1.0,
            bound: 2.0,
            integral: true,
            at_upper: true,
        }];
        let ok = CutProof::Gomory {
            vars: vars.clone(),
            base_rhs: -1.75,
            cut: vec![(0, -0.5)],
            cut_rhs: -1.0, // shifted: −1 − (−0.5·2) = 0 ≤ f0 ✓
        };
        assert!(check_certificate(&with_cuts(vec![ok]), 5.0).is_empty());
        let bad = CutProof::Gomory {
            vars,
            base_rhs: -1.75,
            cut: vec![(0, 0.5)], // shifted h = −0.5 < g = 0
            cut_rhs: -1.0,
        };
        let p = check_certificate(&with_cuts(vec![bad]), 5.0);
        assert!(p.iter().any(|m| m.contains("below the exact GMI")), "{p:?}");
    }

    #[test]
    fn tampered_cover_rejected() {
        // dropping a member below the capacity threshold invalidates it
        let bad = CutProof::Cover {
            row: vec![(0, 3.0), (2, 2.0)],
            rhs: 6.0, // capacity raised: 5 ≤ 6, not a cover any more
            members: vec![0, 2],
        };
        let p = check_certificate(&with_cuts(vec![bad]), 5.0);
        assert!(p.iter().any(|m| m.contains("does not exceed")), "{p:?}");
        // member not on the row
        let bad = CutProof::Cover {
            row: vec![(0, 3.0), (2, 2.0)],
            rhs: 4.0,
            members: vec![0, 5],
        };
        let p = check_certificate(&with_cuts(vec![bad]), 5.0);
        assert!(p.iter().any(|m| m.contains("not in the row")), "{p:?}");
        // non-positive member coefficient
        let bad = CutProof::Cover {
            row: vec![(0, 3.0), (2, -2.0)],
            rhs: 2.0,
            members: vec![0, 2],
        };
        let p = check_certificate(&with_cuts(vec![bad]), 5.0);
        assert!(p.iter().any(|m| m.contains("non-positive")), "{p:?}");
    }

    #[test]
    fn valid_certificate_passes() {
        assert!(check_certificate(&good(), 5.0).is_empty());
    }

    #[test]
    fn minimization_sense_flips_inequalities() {
        let mut c = good();
        c.maximize = false;
        c.objective = 5.0;
        c.dual_bound = 4.5; // lower bound in minimization
        c.nodes[0].lp_bound = 4.5;
        c.nodes[1].lp_bound = 5.0;
        c.nodes[2].lp_bound = 6.1; // worse than optimum: prune justified
        assert!(check_certificate(&c, 5.0).is_empty());
        // a min-sense prune with a *better* (smaller) bound must fail
        c.nodes[2].lp_bound = 4.6;
        assert!(!check_certificate(&c, 5.0).is_empty());
    }

    #[test]
    fn objective_mismatch_detected() {
        let p = check_certificate(&good(), 7.0);
        assert!(p.iter().any(|m| m.contains("caller expected")));
    }

    #[test]
    fn unjustified_bound_prune_detected() {
        let mut c = good();
        c.nodes[2].lp_bound = 6.0; // could still hide a better solution
        let p = check_certificate(&c, 5.0);
        assert!(p.iter().any(|m| m.contains("still beats")), "{p:?}");
    }

    #[test]
    fn too_good_integral_leaf_detected() {
        let mut c = good();
        c.nodes[1].outcome = NodeOutcome::Integral { objective: 5.4 };
        let p = check_certificate(&c, 5.0);
        assert!(p.iter().any(|m| m.contains("better than claimed")), "{p:?}");
    }

    #[test]
    fn missing_child_detected() {
        let mut c = good();
        c.nodes.pop();
        let p = check_certificate(&c, 5.0);
        assert!(p.iter().any(|m| m.contains("expected 2")), "{p:?}");
    }

    #[test]
    fn structural_corruption_detected() {
        // duplicate id
        let mut c = good();
        c.nodes[2].id = 1;
        assert!(check_certificate(&c, 5.0)
            .iter()
            .any(|m| m.contains("duplicate")));
        // dangling parent
        let mut c = good();
        c.nodes[2].parent = Some(99);
        assert!(check_certificate(&c, 5.0)
            .iter()
            .any(|m| m.contains("dangling")));
        // two roots
        let mut c = good();
        c.nodes[2].parent = None;
        assert!(check_certificate(&c, 5.0)
            .iter()
            .any(|m| m.contains("exactly one root")));
        // parent that was never branched
        let mut c = good();
        c.nodes[0].outcome = NodeOutcome::PrunedBound;
        assert!(check_certificate(&c, 5.0)
            .iter()
            .any(|m| m.contains("not branched")));
        // empty certificate
        let mut c = good();
        c.nodes.clear();
        assert!(check_certificate(&c, 5.0)
            .iter()
            .any(|m| m.contains("no nodes")));
    }

    #[test]
    fn bound_monotonicity_enforced() {
        let mut c = good();
        c.nodes[1].lp_bound = 6.0; // child better than parent: impossible
        let p = check_certificate(&c, 5.0);
        assert!(p.iter().any(|m| m.contains("improves on parent")), "{p:?}");
    }

    #[test]
    fn objective_beating_root_detected() {
        let mut c = good();
        c.objective = 6.0;
        c.nodes[1].outcome = NodeOutcome::Integral { objective: 6.0 };
        let p = check_certificate(&c, 6.0);
        assert!(p.iter().any(|m| m.contains("root relaxation")), "{p:?}");
    }

    #[test]
    fn non_finite_values_rejected() {
        let mut c = good();
        c.nodes[2].lp_bound = f64::NAN;
        assert!(!check_certificate(&c, 5.0).is_empty());
        let mut c = good();
        c.dual_bound = f64::INFINITY;
        assert!(!check_certificate(&c, 5.0).is_empty());
        let mut c = good();
        c.abs_gap = -1.0;
        assert!(!check_certificate(&c, 5.0).is_empty());
    }
}
