//! Branch-and-bound pruning-certificate verification.
//!
//! A [`SearchCertificate`] is the solver's claim that its search tree was
//! *closed*: every node was either branched on (and both children are in
//! the log), integral (and no better than the claimed optimum), pruned by
//! bound (its LP relaxation could not beat the optimum within `abs_gap`),
//! or pruned as infeasible. This module re-checks the closure structure
//! and every bound inequality without any solver code.
//!
//! # Trust model
//!
//! The checks here are *structural*: the LP bound attached to each node
//! and the infeasibility claims are attested by the solver (re-deriving
//! them would require re-solving the LPs, i.e. trusting a second solver).
//! What the checker does establish is that **if** every recorded LP bound
//! is a valid relaxation bound, **then** no leaf of the tree can hide a
//! solution better than `objective + abs_gap`. Combined with the exact
//! feasibility replay of [`crate::replay()`], a PROVED verdict means: the
//! schedule is feasible beyond doubt, and optimality rests only on the
//! LP bounds, not on any branching or bookkeeping logic. See
//! `docs/CERTIFY.md` for the full argument.

use insitu_types::{NodeOutcome, SearchCertificate};
use std::collections::BTreeMap;

/// Absolute slack allowed on solver-attested f64 bounds. This does *not*
/// loosen feasibility (which is checked exactly in rationals); it only
/// absorbs representation noise in the recorded LP objectives.
pub const BOUND_TOL: f64 = 1e-6;

/// Checks the closure of a pruning certificate against the claimed
/// `objective`. Returns every problem found (empty = certificate holds).
pub fn check_certificate(cert: &SearchCertificate, objective: f64) -> Vec<String> {
    let mut problems = Vec::new();
    // sense-adjusted value: larger is better in both senses
    let adj = |x: f64| if cert.maximize { x } else { -x };

    if !cert.objective.is_finite() || !cert.dual_bound.is_finite() {
        problems.push("certificate objective/dual bound not finite".into());
        return problems;
    }
    if (cert.objective - objective).abs() > BOUND_TOL {
        problems.push(format!(
            "certificate claims objective {}, caller expected {}",
            cert.objective, objective
        ));
    }
    if cert.nodes.is_empty() {
        problems.push("certificate has no nodes".into());
        return problems;
    }

    let mut by_id: BTreeMap<u64, &insitu_types::NodeCert> = BTreeMap::new();
    for n in &cert.nodes {
        if by_id.insert(n.id, n).is_some() {
            problems.push(format!("duplicate node id {}", n.id));
        }
        if !n.lp_bound.is_finite() {
            problems.push(format!("node {}: non-finite lp bound", n.id));
        }
    }

    // exactly one root, and its bound is the claimed dual bound
    let roots: Vec<_> = cert.nodes.iter().filter(|n| n.parent.is_none()).collect();
    if roots.len() != 1 {
        problems.push(format!("expected exactly one root, found {}", roots.len()));
    }
    if let Some(root) = roots.first() {
        if (root.lp_bound - cert.dual_bound).abs() > BOUND_TOL {
            problems.push(format!(
                "root bound {} disagrees with claimed dual bound {}",
                root.lp_bound, cert.dual_bound
            ));
        }
        // the optimum cannot beat the root relaxation
        if adj(cert.objective) > adj(root.lp_bound) + BOUND_TOL {
            problems.push(format!(
                "objective {} beats the root relaxation bound {}",
                cert.objective, root.lp_bound
            ));
        }
    }

    // parent links: resolve, point at Branched nodes, bounds monotone
    let mut child_count: BTreeMap<u64, usize> = BTreeMap::new();
    for n in &cert.nodes {
        if let Some(p) = n.parent {
            match by_id.get(&p) {
                None => problems.push(format!("node {}: dangling parent {p}", n.id)),
                Some(parent) => {
                    if !matches!(parent.outcome, NodeOutcome::Branched) {
                        problems.push(format!(
                            "node {}: parent {p} was not branched on",
                            n.id
                        ));
                    }
                    // a child's relaxation is tighter: its bound can only
                    // move away from the optimum, never toward it
                    if adj(n.lp_bound) > adj(parent.lp_bound) + BOUND_TOL {
                        problems.push(format!(
                            "node {}: bound {} improves on parent {} bound {}",
                            n.id, n.lp_bound, p, parent.lp_bound
                        ));
                    }
                }
            }
            *child_count.entry(p).or_insert(0) += 1;
        }
    }

    // per-node closure conditions
    for n in &cert.nodes {
        match n.outcome {
            NodeOutcome::Branched => {
                // binary branching on one variable: both sides must appear
                let c = child_count.get(&n.id).copied().unwrap_or(0);
                if c != 2 {
                    problems.push(format!(
                        "branched node {} has {c} recorded children, expected 2",
                        n.id
                    ));
                }
            }
            NodeOutcome::Integral { objective: leaf } => {
                if !leaf.is_finite() {
                    problems.push(format!("node {}: non-finite leaf objective", n.id));
                } else if adj(leaf) > adj(cert.objective) + BOUND_TOL {
                    problems.push(format!(
                        "integral leaf {} has objective {leaf}, better than claimed {}",
                        n.id, cert.objective
                    ));
                }
            }
            NodeOutcome::PrunedBound => {
                // prune is justified iff the subtree cannot beat the
                // optimum by more than the configured gap
                if adj(n.lp_bound) > adj(cert.objective) + cert.abs_gap + BOUND_TOL {
                    problems.push(format!(
                        "node {} pruned by bound {} which still beats objective {} + gap {}",
                        n.id, n.lp_bound, cert.objective, cert.abs_gap
                    ));
                }
            }
            // infeasibility is solver-attested; nothing structural to check
            NodeOutcome::PrunedInfeasible => {}
        }
    }

    if !cert.abs_gap.is_finite() || cert.abs_gap < 0.0 {
        problems.push(format!("invalid absolute gap {}", cert.abs_gap));
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::NodeCert;

    /// A hand-built valid certificate: root branched into an integral
    /// leaf at the optimum and a bound-pruned leaf.
    fn good() -> SearchCertificate {
        SearchCertificate {
            objective: 5.0,
            dual_bound: 5.5,
            abs_gap: 1e-9,
            maximize: true,
            proven_optimal: true,
            nodes: vec![
                NodeCert {
                    id: 0,
                    parent: None,
                    lp_bound: 5.5,
                    outcome: NodeOutcome::Branched,
                },
                NodeCert {
                    id: 1,
                    parent: Some(0),
                    lp_bound: 5.0,
                    outcome: NodeOutcome::Integral { objective: 5.0 },
                },
                NodeCert {
                    id: 2,
                    parent: Some(0),
                    lp_bound: 4.2,
                    outcome: NodeOutcome::PrunedBound,
                },
            ],
        }
    }

    #[test]
    fn valid_certificate_passes() {
        assert!(check_certificate(&good(), 5.0).is_empty());
    }

    #[test]
    fn minimization_sense_flips_inequalities() {
        let mut c = good();
        c.maximize = false;
        c.objective = 5.0;
        c.dual_bound = 4.5; // lower bound in minimization
        c.nodes[0].lp_bound = 4.5;
        c.nodes[1].lp_bound = 5.0;
        c.nodes[2].lp_bound = 6.1; // worse than optimum: prune justified
        assert!(check_certificate(&c, 5.0).is_empty());
        // a min-sense prune with a *better* (smaller) bound must fail
        c.nodes[2].lp_bound = 4.6;
        assert!(!check_certificate(&c, 5.0).is_empty());
    }

    #[test]
    fn objective_mismatch_detected() {
        let p = check_certificate(&good(), 7.0);
        assert!(p.iter().any(|m| m.contains("caller expected")));
    }

    #[test]
    fn unjustified_bound_prune_detected() {
        let mut c = good();
        c.nodes[2].lp_bound = 6.0; // could still hide a better solution
        let p = check_certificate(&c, 5.0);
        assert!(p.iter().any(|m| m.contains("still beats")), "{p:?}");
    }

    #[test]
    fn too_good_integral_leaf_detected() {
        let mut c = good();
        c.nodes[1].outcome = NodeOutcome::Integral { objective: 5.4 };
        let p = check_certificate(&c, 5.0);
        assert!(p.iter().any(|m| m.contains("better than claimed")), "{p:?}");
    }

    #[test]
    fn missing_child_detected() {
        let mut c = good();
        c.nodes.pop();
        let p = check_certificate(&c, 5.0);
        assert!(p.iter().any(|m| m.contains("expected 2")), "{p:?}");
    }

    #[test]
    fn structural_corruption_detected() {
        // duplicate id
        let mut c = good();
        c.nodes[2].id = 1;
        assert!(check_certificate(&c, 5.0)
            .iter()
            .any(|m| m.contains("duplicate")));
        // dangling parent
        let mut c = good();
        c.nodes[2].parent = Some(99);
        assert!(check_certificate(&c, 5.0)
            .iter()
            .any(|m| m.contains("dangling")));
        // two roots
        let mut c = good();
        c.nodes[2].parent = None;
        assert!(check_certificate(&c, 5.0)
            .iter()
            .any(|m| m.contains("exactly one root")));
        // parent that was never branched
        let mut c = good();
        c.nodes[0].outcome = NodeOutcome::PrunedBound;
        assert!(check_certificate(&c, 5.0)
            .iter()
            .any(|m| m.contains("not branched")));
        // empty certificate
        let mut c = good();
        c.nodes.clear();
        assert!(check_certificate(&c, 5.0)
            .iter()
            .any(|m| m.contains("no nodes")));
    }

    #[test]
    fn bound_monotonicity_enforced() {
        let mut c = good();
        c.nodes[1].lp_bound = 6.0; // child better than parent: impossible
        let p = check_certificate(&c, 5.0);
        assert!(p.iter().any(|m| m.contains("improves on parent")), "{p:?}");
    }

    #[test]
    fn objective_beating_root_detected() {
        let mut c = good();
        c.objective = 6.0;
        c.nodes[1].outcome = NodeOutcome::Integral { objective: 6.0 };
        let p = check_certificate(&c, 6.0);
        assert!(p.iter().any(|m| m.contains("root relaxation")), "{p:?}");
    }

    #[test]
    fn non_finite_values_rejected() {
        let mut c = good();
        c.nodes[2].lp_bound = f64::NAN;
        assert!(!check_certificate(&c, 5.0).is_empty());
        let mut c = good();
        c.dual_bound = f64::INFINITY;
        assert!(!check_certificate(&c, 5.0).is_empty());
        let mut c = good();
        c.abs_gap = -1.0;
        assert!(!check_certificate(&c, 5.0).is_empty());
    }
}
