//! Canonical instance fingerprints for the serving tier.
//!
//! A fingerprint is a 128-bit hash of a [`ScheduleProblem`]'s **canonical
//! form** (analyses sorted by name, see [`insitu_types::canonical`]) with
//! every `f64` input first converted to its exact rational value via
//! [`Rat::from_f64_exact`] — the same lossless conversion the replay
//! engine uses. Hashing rationals instead of bit patterns makes the
//! fingerprint invariant under rational-equal encodings (`0.0` and
//! `-0.0` hash identically, exactly as they are indistinguishable to the
//! exact replay); hashing the canonical order makes it invariant under
//! analysis reordering. Values outside the exact-conversion range
//! (non-finite thresholds, magnitudes beyond the i128 window) fall back
//! to their IEEE-754 bit pattern under a distinct domain tag, so the
//! function is total.
//!
//! The fingerprint is a cache key, **not** a correctness proof: the
//! service re-certifies every cached schedule against the requester's own
//! instance, so even a 128-bit collision can never serve a wrong answer
//! (see `docs/SERVICE.md`).

use insitu_types::canonical::canonicalize;
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem};

use crate::rational::Rat;

/// A 128-bit canonical instance fingerprint.
///
/// Displays as 32 lowercase hex characters. Equal fingerprints are a
/// near-certain (but re-verified, never trusted) sign of equal canonical
/// instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The fingerprint as 32 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a, 128-bit variant. Not cryptographic — collision resistance is
/// irrelevant here because every cache hit is re-certified — but fast,
/// dependency-free, and well distributed over structured input.
struct Fnv(u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        // length prefix keeps adjacent strings from sliding into each other
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Hashes the exact rational value of `x` when representable, its
    /// IEEE-754 bits (under a different domain tag) otherwise.
    fn write_f64(&mut self, x: f64) {
        match Rat::from_f64_exact(x) {
            Ok(r) => {
                self.write(&[1]);
                self.write(&r.numer().to_le_bytes());
                self.write(&r.denom().to_le_bytes());
            }
            Err(_) => {
                self.write(&[2]);
                self.write(&x.to_bits().to_le_bytes());
            }
        }
    }
}

/// Computes the canonical fingerprint of a scheduling instance.
///
/// # Examples
///
/// ```
/// use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem};
/// let mk = |names: &[&str]| ScheduleProblem::new(
///     names.iter().map(|n| AnalysisProfile::new(*n)).collect(),
///     ResourceConfig::default(),
/// ).unwrap();
/// // same instance, different analysis order => same fingerprint
/// assert_eq!(
///     certify::fingerprint(&mk(&["rdf", "msd"])),
///     certify::fingerprint(&mk(&["msd", "rdf"])),
/// );
/// assert_ne!(
///     certify::fingerprint(&mk(&["rdf", "msd"])),
///     certify::fingerprint(&mk(&["rdf"])),
/// );
/// ```
pub fn fingerprint(problem: &ScheduleProblem) -> Fingerprint {
    let (canon, _) = canonicalize(problem);
    let mut h = Fnv::new();
    h.write_str("insitu-fingerprint/v1");

    // exhaustive destructuring: adding a field to either struct breaks
    // this function at compile time instead of silently weakening the key
    let ResourceConfig {
        steps,
        step_threshold,
        mem_threshold,
        io_bandwidth,
    } = canon.resources;
    h.write_u64(steps as u64);
    h.write_f64(step_threshold);
    h.write_f64(mem_threshold);
    h.write_f64(io_bandwidth);

    h.write_u64(canon.analyses.len() as u64);
    for a in &canon.analyses {
        let AnalysisProfile {
            name,
            fixed_time,
            step_time,
            compute_time,
            output_time,
            fixed_mem,
            step_mem,
            compute_mem,
            output_mem,
            weight,
            min_interval,
            output_every,
        } = a;
        h.write_str(name);
        for &x in &[
            *fixed_time,
            *step_time,
            *compute_time,
            *output_time,
            *fixed_mem,
            *step_mem,
            *compute_mem,
            *output_mem,
            *weight,
        ] {
            h.write_f64(x);
        }
        h.write_u64(*min_interval as u64);
        h.write_u64(*output_every as u64);
    }
    Fingerprint(h.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::units::GIB;

    fn base() -> ScheduleProblem {
        ScheduleProblem::new(
            vec![
                AnalysisProfile::new("rdf").with_compute(0.5, GIB).with_interval(100),
                AnalysisProfile::new("msd")
                    .with_compute(4.0, 2.0 * GIB)
                    .with_interval(100)
                    .with_output(1.0, GIB, 1),
            ],
            ResourceConfig::from_total_threshold(1000, 30.0, 64.0 * GIB, GIB),
        )
        .unwrap()
    }

    #[test]
    fn invariant_under_analysis_reordering() {
        let p = base();
        let mut q = p.clone();
        q.analyses.reverse();
        assert_ne!(p.analyses, q.analyses);
        assert_eq!(fingerprint(&p), fingerprint(&q));
    }

    #[test]
    fn invariant_under_rational_equal_encodings() {
        let p = base();
        let mut q = p.clone();
        q.analyses[0].fixed_time = -0.0; // rational-equal to 0.0
        assert_ne!(
            q.analyses[0].fixed_time.to_bits(),
            p.analyses[0].fixed_time.to_bits()
        );
        assert_eq!(fingerprint(&p), fingerprint(&q));
    }

    #[test]
    fn sensitive_to_every_field() {
        let p = base();
        let fp = fingerprint(&p);
        let mut q = p.clone();
        q.resources.steps += 1;
        assert_ne!(fingerprint(&q), fp);
        let mut q = p.clone();
        q.analyses[1].compute_time += 1e-9;
        assert_ne!(fingerprint(&q), fp);
        let mut q = p.clone();
        q.analyses[0].min_interval += 1;
        assert_ne!(fingerprint(&q), fp);
        let mut q = p.clone();
        q.analyses[0].name.push('x');
        assert_ne!(fingerprint(&q), fp);
    }

    #[test]
    fn total_on_out_of_range_values() {
        // +inf mem_threshold means "absent" to the replay engine; the
        // fingerprint must still be defined (bit-pattern fallback)
        let mut p = base();
        p.resources.mem_threshold = f64::INFINITY;
        let fp = fingerprint(&p);
        let mut q = p.clone();
        q.resources.mem_threshold = 64.0 * GIB;
        assert_ne!(fingerprint(&q), fp);
    }

    #[test]
    fn hex_rendering_is_32_chars() {
        let fp = fingerprint(&base());
        assert_eq!(fp.to_hex().len(), 32);
        assert_eq!(format!("{fp}"), fp.to_hex());
    }
}
