//! Independent schedule-certificate checker for the in-situ scheduling
//! pipeline.
//!
//! Given a [`ScheduleProblem`], a concrete [`Schedule`] and (optionally)
//! the solver's [`SearchCertificate`], [`certify`] stamps the solve with
//! one of three verdicts:
//!
//! * [`Verdict::Proved`] — the schedule is feasible (re-derived from the
//!   paper's Eqs. 2–9 in exact rational arithmetic, no floats anywhere in
//!   the feasibility decision) *and* the solver's branch-and-bound
//!   pruning certificate closes: no leaf of the search tree can hide a
//!   better schedule, modulo only the solver-attested LP bounds.
//! * [`Verdict::FeasibleOnly`] — the schedule is feasible, but no
//!   optimality certificate was supplied (or the solver did not claim
//!   proven optimality), so it might be sub-optimal.
//! * [`Verdict::Invalid`] — the schedule violates a constraint, the
//!   claimed objective is wrong, or the certificate fails its closure
//!   checks. The offending facts are listed in
//!   [`Certification::problems`].
//!
//! This crate deliberately depends only on `insitu-types` (the data
//! model). It shares **no code** with the MILP formulations in
//! `insitu-core` or the solver in `milp`, so it catches bugs in either —
//! the checker-vs-solver split that makes replay meaningful. See
//! `docs/CERTIFY.md` for the format and the exact trust boundary.

pub mod certificate;
pub mod fingerprint;
pub mod rational;
pub mod replay;
pub mod suffix;

pub use certificate::{check_certificate, BOUND_TOL};
pub use fingerprint::{fingerprint, Fingerprint};
pub use rational::{Rat, RatError};
pub use replay::{replay, replay_time_series, ReplayReport, Violation, ViolationKind};
pub use suffix::{memory_state_at, replay_suffix, SuffixCarry};

use insitu_types::{Schedule, ScheduleProblem, SearchCertificate};

/// Outcome class of one certification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Feasible, and the optimality certificate closes.
    Proved,
    /// Feasible, but optimality was not (successfully) certified because
    /// no certificate was supplied.
    FeasibleOnly,
    /// Constraint violation, objective mismatch, or broken certificate.
    Invalid,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Verdict::Proved => "PROVED",
            Verdict::FeasibleOnly => "FEASIBLE-ONLY",
            Verdict::Invalid => "INVALID",
        })
    }
}

/// Full result of [`certify`].
#[derive(Debug, Clone)]
pub struct Certification {
    /// The stamp.
    pub verdict: Verdict,
    /// Exact replay of the feasibility recursions, when arithmetic
    /// succeeded (`None` only for non-finite inputs or i128 overflow).
    pub replay: Option<ReplayReport>,
    /// Everything that went wrong, in human-readable form. Empty for
    /// [`Verdict::Proved`] and [`Verdict::FeasibleOnly`].
    pub problems: Vec<String>,
}

impl Certification {
    fn invalid(problems: Vec<String>, replay: Option<ReplayReport>) -> Self {
        Certification {
            verdict: Verdict::Invalid,
            replay,
            problems,
        }
    }
}

/// Certifies `schedule` against `problem`, and the optional solver
/// `certificate` against both.
///
/// The feasibility decision is exact (rational arithmetic); the
/// certificate checks allow [`BOUND_TOL`] of slack on solver-attested f64
/// LP bounds only. The certificate's claimed objective is compared to the
/// *exactly replayed* Eq. 1 objective, so the solver cannot grade its own
/// homework.
///
/// # Examples
///
/// ```
/// use insitu_types::{AnalysisProfile, AnalysisSchedule, ResourceConfig,
///                    Schedule, ScheduleProblem};
/// let problem = ScheduleProblem::new(
///     vec![AnalysisProfile::new("rdf").with_compute(1.0, 0.0).with_interval(10)],
///     ResourceConfig::from_total_threshold(100, 5.0, 1e9, 1e9),
/// ).unwrap();
/// let mut schedule = Schedule::empty(1);
/// schedule.per_analysis[0] = AnalysisSchedule::new(vec![50, 100], vec![]);
/// let c = certify::certify(&problem, &schedule, None);
/// assert_eq!(c.verdict, certify::Verdict::FeasibleOnly);
/// ```
pub fn certify(
    problem: &ScheduleProblem,
    schedule: &Schedule,
    certificate: Option<&SearchCertificate>,
) -> Certification {
    let report = match replay::replay(problem, schedule) {
        Ok(r) => r,
        Err(e) => {
            return Certification::invalid(
                vec![format!("exact replay impossible: {e}")],
                None,
            )
        }
    };
    if !report.is_feasible() {
        let problems = report.messages();
        return Certification::invalid(problems, Some(report));
    }
    let Some(cert) = certificate else {
        return Certification {
            verdict: Verdict::FeasibleOnly,
            replay: Some(report),
            problems: Vec::new(),
        };
    };
    let mut problems = certificate::check_certificate(cert, report.objective.to_f64());
    if !cert.proven_optimal {
        problems.push("solver did not claim proven optimality".into());
    }
    Certification {
        verdict: if problems.is_empty() {
            Verdict::Proved
        } else {
            Verdict::Invalid
        },
        replay: Some(report),
        problems,
    }
}

/// Certifies a mid-run reschedule: a suffix `schedule` against the suffix
/// `problem`, seeded from the executed prefix's [`SuffixCarry`].
///
/// Identical to [`certify`] except that feasibility is decided by
/// [`suffix::replay_suffix`] — the Eq. 9 interval clock and the Eqs. 5–7
/// memory recursion start from the carried prefix state instead of zero.
/// The certificate half is unchanged: a closing [`SearchCertificate`]
/// upgrades the verdict to [`Verdict::Proved`] *for the suffix model the
/// solver saw* (the solver's model is carry-oblivious; a schedule the
/// carry rules out is still [`Verdict::Invalid`] here, whatever the
/// certificate says).
pub fn certify_suffix(
    problem: &ScheduleProblem,
    schedule: &Schedule,
    carry: &suffix::SuffixCarry,
    certificate: Option<&SearchCertificate>,
) -> Certification {
    let report = match suffix::replay_suffix(problem, schedule, carry) {
        Ok(r) => r,
        Err(e) => {
            return Certification::invalid(
                vec![format!("exact suffix replay impossible: {e}")],
                None,
            )
        }
    };
    if !report.is_feasible() {
        let problems = report.messages();
        return Certification::invalid(problems, Some(report));
    }
    let Some(cert) = certificate else {
        return Certification {
            verdict: Verdict::FeasibleOnly,
            replay: Some(report),
            problems: Vec::new(),
        };
    };
    let mut problems = certificate::check_certificate(cert, report.objective.to_f64());
    if !cert.proven_optimal {
        problems.push("solver did not claim proven optimality".into());
    }
    Certification {
        verdict: if problems.is_empty() {
            Verdict::Proved
        } else {
            Verdict::Invalid
        },
        replay: Some(report),
        problems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::{
        AnalysisProfile, AnalysisSchedule, NodeCert, NodeOutcome, ResourceConfig,
    };

    fn problem() -> ScheduleProblem {
        ScheduleProblem::new(
            vec![AnalysisProfile::new("a")
                .with_compute(2.0, 0.0)
                .with_output(1.0, 0.0, 1)
                .with_interval(10)],
            ResourceConfig::from_total_threshold(100, 10.0, 1e9, 1e9),
        )
        .unwrap()
    }

    fn feasible_schedule() -> Schedule {
        let mut s = Schedule::empty(1);
        // 3 * 2.0 + 1 * 1.0 = 7 <= 10
        s.per_analysis[0] = AnalysisSchedule::new(vec![10, 50, 100], vec![100]);
        s
    }

    /// A certificate consistent with `feasible_schedule`'s objective of 4
    /// (1 activation + 3 runs * weight 1).
    fn matching_cert() -> SearchCertificate {
        SearchCertificate {
            objective: 4.0,
            dual_bound: 4.5,
            abs_gap: 1e-9,
            maximize: true,
            proven_optimal: true,
            nodes: vec![
                NodeCert {
                    id: 0,
                    parent: None,
                    lp_bound: 4.5,
                    outcome: NodeOutcome::Branched,
                },
                NodeCert {
                    id: 1,
                    parent: Some(0),
                    lp_bound: 4.0,
                    outcome: NodeOutcome::Integral { objective: 4.0 },
                },
                NodeCert {
                    id: 2,
                    parent: Some(0),
                    lp_bound: 3.0,
                    outcome: NodeOutcome::PrunedBound,
                },
            ],
            cuts: Vec::new(),
        }
    }

    #[test]
    fn feasible_without_cert_is_feasible_only() {
        let c = certify(&problem(), &feasible_schedule(), None);
        assert_eq!(c.verdict, Verdict::FeasibleOnly);
        assert!(c.problems.is_empty());
        assert_eq!(c.replay.unwrap().objective, Rat::from_int(4));
    }

    #[test]
    fn feasible_with_closing_cert_is_proved() {
        let c = certify(&problem(), &feasible_schedule(), Some(&matching_cert()));
        assert_eq!(c.verdict, Verdict::Proved, "{:?}", c.problems);
    }

    #[test]
    fn infeasible_schedule_is_invalid_even_with_cert() {
        let mut s = Schedule::empty(1);
        // 6 * 2.0 = 12 > 10 budget
        s.per_analysis[0] =
            AnalysisSchedule::new(vec![10, 20, 30, 40, 50, 60], vec![]);
        let c = certify(&problem(), &s, Some(&matching_cert()));
        assert_eq!(c.verdict, Verdict::Invalid);
        assert!(!c.problems.is_empty());
    }

    #[test]
    fn cert_objective_must_match_exact_replay() {
        let mut cert = matching_cert();
        cert.objective = 5.0; // schedule really scores 4
        cert.nodes[1].outcome = NodeOutcome::Integral { objective: 5.0 };
        cert.nodes[1].lp_bound = 5.0;
        cert.dual_bound = 5.5;
        cert.nodes[0].lp_bound = 5.5;
        let c = certify(&problem(), &feasible_schedule(), Some(&cert));
        assert_eq!(c.verdict, Verdict::Invalid);
    }

    #[test]
    fn unproven_cert_downgrades_to_invalid() {
        let mut cert = matching_cert();
        cert.proven_optimal = false;
        let c = certify(&problem(), &feasible_schedule(), Some(&cert));
        assert_eq!(c.verdict, Verdict::Invalid);
        assert!(c
            .problems
            .iter()
            .any(|p| p.contains("proven optimality")));
    }

    #[test]
    fn non_finite_problem_is_invalid_not_a_panic() {
        let mut p = problem();
        p.analyses[0].compute_time = f64::INFINITY;
        let c = certify(&p, &feasible_schedule(), None);
        assert_eq!(c.verdict, Verdict::Invalid);
        assert!(c.replay.is_none());
    }

    #[test]
    fn certify_suffix_mirrors_certify_and_respects_the_carry() {
        let p = problem();
        let s = feasible_schedule();
        // fresh carry: same verdicts as plain certify
        let fresh = suffix::SuffixCarry::fresh(1);
        let c = certify_suffix(&p, &s, &fresh, None);
        assert_eq!(c.verdict, Verdict::FeasibleOnly);
        let c = certify_suffix(&p, &s, &fresh, Some(&matching_cert()));
        assert_eq!(c.verdict, Verdict::Proved, "{:?}", c.problems);
        // a carry that rules the schedule out overrides even a closing
        // certificate: first run at 10 needs 0 more steps from scratch,
        // but an interval clock at 0 elapsed + itv 10 pushes it out
        let blocking = suffix::SuffixCarry {
            held_mem: vec![Some(0.0)],
            steps_since_run: vec![Some(0)],
        };
        let mut early = Schedule::empty(1);
        early.per_analysis[0] = AnalysisSchedule::new(vec![5, 50, 100], vec![]);
        let c = certify_suffix(&p, &early, &blocking, Some(&matching_cert()));
        assert_eq!(c.verdict, Verdict::Invalid);
    }

    #[test]
    fn verdict_display_is_stable() {
        assert_eq!(Verdict::Proved.to_string(), "PROVED");
        assert_eq!(Verdict::FeasibleOnly.to_string(), "FEASIBLE-ONLY");
        assert_eq!(Verdict::Invalid.to_string(), "INVALID");
    }
}
