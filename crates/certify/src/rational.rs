//! Exact rational arithmetic over `i128`.
//!
//! The certifier re-derives every feasibility claim without floating
//! point, so a rounding artifact in the solver can never hide a real
//! violation (or invent a phantom one). Every `f64` input is converted
//! *exactly* — an IEEE-754 double is a dyadic rational `m * 2^e`, so the
//! conversion is lossless — and all subsequent arithmetic is checked:
//! instead of wrapping or saturating, an operation that would overflow
//! `i128` returns [`RatError::Overflow`] and the certification reports
//! "could not decide" rather than a wrong verdict.
//!
//! Magnitudes: paper-shaped instances (seconds up to ~1e5, bytes up to
//! ~1e13, 64-bit dyadic denominators, sums over a few thousand steps)
//! stay far below the ~1.7e38 capacity of `i128`; overflow is a
//! defensive boundary, not an expected path.

use std::cmp::Ordering;
use std::fmt;

/// Arithmetic failure in exact rational computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatError {
    /// An intermediate product or sum exceeded `i128`.
    Overflow,
    /// Division by an exact zero.
    DivisionByZero,
    /// A `f64` input was NaN or infinite and has no rational value.
    NonFinite,
}

impl fmt::Display for RatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatError::Overflow => write!(f, "exact arithmetic overflowed i128"),
            RatError::DivisionByZero => write!(f, "division by zero"),
            RatError::NonFinite => write!(f, "non-finite f64 has no rational value"),
        }
    }
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a.abs()
}

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1` as invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    /// Exact zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };

    /// Builds a normalized rational; errors on a zero denominator.
    pub fn new(num: i128, den: i128) -> Result<Rat, RatError> {
        if den == 0 {
            return Err(RatError::DivisionByZero);
        }
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = num.checked_neg().ok_or(RatError::Overflow)?;
            den = den.checked_neg().ok_or(RatError::Overflow)?;
        }
        Ok(Rat { num, den })
    }

    /// An exact integer.
    pub fn from_int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Exact (lossless) conversion of a finite `f64`.
    ///
    /// Decomposes the IEEE-754 bit pattern into `sign * mantissa * 2^e`
    /// and builds the corresponding dyadic rational. Errors with
    /// [`RatError::NonFinite`] on NaN/±inf and [`RatError::Overflow`]
    /// when `|x|` is so large (≳ 1.7e38) or so close to zero (subnormal
    /// territory) that the numerator or denominator exceeds `i128`.
    pub fn from_f64_exact(x: f64) -> Result<Rat, RatError> {
        if !x.is_finite() {
            return Err(RatError::NonFinite);
        }
        if x == 0.0 {
            return Ok(Rat::ZERO);
        }
        let bits = x.to_bits();
        let negative = bits >> 63 == 1;
        let raw_exp = ((bits >> 52) & 0x7ff) as i64;
        let frac = (bits & ((1u64 << 52) - 1)) as i128;
        let (mut mantissa, mut exp2) = if raw_exp == 0 {
            (frac, -1074i64) // subnormal: no implicit leading bit
        } else {
            (frac | (1i128 << 52), raw_exp - 1075)
        };
        // strip factors of two so 2^-exp2 stays as small as possible
        while mantissa & 1 == 0 && mantissa != 0 {
            mantissa >>= 1;
            exp2 += 1;
        }
        let (num, den) = if exp2 >= 0 {
            // mantissa << exp2 fits iff bit-length(mantissa) + exp2 <= 127
            if exp2 > mantissa.leading_zeros() as i64 - 1 {
                return Err(RatError::Overflow);
            }
            (mantissa << exp2, 1i128)
        } else {
            if -exp2 >= 127 {
                return Err(RatError::Overflow);
            }
            (mantissa, 1i128 << -exp2)
        };
        Rat::new(if negative { -num } else { num }, den)
    }

    /// Numerator (after normalization).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (after normalization, always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// True for exact zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Sign of the value: -1, 0 or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum() as i32
    }

    /// Checked addition.
    pub fn add(&self, o: &Rat) -> Result<Rat, RatError> {
        // cross-multiply over the gcd of the denominators to delay overflow
        let g = gcd(self.den, o.den);
        let lhs_scale = o.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)
            .and_then(|a| o.num.checked_mul(rhs_scale).and_then(|b| a.checked_add(b)))
            .ok_or(RatError::Overflow)?;
        let den = self.den.checked_mul(lhs_scale).ok_or(RatError::Overflow)?;
        Rat::new(num, den)
    }

    /// Checked subtraction.
    pub fn sub(&self, o: &Rat) -> Result<Rat, RatError> {
        self.add(&Rat {
            num: o.num.checked_neg().ok_or(RatError::Overflow)?,
            den: o.den,
        })
    }

    /// Checked multiplication.
    pub fn mul(&self, o: &Rat) -> Result<Rat, RatError> {
        // reduce cross factors first to delay overflow
        let g1 = gcd(self.num, o.den);
        let g2 = gcd(o.num, self.den);
        let (an, ad) = (self.num / g1.max(1), self.den / g2.max(1));
        let (bn, bd) = (o.num / g2.max(1), o.den / g1.max(1));
        let num = an.checked_mul(bn).ok_or(RatError::Overflow)?;
        let den = ad.checked_mul(bd).ok_or(RatError::Overflow)?;
        Rat::new(num, den)
    }

    /// Checked division.
    pub fn div(&self, o: &Rat) -> Result<Rat, RatError> {
        if o.num == 0 {
            return Err(RatError::DivisionByZero);
        }
        self.mul(&Rat { num: o.den, den: o.num })
    }

    /// Checked multiplication by an integer (common case: `k * ct`).
    pub fn mul_int(&self, k: i128) -> Result<Rat, RatError> {
        self.mul(&Rat::from_int(k))
    }

    /// Exact three-way comparison (checked: cross products can overflow).
    pub fn cmp_exact(&self, o: &Rat) -> Result<Ordering, RatError> {
        // differing signs decide without any multiplication
        let (ls, rs) = (self.num.signum(), o.num.signum());
        if ls != rs {
            return Ok(ls.cmp(&rs));
        }
        // scale by the denominators' gcd, mirroring `add`: dyadic inputs
        // (every f64 is `m / 2^k`) share large power-of-two factors, and
        // the raw cross product `num * den` of two measured wall-clock
        // values sits right at the 2^127 boundary
        let g = gcd(self.den, o.den);
        let lhs = self.num.checked_mul(o.den / g).ok_or(RatError::Overflow)?;
        let rhs = o.num.checked_mul(self.den / g).ok_or(RatError::Overflow)?;
        Ok(lhs.cmp(&rhs))
    }

    /// True when `self <= o` (exact).
    pub fn le(&self, o: &Rat) -> Result<bool, RatError> {
        Ok(self.cmp_exact(o)? != Ordering::Greater)
    }

    /// Larger of two rationals.
    pub fn max(&self, o: &Rat) -> Result<Rat, RatError> {
        Ok(if self.cmp_exact(o)? == Ordering::Less { *o } else { *self })
    }

    /// Nearest `f64`, for reporting only — never used in a comparison.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rat {
        Rat::new(n, d).unwrap()
    }

    #[test]
    fn normalization_invariants() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 7), Rat::ZERO);
        assert_eq!(Rat::new(1, 0), Err(RatError::DivisionByZero));
        assert!(r(3, 7).denom() > 0);
    }

    #[test]
    fn arithmetic_is_exact() {
        // 1/10 + 2/10 == 3/10 exactly — the classic float counterexample
        let a = r(1, 10);
        let b = r(2, 10);
        assert_eq!(a.add(&b).unwrap(), r(3, 10));
        assert_eq!(a.sub(&b).unwrap(), r(-1, 10));
        assert_eq!(a.mul(&b).unwrap(), r(1, 50));
        assert_eq!(a.div(&b).unwrap(), r(1, 2));
        assert_eq!(a.mul_int(30).unwrap(), Rat::from_int(3));
        assert_eq!(r(1, 3).div(&Rat::ZERO), Err(RatError::DivisionByZero));
    }

    #[test]
    fn comparisons_are_exact() {
        assert_eq!(r(1, 3).cmp_exact(&r(2, 6)).unwrap(), Ordering::Equal);
        assert_eq!(r(1, 3).cmp_exact(&r(334, 1000)).unwrap(), Ordering::Less);
        assert!(r(-1, 2).le(&Rat::ZERO).unwrap());
        assert_eq!(r(1, 2).max(&r(2, 3)).unwrap(), r(2, 3));
        assert_eq!(r(1, 2).signum(), 1);
        assert_eq!(r(-1, 2).signum(), -1);
        assert_eq!(Rat::ZERO.signum(), 0);
    }

    #[test]
    fn f64_conversion_is_lossless() {
        for x in [
            0.0, 1.0, -1.0, 0.5, 0.1, 0.064678, 646.78, 1e12, -3.25, 1e-9,
            f64::from_bits(0x3ff0000000000001), // 1.0 + ulp
        ] {
            let rat = Rat::from_f64_exact(x).unwrap();
            // exact round trip through the dyadic decomposition
            assert_eq!(rat.to_f64(), x, "lossy conversion of {x}");
        }
        // 0.1 really is the dyadic 3602879701896397 / 2^55, not 1/10
        let tenth = Rat::from_f64_exact(0.1).unwrap();
        assert_ne!(tenth, r(1, 10));
        assert_eq!(tenth.numer(), 3602879701896397);
        assert_eq!(tenth.denom(), 1i128 << 55);
    }

    #[test]
    fn f64_conversion_rejects_edge_cases() {
        assert_eq!(Rat::from_f64_exact(f64::NAN), Err(RatError::NonFinite));
        assert_eq!(Rat::from_f64_exact(f64::INFINITY), Err(RatError::NonFinite));
        assert_eq!(Rat::from_f64_exact(1e300), Err(RatError::Overflow));
        assert_eq!(Rat::from_f64_exact(5e-324), Err(RatError::Overflow));
        // non-dyadic values below ~2^-75 need a denominator beyond i128
        assert_eq!(Rat::from_f64_exact(1e-30), Err(RatError::Overflow));
        // but the whole paper-shaped range works
        for x in [1e-20, 1e30, 1e13, 0.000_1] {
            assert!(Rat::from_f64_exact(x).is_ok(), "{x} should convert");
        }
    }

    /// Regression: comparing two dyadic rationals whose raw cross
    /// product exceeds `i128` must still decide, because their
    /// power-of-two denominators cancel. This is exactly the shape of
    /// `total_time.le(budget)` over measured wall-clock seconds, which
    /// used to fail stochastically depending on the measured bits.
    #[test]
    fn cmp_cancels_common_denominator_factors_before_cross_multiplying() {
        let a = Rat::new((1i128 << 65) + 1, 1i128 << 69).unwrap(); // ~0.0625
        let b = Rat::new(3, 1i128 << 62).unwrap(); // ~6.5e-19
        // raw cross product num(a) * den(b) ≈ 2^127 overflows; reduced
        // by gcd(2^69, 2^62) the products are tiny
        assert_eq!(a.cmp_exact(&b).unwrap(), Ordering::Greater);
        assert!(b.le(&a).unwrap());
        assert_eq!(a.max(&b).unwrap(), a);
        // opposite signs never multiply at all
        let neg = Rat::new(-((1i128 << 65) + 1), 1i128 << 69).unwrap();
        assert_eq!(neg.cmp_exact(&a).unwrap(), Ordering::Less);
    }

    #[test]
    fn overflow_is_an_error_not_a_wrap() {
        let big = Rat::from_int(i128::MAX / 2);
        assert_eq!(big.mul(&big), Err(RatError::Overflow));
        assert_eq!(big.mul_int(3), Err(RatError::Overflow));
        let huge = r(i128::MAX / 2, 3);
        let coprime = r(2, 7);
        assert_eq!(huge.cmp_exact(&coprime), Err(RatError::Overflow));
    }

    #[test]
    fn display_reads_naturally() {
        assert_eq!(r(3, 1).to_string(), "3");
        assert_eq!(r(-1, 2).to_string(), "-1/2");
    }
}
