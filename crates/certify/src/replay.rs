//! Exact replay of the paper's feasibility recursions (Eqs. 2–9).
//!
//! Given a [`ScheduleProblem`] and a concrete [`Schedule`], this module
//! re-runs the paper's step-by-step recursions — cumulative analysis time
//! (Eqs. 2–4), memory with reset-at-output (Eqs. 5–8) and the minimum
//! analysis interval (Eq. 9) — entirely in exact rational arithmetic
//! ([`crate::rational::Rat`]). It shares no code with the MILP
//! formulations in `crates/core` or the solver in `crates/milp`; the only
//! common ground is the data model in `insitu-types`. A bug in either the
//! model builder or the simplex/branch-and-bound stack therefore cannot
//! silently certify its own output.
//!
//! Comparisons against the thresholds are *exact*: the thresholds and all
//! Table-1 parameters are dyadic rationals (lossless `f64` conversions),
//! and sums of dyadic rationals are dyadic, so there is no epsilon
//! anywhere in the feasibility decision. The solver's floating-point
//! tolerance is accounted for by the *caller* choosing how much slack to
//! allow in the objective comparison, not by loosening feasibility.

use crate::rational::{Rat, RatError};
use insitu_types::{Schedule, ScheduleProblem};

/// Which constraint family a violation belongs to. Callers that tolerate
/// solver-sized rounding (e.g. `insitu-core`'s `validate_schedule`) use
/// this to distinguish hard structural breakage from hairline numeric
/// excess; the certifier itself treats every kind as fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Arity, step ranges, sortedness, outputs ⊄ analysis steps.
    Structure,
    /// Eq. 9 minimum-interval violations.
    Interval,
    /// Eq. 4 time-budget excess.
    Time,
    /// Eq. 8 memory-threshold excess.
    Memory,
}

/// One violated constraint, with the exact excess where applicable.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Constraint family.
    pub kind: ViolationKind,
    /// Human-readable description (carries the exact rational excess).
    pub message: String,
    /// Approximate excess magnitude in the constraint's own unit
    /// (seconds / bytes); `0.0` for structure and interval violations.
    pub excess: f64,
}

/// Exact replay outcome. `violations` empty ⇔ the schedule satisfies every
/// constraint of the paper's formulation, with zero floating-point doubt.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// LHS of Eq. 4 — total in-situ analysis time, exact.
    pub total_time: Rat,
    /// RHS of Eq. 4 — `cth * Steps`, exact. `None` when the problem sets
    /// an infinite threshold, i.e. the time constraint is absent.
    pub time_budget: Option<Rat>,
    /// Peak over steps of `Σ_i mStart_{i,j}` (LHS of Eq. 8), exact.
    pub peak_memory: Rat,
    /// Eq. 1 objective `|A| + Σ_i w_i |C_i|`, exact.
    pub objective: Rat,
    /// Violated constraints; empty = feasible.
    pub violations: Vec<Violation>,
}

impl ReplayReport {
    /// True when the schedule satisfies every replayed constraint.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violation messages alone, for error reporting.
    pub fn messages(&self) -> Vec<String> {
        self.violations.iter().map(|v| v.message.clone()).collect()
    }
}

pub(crate) fn hard(kind: ViolationKind, message: String) -> Violation {
    Violation {
        kind,
        message,
        excess: 0.0,
    }
}

/// Exact Table-1 parameters of one analysis.
pub(crate) struct ExactProfile {
    pub(crate) ft: Rat,
    pub(crate) it: Rat,
    pub(crate) ct: Rat,
    pub(crate) ot: Rat,
    pub(crate) fm: Rat,
    pub(crate) im: Rat,
    pub(crate) cm: Rat,
    pub(crate) om: Rat,
}

pub(crate) fn exact_profile(
    a: &insitu_types::AnalysisProfile,
) -> Result<ExactProfile, RatError> {
    Ok(ExactProfile {
        ft: Rat::from_f64_exact(a.fixed_time)?,
        it: Rat::from_f64_exact(a.step_time)?,
        ct: Rat::from_f64_exact(a.compute_time)?,
        ot: Rat::from_f64_exact(a.output_time)?,
        fm: Rat::from_f64_exact(a.fixed_mem)?,
        im: Rat::from_f64_exact(a.step_mem)?,
        cm: Rat::from_f64_exact(a.compute_mem)?,
        om: Rat::from_f64_exact(a.output_mem)?,
    })
}

/// Replays `schedule` against `problem` exactly.
///
/// Errors only when exact arithmetic itself fails (a parameter is
/// non-finite or an intermediate value overflows `i128`); an *infeasible*
/// schedule is an `Ok` report with non-empty `violations`.
pub fn replay(problem: &ScheduleProblem, schedule: &Schedule) -> Result<ReplayReport, RatError> {
    let steps = problem.resources.steps;
    let mut violations = Vec::new();

    // --- structure: arity, ranges, sortedness, outputs ⊆ analysis steps ---
    if schedule.per_analysis.len() != problem.len() {
        violations.push(hard(
            ViolationKind::Structure,
            format!(
                "schedule covers {} analyses, problem has {}",
                schedule.per_analysis.len(),
                problem.len()
            ),
        ));
        return Ok(ReplayReport {
            total_time: Rat::ZERO,
            time_budget: time_budget(problem)?,
            peak_memory: Rat::ZERO,
            objective: Rat::ZERO,
            violations,
        });
    }
    for (i, s) in schedule.per_analysis.iter().enumerate() {
        let name = &problem.analyses[i].name;
        for (kind, list) in [("analysis", &s.analysis_steps), ("output", &s.output_steps)] {
            for w in list.windows(2) {
                if w[0] >= w[1] {
                    violations.push(hard(
                        ViolationKind::Structure,
                        format!(
                            "analysis `{name}`: {kind} steps not strictly increasing at {} -> {}",
                            w[0], w[1]
                        ),
                    ));
                }
            }
            for &j in list.iter() {
                if j == 0 || j > steps {
                    violations.push(hard(
                        ViolationKind::Structure,
                        format!("analysis `{name}`: {kind} step {j} outside 1..={steps}"),
                    ));
                }
            }
        }
        for &j in &s.output_steps {
            if !s.runs_at(j) {
                violations.push(hard(
                    ViolationKind::Structure,
                    format!("analysis `{name}`: output at step {j} without an analysis step"),
                ));
            }
        }
    }

    // --- interval constraint (Eq. 9, running total from step 0) ---
    for (i, s) in schedule.per_analysis.iter().enumerate() {
        let a = &problem.analyses[i];
        let itv = a.min_interval.max(1);
        let mut last = 0usize;
        for &j in &s.analysis_steps {
            if j >= last && j - last < itv {
                violations.push(hard(
                    ViolationKind::Interval,
                    format!(
                        "analysis `{}`: steps {last} -> {j} violate interval {itv}",
                        a.name
                    ),
                ));
            }
            last = j;
        }
    }

    // --- time recursion (Eqs. 2–4), exact ---
    let mut total_time = Rat::ZERO;
    for (i, s) in schedule.per_analysis.iter().enumerate() {
        if s.count() == 0 {
            continue; // inactive analyses cost nothing (Eq. 3 gate)
        }
        let p = exact_profile(&problem.analyses[i])?;
        // Eq. 3 seed, then one Eq. 2 update per simulation step
        let mut t = p.ft;
        for j in 1..=steps {
            t = t.add(&p.it)?;
            if s.runs_at(j) {
                t = t.add(&p.ct)?;
            }
            if s.outputs_at(j) {
                t = t.add(&p.ot)?;
            }
        }
        total_time = total_time.add(&t)?;
    }
    let budget = time_budget(problem)?;
    if let Some(budget) = &budget {
        if !total_time.le(budget)? {
            let excess = total_time.sub(budget)?;
            violations.push(Violation {
                kind: ViolationKind::Time,
                message: format!(
                    "total analysis time {} exceeds budget {} (exact excess {excess})",
                    total_time.to_f64(),
                    budget.to_f64(),
                ),
                excess: excess.to_f64(),
            });
        }
    }

    // --- memory recursion (Eqs. 5–8), exact, reset to fm at output ---
    // +inf = memory constraint absent (same idiom as the time budget)
    let mth = if problem.resources.mem_threshold == f64::INFINITY {
        None
    } else {
        Some(Rat::from_f64_exact(problem.resources.mem_threshold)?)
    };
    let mut mem_end: Vec<Rat> = Vec::with_capacity(problem.len());
    for (i, s) in schedule.per_analysis.iter().enumerate() {
        mem_end.push(if s.count() > 0 {
            Rat::from_f64_exact(problem.analyses[i].fixed_mem)? // Eq. 6 seed
        } else {
            Rat::ZERO
        });
    }
    // peak starts at the step-0 total (the Eq. 6 fixed allocations)
    let mut peak_memory = Rat::ZERO;
    for m in &mem_end {
        peak_memory = peak_memory.add(m)?;
    }
    for j in 1..=steps {
        let mut step_total = Rat::ZERO;
        for (i, s) in schedule.per_analysis.iter().enumerate() {
            if s.count() == 0 {
                continue;
            }
            let p = exact_profile(&problem.analyses[i])?;
            // Eq. 5: start-of-step footprint grows by im (+cm, +om)
            let mut m_start = mem_end[i].add(&p.im)?;
            if s.runs_at(j) {
                m_start = m_start.add(&p.cm)?;
            }
            if s.outputs_at(j) {
                m_start = m_start.add(&p.om)?;
            }
            // Eq. 7: writing output frees everything but the fixed buffer
            mem_end[i] = if s.outputs_at(j) { p.fm } else { m_start };
            step_total = step_total.add(&m_start)?;
        }
        if let Some(mth) = &mth {
            if !step_total.le(mth)? {
                let excess = step_total.sub(mth)?;
                violations.push(Violation {
                    kind: ViolationKind::Memory,
                    message: format!(
                        "step {j}: memory {} exceeds mth {} (exact excess {excess})",
                        step_total.to_f64(),
                        mth.to_f64(),
                    ),
                    excess: excess.to_f64(),
                });
            }
        }
        peak_memory = peak_memory.max(&step_total)?;
    }

    // --- objective (Eq. 1), exact ---
    let mut objective = Rat::ZERO;
    for (i, s) in schedule.per_analysis.iter().enumerate() {
        if s.count() > 0 {
            let w = Rat::from_f64_exact(problem.analyses[i].weight)?;
            objective = objective
                .add(&Rat::from_int(1))?
                .add(&w.mul_int(s.count() as i128)?)?;
        }
    }

    Ok(ReplayReport {
        total_time,
        time_budget: budget,
        peak_memory,
        objective,
        violations,
    })
}

/// Replays the Eq. 2–4 time recursion and returns the **cumulative
/// analysis time after each step**, exactly: `series[0]` is the Eq. 3
/// seed (Σ of active analyses' `ft`), and `series[j]` for `j in 1..=steps`
/// adds every active analysis's `it`, plus `ct` at scheduled analysis
/// steps and `ot` at scheduled output steps.
///
/// Rational arithmetic is associative, so `series[steps]` equals
/// [`replay`]'s `total_time` **bitwise** even though `replay` sums
/// per-analysis first and this sums per-step first. This per-step series
/// is the model half of `insitu-core`'s predicted-vs-measured drift
/// report (`insitu_core::attribution`).
///
/// Structural problems (wrong arity) are arithmetic-level errors here —
/// use [`replay`] for diagnosis; this function assumes a schedule that at
/// least pairs up with the problem.
pub fn replay_time_series(
    problem: &ScheduleProblem,
    schedule: &Schedule,
) -> Result<Vec<Rat>, RatError> {
    if schedule.per_analysis.len() != problem.len() {
        // Mirrors replay()'s structure check; Rat has no "shape" error, so
        // reuse the closest arithmetic error rather than panicking.
        return Err(RatError::NonFinite);
    }
    let steps = problem.resources.steps;
    let mut profiles = Vec::with_capacity(problem.len());
    for (i, s) in schedule.per_analysis.iter().enumerate() {
        if s.count() > 0 {
            profiles.push((i, exact_profile(&problem.analyses[i])?));
        }
    }
    let mut series = Vec::with_capacity(steps + 1);
    let mut cum = Rat::ZERO;
    for (_, p) in &profiles {
        cum = cum.add(&p.ft)?; // Eq. 3 seed
    }
    series.push(cum);
    for j in 1..=steps {
        for (i, p) in &profiles {
            let s = &schedule.per_analysis[*i];
            cum = cum.add(&p.it)?;
            if s.runs_at(j) {
                cum = cum.add(&p.ct)?;
            }
            if s.outputs_at(j) {
                cum = cum.add(&p.ot)?;
            }
        }
        series.push(cum);
    }
    Ok(series)
}

/// Exact `cth * Steps` (RHS of Eq. 4); `None` when `cth` is `+inf`,
/// meaning the time constraint is absent.
pub(crate) fn time_budget(problem: &ScheduleProblem) -> Result<Option<Rat>, RatError> {
    if problem.resources.step_threshold == f64::INFINITY {
        return Ok(None);
    }
    Rat::from_f64_exact(problem.resources.step_threshold)?
        .mul_int(problem.resources.steps as i128)
        .map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::{AnalysisProfile, AnalysisSchedule, ResourceConfig};

    fn problem() -> ScheduleProblem {
        ScheduleProblem::new(
            vec![AnalysisProfile::new("a")
                .with_fixed(1.0, 100.0)
                .with_per_step(0.01, 1.0)
                .with_compute(2.0, 10.0)
                .with_output(0.5, 5.0, 1)
                .with_interval(10)],
            ResourceConfig::from_total_threshold(100, 20.0, 1000.0, 1e9),
        )
        .unwrap()
    }

    fn schedule(analysis: Vec<usize>, output: Vec<usize>) -> Schedule {
        let mut s = Schedule::empty(1);
        s.per_analysis[0] = AnalysisSchedule::new(analysis, output);
        s
    }

    #[test]
    fn feasible_schedule_replays_clean() {
        let r = replay(&problem(), &schedule(vec![20, 40, 60, 80, 100], vec![100])).unwrap();
        assert!(r.is_feasible(), "{:?}", r.violations);
        // ft 1 + 100*fl(0.01) + 5*2 + 0.5 — exact about fl(0.01), which is
        // NOT 1/100 (it's a dyadic approximation), so build the expectation
        // the same way rather than writing 12.5
        let expected = Rat::from_f64_exact(11.5)
            .unwrap()
            .add(&Rat::from_f64_exact(0.01).unwrap().mul_int(100).unwrap())
            .unwrap();
        assert_eq!(r.total_time, expected);
        assert_eq!(r.objective, Rat::from_int(6));
    }

    #[test]
    fn time_violation_is_exact() {
        // 9 analyses: 1 + 1 + 18 + 0.5 = 20.5 > 20
        let r = replay(
            &problem(),
            &schedule(vec![10, 20, 30, 40, 50, 60, 70, 80, 90], vec![90]),
        )
        .unwrap();
        assert!(!r.is_feasible());
        assert!(r.violations.iter().any(|v| v.message.contains("exceeds budget")));
    }

    #[test]
    fn hairline_excess_is_caught_exactly() {
        // budget exactly 20; craft time exactly 20 => feasible (<=), and
        // one more output step (+0.5) => infeasible. No epsilon window.
        let exact = schedule(vec![10, 20, 30, 40, 50, 60, 70, 80, 90], vec![]);
        // 1 + 1 + 18 = 20.0 exactly (all dyadic-friendly? 0.01*100 = 1
        // exactly because it's summed 100 times as the same dyadic value)
        let r = replay(&problem(), &exact).unwrap();
        // 0.01 is not dyadic-exact, so 100 * fl(0.01) != 1 exactly; the
        // replay is still exact *about fl(0.01)* — just assert consistency
        let hundred_it = Rat::from_f64_exact(0.01).unwrap().mul_int(100).unwrap();
        let expected = Rat::from_int(19).add(&hundred_it).unwrap();
        assert_eq!(r.total_time, expected);
    }

    #[test]
    fn interval_and_first_step_enforced() {
        let r = replay(&problem(), &schedule(vec![10, 15], vec![])).unwrap();
        assert!(r.violations.iter().any(|v| v.message.contains("interval")));
        let r = replay(&problem(), &schedule(vec![5], vec![])).unwrap();
        assert!(!r.is_feasible(), "first analysis before itv must fail");
    }

    #[test]
    fn memory_reset_at_output_replayed() {
        let mut p = problem();
        p.resources.mem_threshold = 170.0;
        // with outputs at both analysis steps the peak is
        // fm 100 + 50*im + cm 10 + om 5 = 165 <= 170
        let r = replay(&p, &schedule(vec![50, 100], vec![50, 100])).unwrap();
        assert!(r.is_feasible(), "{:?}", r.violations);
        assert_eq!(r.peak_memory, Rat::from_int(165));
        // without the reset the second window would hold 100+100+10 = 210
        let r = replay(&p, &schedule(vec![50, 100], vec![])).unwrap();
        assert!(!r.is_feasible());
        assert!(r.violations.iter().any(|v| v.message.contains("memory")));
    }

    #[test]
    fn time_series_matches_replay_total_bitwise() {
        let p = problem();
        let s = schedule(vec![20, 40, 60, 80, 100], vec![100]);
        let series = replay_time_series(&p, &s).unwrap();
        assert_eq!(series.len(), p.resources.steps + 1);
        // series[0] is the Eq. 3 seed: the single active analysis's ft
        assert_eq!(series[0], Rat::from_f64_exact(1.0).unwrap());
        // exact arithmetic is associative: the per-step summation order
        // lands on the identical rational as replay()'s per-analysis order
        let total = replay(&p, &s).unwrap().total_time;
        assert_eq!(*series.last().unwrap(), total);
        // the series is non-decreasing (all Table-1 times are >= 0 here)
        for w in series.windows(2) {
            assert!(w[0].le(&w[1]).unwrap());
        }
        // a step with a scheduled analysis jumps by ct; others by it only
        let it = Rat::from_f64_exact(0.01).unwrap();
        let jump_plain = series[1].sub(&series[0]).unwrap();
        assert_eq!(jump_plain, it);
        let jump_run = series[20].sub(&series[19]).unwrap();
        assert_eq!(jump_run, it.add(&Rat::from_f64_exact(2.0).unwrap()).unwrap());
    }

    #[test]
    fn time_series_of_empty_schedule_is_all_zero() {
        let series = replay_time_series(&problem(), &Schedule::empty(1)).unwrap();
        assert!(series.iter().all(|r| r.is_zero()));
        assert!(replay_time_series(&problem(), &Schedule::empty(3)).is_err());
    }

    #[test]
    fn structural_garbage_reported() {
        let mut s = Schedule::empty(1);
        s.per_analysis[0].analysis_steps = vec![30, 20]; // bypass sorting
        let r = replay(&problem(), &s).unwrap();
        assert!(r.violations.iter().any(|v| v.message.contains("strictly increasing")));

        let r = replay(&problem(), &schedule(vec![101], vec![])).unwrap();
        assert!(r.violations.iter().any(|v| v.message.contains("outside")));

        let mut s = Schedule::empty(1);
        s.per_analysis[0].analysis_steps = vec![20];
        s.per_analysis[0].output_steps = vec![30];
        let r = replay(&problem(), &s).unwrap();
        assert!(r.violations.iter().any(|v| v.message.contains("without an analysis")));

        let r = replay(&problem(), &Schedule::empty(3)).unwrap();
        assert!(!r.is_feasible());
    }

    #[test]
    fn infinite_thresholds_disable_the_checks() {
        // +inf budget/memory = constraint absent, a modeling idiom used by
        // the co-scheduler to re-check only the memory/structure half
        let mut p = problem();
        p.resources.step_threshold = f64::INFINITY;
        p.resources.mem_threshold = f64::INFINITY;
        let r = replay(&p, &schedule(vec![10, 20, 30, 40, 50, 60, 70, 80, 90], vec![90]))
            .unwrap();
        assert!(r.is_feasible(), "{:?}", r.violations);
        assert_eq!(r.time_budget, None);
        // NaN is still a hard error, not an absent constraint
        p.resources.step_threshold = f64::NAN;
        assert_eq!(
            replay(&p, &Schedule::empty(1)),
            Err(RatError::NonFinite)
        );
    }

    #[test]
    fn empty_schedule_is_free() {
        let r = replay(&problem(), &Schedule::empty(1)).unwrap();
        assert!(r.is_feasible());
        assert!(r.total_time.is_zero());
        assert!(r.peak_memory.is_zero());
        assert!(r.objective.is_zero());
    }

    #[test]
    fn non_finite_parameter_is_an_arithmetic_error() {
        let mut p = problem();
        p.analyses[0].compute_time = f64::NAN;
        assert_eq!(
            replay(&p, &schedule(vec![10], vec![])),
            Err(RatError::NonFinite)
        );
    }
}
