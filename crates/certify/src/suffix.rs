//! Exact replay of a schedule **suffix**, for mid-run rescheduling.
//!
//! When `insitu-core`'s adaptive runtime re-solves the remaining steps of
//! a run at simulation step `j0`, the new schedule covers only steps
//! `j0+1..=Steps`, re-indexed to `1..=Steps-j0`, and it inherits state
//! from the executed prefix: analyses already set up hold memory, and the
//! Eq. 9 minimum-interval clock did not reset at the boundary. A plain
//! [`crate::replay()`] of the suffix would miss both.
//!
//! [`replay_suffix`] runs the same Eqs. 2–9 recursions as
//! [`crate::replay()`] — still entirely in exact rational arithmetic, still
//! sharing no code with the MILP side — but seeded from a
//! [`SuffixCarry`]: the per-analysis held memory and steps-since-last-run
//! at the boundary. [`memory_state_at`] derives the memory half of that
//! carry from the prefix, and [`crate::certify_suffix`] stamps a suffix
//! schedule with the same three-way verdict as [`crate::certify`].
//!
//! The carry is deliberately *not* trusted blindly: a carry whose shape
//! does not match the problem is a structural violation, exactly like a
//! wrong-arity schedule.

use crate::rational::{Rat, RatError};
use crate::replay::{exact_profile, hard, ReplayReport, Violation, ViolationKind};
use insitu_types::{Schedule, ScheduleProblem};

/// Prefix state carried across a mid-run reschedule boundary.
///
/// All vectors are indexed by analysis, with one entry per analysis of
/// the *suffix* problem (which has the same analyses as the original).
#[derive(Debug, Clone, PartialEq)]
pub struct SuffixCarry {
    /// End-of-step memory footprint (the Eqs. 5–7 `mEnd` state) each
    /// analysis holds at the boundary. `None` = the analysis was never
    /// set up in the prefix; if the suffix schedule activates it, its
    /// `fixed_mem` seeds the recursion exactly as in a from-scratch
    /// replay. `Some(m)` seeds the recursion at `m` — and if the suffix
    /// schedule *de*activates the analysis, the `m` bytes stay allocated
    /// (the runtime does not free buffers mid-run) and count against
    /// Eq. 8 at every remaining step.
    pub held_mem: Vec<Option<f64>>,
    /// Simulation steps elapsed since each analysis last ran (the Eq. 9
    /// clock at the boundary). `None` = never ran in the prefix; the
    /// first suffix run then must wait the full `min_interval`, as in a
    /// from-scratch replay. `Some(g)` lets a first suffix run at local
    /// step `j` as soon as `g + j >= min_interval`.
    pub steps_since_run: Vec<Option<usize>>,
}

impl SuffixCarry {
    /// A carry with no prefix state at all, for `n` analyses.
    /// `replay_suffix` with a fresh carry is identical to [`crate::replay()`].
    pub fn fresh(n: usize) -> Self {
        SuffixCarry {
            held_mem: vec![None; n],
            steps_since_run: vec![None; n],
        }
    }
}

/// Derives the memory half of a [`SuffixCarry`] from an executed prefix:
/// the exact end-of-step memory footprint (`mEnd` of Eqs. 5–7) of every
/// set-up analysis after simulation step `step` of `schedule`.
///
/// `set_up[i]` says whether analysis `i` was actually set up during the
/// prefix (the runtime sets up every analysis that is active in the plan,
/// even ones whose first run comes later). Entries with `set_up[i] ==
/// false` come back as `None`; set-up analyses are modeled as accruing
/// `step_mem` on every step, which is exact for analyses that ran the
/// whole prefix and conservative (an over-estimate) for analyses a
/// previous reschedule deactivated mid-prefix.
pub fn memory_state_at(
    problem: &ScheduleProblem,
    schedule: &Schedule,
    step: usize,
    set_up: &[bool],
) -> Result<Vec<Option<Rat>>, RatError> {
    if schedule.per_analysis.len() != problem.len() || set_up.len() != problem.len() {
        return Err(RatError::NonFinite); // shape mismatch, as in replay_time_series
    }
    let mut mem_end: Vec<Option<Rat>> = Vec::with_capacity(problem.len());
    for (i, up) in set_up.iter().enumerate() {
        mem_end.push(if *up {
            Some(Rat::from_f64_exact(problem.analyses[i].fixed_mem)?)
        } else {
            None
        });
    }
    for j in 1..=step.min(problem.resources.steps) {
        for (i, s) in schedule.per_analysis.iter().enumerate() {
            let Some(m) = &mem_end[i] else { continue };
            let p = exact_profile(&problem.analyses[i])?;
            let mut m_start = m.add(&p.im)?;
            if s.runs_at(j) {
                m_start = m_start.add(&p.cm)?;
            }
            if s.outputs_at(j) {
                m_start = m_start.add(&p.om)?;
            }
            mem_end[i] = Some(if s.outputs_at(j) { p.fm } else { m_start });
        }
    }
    Ok(mem_end)
}

/// Replays a suffix `schedule` against the suffix `problem`, seeded from
/// `carry`, exactly.
///
/// `problem` describes only the remaining steps: `resources.steps` is the
/// suffix length, `step_threshold * steps` the *remaining* budget, and
/// profiles carry whatever cost model the caller re-estimated (typically
/// measured `it/ct/ot`, and `fixed_time = 0` for analyses already set
/// up). Differences from [`crate::replay()`]:
///
/// * the Eq. 9 interval clock starts at `carry.steps_since_run` instead
///   of zero,
/// * the Eqs. 5–7 memory recursion is seeded at `carry.held_mem` instead
///   of `fixed_mem`, and memory held by analyses the suffix deactivates
///   keeps counting against Eq. 8,
/// * a carry whose vectors do not match the problem's arity is a
///   structural violation.
///
/// With [`SuffixCarry::fresh`] this is exactly [`crate::replay()`].
pub fn replay_suffix(
    problem: &ScheduleProblem,
    schedule: &Schedule,
    carry: &SuffixCarry,
) -> Result<ReplayReport, RatError> {
    let mut base = crate::replay::replay(problem, schedule)?;
    if carry.held_mem.len() != problem.len() || carry.steps_since_run.len() != problem.len() {
        base.violations.push(hard(
            ViolationKind::Structure,
            format!(
                "carry covers {}/{} analyses, problem has {}",
                carry.held_mem.len(),
                carry.steps_since_run.len(),
                problem.len()
            ),
        ));
        return Ok(base);
    }
    if schedule.per_analysis.len() != problem.len() {
        return Ok(base); // arity already reported by the base replay
    }

    // --- Eq. 9 with the carried clock: the base replay already enforced
    // gaps *within* the suffix; only the boundary-crossing first run can
    // differ, in either direction ---
    let steps = problem.resources.steps;
    for (i, s) in schedule.per_analysis.iter().enumerate() {
        let a = &problem.analyses[i];
        let itv = a.min_interval.max(1);
        let Some(&j) = s.analysis_steps.first() else {
            continue;
        };
        match carry.steps_since_run[i] {
            // never ran: the base replay's from-zero check was correct
            None => {}
            Some(gap) => {
                // drop the base replay's from-zero complaint about this
                // first run, if any, and re-check against the real clock
                let from_zero = format!(
                    "analysis `{}`: steps 0 -> {j} violate interval {itv}",
                    a.name
                );
                base.violations
                    .retain(|v| !(v.kind == ViolationKind::Interval && v.message == from_zero));
                if gap.saturating_add(j) < itv {
                    base.violations.push(hard(
                        ViolationKind::Interval,
                        format!(
                            "analysis `{}`: last prefix run {gap} steps before the boundary, \
                             first suffix run at local step {j} violates interval {itv}",
                            a.name
                        ),
                    ));
                }
            }
        }
    }

    // --- Eqs. 5–8 seeded from the carry. The base replay seeded active
    // analyses at `fixed_mem` and ignored inactive ones entirely; redo the
    // whole recursion with the carried state ---
    let mth = if problem.resources.mem_threshold == f64::INFINITY {
        None
    } else {
        Some(Rat::from_f64_exact(problem.resources.mem_threshold)?)
    };
    base.violations.retain(|v| v.kind != ViolationKind::Memory);
    let mut mem_end: Vec<Option<Rat>> = Vec::with_capacity(problem.len());
    let mut idle_held = Rat::ZERO; // held by analyses the suffix deactivates
    for (i, s) in schedule.per_analysis.iter().enumerate() {
        let held = match carry.held_mem[i] {
            Some(m) => Some(Rat::from_f64_exact(m)?),
            None => None,
        };
        if s.count() > 0 {
            mem_end.push(Some(match held {
                Some(m) => m,
                None => Rat::from_f64_exact(problem.analyses[i].fixed_mem)?,
            }));
        } else {
            mem_end.push(None);
            if let Some(m) = held {
                idle_held = idle_held.add(&m)?;
            }
        }
    }
    let mut peak_memory = idle_held;
    for m in mem_end.iter().flatten() {
        peak_memory = peak_memory.add(m)?;
    }
    for j in 1..=steps {
        let mut step_total = idle_held;
        for (i, s) in schedule.per_analysis.iter().enumerate() {
            let Some(m) = &mem_end[i] else { continue };
            let p = exact_profile(&problem.analyses[i])?;
            let mut m_start = m.add(&p.im)?;
            if s.runs_at(j) {
                m_start = m_start.add(&p.cm)?;
            }
            if s.outputs_at(j) {
                m_start = m_start.add(&p.om)?;
            }
            mem_end[i] = Some(if s.outputs_at(j) { p.fm } else { m_start });
            step_total = step_total.add(&m_start)?;
        }
        if let Some(mth) = &mth {
            if !step_total.le(mth)? {
                let excess = step_total.sub(mth)?;
                base.violations.push(Violation {
                    kind: ViolationKind::Memory,
                    message: format!(
                        "suffix step {j}: memory {} exceeds mth {} (exact excess {excess})",
                        step_total.to_f64(),
                        mth.to_f64(),
                    ),
                    excess: excess.to_f64(),
                });
            }
        }
        peak_memory = peak_memory.max(&step_total)?;
    }
    base.peak_memory = peak_memory;
    Ok(base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay;
    use insitu_types::{AnalysisProfile, AnalysisSchedule, ResourceConfig};

    fn problem(steps: usize, budget: f64) -> ScheduleProblem {
        ScheduleProblem::new(
            vec![AnalysisProfile::new("a")
                .with_fixed(1.0, 100.0)
                .with_per_step(0.0, 1.0)
                .with_compute(2.0, 10.0)
                .with_output(0.5, 5.0, 1)
                .with_interval(10)],
            ResourceConfig::from_total_threshold(steps, budget, 1000.0, 1e9),
        )
        .unwrap()
    }

    fn schedule(analysis: Vec<usize>, output: Vec<usize>) -> Schedule {
        let mut s = Schedule::empty(1);
        s.per_analysis[0] = AnalysisSchedule::new(analysis, output);
        s
    }

    #[test]
    fn fresh_carry_matches_plain_replay() {
        let p = problem(50, 20.0);
        let s = schedule(vec![10, 20, 40], vec![40]);
        let plain = replay(&p, &s).unwrap();
        let suffix = replay_suffix(&p, &s, &SuffixCarry::fresh(1)).unwrap();
        assert_eq!(plain, suffix);
    }

    #[test]
    fn carried_interval_clock_admits_an_early_first_run() {
        let p = problem(50, 20.0);
        // first run at local step 4: from scratch this violates itv=10...
        let s = schedule(vec![4, 14], vec![]);
        assert!(!replay(&p, &s).unwrap().is_feasible());
        // ...but with 6 steps already elapsed before the boundary, 6+4=10
        // satisfies the clock exactly
        let carry = SuffixCarry {
            held_mem: vec![Some(100.0)],
            steps_since_run: vec![Some(6)],
        };
        let r = replay_suffix(&p, &s, &carry).unwrap();
        assert!(r.is_feasible(), "{:?}", r.violations);
    }

    #[test]
    fn carried_interval_clock_rejects_a_too_early_first_run() {
        let p = problem(50, 20.0);
        let s = schedule(vec![4, 14], vec![]);
        let carry = SuffixCarry {
            held_mem: vec![Some(100.0)],
            steps_since_run: vec![Some(5)], // 5 + 4 < 10
        };
        let r = replay_suffix(&p, &s, &carry).unwrap();
        assert!(!r.is_feasible());
        assert!(r
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::Interval && v.message.contains("boundary")));
    }

    #[test]
    fn never_ran_carry_keeps_the_from_zero_clock() {
        let p = problem(50, 20.0);
        let s = schedule(vec![4], vec![]);
        let carry = SuffixCarry {
            held_mem: vec![Some(100.0)],
            steps_since_run: vec![None],
        };
        assert!(!replay_suffix(&p, &s, &carry).unwrap().is_feasible());
    }

    #[test]
    fn held_memory_seeds_the_recursion() {
        let mut p = problem(30, 20.0);
        p.resources.mem_threshold = 150.0;
        let s = schedule(vec![10], vec![]);
        // from scratch: seed fm 100, step 10 start = 100 + 10*im + cm = 120
        let fresh = replay_suffix(&p, &s, &SuffixCarry::fresh(1)).unwrap();
        assert!(fresh.is_feasible(), "{:?}", fresh.violations);
        // carrying 141 bytes: step 10 start = 141 + 10 + 10 = 161 > 150
        let carry = SuffixCarry {
            held_mem: vec![Some(141.0)],
            steps_since_run: vec![Some(20)],
        };
        let r = replay_suffix(&p, &s, &carry).unwrap();
        assert!(!r.is_feasible());
        assert!(r.violations.iter().any(|v| v.kind == ViolationKind::Memory));
    }

    #[test]
    fn deactivated_analyses_keep_holding_their_memory() {
        let two = ScheduleProblem::new(
            vec![
                AnalysisProfile::new("kept").with_compute(1.0, 10.0).with_interval(5),
                AnalysisProfile::new("dropped").with_fixed(0.0, 900.0).with_interval(5),
            ],
            ResourceConfig::from_total_threshold(20, 100.0, 1000.0, 1e9),
        )
        .unwrap();
        let mut s = Schedule::empty(2);
        s.per_analysis[0] = AnalysisSchedule::new(vec![5, 10], vec![]);
        // `dropped` is inactive in the suffix but still holds 900 bytes;
        // kept accumulates cm with no output reset (10 after step 5, 20
        // after step 10), so the peak is 900 + 20 = 920 <= 1000 — where a
        // plain replay, blind to the held memory, would report only 20
        let carry = SuffixCarry {
            held_mem: vec![None, Some(900.0)],
            steps_since_run: vec![None, Some(3)],
        };
        let r = replay_suffix(&two, &s, &carry).unwrap();
        assert!(r.is_feasible(), "{:?}", r.violations);
        assert_eq!(r.peak_memory, Rat::from_int(920));
        let plain = replay(&two, &s).unwrap();
        assert_eq!(plain.peak_memory, Rat::from_int(20));
    }

    #[test]
    fn mismatched_carry_is_a_structural_violation() {
        let p = problem(20, 20.0);
        let s = schedule(vec![10], vec![]);
        let r = replay_suffix(&p, &s, &SuffixCarry::fresh(3)).unwrap();
        assert!(!r.is_feasible());
        assert!(r
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::Structure && v.message.contains("carry")));
    }

    #[test]
    fn memory_state_tracks_the_prefix_recursion() {
        let p = problem(100, 1e9);
        let s = schedule(vec![20, 40], vec![40]);
        // after step 30: fm 100 + 30*im 1 + cm 10 (run at 20, no output) = 140
        let m = memory_state_at(&p, &s, 30, &[true]).unwrap();
        assert_eq!(m[0], Some(Rat::from_int(140)));
        // after step 40 the output resets to fm
        let m = memory_state_at(&p, &s, 40, &[true]).unwrap();
        assert_eq!(m[0], Some(Rat::from_int(100)));
        // a never-set-up analysis has no footprint
        let m = memory_state_at(&p, &s, 30, &[false]).unwrap();
        assert_eq!(m[0], None);
        // shape mismatches are errors
        assert!(memory_state_at(&p, &s, 30, &[true, false]).is_err());
        assert!(memory_state_at(&p, &Schedule::empty(2), 30, &[true]).is_err());
    }
}
