//! Closed-loop adaptive rescheduling: the policy layer behind
//! [`crate::runtime::run_coupled_adaptive`].
//!
//! A statically solved schedule is only as good as its Table-1
//! calibration. When the measured run drifts from the model — an analysis
//! spins 20× longer than profiled, say — the static schedule can blow
//! straight through the budget it was proven to respect. This module holds
//! the pieces the adaptive coupler composes into a
//! model-predictive-control loop:
//!
//! * [`AdaptiveConfig`] — when to check, what trips a reschedule, and how
//!   the mid-run re-solve is configured;
//! * [`remaining_problem`] — rebuilds the [`ScheduleProblem`] for the
//!   steps still ahead from the *measured* cost prefix and the remaining
//!   budget;
//! * [`schedule_tail`] / [`splice_schedule`] — re-index the incumbent
//!   schedule into suffix steps (the warm-start hint) and splice an
//!   adopted suffix back into the composite executed schedule;
//! * [`RescheduleRecord`] — one record per trigger, exported as
//!   `reschedule/v1` JSON (schema documented in `docs/ADAPTIVE.md` and
//!   `EXPERIMENTS.md`).
//!
//! The control-loop contract — trigger semantics, determinism guarantees,
//! carry-aware re-certification — is documented end to end in
//! `docs/ADAPTIVE.md`.

use insitu_types::json::Value;
use insitu_types::{ResourceConfig, Schedule, ScheduleProblem};
use milp::SolveOptions;
use std::collections::BTreeMap;

use crate::runtime::AnalysisTimes;

/// Configuration of the adaptive control loop.
///
/// The defaults check after every step, trigger only on measured
/// pro-rated-budget violations (drift triggering is off —
/// `drift_threshold` is infinite), wait 4 steps between reschedules and
/// allow at most 3 of them.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Evaluate the triggers every this many steps (min 1).
    pub check_every: usize,
    /// Trip when `measured_cum - predicted_cum` exceeds this many seconds
    /// (absolute, positive drift only — running *faster* than the model
    /// never forces a reschedule). `f64::INFINITY` disables the drift
    /// trigger.
    pub drift_threshold: f64,
    /// Trip when the measured analysis time since the last adopted
    /// schedule exceeds that schedule's pro-rated budget (see
    /// `docs/ADAPTIVE.md` for the reset-baseline semantics).
    pub trigger_on_budget: bool,
    /// Minimum number of steps between consecutive reschedules, so one
    /// slow step cannot thrash the solver.
    pub cooldown_steps: usize,
    /// Hard cap on reschedules per run.
    pub max_reschedules: usize,
    /// Options for the mid-run MILP re-solves.
    pub solver: SolveOptions,
    /// Forwarded to the advisor: use the exact time-indexed formulation
    /// when the *remaining* step count is at most this.
    pub exact_steps_limit: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            check_every: 1,
            drift_threshold: f64::INFINITY,
            trigger_on_budget: true,
            cooldown_steps: 4,
            max_reschedules: 3,
            solver: SolveOptions::default(),
            exact_steps_limit: 0,
        }
    }
}

/// What tripped a reschedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerReason {
    /// Cumulative measured-minus-predicted drift crossed
    /// [`AdaptiveConfig::drift_threshold`].
    Drift,
    /// Measured analysis time crossed the incumbent schedule's pro-rated
    /// budget.
    Budget,
}

impl std::fmt::Display for TriggerReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TriggerReason::Drift => "drift",
            TriggerReason::Budget => "budget",
        })
    }
}

/// One reschedule attempt, adopted or not.
#[derive(Debug, Clone, PartialEq)]
pub struct RescheduleRecord {
    /// Simulation step (1-based) after which the trigger fired.
    pub step: usize,
    /// What tripped it.
    pub reason: TriggerReason,
    /// `measured_cum - predicted_cum` at the trigger step.
    pub drift: f64,
    /// Measured cumulative analysis time at the trigger step.
    pub measured_cum: f64,
    /// Predicted cumulative analysis time at the trigger step.
    pub predicted_cum: f64,
    /// Steps still ahead when the re-solve ran.
    pub remaining_steps: usize,
    /// Wall-clock time of the re-solve, milliseconds.
    pub solve_ms: f64,
    /// Objective of the incumbent schedule's not-yet-run tail, under the
    /// *remaining* (measured-cost) problem.
    pub old_objective: f64,
    /// Objective of the re-solved suffix schedule.
    pub new_objective: f64,
    /// Whether the new schedule was swapped in. `false` means the
    /// re-solve failed or carry-aware certification rejected it, and the
    /// run kept the incumbent.
    pub adopted: bool,
    /// Certification verdict of the adopted schedule (`"PROVED"` /
    /// `"FEASIBLE-ONLY"`), or the failure reason when not adopted.
    pub verdict: String,
}

impl RescheduleRecord {
    /// JSON export (`reschedule/v1`), one object per reschedule attempt.
    pub fn to_json(&self) -> Value {
        let mut o = BTreeMap::new();
        o.insert("schema".into(), Value::String("reschedule/v1".into()));
        o.insert("step".into(), Value::Number(self.step as f64));
        o.insert("reason".into(), Value::String(self.reason.to_string()));
        o.insert("drift".into(), Value::Number(self.drift));
        o.insert("measured_cum".into(), Value::Number(self.measured_cum));
        o.insert("predicted_cum".into(), Value::Number(self.predicted_cum));
        o.insert(
            "remaining_steps".into(),
            Value::Number(self.remaining_steps as f64),
        );
        o.insert("solve_ms".into(), Value::Number(self.solve_ms));
        o.insert("old_objective".into(), Value::Number(self.old_objective));
        o.insert("new_objective".into(), Value::Number(self.new_objective));
        o.insert("adopted".into(), Value::Bool(self.adopted));
        o.insert("verdict".into(), Value::String(self.verdict.clone()));
        Value::Object(o)
    }
}

/// Rebuilds the scheduling problem for the steps after `step`, replacing
/// the modeled per-call costs with the run's *measured* averages.
///
/// Per analysis `i`:
/// * `it` becomes `times[i].per_step / active_steps[i]` when the analysis
///   has been active for at least one step;
/// * `ct` becomes `times[i].analyze / times[i].analyze_count` when it has
///   analyzed at least once (likewise `ot` from the output bracket);
/// * `ft` becomes `0` when `set_up[i]` — setup is a sunk cost the suffix
///   must not pay again;
/// * memory parameters are kept from the model (the runtime does not
///   measure allocation).
///
/// The resources keep the memory threshold and bandwidth but re-spread
/// the *remaining* budget `max(0, cth·Steps − measured_cum)` evenly over
/// the `Steps − step` remaining steps. Costs that were never exercised
/// keep their modeled values.
///
/// Errors when `step >= Steps` or the rebuilt problem fails validation
/// (e.g. a non-finite threshold).
pub fn remaining_problem(
    problem: &ScheduleProblem,
    times: &[AnalysisTimes],
    active_steps: &[usize],
    set_up: &[bool],
    step: usize,
    measured_cum: f64,
) -> Result<ScheduleProblem, String> {
    let steps = problem.resources.steps;
    if step >= steps {
        return Err(format!("no steps remain after step {step} of {steps}"));
    }
    let remaining = steps - step;
    let analyses = problem
        .analyses
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let mut p = a.clone();
            if active_steps[i] > 0 {
                p.step_time = times[i].per_step / active_steps[i] as f64;
            }
            if times[i].analyze_count > 0 {
                p.compute_time = times[i].analyze / times[i].analyze_count as f64;
            }
            if times[i].output_count > 0 {
                p.output_time = times[i].output / times[i].output_count as f64;
            }
            if set_up[i] {
                p.fixed_time = 0.0;
            }
            p
        })
        .collect();
    let budget_left = (problem.resources.total_threshold() - measured_cum).max(0.0);
    let resources = ResourceConfig::new(
        remaining,
        budget_left / remaining as f64,
        problem.resources.mem_threshold,
        problem.resources.io_bandwidth,
    );
    ScheduleProblem::new(analyses, resources).map_err(|e| e.to_string())
}

/// The not-yet-run tail of `schedule` after `step`, re-indexed into
/// suffix steps: a run at absolute step `s > step` becomes a run at
/// suffix step `s - step`.
pub fn schedule_tail(schedule: &Schedule, step: usize) -> Schedule {
    Schedule {
        per_analysis: schedule
            .per_analysis
            .iter()
            .map(|s| insitu_types::AnalysisSchedule {
                analysis_steps: s
                    .analysis_steps
                    .iter()
                    .filter(|&&j| j > step)
                    .map(|&j| j - step)
                    .collect(),
                output_steps: s
                    .output_steps
                    .iter()
                    .filter(|&&j| j > step)
                    .map(|&j| j - step)
                    .collect(),
            })
            .collect(),
    }
}

/// Splices an adopted `suffix` (in suffix steps) back into the composite
/// schedule: keeps `schedule`'s runs at steps `<= step` and appends the
/// suffix's runs shifted to absolute steps `step + t`.
pub fn splice_schedule(schedule: &Schedule, step: usize, suffix: &Schedule) -> Schedule {
    Schedule {
        per_analysis: schedule
            .per_analysis
            .iter()
            .zip(&suffix.per_analysis)
            .map(|(pre, suf)| {
                let mut analysis_steps: Vec<usize> = pre
                    .analysis_steps
                    .iter()
                    .copied()
                    .filter(|&j| j <= step)
                    .collect();
                analysis_steps.extend(suf.analysis_steps.iter().map(|&t| step + t));
                let mut output_steps: Vec<usize> = pre
                    .output_steps
                    .iter()
                    .copied()
                    .filter(|&j| j <= step)
                    .collect();
                output_steps.extend(suf.output_steps.iter().map(|&t| step + t));
                insitu_types::AnalysisSchedule {
                    analysis_steps,
                    output_steps,
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::{AnalysisProfile, AnalysisSchedule};

    fn two_analysis_problem() -> ScheduleProblem {
        ScheduleProblem::new(
            vec![
                AnalysisProfile::new("a")
                    .with_fixed(0.5, 0.0)
                    .with_per_step(0.01, 0.0)
                    .with_compute(1.0, 0.0)
                    .with_output(0.2, 0.0, 1)
                    .with_interval(2),
                AnalysisProfile::new("b").with_compute(3.0, 0.0).with_interval(4),
            ],
            ResourceConfig::from_total_threshold(20, 10.0, 1e9, 1e9),
        )
        .unwrap()
    }

    #[test]
    fn remaining_problem_uses_measured_averages_and_remaining_budget() {
        let p = two_analysis_problem();
        let times = vec![
            AnalysisTimes {
                name: "a".into(),
                setup: 0.4,
                per_step: 0.2,  // over 8 active steps -> 0.025/step
                analyze: 6.0,   // over 3 calls -> 2.0/call vs modeled 1.0
                output: 0.3,    // over 1 call
                analyze_count: 3,
                output_count: 1,
            },
            AnalysisTimes {
                name: "b".into(),
                ..Default::default() // never ran: modeled costs survive
            },
        ];
        let r = remaining_problem(&p, &times, &[8, 0], &[true, false], 8, 4.0).unwrap();
        assert_eq!(r.resources.steps, 12);
        // remaining budget (10 - 4) spread over 12 steps
        assert!((r.resources.step_threshold - 0.5).abs() < 1e-12);
        assert!((r.analyses[0].step_time - 0.025).abs() < 1e-12);
        assert!((r.analyses[0].compute_time - 2.0).abs() < 1e-12);
        assert!((r.analyses[0].output_time - 0.3).abs() < 1e-12);
        assert_eq!(r.analyses[0].fixed_time, 0.0, "setup already paid");
        assert_eq!(r.analyses[1].compute_time, 3.0, "unmeasured keeps model");
        assert_eq!(r.analyses[1].fixed_time, 0.0);
        // an overspent run leaves a zero (not negative) budget
        let broke = remaining_problem(&p, &times, &[8, 0], &[true, false], 8, 99.0).unwrap();
        assert_eq!(broke.resources.step_threshold, 0.0);
        assert!(remaining_problem(&p, &times, &[8, 0], &[true, false], 20, 0.0).is_err());
    }

    #[test]
    fn tail_and_splice_round_trip() {
        let mut s = Schedule::empty(2);
        s.per_analysis[0] = AnalysisSchedule::new(vec![2, 4, 6, 8], vec![4, 8]);
        s.per_analysis[1] = AnalysisSchedule::new(vec![5], vec![]);
        let tail = schedule_tail(&s, 4);
        assert_eq!(tail.per_analysis[0].analysis_steps, vec![2, 4]);
        assert_eq!(tail.per_analysis[0].output_steps, vec![4]);
        assert_eq!(tail.per_analysis[1].analysis_steps, vec![1]);
        // splicing a tail back in at the same step reproduces the original
        assert_eq!(splice_schedule(&s, 4, &tail), s);
        // and a different suffix replaces only the future
        let mut new_suffix = Schedule::empty(2);
        new_suffix.per_analysis[0] = AnalysisSchedule::new(vec![3], vec![3]);
        let spliced = splice_schedule(&s, 4, &new_suffix);
        assert_eq!(spliced.per_analysis[0].analysis_steps, vec![2, 4, 7]);
        assert_eq!(spliced.per_analysis[0].output_steps, vec![4, 7]);
        assert!(spliced.per_analysis[1].analysis_steps.is_empty());
    }

    #[test]
    fn reschedule_record_exports_the_v1_schema() {
        let rec = RescheduleRecord {
            step: 4,
            reason: TriggerReason::Budget,
            drift: 0.02,
            measured_cum: 0.03,
            predicted_cum: 0.01,
            remaining_steps: 36,
            solve_ms: 1.5,
            old_objective: 21.0,
            new_objective: 14.0,
            adopted: true,
            verdict: "PROVED".into(),
        };
        let json = rec.to_json().to_string_pretty();
        let parsed = Value::parse(&json).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some("reschedule/v1")
        );
        assert_eq!(parsed.get("reason").and_then(Value::as_str), Some("budget"));
        assert_eq!(parsed.get("adopted"), Some(&Value::Bool(true)));
        assert_eq!(format!("{}", TriggerReason::Drift), "drift");
    }
}
