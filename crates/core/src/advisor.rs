//! The high-level API: "given these analyses and this machine, what should
//! I run in-situ, how often, and when should it write output?"

use insitu_types::{Schedule, ScheduleProblem};
use milp::{SolveError, SolveOptions, SolveStats};

use crate::aggregate::{solve_aggregate_counts, solve_aggregate_counts_with_hint};
use crate::formulation::{solve_exact_with_hint, solve_exact_with_stats};
use crate::placement::place_schedule;
use crate::validate::{validate_schedule, ValidationReport};

/// Advisor configuration.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct AdvisorOptions {
    /// Options forwarded to the MILP solver.
    pub solver: SolveOptions,
    /// Use the exact time-indexed formulation whenever
    /// `Steps <= exact_steps_limit`; otherwise the aggregate reformulation.
    /// The aggregate path is exact for the model (see its module docs) and
    /// vastly cheaper, so the default keeps this low.
    pub exact_steps_limit: usize,
}


/// Errors surfaced by the advisor.
#[derive(Debug, Clone, PartialEq)]
pub enum AdvisorError {
    /// The underlying MILP failed (infeasible models are reported as an
    /// empty recommendation instead, not an error).
    Solver(SolveError),
    /// A solved schedule failed independent certification — indicates a
    /// solver or formulation bug and should never occur.
    CertificationFailed(Vec<String>),
}

impl std::fmt::Display for AdvisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdvisorError::Solver(e) => write!(f, "solver error: {e}"),
            AdvisorError::CertificationFailed(v) => {
                write!(f, "schedule failed certification: {v:?}")
            }
        }
    }
}

impl std::error::Error for AdvisorError {}

/// A certified scheduling recommendation.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Certification stamp from the independent checker:
    /// [`certify::Verdict::Proved`] when the solver's branch-and-bound
    /// pruning certificate closed under [`certify::check_certificate`],
    /// [`certify::Verdict::FeasibleOnly`] when no certificate was produced
    /// (e.g. the trivial zero-analysis problem). A recommendation is never
    /// returned with [`certify::Verdict::Invalid`] — that surfaces as
    /// [`AdvisorError::CertificationFailed`] instead.
    pub verdict: certify::Verdict,
    /// The concrete schedule (which steps each analysis runs/outputs at).
    pub schedule: Schedule,
    /// `|C_i|` per analysis — the "frequency" columns of the paper's tables.
    pub counts: Vec<usize>,
    /// `|O_i|` per analysis.
    pub output_counts: Vec<usize>,
    /// Objective value (Eq. 1).
    pub objective: f64,
    /// Predicted total in-situ analysis time (LHS of Eq. 4).
    pub predicted_time: f64,
    /// Full certification report.
    pub report: ValidationReport,
    /// Telemetry from the underlying MILP solve: nodes explored/pruned,
    /// simplex pivots, incumbent timeline and per-phase wall times. See
    /// [`milp::SolveStats`] and `docs/SOLVER.md`.
    pub solver_stats: SolveStats,
}

impl Recommendation {
    /// The paper's "% within threshold" metric.
    pub fn budget_utilization_percent(&self) -> f64 {
        self.report.budget_utilization() * 100.0
    }

    /// Total number of analysis executions across all analyses (Table 7's
    /// "Number of analyses" column).
    pub fn total_analyses(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Exports the recommendation into an [`obs::Registry`]: the solver's
    /// counters (via [`SolveStats::export_into`]) plus the schedule-level
    /// `advisor.*` metrics, so an advise-then-run pipeline reports through
    /// one sink.
    pub fn export_into(&self, registry: &obs::Registry) {
        self.solver_stats.export_into(registry);
        registry.add("advisor.total_analyses", self.total_analyses() as u64);
        registry.add(
            "advisor.total_outputs",
            self.output_counts.iter().sum::<usize>() as u64,
        );
        registry.observe("advisor.objective", self.objective);
        registry.observe("advisor.predicted_time_s", self.predicted_time);
        registry.observe(
            "advisor.budget_utilization",
            self.report.budget_utilization(),
        );
    }
}

/// Result of a mid-run re-solve over the remaining steps of a coupled run.
///
/// Produced by [`Advisor::recommend_remaining`]. Unlike a fresh
/// [`Recommendation`], the schedule here is certified *with* the carry-in
/// state from the already-executed prefix (held memory, last-run gaps), so
/// the stamp covers exactly the situation the runtime will splice it into.
#[derive(Debug, Clone)]
pub struct RescheduleOutcome {
    /// The re-solved schedule, indexed in remaining-problem steps (step 1
    /// is the first step after the reschedule point).
    pub schedule: Schedule,
    /// Exact-replay objective of the new schedule (Eq. 1 over the suffix).
    pub objective: f64,
    /// Solver telemetry for the warm-started re-solve.
    pub stats: SolveStats,
    /// Carry-aware certification stamp from [`certify::certify_suffix`];
    /// never [`certify::Verdict::Invalid`] — that surfaces as
    /// [`AdvisorError::CertificationFailed`] instead.
    pub certification: certify::Certification,
}

/// The scheduling advisor.
#[derive(Debug, Clone, Default)]
pub struct Advisor {
    opts: AdvisorOptions,
}

impl Advisor {
    /// Creates an advisor with the given options.
    pub fn new(opts: AdvisorOptions) -> Self {
        Advisor { opts }
    }

    /// Solves the scheduling problem and returns a certified
    /// recommendation.
    pub fn recommend(&self, problem: &ScheduleProblem) -> Result<Recommendation, AdvisorError> {
        // always ask the solver for its pruning certificate so the
        // recommendation can be stamped, whatever the caller configured
        let mut solver_opts = self.opts.solver.clone();
        solver_opts.certificate = true;
        let (schedule, solver_stats) = if problem.resources.steps <= self.opts.exact_steps_limit {
            let (s, _, stats) =
                solve_exact_with_stats(problem, &solver_opts).map_err(AdvisorError::Solver)?;
            (s, stats)
        } else {
            let agg = solve_aggregate_counts(problem, &solver_opts)
                .map_err(AdvisorError::Solver)?;
            let s = place_schedule(problem, &agg.counts, &agg.output_counts);
            (s, agg.stats)
        };
        let report = validate_schedule(problem, &schedule);
        if !report.is_feasible() {
            return Err(AdvisorError::CertificationFailed(report.violations));
        }
        // stamp: check the pruning certificate against the *replayed*
        // objective. Feasibility was already decided above with the
        // solver-sized tolerance; a broken certificate on a feasible
        // schedule still indicates a solver bug and is an error.
        let verdict = match &solver_stats.certificate {
            Some(cert) => {
                let mut problems = certify::check_certificate(cert, report.objective);
                if !cert.proven_optimal {
                    problems.push("solver did not claim proven optimality".into());
                }
                if !problems.is_empty() {
                    return Err(AdvisorError::CertificationFailed(problems));
                }
                certify::Verdict::Proved
            }
            None => certify::Verdict::FeasibleOnly,
        };
        let counts: Vec<usize> = schedule.per_analysis.iter().map(|s| s.count()).collect();
        let output_counts: Vec<usize> = schedule
            .per_analysis
            .iter()
            .map(|s| s.output_count())
            .collect();
        Ok(Recommendation {
            verdict,
            objective: report.objective,
            predicted_time: report.total_time,
            counts,
            output_counts,
            report,
            schedule,
            solver_stats,
        })
    }

    /// Re-solves the scheduling problem over the *remaining* steps of a
    /// partially executed run, warm-started from the incumbent schedule.
    ///
    /// `remaining` is the suffix problem (measured profiles, remaining
    /// steps, remaining pro-rated budget); `incumbent` is the not-yet-run
    /// tail of the current schedule *re-indexed into suffix steps* and is
    /// offered to the MILP as a seed incumbent (see
    /// [`milp::solve_with_hint`]) — a bad hint only costs the solver its
    /// head start, never correctness. `carry` is the exact mid-run state
    /// (held memory per set-up analysis, steps since each last ran) taken
    /// from [`certify::memory_state_at`].
    ///
    /// The solver itself is carry-oblivious: its model assumes a fresh
    /// start, so the returned schedule is independently re-certified via
    /// [`certify::certify_suffix`] *with* the carry before it is returned.
    /// A schedule the carry rules out (e.g. held memory pushes a step over
    /// the memory threshold) is rejected as
    /// [`AdvisorError::CertificationFailed`] — the caller keeps the
    /// incumbent in that case.
    pub fn recommend_remaining(
        &self,
        remaining: &ScheduleProblem,
        incumbent: &Schedule,
        carry: &certify::SuffixCarry,
    ) -> Result<RescheduleOutcome, AdvisorError> {
        let mut solver_opts = self.opts.solver.clone();
        solver_opts.certificate = true;
        let (schedule, stats) = if remaining.resources.steps <= self.opts.exact_steps_limit {
            let (s, _, stats) = solve_exact_with_hint(remaining, &solver_opts, incumbent)
                .map_err(AdvisorError::Solver)?;
            (s, stats)
        } else {
            let counts: Vec<usize> = incumbent.per_analysis.iter().map(|s| s.count()).collect();
            let output_counts: Vec<usize> = incumbent
                .per_analysis
                .iter()
                .map(|s| s.output_count())
                .collect();
            let agg =
                solve_aggregate_counts_with_hint(remaining, &solver_opts, &counts, &output_counts)
                    .map_err(AdvisorError::Solver)?;
            let s = place_schedule(remaining, &agg.counts, &agg.output_counts);
            (s, agg.stats)
        };
        let certification =
            certify::certify_suffix(remaining, &schedule, carry, stats.certificate.as_ref());
        if certification.verdict == certify::Verdict::Invalid {
            return Err(AdvisorError::CertificationFailed(
                certification.problems.clone(),
            ));
        }
        let objective = certification
            .replay
            .as_ref()
            .map(|r| r.objective.to_f64())
            .unwrap_or(0.0);
        Ok(RescheduleOutcome {
            schedule,
            objective,
            stats,
            certification,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::{AnalysisProfile, ResourceConfig, GIB};

    fn table5_like(budget: f64) -> ScheduleProblem {
        // Four analyses calibrated to the paper's Table-5 arithmetic:
        // A1–A3 together cost ~2.11 s for 30 executions (~0.07 s/unit),
        // A4 ~25.3 s per execution (103.47 s total at 20 % minus the rest).
        let mk = |name: &str, ct: f64, ot: f64| {
            AnalysisProfile::new(name)
                .with_compute(ct, 0.5 * GIB)
                .with_output(ot, 0.1 * GIB, 1)
                .with_interval(100)
        };
        ScheduleProblem::new(
            vec![
                mk("A1", 0.065, 0.005),
                mk("A2", 0.065, 0.005),
                mk("A3", 0.066, 0.005),
                mk("A4", 20.0, 5.34),
            ],
            ResourceConfig::from_total_threshold(1000, budget, 100.0 * GIB, GIB),
        )
        .unwrap()
    }

    #[test]
    fn recommendation_is_certified_and_within_budget() {
        let p = table5_like(64.7);
        let rec = Advisor::default().recommend(&p).unwrap();
        assert!(rec.report.is_feasible());
        assert!(rec.predicted_time <= 64.7 + 1e-9);
        assert_eq!(rec.counts[0], 10);
        assert_eq!(rec.counts[1], 10);
        assert_eq!(rec.counts[2], 10);
        assert!(rec.counts[3] < 10);
        assert!(rec.budget_utilization_percent() <= 100.0);
    }

    #[test]
    fn threshold_sweep_reproduces_table5_shape() {
        // A4's frequency decays as the threshold tightens; A1–A3 hold at 10
        let mut a4_counts = Vec::new();
        for budget in [129.35, 64.69, 32.34, 6.46] {
            let p = table5_like(budget);
            let rec = Advisor::default().recommend(&p).unwrap();
            assert_eq!(rec.counts[0], 10, "A1 @ {budget}");
            a4_counts.push(rec.counts[3]);
        }
        assert!(
            a4_counts.windows(2).all(|w| w[0] >= w[1]),
            "A4 must decay: {a4_counts:?}"
        );
        assert_eq!(*a4_counts.last().unwrap(), 0, "A4 infeasible at 1%");
        assert!(a4_counts[0] > 0);
    }

    #[test]
    fn exact_and_aggregate_agree_on_small_instances() {
        let p = ScheduleProblem::new(
            vec![
                AnalysisProfile::new("a")
                    .with_compute(1.0, 0.0)
                    .with_output(0.5, 0.0, 1)
                    .with_interval(4),
                AnalysisProfile::new("b")
                    .with_compute(3.0, 0.0)
                    .with_output(0.5, 0.0, 1)
                    .with_interval(6)
                    .with_weight(2.0),
            ],
            ResourceConfig::from_total_threshold(24, 12.0, 1e9, 1e9),
        )
        .unwrap();
        // Both weights are integers, so the objective is integral and an
        // absolute gap just under 1 is still exact — it lets branch & bound
        // prune the plateau of fractional nodes whose LP bound sits between
        // the integer optimum and optimum+1.
        let integral_gap = milp::SolveOptions {
            abs_gap: 0.999,
            ..Default::default()
        };
        let exact = Advisor::new(AdvisorOptions {
            exact_steps_limit: 1000,
            solver: integral_gap.clone(),
        })
        .recommend(&p)
        .unwrap();
        let agg = Advisor::new(AdvisorOptions {
            solver: integral_gap,
            ..Default::default()
        })
        .recommend(&p)
        .unwrap();
        assert_eq!(
            exact.objective, agg.objective,
            "exact {:?} vs aggregate {:?}",
            exact.counts, agg.counts
        );
    }

    #[test]
    fn infeasible_budget_yields_empty_recommendation() {
        let p = table5_like(0.0);
        let rec = Advisor::default().recommend(&p).unwrap();
        assert_eq!(rec.total_analyses(), 0);
        assert_eq!(rec.objective, 0.0);
    }

    #[test]
    fn recommendations_are_stamped_proved() {
        // the advisor forces certificate emission even though the caller's
        // SolveOptions left it off, and the certificate must close
        let rec = Advisor::default().recommend(&table5_like(64.7)).unwrap();
        assert_eq!(rec.verdict, certify::Verdict::Proved);
        let cert = rec.solver_stats.certificate.as_ref().expect("certificate");
        assert!(cert.proven_optimal);
        assert!(
            certify::check_certificate(cert, rec.objective).is_empty(),
            "certificate must re-check clean outside the advisor too"
        );
        // exact-formulation path gets the same stamp
        let small = ScheduleProblem::new(
            vec![AnalysisProfile::new("a")
                .with_compute(1.0, 0.0)
                .with_interval(4)],
            ResourceConfig::from_total_threshold(12, 2.5, 1e9, 1e9),
        )
        .unwrap();
        let exact = Advisor::new(AdvisorOptions {
            exact_steps_limit: 100,
            ..Default::default()
        })
        .recommend(&small)
        .unwrap();
        assert_eq!(exact.verdict, certify::Verdict::Proved);
    }

    #[test]
    fn trivial_problem_is_feasible_only() {
        // zero analyses: no solve happens, so there is no certificate and
        // the honest stamp is FEASIBLE-ONLY
        let p = ScheduleProblem::new(
            vec![],
            ResourceConfig::from_total_threshold(100, 10.0, 1e9, 1e9),
        )
        .unwrap();
        let rec = Advisor::default().recommend(&p).unwrap();
        assert_eq!(rec.verdict, certify::Verdict::FeasibleOnly);
        assert!(rec.solver_stats.certificate.is_none());
    }

    #[test]
    fn recommend_remaining_matches_fresh_solve_and_rejects_bad_carries() {
        let p = ScheduleProblem::new(
            vec![AnalysisProfile::new("a")
                .with_compute(1.0, 0.1 * GIB)
                .with_output(0.5, 0.0, 1)
                .with_interval(4)],
            ResourceConfig::from_total_threshold(24, 12.0, GIB, GIB),
        )
        .unwrap();
        let advisor = Advisor::default();
        let fresh = advisor.recommend(&p).unwrap();
        // with a fresh carry, the suffix solve is just a warm-started
        // full solve and must land on the same objective
        let out = advisor
            .recommend_remaining(&p, &fresh.schedule, &certify::SuffixCarry::fresh(1))
            .unwrap();
        assert_eq!(out.objective, fresh.objective);
        assert_ne!(out.certification.verdict, certify::Verdict::Invalid);
        // a carry already holding more memory than the threshold rules
        // out every schedule: the carry-aware certification must reject
        // what the carry-oblivious solver proposed
        let bad = certify::SuffixCarry {
            held_mem: vec![Some(10.0 * GIB)],
            steps_since_run: vec![Some(0)],
        };
        let err = advisor
            .recommend_remaining(&p, &fresh.schedule, &bad)
            .unwrap_err();
        assert!(matches!(err, AdvisorError::CertificationFailed(_)));
    }

    #[test]
    fn weights_flip_the_chosen_set() {
        // Table-8 shape: paper step times (F1 3.5 s, F2 1.25 s, F3 2.3 ms)
        // plus output costs chosen so the per-second value ordering flips
        // between I1 = (1,1,1) and I2 = (2,1,2): under I2 the optimizer
        // shifts budget from F2 to F1, the paper's headline observation.
        let mk = |w1: f64, w2: f64, w3: f64| {
            ScheduleProblem::new(
                vec![
                    AnalysisProfile::new("F1")
                        .with_compute(3.5, 0.0)
                        .with_output(0.5, 0.0, 1)
                        .with_interval(100)
                        .with_weight(w1),
                    AnalysisProfile::new("F2")
                        .with_compute(1.25, 0.0)
                        .with_output(1.25, 0.0, 1)
                        .with_interval(100)
                        .with_weight(w2),
                    AnalysisProfile::new("F3")
                        .with_compute(0.0023, 0.0)
                        .with_output(0.0027, 0.0, 1)
                        .with_interval(100)
                        .with_weight(w3),
                ],
                ResourceConfig::from_total_threshold(1000, 43.5, 1e12, 1e9),
            )
            .unwrap()
        };
        let equal = Advisor::default().recommend(&mk(1.0, 1.0, 1.0)).unwrap();
        let biased = Advisor::default().recommend(&mk(2.0, 1.0, 2.0)).unwrap();
        // under I2, F1 gains frequency at F2's expense (paper: 5, 0, 10)
        assert!(
            biased.counts[0] > equal.counts[0],
            "F1: {} !> {}",
            biased.counts[0],
            equal.counts[0]
        );
        assert!(
            biased.counts[1] < equal.counts[1],
            "F2: {} !< {}",
            biased.counts[1],
            equal.counts[1]
        );
        assert_eq!(biased.counts[2], 10, "cheap F3 always at max frequency");
    }
}
