//! Count-based reformulation of the scheduling MILP.
//!
//! # Why it is equivalent
//!
//! The exact formulation's time constraint (Eq. 4) telescopes to a function
//! of the *counts* only: `Σ_i (ft_i + Steps·it_i)·run_i + ct_i·k_i +
//! ot_i·q_i <= cth·Steps`, where `k_i = |C_i|` and `q_i = |O_i|`. The
//! interval constraint (Eq. 9) admits any `k_i <= ⌊Steps/itv_i⌋` via even
//! placement, and the objective (Eq. 1) depends only on `run_i` and `k_i`.
//! Only the per-step memory constraint (Eq. 8) depends on *positions*; the
//! aggregate model bounds each analysis's peak memory by the peak reached
//! under the even placement that [`crate::placement`] will emit, which is
//! **conservative**: any count vector accepted here maps to a concrete
//! schedule whose step-by-step memory the [`crate::validate`] module then
//! re-certifies against Eqs. 5–8. The reduction is therefore certified
//! per-instance rather than assumed.
//!
//! For an analysis with accumulating memory — per-step state (`im > 0`)
//! or compute buffers (`cm > 0`), both of which Eq. 6 frees only at
//! output steps — the peak between resets depends on the output spacing
//! `Steps/q_i`, nonlinear in `q_i`. Because the paper's instances have
//! small `k_max = ⌊Steps/itv⌋` (10 for `Steps=1000, itv=100`), we
//! linearize exactly with a unary ("SOS1-style") expansion over the
//! possible `(k, q)` output counts when `k_max <= EXPANSION_LIMIT`, and
//! fall back to the safe worst-case (`im·Steps + cm·k_max`) bound above
//! that. (The differential fuzz harness caught an earlier version that
//! took `fm + cm + om` as the peak whenever `im == 0` — wrong as soon as
//! `cm > 0` buffers pile up across sparse outputs.)

use insitu_types::{Schedule, ScheduleProblem};
use milp::{Cmp, LinExpr, Model, Sense, SolveError, SolveOptions, SolveStats, Var};

use crate::placement::place_schedule;

/// Above this `k_max` the unary memory expansion is replaced by the
/// conservative whole-run accumulation bound.
pub const EXPANSION_LIMIT: usize = 64;

/// Result of the aggregate solve: per-analysis counts.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSolution {
    /// `k_i` — number of analysis steps per analysis.
    pub counts: Vec<usize>,
    /// `q_i` — number of output steps per analysis.
    pub output_counts: Vec<usize>,
    /// Objective value (Eq. 1).
    pub objective: f64,
    /// Branch-and-bound nodes used.
    pub nodes: usize,
    /// Solver telemetry from the underlying MILP solve (prune counters,
    /// pivot counts, incumbent timeline, per-phase wall times). Empty
    /// ([`SolveStats::default`]) for the trivial zero-analysis problem.
    pub stats: SolveStats,
}

/// Peak memory of analysis `i` under the even placement that
/// [`crate::placement::place_schedule`] will emit for counts `(k, q)`,
/// computed by simulating the Eq. 5–7 recursion on the placed positions —
/// exact, so the aggregate model's memory constraint matches what the
/// validator will later check.
pub fn peak_memory(problem: &ScheduleProblem, i: usize, k: usize, q: usize) -> f64 {
    crate::placement::exact_peak_memory(problem, i, k, q)
}

/// Per analysis: run binary; unary selection y_{i,(k,q)} over feasible
/// (k, q) pairs when small, otherwise integer k, q with linear bounds.
struct PerAnalysis {
    run: Var,
    /// `Some(pairs)` when unary-expanded: (k, q, y-var).
    unary: Option<Vec<(usize, usize, Var)>>,
    /// `Some((k, q))` when integer-modelled.
    ints: Option<(Var, Var)>,
}

/// The built (unsolved) aggregate MILP plus the bookkeeping needed to read
/// per-analysis counts back out of a solution vector.
///
/// The model is **pure-integer** (binaries and bounded integer counts
/// only), so besides [`milp::solve`] it can be handed to the enumeration
/// oracle `milp::brute::brute_force` on small instances — the differential
/// fuzz harness exploits exactly this to cross-check branch & bound.
pub struct AggregateModel {
    /// The count-based MILP (Eqs. 1, 4, 8-peak; Eq. 9 folded into bounds).
    pub model: Model,
    per_analysis: Vec<PerAnalysis>,
}

impl AggregateModel {
    /// `k_i` (analysis count) as a linear expression over the model vars.
    fn k_expr(&self, i: usize) -> LinExpr {
        match (&self.per_analysis[i].unary, &self.per_analysis[i].ints) {
            (Some(pairs), _) => LinExpr::sum(pairs.iter().map(|&(k, _, y)| (y, k as f64))),
            (_, Some((k, _))) => LinExpr::var(*k),
            _ => LinExpr::new(),
        }
    }

    /// `q_i` (output count) as a linear expression over the model vars.
    fn q_expr(&self, i: usize) -> LinExpr {
        match (&self.per_analysis[i].unary, &self.per_analysis[i].ints) {
            (Some(pairs), _) => LinExpr::sum(pairs.iter().map(|&(_, q, y)| (y, q as f64))),
            (_, Some((_, q))) => LinExpr::var(*q),
            _ => LinExpr::new(),
        }
    }

    /// Inverse of [`Self::counts_from`]: maps per-analysis counts onto a
    /// full model-variable vector, for warm-starting a re-solve via
    /// [`milp::solve_with_hint`]. Counts that the model cannot represent —
    /// no matching `(k, q)` pair in a unary expansion, or an analysis with
    /// `k_max == 0` — leave that analysis inactive in the hint (which is
    /// always representable); an altogether infeasible hint is simply
    /// ignored by the solver.
    pub fn hint_values(&self, counts: &[usize], output_counts: &[usize]) -> Vec<f64> {
        let mut values = vec![0.0; self.model.num_vars()];
        for (i, pa) in self.per_analysis.iter().enumerate() {
            let k = counts.get(i).copied().unwrap_or(0);
            let q = output_counts.get(i).copied().unwrap_or(0);
            if k == 0 {
                continue;
            }
            match (&pa.unary, &pa.ints) {
                (Some(pairs), _) => {
                    if let Some(&(_, _, y)) =
                        pairs.iter().find(|&&(pk, pq, _)| pk == k && pq == q)
                    {
                        values[y.index()] = 1.0;
                        values[pa.run.index()] = 1.0;
                    }
                }
                (_, Some((kv, qv))) => {
                    values[kv.index()] = k as f64;
                    values[qv.index()] = q as f64;
                    values[pa.run.index()] = 1.0;
                }
                _ => {} // kmax == 0: the analysis cannot run at all
            }
        }
        values
    }

    /// Extracts `(counts, output_counts)` from a solution vector of
    /// [`Self::model`] (from any solver — branch & bound or brute force).
    pub fn counts_from(&self, values: &[f64]) -> (Vec<usize>, Vec<usize>) {
        let n = self.per_analysis.len();
        let mut counts = vec![0usize; n];
        let mut output_counts = vec![0usize; n];
        for i in 0..n {
            counts[i] = self.k_expr(i).eval(values).round() as usize;
            output_counts[i] = self.q_expr(i).eval(values).round() as usize;
        }
        (counts, output_counts)
    }
}

/// Builds the aggregate model without solving it. See the module docs for
/// the equivalence argument; [`solve_aggregate_counts`] is the convenience
/// wrapper that solves the returned model.
pub fn build_aggregate(problem: &ScheduleProblem) -> Result<AggregateModel, SolveError> {
    problem
        .validate()
        .map_err(|e| SolveError::BadModel(e.to_string()))?;
    let steps = problem.resources.steps;
    let n = problem.len();
    let mut m = Model::new(Sense::Maximize);

    let mut pa: Vec<PerAnalysis> = Vec::with_capacity(n);
    for (i, a) in problem.analyses.iter().enumerate() {
        let run = m.binary(&format!("run_{i}"));
        let kmax = a.max_analysis_steps(steps);
        if kmax == 0 {
            // interval longer than the run: the analysis can never fire
            m.add_con(LinExpr::var(run), Cmp::Le, 0.0);
            pa.push(PerAnalysis {
                run,
                unary: None,
                ints: None,
            });
            continue;
        }
        // im and cm both accumulate between outputs (Eq. 6), so either
        // forces the position-aware expansion
        let needs_expansion =
            (a.step_mem > 0.0 || a.compute_mem > 0.0) && kmax <= EXPANSION_LIMIT;
        if needs_expansion {
            // enumerate feasible (k, q): q bounded by k, and q must satisfy
            // the output cadence (output_every*q >= k) when declared.
            let mut pairs = Vec::new();
            for k in 1..=kmax {
                let qmin = if a.output_every > 0 {
                    k.div_ceil(a.output_every)
                } else {
                    0
                };
                let qmax = if a.output_every > 0 { k } else { 0 };
                for q in qmin..=qmax.max(qmin) {
                    let y = m.binary(&format!("y_{i}_{k}_{q}"));
                    pairs.push((k, q, y));
                }
            }
            // Σ y = run
            let mut sel = LinExpr::new().term(run, -1.0);
            for &(_, _, y) in &pairs {
                sel = sel.term(y, 1.0);
            }
            m.add_con(sel, Cmp::Eq, 0.0);
            pa.push(PerAnalysis {
                run,
                unary: Some(pairs),
                ints: None,
            });
        } else {
            let k = m.int_var(&format!("k_{i}"), 0.0, kmax as f64);
            let q = m.int_var(&format!("q_{i}"), 0.0, kmax as f64);
            // k <= kmax * run
            m.add_con(LinExpr::var(k).term(run, -(kmax as f64)), Cmp::Le, 0.0);
            // run <= k (an active analysis must fire at least once)
            m.add_con(LinExpr::var(run).term(k, -1.0), Cmp::Le, 0.0);
            // q <= k
            m.add_con(LinExpr::var(q).term(k, -1.0), Cmp::Le, 0.0);
            if a.output_every > 0 {
                // output_every * q >= k
                m.add_con(
                    LinExpr::var(q).scale(a.output_every as f64).term(k, -1.0),
                    Cmp::Ge,
                    0.0,
                );
            } else {
                m.add_con(LinExpr::var(q), Cmp::Le, 0.0);
            }
            pa.push(PerAnalysis {
                run,
                unary: None,
                ints: Some((k, q)),
            });
        }
    }

    // k_i and q_i as expressions (same logic as AggregateModel::{k,q}_expr,
    // local here because `pa` is not yet wrapped)
    let k_expr = |i: usize| -> LinExpr {
        match (&pa[i].unary, &pa[i].ints) {
            (Some(pairs), _) => LinExpr::sum(pairs.iter().map(|&(k, _, y)| (y, k as f64))),
            (_, Some((k, _))) => LinExpr::var(*k),
            _ => LinExpr::new(),
        }
    };
    let q_expr = |i: usize| -> LinExpr {
        match (&pa[i].unary, &pa[i].ints) {
            (Some(pairs), _) => LinExpr::sum(pairs.iter().map(|&(_, q, y)| (y, q as f64))),
            (_, Some((_, q))) => LinExpr::var(*q),
            _ => LinExpr::new(),
        }
    };

    // --- objective (Eq. 1): Σ run_i + Σ w_i k_i ---
    let mut obj = LinExpr::new();
    for (i, a) in problem.analyses.iter().enumerate() {
        obj = obj.term(pa[i].run, 1.0);
        obj = obj.add_expr(&k_expr(i).scale(a.weight));
    }
    m.set_objective(obj);

    // --- time (Eq. 4) ---
    let mut time = LinExpr::new();
    for (i, a) in problem.analyses.iter().enumerate() {
        time = time.term(pa[i].run, a.fixed_time + a.step_time * steps as f64);
        time = time.add_expr(&k_expr(i).scale(a.compute_time));
        time = time.add_expr(&q_expr(i).scale(a.output_time));
    }
    m.add_con(time, Cmp::Le, problem.resources.total_threshold());

    // --- memory (Eq. 8, conservative peak form) ---
    let any_mem = problem.analyses.iter().any(|a| {
        a.fixed_mem > 0.0 || a.step_mem > 0.0 || a.compute_mem > 0.0 || a.output_mem > 0.0
    });
    if any_mem {
        // express the row in units of mth: raw byte coefficients (1e9+)
        // against an O(1) objective wreck the simplex tolerances
        let mem_scale = problem.resources.mem_threshold.max(1.0);
        let mut mem = LinExpr::new();
        for (i, a) in problem.analyses.iter().enumerate() {
            match &pa[i].unary {
                Some(pairs) => {
                    for &(k, q, y) in pairs {
                        mem = mem.term(y, peak_memory(problem, i, k, q) / mem_scale);
                    }
                }
                None => {
                    // no accumulation (im == cm == 0) or the kmax-too-big
                    // fallback: without outputs, im piles up over all
                    // Steps and cm over all kmax analysis executions
                    let kmax = a.max_analysis_steps(steps);
                    let worst = a.fixed_mem
                        + a.output_mem
                        + a.step_mem * steps as f64
                        + a.compute_mem * kmax.max(1) as f64;
                    mem = mem.term(pa[i].run, worst / mem_scale);
                }
            }
        }
        m.add_con(mem, Cmp::Le, problem.resources.mem_threshold / mem_scale);
    }

    Ok(AggregateModel {
        model: m,
        per_analysis: pa,
    })
}

/// Builds and solves the aggregate model, returning optimal counts.
pub fn solve_aggregate_counts(
    problem: &ScheduleProblem,
    opts: &SolveOptions,
) -> Result<AggregateSolution, SolveError> {
    if problem.is_empty() {
        problem
            .validate()
            .map_err(|e| SolveError::BadModel(e.to_string()))?;
        return Ok(AggregateSolution {
            counts: vec![],
            output_counts: vec![],
            objective: 0.0,
            nodes: 0,
            stats: SolveStats::default(),
        });
    }
    let built = build_aggregate(problem)?;
    let sol = milp::solve(&built.model, opts)?;
    let (counts, output_counts) = built.counts_from(&sol.values);
    Ok(AggregateSolution {
        counts,
        output_counts,
        objective: sol.objective,
        nodes: sol.nodes,
        stats: sol.stats,
    })
}

/// Like [`solve_aggregate_counts`], but warm-starts branch & bound from a
/// known count vector (typically the incumbent schedule's suffix during a
/// mid-run reschedule) via [`AggregateModel::hint_values`] +
/// [`milp::solve_with_hint`]. An infeasible hint is ignored; the optimum
/// is unaffected either way.
pub fn solve_aggregate_counts_with_hint(
    problem: &ScheduleProblem,
    opts: &SolveOptions,
    counts: &[usize],
    output_counts: &[usize],
) -> Result<AggregateSolution, SolveError> {
    if problem.is_empty() {
        return solve_aggregate_counts(problem, opts);
    }
    let built = build_aggregate(problem)?;
    let hint = built.hint_values(counts, output_counts);
    let sol = milp::solve_with_hint(&built.model, opts, &hint)?;
    let (counts, output_counts) = built.counts_from(&sol.values);
    Ok(AggregateSolution {
        counts,
        output_counts,
        objective: sol.objective,
        nodes: sol.nodes,
        stats: sol.stats,
    })
}

/// Solves the aggregate model and places the counts into a concrete
/// [`Schedule`] (even spacing, outputs distributed across analyses).
pub fn solve_aggregate(
    problem: &ScheduleProblem,
    opts: &SolveOptions,
) -> Result<(Schedule, f64), SolveError> {
    let agg = solve_aggregate_counts(problem, opts)?;
    let schedule = place_schedule(problem, &agg.counts, &agg.output_counts);
    Ok((schedule, agg.objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::{AnalysisProfile, ResourceConfig};

    fn opts() -> SolveOptions {
        SolveOptions::default()
    }

    #[test]
    fn paper_scale_instance_solves_fast() {
        // Table-5-like: 4 analyses, 1000 steps, itv = 100 => kmax = 10
        let mk = |name: &str, ct: f64, ot: f64, cm: f64| {
            AnalysisProfile::new(name)
                .with_compute(ct, cm)
                .with_output(ot, cm / 2.0, 1)
                .with_interval(100)
        };
        let p = ScheduleProblem::new(
            vec![
                mk("A1", 0.8, 0.2, 1e9),
                mk("A2", 0.9, 0.2, 1e9),
                mk("A3", 1.2, 0.3, 2e9),
                mk("A4", 8.0, 3.0, 8e9),
            ],
            ResourceConfig::from_total_threshold(1000, 64.7, 100e9, 1e9),
        )
        .unwrap();
        let start = std::time::Instant::now();
        let agg = solve_aggregate_counts(&p, &opts()).unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        // cheap analyses at max frequency, expensive A4 squeezed
        assert_eq!(agg.counts[0], 10);
        assert_eq!(agg.counts[1], 10);
        assert_eq!(agg.counts[2], 10);
        assert!(agg.counts[3] < 10, "A4 got {}", agg.counts[3]);
        // well under the paper's 0.17–1.36 s CPLEX time
        assert!(elapsed < 5.0, "solve took {elapsed}s");
    }

    #[test]
    fn counts_map_to_valid_schedule() {
        let p = ScheduleProblem::new(
            vec![AnalysisProfile::new("a")
                .with_compute(1.0, 0.0)
                .with_output(0.1, 0.0, 2)
                .with_interval(10)],
            ResourceConfig::from_total_threshold(100, 50.0, 1e9, 1e9),
        )
        .unwrap();
        let (s, _) = solve_aggregate(&p, &opts()).unwrap();
        assert!(s.validate_structure(&p).is_ok());
        assert_eq!(s.per_analysis[0].count(), 10);
        // output every 2 analyses => 5 outputs
        assert_eq!(s.per_analysis[0].output_count(), 5);
        assert!(s.per_analysis[0].min_gap().unwrap() >= 10);
    }

    #[test]
    fn memory_expansion_bounds_accumulation() {
        // im = 1 unit/step, mth allows at most ~250 steps of accumulation:
        // the solver must pick enough outputs to keep the peak under mth.
        let p = ScheduleProblem::new(
            vec![AnalysisProfile::new("temporal")
                .with_per_step(0.0, 1.0)
                .with_compute(0.1, 0.0)
                .with_output(0.1, 0.0, 1)
                .with_interval(100)],
            ResourceConfig::from_total_threshold(1000, 100.0, 250.0, 1e9),
        )
        .unwrap();
        let agg = solve_aggregate_counts(&p, &opts()).unwrap();
        assert!(agg.counts[0] > 0);
        let q = agg.output_counts[0];
        assert!(q >= 4, "need >= 4 outputs to reset 1000 steps under 250, got {q}");
        let peak = peak_memory(&p, 0, agg.counts[0], q);
        assert!(peak <= 250.0 + 1e-9);
    }

    #[test]
    fn zero_kmax_analysis_never_runs() {
        let p = ScheduleProblem::new(
            vec![AnalysisProfile::new("rare").with_compute(0.1, 0.0).with_interval(50)],
            ResourceConfig::from_total_threshold(10, 100.0, 1e9, 1e9),
        )
        .unwrap();
        let agg = solve_aggregate_counts(&p, &opts()).unwrap();
        assert_eq!(agg.counts[0], 0);
        assert_eq!(agg.objective, 0.0);
    }

    #[test]
    fn peak_memory_shapes() {
        let p = ScheduleProblem::new(
            vec![AnalysisProfile::new("x")
                .with_fixed(0.0, 10.0)
                .with_per_step(0.0, 2.0)
                .with_compute(0.0, 5.0)
                .with_output(0.0, 3.0, 1)],
            ResourceConfig::from_total_threshold(100, 1.0, 1e9, 1e9),
        )
        .unwrap();
        assert_eq!(peak_memory(&p, 0, 0, 0), 0.0);
        // no outputs: im accumulates all 100 steps, and the cm buffers of
        // all 5 analysis steps pile up too (Eq. 6 only frees at outputs)
        assert_eq!(peak_memory(&p, 0, 5, 0), 10.0 + 200.0 + 25.0);
        // 4 outputs: gaps of 25
        assert_eq!(peak_memory(&p, 0, 4, 4), 10.0 + 50.0 + 5.0 + 3.0);
    }

    #[test]
    fn built_model_is_pure_integer_and_brute_forceable() {
        // the published model must stay enumerable so the differential
        // fuzz harness can cross-check branch & bound against brute force
        let p = ScheduleProblem::new(
            vec![
                AnalysisProfile::new("a")
                    .with_compute(1.0, 0.0)
                    .with_output(0.5, 0.0, 1)
                    .with_interval(25),
                AnalysisProfile::new("b")
                    .with_compute(2.5, 0.0)
                    .with_output(0.5, 0.0, 1)
                    .with_interval(50)
                    .with_weight(2.0),
            ],
            ResourceConfig::from_total_threshold(100, 8.0, 1e9, 1e9),
        )
        .unwrap();
        let built = build_aggregate(&p).unwrap();
        let brute = milp::brute::brute_force(&built.model, 1_000_000).unwrap();
        let bb = milp::solve(&built.model, &opts()).unwrap();
        assert!(
            (brute.objective - bb.objective).abs() < 1e-6,
            "brute {} vs b&b {}",
            brute.objective,
            bb.objective
        );
        let (k_brute, q_brute) = built.counts_from(&brute.values);
        assert_eq!(k_brute.len(), 2);
        assert!(q_brute.iter().zip(&k_brute).all(|(q, k)| q <= k));
        // and the wrapper extracts the same counts from the b&b solution
        let agg = solve_aggregate_counts(&p, &opts()).unwrap();
        let (k_bb, _) = built.counts_from(&bb.values);
        assert_eq!(agg.counts, k_bb);
    }

    #[test]
    fn hinted_aggregate_solve_round_trips_counts() {
        // memory pressure forces the unary (k, q) expansion, so both hint
        // encodings get exercised against the same instance family
        let p = ScheduleProblem::new(
            vec![
                AnalysisProfile::new("temporal")
                    .with_per_step(0.0, 1.0)
                    .with_compute(0.1, 0.0)
                    .with_output(0.1, 0.0, 1)
                    .with_interval(100),
                AnalysisProfile::new("plain").with_compute(0.5, 0.0).with_interval(100),
            ],
            ResourceConfig::from_total_threshold(1000, 100.0, 250.0, 1e9),
        )
        .unwrap();
        let cold = solve_aggregate_counts(&p, &opts()).unwrap();
        // the optimum as hint: identical result, incumbent seeded at node 0
        let hot = solve_aggregate_counts_with_hint(&p, &opts(), &cold.counts, &cold.output_counts)
            .unwrap();
        assert_eq!(cold.counts, hot.counts);
        assert_eq!(cold.output_counts, hot.output_counts);
        assert_eq!(cold.objective.to_bits(), hot.objective.to_bits());
        let first = hot.stats.incumbent_updates.first().expect("incumbent event");
        assert_eq!(first.node, 0);
        // a nonsense hint (counts beyond kmax) degrades to the cold solve
        let silly = solve_aggregate_counts_with_hint(&p, &opts(), &[999, 999], &[999, 0]).unwrap();
        assert_eq!(silly.counts, cold.counts);
        assert_eq!(silly.objective.to_bits(), cold.objective.to_bits());
    }

    #[test]
    fn tighter_budget_monotonically_fewer_analyses() {
        let mk = || {
            vec![
                AnalysisProfile::new("cheap").with_compute(0.5, 0.0).with_interval(100),
                AnalysisProfile::new("dear")
                    .with_compute(5.0, 0.0)
                    .with_output(2.0, 0.0, 1)
                    .with_interval(100),
            ]
        };
        let mut last_total = usize::MAX;
        for budget in [100.0, 50.0, 20.0, 5.0] {
            let p = ScheduleProblem::new(
                mk(),
                ResourceConfig::from_total_threshold(1000, budget, 1e12, 1e9),
            )
            .unwrap();
            let agg = solve_aggregate_counts(&p, &opts()).unwrap();
            let total: usize = agg.counts.iter().sum();
            assert!(total <= last_total, "budget {budget}: {total} > {last_total}");
            last_total = total;
        }
    }
}
