//! Predicted-vs-measured cost attribution: replaying the paper's Eq. 2–4
//! time recursion against a measured run timeline.
//!
//! The MILP schedules against *modeled* costs (Table-1 `ft`/`it`/`ct`/`ot`
//! per analysis). A coupled run measures the real ones. This module lines
//! the two up, step by step: the **predicted** side is
//! [`certify::replay_time_series`] — the same exact-rational Eq. 2–4
//! recursion the certificate checker trusts, so the model half of the
//! report is bitwise identical to what `certify` would compute — and the
//! **measured** side is the step-indexed span timeline emitted by
//! [`crate::runtime::run_coupled_traced`].
//!
//! The [`DriftReport`] answers the operational questions: where does the
//! measured cumulative analysis time diverge from the model, which cost
//! component (`it`, `ct` or `ot`) carries the residual, and at which steps
//! the *measured* run would have violated the per-step threshold the
//! schedule was solved for. A large `ct` residual means the Table-1
//! calibration of `compute_time` is stale; growing divergence with a flat
//! per-component residual means a systematic bias (e.g. coupler overhead)
//! rather than a mis-calibrated kernel.

use crate::runtime::{
    SPAN_ANALYSIS_ANALYZE, SPAN_ANALYSIS_OUTPUT, SPAN_ANALYSIS_PER_STEP, SPAN_ANALYSIS_SETUP,
};
use insitu_types::json::Value;
use insitu_types::{Schedule, ScheduleProblem};
use std::collections::BTreeMap;

/// Predicted-vs-measured comparison at one simulation step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepDrift {
    /// Simulation step, 1-based.
    pub step: usize,
    /// Model-side cumulative analysis time after this step (Eq. 2–4,
    /// computed exactly by `certify` and rounded once to `f64`).
    pub predicted_cum: f64,
    /// Measured cumulative analysis time after this step (setup spans
    /// seed the series, then per-step/analyze/output span durations).
    pub measured_cum: f64,
    /// `measured_cum - predicted_cum`.
    pub divergence: f64,
    /// Measured-minus-predicted per-step hook time at this step (the
    /// `it` component).
    pub it_residual: f64,
    /// Measured-minus-predicted analyze time at this step (the `ct`
    /// component; zero at steps where nothing was scheduled).
    pub ct_residual: f64,
    /// Measured-minus-predicted output time at this step (the `ot`
    /// component).
    pub ot_residual: f64,
    /// True when the *measured* cumulative time exceeds the pro-rated
    /// budget `cth * step` (Eq. 4's per-step reading). Always false when
    /// the problem sets an infinite threshold.
    pub threshold_violated: bool,
}

/// Per-step drift of a measured run against the Eq. 2–4 prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// One entry per simulation step, in step order.
    pub per_step: Vec<StepDrift>,
    /// Predicted total analysis time (the Eq. 4 LHS).
    pub predicted_total: f64,
    /// Measured total analysis time.
    pub measured_total: f64,
    /// Largest `|divergence|` over all steps.
    pub max_abs_divergence: f64,
    /// Steps whose measured cumulative time exceeded the pro-rated
    /// budget.
    pub violation_steps: Vec<usize>,
    /// The per-step threshold `cth` the run was scheduled for
    /// (`f64::INFINITY` when absent).
    pub step_threshold: f64,
}

impl DriftReport {
    /// Single-line summary for run footers.
    pub fn summary(&self) -> String {
        format!(
            "predicted {:.4}s vs measured {:.4}s ({:+.2}%), max step divergence {:.4}s, \
             {} of {} steps over the pro-rated budget",
            self.predicted_total,
            self.measured_total,
            if self.predicted_total > 0.0 {
                (self.measured_total - self.predicted_total) / self.predicted_total * 100.0
            } else {
                0.0
            },
            self.max_abs_divergence,
            self.violation_steps.len(),
            self.per_step.len(),
        )
    }

    /// JSON export (`drift/v1`): totals plus the full per-step series.
    pub fn to_json(&self) -> Value {
        let mut root = BTreeMap::new();
        root.insert("schema".into(), Value::String("drift/v1".into()));
        root.insert(
            "predicted_total".into(),
            Value::Number(self.predicted_total),
        );
        root.insert("measured_total".into(), Value::Number(self.measured_total));
        root.insert(
            "max_abs_divergence".into(),
            Value::Number(self.max_abs_divergence),
        );
        root.insert(
            "step_threshold".into(),
            if self.step_threshold.is_finite() {
                Value::Number(self.step_threshold)
            } else {
                Value::Null
            },
        );
        root.insert(
            "violation_steps".into(),
            Value::Array(
                self.violation_steps
                    .iter()
                    .map(|&j| Value::Number(j as f64))
                    .collect(),
            ),
        );
        root.insert(
            "per_step".into(),
            Value::Array(
                self.per_step
                    .iter()
                    .map(|d| {
                        let mut o = BTreeMap::new();
                        o.insert("step".into(), Value::Number(d.step as f64));
                        o.insert("predicted_cum".into(), Value::Number(d.predicted_cum));
                        o.insert("measured_cum".into(), Value::Number(d.measured_cum));
                        o.insert("divergence".into(), Value::Number(d.divergence));
                        o.insert("it_residual".into(), Value::Number(d.it_residual));
                        o.insert("ct_residual".into(), Value::Number(d.ct_residual));
                        o.insert("ot_residual".into(), Value::Number(d.ot_residual));
                        o.insert("violated".into(), Value::Bool(d.threshold_violated));
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        Value::Object(root)
    }
}

/// Sums, per step index, the measured durations of the given span name.
/// Spans carry their own `step` tag (the coupler tags every child), so
/// attribution works even when a parent `step` span record was dropped
/// under overload.
fn measured_by_step(timeline: &obs::Timeline, name: &str, steps: usize) -> Vec<f64> {
    let mut per = vec![0.0; steps + 1];
    for s in timeline.spans_named(name) {
        if let Some(j) = s.tag_i64("step") {
            if j >= 1 && (j as usize) <= steps {
                per[j as usize] += s.dur_ns as f64 / 1e9;
            }
        }
    }
    per
}

/// Builds the per-step [`DriftReport`] for a measured `timeline` of
/// running `schedule` against `problem`.
///
/// The predicted series is [`certify::replay_time_series`] — exact
/// Eq. 2–4 arithmetic, rounded to `f64` once per step — so
/// `per_step[j-1].predicted_cum` equals `series[j].to_f64()` **bitwise**.
/// Errors when the schedule does not pair up with the problem or a model
/// parameter is not finite (same conditions as the certifier).
pub fn attribute(
    problem: &ScheduleProblem,
    schedule: &Schedule,
    timeline: &obs::Timeline,
) -> Result<DriftReport, String> {
    attribute_inner(problem, schedule, timeline, None)
}

/// [`attribute`] with a caller-supplied predicted cumulative series
/// instead of the static Eq. 2–4 replay of `schedule`.
///
/// This is the attribution entry point for **adaptive** runs: a
/// [`crate::runtime::run_coupled_adaptive`] report carries the composite
/// executed schedule *and* the spliced prediction the control loop
/// actually held the run against
/// ([`crate::runtime::AdaptiveReport::predicted`]) — replaying the
/// composite schedule from scratch would mis-state what the model
/// predicted at the time. `predicted[j]` is the cumulative analysis time
/// after step `j` (`predicted[0]` = the setup seed), so the slice must
/// have `Steps + 1` entries; anything else is an error.
pub fn attribute_with_predicted(
    problem: &ScheduleProblem,
    schedule: &Schedule,
    timeline: &obs::Timeline,
    predicted: &[f64],
) -> Result<DriftReport, String> {
    attribute_inner(problem, schedule, timeline, Some(predicted))
}

fn attribute_inner(
    problem: &ScheduleProblem,
    schedule: &Schedule,
    timeline: &obs::Timeline,
    predicted: Option<&[f64]>,
) -> Result<DriftReport, String> {
    let steps = problem.resources.steps;
    if schedule.per_analysis.len() != problem.analyses.len() {
        return Err(format!(
            "schedule covers {} analyses, problem has {}",
            schedule.per_analysis.len(),
            problem.analyses.len()
        ));
    }
    let series: Vec<f64> = match predicted {
        Some(p) => {
            if p.len() != steps + 1 {
                return Err(format!(
                    "predicted series has {} entries, expected Steps+1 = {}",
                    p.len(),
                    steps + 1
                ));
            }
            p.to_vec()
        }
        None => certify::replay_time_series(problem, schedule)
            .map_err(|e| format!("exact replay failed: {e:?}"))?
            .iter()
            .map(|r| r.to_f64())
            .collect(),
    };

    // measured components, indexed by step (index 0 unused except setup)
    let it_meas = measured_by_step(timeline, SPAN_ANALYSIS_PER_STEP, steps);
    let ct_meas = measured_by_step(timeline, SPAN_ANALYSIS_ANALYZE, steps);
    let ot_meas = measured_by_step(timeline, SPAN_ANALYSIS_OUTPUT, steps);
    let setup_meas: f64 = timeline
        .spans_named(SPAN_ANALYSIS_SETUP)
        .map(|s| s.dur_ns as f64 / 1e9)
        .sum();

    // predicted per-step components in plain f64, for the residual split
    // (the cumulative series itself stays on certify's exact path)
    let mut it_pred = 0.0;
    for (i, s) in schedule.per_analysis.iter().enumerate() {
        if s.count() > 0 {
            it_pred += problem.analyses[i].step_time;
        }
    }

    let cth = problem.resources.step_threshold;
    let mut per_step = Vec::with_capacity(steps);
    let mut measured_cum = setup_meas;
    let mut max_abs_divergence: f64 = 0.0;
    let mut violation_steps = Vec::new();
    for j in 1..=steps {
        let mut ct_pred = 0.0;
        let mut ot_pred = 0.0;
        for (i, s) in schedule.per_analysis.iter().enumerate() {
            if s.count() == 0 {
                continue;
            }
            if s.runs_at(j) {
                ct_pred += problem.analyses[i].compute_time;
            }
            if s.outputs_at(j) {
                ot_pred += problem.analyses[i].output_time;
            }
        }
        measured_cum += it_meas[j] + ct_meas[j] + ot_meas[j];
        let predicted_cum = series[j];
        let divergence = measured_cum - predicted_cum;
        max_abs_divergence = max_abs_divergence.max(divergence.abs());
        let threshold_violated = cth.is_finite() && measured_cum > cth * j as f64;
        if threshold_violated {
            violation_steps.push(j);
        }
        per_step.push(StepDrift {
            step: j,
            predicted_cum,
            measured_cum,
            divergence,
            it_residual: it_meas[j] - it_pred,
            ct_residual: ct_meas[j] - ct_pred,
            ot_residual: ot_meas[j] - ot_pred,
            threshold_violated,
        });
    }

    Ok(DriftReport {
        per_step,
        predicted_total: series.last().copied().unwrap_or(0.0),
        measured_total: measured_cum,
        max_abs_divergence,
        violation_steps,
        step_threshold: cth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_coupled_traced, Analysis, CouplerConfig, Simulator};
    use insitu_types::{AnalysisProfile, AnalysisSchedule, ResourceConfig};
    use std::sync::Arc;

    struct TickSim(usize);
    impl Simulator for TickSim {
        type State = usize;
        fn state(&self) -> &usize {
            &self.0
        }
        fn advance(&mut self) {
            self.0 += 1;
        }
    }

    struct Spin {
        name: String,
        analyze_s: f64,
    }
    impl Analysis<usize> for Spin {
        fn name(&self) -> &str {
            &self.name
        }
        fn analyze(&mut self, _state: &usize) {
            let sw = perfmodel::Stopwatch::start();
            while sw.elapsed() < self.analyze_s {}
        }
    }

    fn problem(steps: usize, ct: f64) -> ScheduleProblem {
        ScheduleProblem::new(
            vec![AnalysisProfile::new("spin")
                .with_per_step(0.0, 0.0)
                .with_compute(ct, 1.0)
                .with_output(0.0, 0.0, 1)
                .with_interval(1)],
            ResourceConfig::from_total_threshold(steps, 1.0, 1e12, 1e9),
        )
        .unwrap()
    }

    fn traced_run(
        problem: &ScheduleProblem,
        schedule: &Schedule,
        analyze_s: f64,
    ) -> obs::Timeline {
        let tracer = Arc::new(obs::Tracer::with_capacity(4096));
        let handle = obs::TraceHandle::new(tracer.clone());
        let mut sim = TickSim(0);
        let mut analyses: Vec<Box<dyn Analysis<usize>>> = vec![Box::new(Spin {
            name: "spin".into(),
            analyze_s,
        })];
        run_coupled_traced(
            &mut sim,
            &mut analyses,
            schedule,
            &CouplerConfig {
                steps: problem.resources.steps,
                sim_output_every: 0,
            },
            &handle,
        );
        tracer.timeline()
    }

    #[test]
    fn predicted_side_matches_certify_bitwise() {
        let p = problem(10, 0.002);
        let mut schedule = Schedule::empty(1);
        schedule.per_analysis[0] = AnalysisSchedule::new(vec![3, 6, 9], vec![9]);
        let tl = traced_run(&p, &schedule, 0.001);
        let report = attribute(&p, &schedule, &tl).unwrap();
        let series = certify::replay_time_series(&p, &schedule).unwrap();
        assert_eq!(report.per_step.len(), 10);
        for d in &report.per_step {
            // bitwise: both sides round the identical exact rational once
            assert_eq!(d.predicted_cum.to_bits(), series[d.step].to_f64().to_bits());
        }
        assert_eq!(
            report.predicted_total.to_bits(),
            series.last().unwrap().to_f64().to_bits()
        );
    }

    #[test]
    fn residuals_land_on_the_ct_component() {
        // model says analyze costs 1 ms, the real analysis spins ~4 ms:
        // the drift must show up in ct_residual at exactly the scheduled
        // steps, and not in it/ot
        let p = problem(6, 0.001);
        let mut schedule = Schedule::empty(1);
        schedule.per_analysis[0] = AnalysisSchedule::new(vec![2, 4], vec![]);
        let tl = traced_run(&p, &schedule, 0.004);
        let report = attribute(&p, &schedule, &tl).unwrap();
        for d in &report.per_step {
            if d.step == 2 || d.step == 4 {
                assert!(
                    d.ct_residual > 0.001,
                    "step {}: expected positive ct residual, got {}",
                    d.step,
                    d.ct_residual
                );
            } else {
                assert_eq!(d.ct_residual, 0.0, "no analyze scheduled");
            }
            assert!(d.ot_residual.abs() < 1e-3);
        }
        assert!(report.measured_total > report.predicted_total);
        assert!(report.max_abs_divergence > 0.0);
        assert!(report.summary().contains("predicted"));
    }

    #[test]
    fn threshold_violations_flag_measured_excess() {
        // budget 1 ms/step; the analysis spins ~5 ms at step 1, so the
        // measured cumulative series must cross the pro-rated budget
        // within the first couple of steps
        let mut p = problem(4, 0.0001);
        p.resources.step_threshold = 0.001;
        let mut schedule = Schedule::empty(1);
        schedule.per_analysis[0] = AnalysisSchedule::new(vec![1], vec![]);
        let tl = traced_run(&p, &schedule, 0.005);
        let report = attribute(&p, &schedule, &tl).unwrap();
        assert!(
            report.per_step[0].threshold_violated,
            "step 1 measured {} vs budget {}",
            report.per_step[0].measured_cum,
            0.001
        );
        assert!(!report.violation_steps.is_empty());
        // an infinite threshold disables the check entirely
        p.resources.step_threshold = f64::INFINITY;
        let report = attribute(&p, &schedule, &tl).unwrap();
        assert!(report.violation_steps.is_empty());
        assert!(report.per_step.iter().all(|d| !d.threshold_violated));
    }

    #[test]
    fn predicted_override_replaces_the_replay_series() {
        let p = problem(4, 0.001);
        let mut schedule = Schedule::empty(1);
        schedule.per_analysis[0] = AnalysisSchedule::new(vec![2], vec![]);
        let tl = traced_run(&p, &schedule, 0.001);
        let spliced = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let report = attribute_with_predicted(&p, &schedule, &tl, &spliced).unwrap();
        for (d, &pc) in report.per_step.iter().zip(&spliced[1..]) {
            assert_eq!(d.predicted_cum, pc);
        }
        assert_eq!(report.predicted_total, 4.0);
        // the override must cover Steps+1 entries
        assert!(attribute_with_predicted(&p, &schedule, &tl, &[0.0; 3]).is_err());
    }

    #[test]
    fn json_round_trips_and_arity_errors_are_reported() {
        let p = problem(4, 0.001);
        let mut schedule = Schedule::empty(1);
        schedule.per_analysis[0] = AnalysisSchedule::new(vec![2], vec![2]);
        let tl = traced_run(&p, &schedule, 0.001);
        let report = attribute(&p, &schedule, &tl).unwrap();
        let json = report.to_json().to_string_pretty();
        let parsed = Value::parse(&json).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some("drift/v1")
        );
        assert_eq!(
            parsed
                .get("per_step")
                .and_then(Value::as_array)
                .map(|a| a.len()),
            Some(4)
        );
        assert!(attribute(&p, &Schedule::empty(2), &tl).is_err());
    }
}
