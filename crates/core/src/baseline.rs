//! Baseline schedulers the paper argues against / compares with.
//!
//! §1 and §5.3 note that today "the frequency of analysis is empirically
//! determined by the user". [`fixed_frequency`] reproduces that status quo;
//! [`greedy`] is a natural heuristic upgrade (most-valuable-first packing)
//! that benches compare against the exact optimum.

use insitu_types::{Schedule, ScheduleProblem};

use crate::placement::{exact_peak_memory, place_schedule};
use crate::validate::validate_schedule;

/// The user-chosen status quo: run *every* analysis once per `every` steps
/// (and output every `output_every` analyses), regardless of budget.
/// May well violate the thresholds — that's the point.
pub fn fixed_frequency(problem: &ScheduleProblem, every: usize, output_every: usize) -> Schedule {
    let steps = problem.resources.steps;
    let every = every.max(1);
    let k = steps / every;
    let counts = vec![k; problem.len()];
    let output_counts: Vec<usize> = problem
        .analyses
        .iter()
        .map(|_| {
            if output_every == 0 {
                0
            } else {
                k.div_ceil(output_every)
            }
        })
        .collect();
    place_schedule(problem, &counts, &output_counts)
}

/// Greedy heuristic: sort analyses by weight per unit time, then give each
/// in turn as many analysis steps as the remaining budget and memory allow.
/// Feasible by construction but generally sub-optimal (no look-ahead over
/// the activation bonus or cross-analysis trade-offs).
pub fn greedy(problem: &ScheduleProblem) -> Schedule {
    let steps = problem.resources.steps;
    let mut order: Vec<usize> = (0..problem.len()).collect();
    let unit_cost = |i: usize| {
        let a = &problem.analyses[i];
        a.compute_time
            + if a.output_every > 0 {
                a.output_time / a.output_every as f64
            } else {
                0.0
            }
    };
    order.sort_by(|&x, &y| {
        let rx = problem.analyses[x].weight / unit_cost(x).max(1e-12);
        let ry = problem.analyses[y].weight / unit_cost(y).max(1e-12);
        ry.partial_cmp(&rx).unwrap()
    });
    let mut budget = problem.resources.total_threshold();
    let mut mem_budget = problem.resources.mem_threshold;
    let mut counts = vec![0usize; problem.len()];
    let mut output_counts = vec![0usize; problem.len()];
    for &i in &order {
        let a = &problem.analyses[i];
        let kmax = a.max_analysis_steps(steps);
        if kmax == 0 {
            continue;
        }
        let floor_cost = a.fixed_time + a.step_time * steps as f64;
        if floor_cost > budget {
            continue;
        }
        // largest k whose time and memory fit
        let mut best = 0usize;
        let mut best_q = 0usize;
        for k in (1..=kmax).rev() {
            let q = if a.output_every > 0 {
                k.div_ceil(a.output_every)
            } else {
                0
            };
            let cost = floor_cost + a.compute_time * k as f64 + a.output_time * q as f64;
            if cost <= budget && exact_peak_memory(problem, i, k, q) <= mem_budget {
                best = k;
                best_q = q;
                break;
            }
        }
        if best > 0 {
            counts[i] = best;
            output_counts[i] = best_q;
            budget -= floor_cost
                + a.compute_time * best as f64
                + a.output_time * best_q as f64;
            mem_budget -= exact_peak_memory(problem, i, best, best_q);
        }
    }
    place_schedule(problem, &counts, &output_counts)
}

/// Convenience: objective achieved by a baseline, or `None` if infeasible.
pub fn feasible_objective(problem: &ScheduleProblem, schedule: &Schedule) -> Option<f64> {
    let report = validate_schedule(problem, schedule);
    report.is_feasible().then_some(report.objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::{AnalysisProfile, ResourceConfig};
    use milp::SolveOptions;

    fn problem(budget: f64) -> ScheduleProblem {
        ScheduleProblem::new(
            vec![
                AnalysisProfile::new("cheap")
                    .with_compute(0.5, 0.0)
                    .with_output(0.1, 0.0, 1)
                    .with_interval(100),
                AnalysisProfile::new("dear")
                    .with_compute(6.0, 0.0)
                    .with_output(2.0, 0.0, 1)
                    .with_interval(100)
                    .with_weight(2.0),
            ],
            ResourceConfig::from_total_threshold(1000, budget, 1e12, 1e9),
        )
        .unwrap()
    }

    #[test]
    fn fixed_frequency_ignores_budget() {
        let p = problem(1.0); // absurdly tight budget
        let s = fixed_frequency(&p, 100, 1);
        assert_eq!(s.per_analysis[0].count(), 10);
        assert_eq!(s.per_analysis[1].count(), 10);
        assert!(feasible_objective(&p, &s).is_none(), "must blow the budget");
    }

    #[test]
    fn greedy_is_always_feasible() {
        for budget in [1.0, 10.0, 50.0, 1000.0] {
            let p = problem(budget);
            let s = greedy(&p);
            assert!(
                feasible_objective(&p, &s).is_some(),
                "greedy infeasible at budget {budget}"
            );
        }
    }

    #[test]
    fn greedy_never_beats_exact_optimum() {
        for budget in [10.0, 30.0, 90.0] {
            let p = problem(budget);
            let g = greedy(&p);
            let (_, opt) = crate::aggregate::solve_aggregate(&p, &SolveOptions::default()).unwrap();
            let gobj = feasible_objective(&p, &g).unwrap();
            assert!(gobj <= opt + 1e-6, "greedy {gobj} > optimal {opt} @ {budget}");
        }
    }

    #[test]
    fn greedy_prefers_high_value_per_cost() {
        // budget fits exactly one "dear" (8 s/unit, w=2 -> 0.25/s) or many
        // "cheap" (0.6 s/unit, w=1 -> 1.67/s): cheap should be packed first
        let p = problem(6.0);
        let s = greedy(&p);
        assert_eq!(s.per_analysis[0].count(), 10);
        assert_eq!(s.per_analysis[1].count(), 0);
    }

    #[test]
    fn fixed_frequency_output_cadence() {
        let p = problem(1e9);
        let s = fixed_frequency(&p, 200, 2);
        assert_eq!(s.per_analysis[0].count(), 5);
        assert_eq!(s.per_analysis[0].output_count(), 3); // ceil(5/2)
    }
}
