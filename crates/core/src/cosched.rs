//! Co-scheduling extension: in-situ vs in-transit placement.
//!
//! The paper's conclusion names this as future work: "we will extend this
//! work to optimally schedule the analyses computations on different
//! resources. This requires transferring huge data in some cases." This
//! module implements that extension on top of the same MILP machinery.
//!
//! Each analysis may now run
//!
//! * **in-situ** — on the simulation partition, exactly as in the base
//!   formulation: its compute time counts against the simulation-side
//!   threshold `cth·Steps`, its memory against `mth`; or
//! * **in-transit** — on dedicated staging nodes: the simulation only pays
//!   the *transfer* time (input bytes over the machine network per
//!   analysis step), while the analysis compute time counts against the
//!   staging partition's own time budget and its memory against staging
//!   memory.
//!
//! Decision variables per analysis: placement binary `site_i` (0 =
//! in-situ, 1 = staging), activation `run_i`, counts `k_i`, `q_i`. The
//! model stays linear because the per-execution costs are constants per
//! site; products like `site_i · k_i` are linearized through split count
//! variables `k_i = k_i^{situ} + k_i^{transit}` with big-M activation.

use insitu_types::{AnalysisProfile, Schedule, ScheduleProblem, Seconds};
use milp::{Cmp, LinExpr, Model, Sense, SolveError, SolveOptions};

use crate::placement::place_schedule;
use crate::validate::validate_schedule;

/// Where an analysis was placed by the co-scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// On the simulation partition (blocks the simulation).
    InSitu,
    /// On the staging partition (simulation only pays the transfer).
    InTransit,
}

/// Per-analysis co-scheduling inputs beyond the base profile.
#[derive(Debug, Clone)]
pub struct TransferProfile {
    /// Bytes that must move to the staging nodes per analysis step.
    pub input_bytes: f64,
    /// Compute time per analysis step when run on the staging partition
    /// (staging nodes are typically fewer, so this is usually larger than
    /// the in-situ `ct`).
    pub staging_compute_time: Seconds,
    /// Memory per analysis step on the staging partition.
    pub staging_mem: f64,
}

/// The staging resource block.
#[derive(Debug, Clone)]
pub struct StagingConfig {
    /// Network bandwidth from the simulation partition to staging
    /// (bytes/s) — determines the simulation-side transfer cost.
    pub network_bw: f64,
    /// Per-transfer latency/synchronization overhead (seconds).
    pub transfer_overhead: Seconds,
    /// Total staging compute budget over the whole run (seconds).
    pub time_budget: Seconds,
    /// Staging memory capacity (bytes).
    pub mem_capacity: f64,
}

impl StagingConfig {
    /// Simulation-side cost of shipping `bytes` once.
    pub fn transfer_time(&self, bytes: f64) -> Seconds {
        if self.network_bw > 0.0 {
            self.transfer_overhead + bytes / self.network_bw
        } else {
            f64::INFINITY
        }
    }
}

/// A co-scheduling problem: the base problem plus transfer profiles and a
/// staging configuration.
#[derive(Debug, Clone)]
pub struct CoschedProblem {
    /// The base in-situ scheduling problem (time/memory thresholds apply
    /// to the simulation site).
    pub base: ScheduleProblem,
    /// Per-analysis transfer/staging costs, parallel to `base.analyses`.
    pub transfers: Vec<TransferProfile>,
    /// Staging resources.
    pub staging: StagingConfig,
}

/// Result of a co-scheduling solve.
#[derive(Debug, Clone)]
pub struct CoschedRecommendation {
    /// Placement per analysis.
    pub sites: Vec<Site>,
    /// Analysis counts per analysis.
    pub counts: Vec<usize>,
    /// Output counts per analysis.
    pub output_counts: Vec<usize>,
    /// Objective value (Eq. 1 semantics).
    pub objective: f64,
    /// Simulation-side time consumed (in-situ compute + transfers).
    pub sim_side_time: Seconds,
    /// Staging-side compute time consumed.
    pub staging_time: Seconds,
    /// Concrete schedule (placement of steps is site-agnostic).
    pub schedule: Schedule,
}

/// Effective in-situ per-execution cost (compute + amortized output).
fn insitu_unit(a: &AnalysisProfile) -> f64 {
    a.compute_time
}

/// Solves the co-scheduling problem.
pub fn solve_cosched(
    problem: &CoschedProblem,
    opts: &SolveOptions,
) -> Result<CoschedRecommendation, SolveError> {
    problem
        .base
        .validate()
        .map_err(|e| SolveError::BadModel(e.to_string()))?;
    if problem.transfers.len() != problem.base.len() {
        return Err(SolveError::BadModel(
            "one TransferProfile per analysis required".into(),
        ));
    }
    let steps = problem.base.resources.steps;
    let n = problem.base.len();
    let mut m = Model::new(Sense::Maximize);

    struct Vars {
        run: milp::Var,
        k_situ: milp::Var,
        k_transit: milp::Var,
        q: milp::Var,
        site: milp::Var, // 1 = in-transit
    }
    let mut vars = Vec::with_capacity(n);
    for (i, a) in problem.base.analyses.iter().enumerate() {
        let kmax = a.max_analysis_steps(steps) as f64;
        let run = m.binary(&format!("run_{i}"));
        let site = m.binary(&format!("site_{i}"));
        let k_situ = m.int_var(&format!("ks_{i}"), 0.0, kmax);
        let k_transit = m.int_var(&format!("kt_{i}"), 0.0, kmax);
        let q = m.int_var(&format!("q_{i}"), 0.0, kmax);
        // total count bounded; split activates by site:
        //   k_situ <= kmax*(1 - site),  k_transit <= kmax*site
        m.add_con(
            LinExpr::var(k_situ).term(site, kmax),
            Cmp::Le,
            kmax,
        );
        m.add_con(
            LinExpr::var(k_transit).term(site, -kmax),
            Cmp::Le,
            0.0,
        );
        // k_situ + k_transit <= kmax * run ; run <= k_situ + k_transit
        m.add_con(
            LinExpr::var(k_situ)
                .term(k_transit, 1.0)
                .term(run, -kmax),
            Cmp::Le,
            0.0,
        );
        m.add_con(
            LinExpr::var(run)
                .term(k_situ, -1.0)
                .term(k_transit, -1.0),
            Cmp::Le,
            0.0,
        );
        // outputs: q <= k, cadence when declared
        m.add_con(
            LinExpr::var(q).term(k_situ, -1.0).term(k_transit, -1.0),
            Cmp::Le,
            0.0,
        );
        if a.output_every > 0 {
            m.add_con(
                LinExpr::var(q)
                    .scale(a.output_every as f64)
                    .term(k_situ, -1.0)
                    .term(k_transit, -1.0),
                Cmp::Ge,
                0.0,
            );
        } else {
            m.add_con(LinExpr::var(q), Cmp::Le, 0.0);
        }
        vars.push(Vars {
            run,
            k_situ,
            k_transit,
            q,
            site,
        });
    }

    // objective: Eq. 1 over total counts
    let mut obj = LinExpr::new();
    for (i, a) in problem.base.analyses.iter().enumerate() {
        obj = obj
            .term(vars[i].run, 1.0)
            .term(vars[i].k_situ, a.weight)
            .term(vars[i].k_transit, a.weight);
    }
    m.set_objective(obj);

    // simulation-side time: fixed costs + in-situ compute + transfers +
    // output writes (outputs are written from wherever the analysis ran;
    // the storage path is shared, so ot stays on the simulation budget)
    let mut sim_time = LinExpr::new();
    for (i, a) in problem.base.analyses.iter().enumerate() {
        let t = &problem.transfers[i];
        let ttime = problem.staging.transfer_time(t.input_bytes);
        let ttime = if ttime.is_finite() {
            ttime
        } else {
            // unroutable transfer (no network): forbid in-transit outright
            m.add_con(LinExpr::var(vars[i].k_transit), Cmp::Le, 0.0);
            m.add_con(LinExpr::var(vars[i].site), Cmp::Le, 0.0);
            0.0
        };
        sim_time = sim_time
            .term(vars[i].run, a.fixed_time + a.step_time * steps as f64)
            .term(vars[i].k_situ, insitu_unit(a))
            .term(vars[i].k_transit, ttime)
            .term(vars[i].q, a.output_time);
    }
    m.add_con(sim_time, Cmp::Le, problem.base.resources.total_threshold());

    // staging-side time and memory
    let mut st_time = LinExpr::new();
    let mut st_mem = LinExpr::new();
    let mem_scale = problem.staging.mem_capacity.max(1.0);
    for (i, _a) in problem.base.analyses.iter().enumerate() {
        let t = &problem.transfers[i];
        st_time = st_time.term(vars[i].k_transit, t.staging_compute_time);
        st_mem = st_mem.term(vars[i].site, t.staging_mem / mem_scale);
    }
    m.add_con(st_time, Cmp::Le, problem.staging.time_budget);
    m.add_con(st_mem, Cmp::Le, problem.staging.mem_capacity / mem_scale);

    // simulation-site memory: in-situ analyses only (conservative peaks)
    let any_mem = problem
        .base
        .analyses
        .iter()
        .any(|a| a.fixed_mem + a.compute_mem + a.output_mem + a.step_mem > 0.0);
    if any_mem {
        let mscale = problem.base.resources.mem_threshold.max(1.0);
        let mut mem = LinExpr::new();
        for (i, a) in problem.base.analyses.iter().enumerate() {
            let worst =
                a.fixed_mem + a.compute_mem + a.output_mem + a.step_mem * steps as f64;
            // only in-situ placements consume simulation memory: gate on
            // (run - site) which is 1 exactly for active in-situ analyses
            mem = mem
                .term(vars[i].run, worst / mscale)
                .term(vars[i].site, -worst / mscale);
        }
        m.add_con(mem, Cmp::Le, problem.base.resources.mem_threshold / mscale);
    }

    let sol = milp::solve(&m, opts)?;
    let mut sites = Vec::with_capacity(n);
    let mut counts = Vec::with_capacity(n);
    let mut output_counts = Vec::with_capacity(n);
    let mut sim_side_time = 0.0;
    let mut staging_time = 0.0;
    for (i, a) in problem.base.analyses.iter().enumerate() {
        let ks = sol.int_value(vars[i].k_situ).max(0) as usize;
        let kt = sol.int_value(vars[i].k_transit).max(0) as usize;
        let q = sol.int_value(vars[i].q).max(0) as usize;
        let site = if sol.is_one(vars[i].site) {
            Site::InTransit
        } else {
            Site::InSitu
        };
        let k = ks + kt;
        sites.push(site);
        counts.push(k);
        output_counts.push(q);
        if k > 0 {
            sim_side_time += a.fixed_time + a.step_time * steps as f64 + a.output_time * q as f64;
            sim_side_time += insitu_unit(a) * ks as f64;
            sim_side_time +=
                problem.staging.transfer_time(problem.transfers[i].input_bytes) * kt as f64;
            staging_time += problem.transfers[i].staging_compute_time * kt as f64;
        }
    }
    let schedule = place_schedule(&problem.base, &counts, &output_counts);
    Ok(CoschedRecommendation {
        sites,
        counts,
        output_counts,
        objective: sol.objective,
        sim_side_time,
        staging_time,
        schedule,
    })
}

impl CoschedRecommendation {
    /// Validates the *in-situ subset* of the schedule against the base
    /// problem (in-transit analyses don't consume simulation memory, so
    /// they are excluded from the Eq. 5–8 check).
    pub fn validate_insitu_subset(&self, problem: &CoschedProblem) -> bool {
        let mut insitu_only = self.schedule.clone();
        for (i, site) in self.sites.iter().enumerate() {
            if *site == Site::InTransit {
                insitu_only.per_analysis[i] = Default::default();
            }
        }
        let mut base = problem.base.clone();
        // the time budget check is handled by sim_side_time (transfers are
        // not representable in the base validator); only memory + interval
        // structure are re-checked here
        base.resources.step_threshold = f64::INFINITY;
        validate_schedule(&base, &insitu_only).is_feasible()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::{AnalysisProfile, ResourceConfig};

    fn opts() -> SolveOptions {
        SolveOptions {
            abs_gap: 0.999,
            ..SolveOptions::default()
        }
    }

    fn base(budget: f64, mem: f64) -> ScheduleProblem {
        ScheduleProblem::new(
            vec![
                AnalysisProfile::new("cheap")
                    .with_compute(0.5, 1e9)
                    .with_output(0.1, 0.0, 1)
                    .with_interval(100),
                AnalysisProfile::new("heavy")
                    .with_compute(10.0, 8e9)
                    .with_output(0.5, 0.0, 1)
                    .with_interval(100),
            ],
            ResourceConfig::from_total_threshold(1000, budget, mem, 1e9),
        )
        .unwrap()
    }

    fn transfers(fast_net: bool) -> (Vec<TransferProfile>, StagingConfig) {
        let t = vec![
            TransferProfile {
                input_bytes: 1e9,
                staging_compute_time: 1.0,
                staging_mem: 1e9,
            },
            TransferProfile {
                input_bytes: 4e9,
                staging_compute_time: 20.0,
                staging_mem: 8e9,
            },
        ];
        let staging = StagingConfig {
            network_bw: if fast_net { 20e9 } else { 0.1e9 },
            transfer_overhead: 0.01,
            time_budget: 1000.0,
            mem_capacity: 64e9,
        };
        (t, staging)
    }

    #[test]
    fn offloads_heavy_analysis_when_network_is_fast() {
        // simulation budget fits the cheap analysis but not the heavy one;
        // a fast network makes the transfer (4e9/20e9 = 0.2s) << ct (10s)
        let (tr, st) = transfers(true);
        let p = CoschedProblem {
            base: base(10.0, 1e12),
            transfers: tr,
            staging: st,
        };
        let rec = solve_cosched(&p, &opts()).unwrap();
        assert_eq!(rec.sites[1], Site::InTransit, "heavy must offload");
        assert!(rec.counts[1] > 0, "heavy now affordable: {:?}", rec.counts);
        assert!(rec.sim_side_time <= 10.0 + 1e-6);
        assert!(rec.staging_time > 0.0);
        assert!(rec.validate_insitu_subset(&p));
    }

    #[test]
    fn stays_insitu_when_network_is_slow() {
        // 4e9 bytes over 0.1e9 B/s = 40 s per transfer > 10 s in-situ cost
        let (tr, st) = transfers(false);
        let p = CoschedProblem {
            base: base(200.0, 1e12),
            transfers: tr,
            staging: st,
        };
        let rec = solve_cosched(&p, &opts()).unwrap();
        assert_eq!(rec.sites[1], Site::InSitu, "slow network keeps it local");
        assert!(rec.counts[1] > 0);
    }

    #[test]
    fn memory_pressure_forces_offload() {
        // simulation memory too small for the heavy analysis (8e9 > 4e9),
        // but staging has room: offload even though the network is slow
        let (tr, st) = transfers(false);
        let p = CoschedProblem {
            base: base(1000.0, 4e9),
            transfers: tr,
            staging: st,
        };
        let rec = solve_cosched(&p, &opts()).unwrap();
        assert!(rec.counts[1] > 0, "heavy must still run: {:?}", rec.counts);
        assert_eq!(rec.sites[1], Site::InTransit, "memory forces offload");
    }

    #[test]
    fn staging_budget_limits_offloaded_count() {
        let (tr, mut st) = transfers(true);
        st.time_budget = 45.0; // fits 2 heavy staging executions (20s each)
        let p = CoschedProblem {
            base: base(10.0, 1e12),
            transfers: tr,
            staging: st,
        };
        let rec = solve_cosched(&p, &opts()).unwrap();
        assert!(rec.counts[1] <= 2, "staging budget caps heavy: {:?}", rec.counts);
        assert!(rec.staging_time <= 45.0 + 1e-9);
    }

    #[test]
    fn mismatched_transfer_profiles_rejected() {
        let (mut tr, st) = transfers(true);
        tr.pop();
        let p = CoschedProblem {
            base: base(10.0, 1e12),
            transfers: tr,
            staging: st,
        };
        assert!(matches!(
            solve_cosched(&p, &opts()),
            Err(SolveError::BadModel(_))
        ));
    }

    #[test]
    fn reduces_to_base_problem_without_staging() {
        // zero network bandwidth => transfers impossible => the co-scheduler
        // must reproduce the pure in-situ aggregate solution
        let (tr, mut st) = transfers(true);
        st.network_bw = 0.0;
        let base_p = base(30.0, 1e12);
        let p = CoschedProblem {
            base: base_p.clone(),
            transfers: tr,
            staging: st,
        };
        let rec = solve_cosched(&p, &opts()).unwrap();
        let (_, agg_obj) = crate::aggregate::solve_aggregate(&base_p, &opts()).unwrap();
        assert!((rec.objective - agg_obj).abs() < 1e-6,
            "cosched {} vs base {}", rec.objective, agg_obj);
        assert!(rec.sites.iter().all(|&s| s == Site::InSitu));
    }
}
