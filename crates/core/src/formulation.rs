//! The exact time-indexed MILP formulation (paper §3.2, Eqs. 1–9).
//!
//! Decision variables, per analysis `i`:
//!
//! * `run_i ∈ {0,1}` — analysis `i` is a member of the feasible set `A`
//!   (contributes the `|A|` term of Eq. 1 and gates the fixed costs),
//! * `a_{i,j} ∈ {0,1}` — analysis runs after simulation step `j`
//!   (`j ∈ C_i`), created only for `j >= itv_i` (the paper requires `itv`
//!   steps to elapse before the first analysis),
//! * `o_{i,j} ∈ {0,1}` — analysis output is written after step `j`
//!   (`j ∈ O_i`, `O_i ⊆ C_i`),
//! * `mEnd_{i,j} >= 0` — memory held at the end of step `j` (continuous),
//!   needed because Eq. 6's reset-at-output is conditional; it is
//!   linearized with the standard big-M construction.
//!
//! Constraints (matching the paper's equation numbers):
//!
//! * Eq. 4 (time, telescoped): `Σ_i [ (ft_i + Steps·it_i)·run_i +
//!   ct_i·Σ_j a_{i,j} + ot_i·Σ_j o_{i,j} ] <= cth·Steps`,
//! * Eqs. 5–8 (memory): `mStart_{i,j} = mEnd_{i,j-1} + im_i·run_i +
//!   cm_i·a_{i,j} + om_i·o_{i,j}`, `mEnd = fm` at output steps (big-M),
//!   `Σ_i mStart_{i,j} <= mth` per step,
//! * Eq. 9 (interval): sliding windows `Σ_{j' ∈ [j, j+itv)} a_{i,j'} <= 1`,
//! * structure: `a <= run`, `o <= a`, and — when the profile declares an
//!   output cadence — `output_every_i · Σ_j o_{i,j} >= Σ_j a_{i,j}` so
//!   results are eventually written.
//!
//! This formulation is exact but grows with `Steps`; the paper's own
//! instances (1000 steps) are solved through the [`crate::aggregate`]
//! reformulation, which this module's tests cross-check on small instances.

use insitu_types::{AnalysisSchedule, Schedule, ScheduleProblem};
use milp::{Cmp, LinExpr, Model, Sense, SolveError, SolveOptions, Var};

/// Handles to the variables of the exact formulation, for tests/inspection.
#[derive(Debug, Clone)]
pub struct ExactVars {
    /// `run_i` per analysis.
    pub run: Vec<Var>,
    /// `a_{i,j}` — `analysis[i][j - itv_i]` maps to step `j` (1-based).
    pub analysis: Vec<Vec<(usize, Var)>>,
    /// `o_{i,j}` parallel to `analysis`.
    pub output: Vec<Vec<(usize, Var)>>,
    /// `mEnd_{i,j}` — `mend[i][j - 1]` maps to step `j`; empty for
    /// analyses with no memory recursion (all dynamic memory zero). The
    /// values are in units of [`mem_scale`], like the model's memory rows.
    pub mend: Vec<Vec<Var>>,
}

/// The memory unit used inside the exact and aggregate models: raw byte
/// counts (1e9..1e12) against an O(1) objective destroy the simplex's
/// reduced-cost tolerances, so all memory rows are divided by this scale.
/// The memory constraints are homogeneous in memory, so the rescaling is
/// exact. Exposed so warm-start hints can express `mEnd` values in the
/// model's own units.
pub fn mem_scale(problem: &ScheduleProblem) -> f64 {
    let steps = problem.resources.steps;
    problem
        .analyses
        .iter()
        .map(|a| a.fixed_mem + a.step_mem * steps as f64 + a.compute_mem + a.output_mem)
        .fold(problem.resources.mem_threshold, f64::max)
        .max(1.0)
}

/// Builds the exact time-indexed model for `problem`.
pub fn build_exact(problem: &ScheduleProblem) -> (Model, ExactVars) {
    let steps = problem.resources.steps;
    let mut m = Model::new(Sense::Maximize);
    let mut run = Vec::new();
    let mut analysis: Vec<Vec<(usize, Var)>> = Vec::new();
    let mut output: Vec<Vec<(usize, Var)>> = Vec::new();
    let mut mend: Vec<Vec<Var>> = Vec::new(); // mEnd_{i,j} for j=1..steps

    let mem_scale = mem_scale(problem);

    for (i, a) in problem.analyses.iter().enumerate() {
        run.push(m.binary(&format!("run_{i}")));
        let itv = a.min_interval.max(1);
        let mut av = Vec::new();
        let mut ov = Vec::new();
        for j in itv..=steps {
            av.push((j, m.binary(&format!("a_{i}_{j}"))));
            ov.push((j, m.binary(&format!("o_{i}_{j}"))));
        }
        analysis.push(av);
        output.push(ov);
        let needs_mem_recursion = a.step_mem > 0.0 || a.compute_mem > 0.0 || a.output_mem > 0.0;
        if needs_mem_recursion {
            let big = (a.fixed_mem + a.step_mem * steps as f64 + a.compute_mem + a.output_mem)
                / mem_scale;
            let mv = (1..=steps)
                .map(|j| m.num_var(&format!("mend_{i}_{j}"), 0.0, big.max(1e-12)))
                .collect();
            mend.push(mv);
        } else {
            mend.push(Vec::new());
        }
    }

    // --- objective (Eq. 1) ---
    let mut obj = LinExpr::new();
    for (i, a) in problem.analyses.iter().enumerate() {
        obj = obj.term(run[i], 1.0);
        for &(_, v) in &analysis[i] {
            obj = obj.term(v, a.weight);
        }
    }
    m.set_objective(obj);

    // --- structure: a <= run, o <= a, and run <= Σ a (an analysis only
    // counts towards |A| if it actually runs at least once) ---
    for i in 0..problem.len() {
        for (k, &(_, av)) in analysis[i].iter().enumerate() {
            m.add_con(LinExpr::var(av).term(run[i], -1.0), Cmp::Le, 0.0);
            let (_, ov) = output[i][k];
            m.add_con(LinExpr::var(ov).term(av, -1.0), Cmp::Le, 0.0);
        }
        let total = LinExpr::sum(analysis[i].iter().map(|&(_, v)| (v, 1.0)));
        m.add_con(LinExpr::var(run[i]).add_expr(&total.scale(-1.0)), Cmp::Le, 0.0);
    }

    // --- output cadence: every `output_every` analyses must output ---
    for (i, a) in problem.analyses.iter().enumerate() {
        if a.output_every > 0 {
            let mut e = LinExpr::new();
            for &(_, ov) in &output[i] {
                e = e.term(ov, a.output_every as f64);
            }
            for &(_, av) in &analysis[i] {
                e = e.term(av, -1.0);
            }
            m.add_con(e, Cmp::Ge, 0.0);
        } else {
            for &(_, ov) in &output[i] {
                m.add_con(LinExpr::var(ov), Cmp::Le, 0.0);
            }
        }
    }

    // --- time (Eq. 4, telescoped over Eqs. 2–3) ---
    let mut time = LinExpr::new();
    for (i, a) in problem.analyses.iter().enumerate() {
        time = time.term(run[i], a.fixed_time + a.step_time * steps as f64);
        for &(_, av) in &analysis[i] {
            time = time.term(av, a.compute_time);
        }
        for &(_, ov) in &output[i] {
            time = time.term(ov, a.output_time);
        }
    }
    m.add_con(time, Cmp::Le, problem.resources.total_threshold());

    // --- interval (Eq. 9) as sliding windows ---
    for (i, a) in problem.analyses.iter().enumerate() {
        let itv = a.min_interval.max(1);
        if itv > 1 {
            for start in itv..=steps.saturating_sub(itv - 1).max(itv) {
                let in_window: Vec<Var> = analysis[i]
                    .iter()
                    .filter(|&&(j, _)| j >= start && j < start + itv)
                    .map(|&(_, v)| v)
                    .collect();
                if in_window.len() > 1 {
                    m.add_con(
                        LinExpr::sum(in_window.into_iter().map(|v| (v, 1.0))),
                        Cmp::Le,
                        1.0,
                    );
                }
            }
        }
    }

    // --- memory (Eqs. 5–8) ---
    // mStart_{i,j} = mEnd_{i,j-1} + im*run + cm*a_{i,j} + om*o_{i,j}
    // expressed as an expression; mEnd_{i,j} linearized with big-M:
    //   output step:  mEnd = fm*run
    //   otherwise:    mEnd = mStart
    let mut mstart_exprs: Vec<Vec<LinExpr>> = vec![Vec::new(); problem.len()];
    for (i, a) in problem.analyses.iter().enumerate() {
        if mend[i].is_empty() {
            // static memory: mStart is fm*run at every step (no recursion)
            for _j in 1..=steps {
                mstart_exprs[i].push(LinExpr::new().term(run[i], a.fixed_mem / mem_scale));
            }
            continue;
        }
        let big = (a.fixed_mem + a.step_mem * steps as f64 + a.compute_mem + a.output_mem)
            / mem_scale;
        let big = big.max(1e-12);
        let itv = a.min_interval.max(1);
        let var_at = |list: &[(usize, Var)], j: usize| -> Option<Var> {
            if j >= itv {
                Some(list[j - itv].1)
            } else {
                None
            }
        };
        for j in 1..=steps {
            // mStart expression
            let mut ms = LinExpr::new().term(run[i], a.step_mem / mem_scale);
            if j == 1 {
                // mEnd_{i,0} = fm*run (Eq. 7)
                ms = ms.term(run[i], a.fixed_mem / mem_scale);
            } else {
                ms = ms.term(mend[i][j - 2], 1.0);
            }
            if let Some(av) = var_at(&analysis[i], j) {
                ms = ms.term(av, a.compute_mem / mem_scale);
            }
            if let Some(ov) = var_at(&output[i], j) {
                ms = ms.term(ov, a.output_mem / mem_scale);
            }
            mstart_exprs[i].push(ms.clone());
            // mEnd_{i,j} big-M linkage
            let me = mend[i][j - 1];
            if let Some(ov) = var_at(&output[i], j) {
                // me >= ms - M*o ; me <= ms + M*o
                m.add_con(
                    LinExpr::var(me).add_expr(&ms.clone().scale(-1.0)).term(ov, big),
                    Cmp::Ge,
                    0.0,
                );
                m.add_con(
                    LinExpr::var(me).add_expr(&ms.clone().scale(-1.0)).term(ov, -big),
                    Cmp::Le,
                    0.0,
                );
                // me >= fm*run - M*(1-o) ; me <= fm*run + M*(1-o)
                m.add_con(
                    LinExpr::var(me)
                        .term(run[i], -a.fixed_mem / mem_scale)
                        .term(ov, -big),
                    Cmp::Ge,
                    -big,
                );
                m.add_con(
                    LinExpr::var(me)
                        .term(run[i], -a.fixed_mem / mem_scale)
                        .term(ov, big),
                    Cmp::Le,
                    big,
                );
            } else {
                // no output possible at j: me = ms
                let mut eq = LinExpr::var(me);
                eq = eq.add_expr(&ms.scale(-1.0));
                m.add_con(eq, Cmp::Eq, 0.0);
            }
        }
    }
    // Σ_i mStart_{i,j} <= mth (Eq. 8)
    if problem
        .analyses
        .iter()
        .any(|a| a.fixed_mem > 0.0 || a.step_mem > 0.0 || a.compute_mem > 0.0 || a.output_mem > 0.0)
    {
        for j in 1..=steps {
            let mut total = LinExpr::new();
            for exprs in &mstart_exprs {
                total = total.add_expr(&exprs[j - 1]);
            }
            m.add_con(total, Cmp::Le, problem.resources.mem_threshold / mem_scale);
        }
    }

    (
        m,
        ExactVars {
            run,
            analysis,
            output,
            mend,
        },
    )
}

/// Maps a concrete [`Schedule`] onto the exact model's variable space, for
/// warm-starting a re-solve via [`milp::solve_with_hint`].
///
/// Analysis steps the formulation cannot represent (`j < itv`, or beyond
/// the horizon) are dropped, along with their outputs; `run_i` is set only
/// when at least one representable step survives. The `mEnd` continuous
/// variables are filled by replaying Eqs. 5–7 in floating point over the
/// *kept* decisions, in the model's [`mem_scale`] units. The result is a
/// candidate, not a guarantee: if the drops (or a cadence constraint the
/// clipped schedule no longer meets) make the point infeasible, the solver
/// simply ignores the hint.
pub fn schedule_hint(
    problem: &ScheduleProblem,
    model: &Model,
    vars: &ExactVars,
    schedule: &Schedule,
) -> Vec<f64> {
    let steps = problem.resources.steps;
    let scale = mem_scale(problem);
    let mut values = vec![0.0; model.num_vars()];
    for (i, s) in schedule
        .per_analysis
        .iter()
        .enumerate()
        .take(problem.len())
    {
        let a = &problem.analyses[i];
        let itv = a.min_interval.max(1);
        let runs: Vec<usize> = s
            .analysis_steps
            .iter()
            .copied()
            .filter(|&j| j >= itv && j <= steps)
            .collect();
        let outs: Vec<usize> = s
            .output_steps
            .iter()
            .copied()
            .filter(|&j| runs.binary_search(&j).is_ok())
            .collect();
        if runs.is_empty() {
            continue;
        }
        values[vars.run[i].index()] = 1.0;
        for &j in &runs {
            values[vars.analysis[i][j - itv].1.index()] = 1.0;
        }
        for &j in &outs {
            values[vars.output[i][j - itv].1.index()] = 1.0;
        }
        if !vars.mend[i].is_empty() {
            let mut mend_prev = a.fixed_mem / scale; // Eq. 7 seed
            for j in 1..=steps {
                let mut mstart = mend_prev + a.step_mem / scale;
                if runs.binary_search(&j).is_ok() {
                    mstart += a.compute_mem / scale;
                }
                let out_here = outs.binary_search(&j).is_ok();
                if out_here {
                    mstart += a.output_mem / scale;
                }
                let me = if out_here { a.fixed_mem / scale } else { mstart };
                values[vars.mend[i][j - 1].index()] = me;
                mend_prev = me;
            }
        }
    }
    values
}

/// Extracts a [`Schedule`] from a solved exact model.
pub fn extract_schedule(
    problem: &ScheduleProblem,
    vars: &ExactVars,
    sol: &milp::Solution,
) -> Schedule {
    let mut schedule = Schedule::empty(problem.len());
    for i in 0..problem.len() {
        let asteps: Vec<usize> = vars.analysis[i]
            .iter()
            .filter(|&&(_, v)| sol.is_one(v))
            .map(|&(j, _)| j)
            .collect();
        let osteps: Vec<usize> = vars.output[i]
            .iter()
            .filter(|&&(_, v)| sol.is_one(v))
            .map(|&(j, _)| j)
            .collect();
        schedule.per_analysis[i] = AnalysisSchedule::new(asteps, osteps);
    }
    schedule
}

/// Solves the exact time-indexed formulation and returns the schedule with
/// its objective value.
pub fn solve_exact(
    problem: &ScheduleProblem,
    opts: &SolveOptions,
) -> Result<(Schedule, f64), SolveError> {
    let (schedule, objective, _) = solve_exact_with_stats(problem, opts)?;
    Ok((schedule, objective))
}

/// Like [`solve_exact`], but also returns the solver telemetry
/// ([`milp::SolveStats`]) from the underlying MILP solve.
pub fn solve_exact_with_stats(
    problem: &ScheduleProblem,
    opts: &SolveOptions,
) -> Result<(Schedule, f64, milp::SolveStats), SolveError> {
    problem
        .validate()
        .map_err(|e| SolveError::BadModel(e.to_string()))?;
    let (model, vars) = build_exact(problem);
    let sol = milp::solve(&model, opts)?;
    let schedule = extract_schedule(problem, &vars, &sol);
    Ok((schedule, sol.objective, sol.stats))
}

/// Like [`solve_exact_with_stats`], but warm-starts branch & bound from a
/// known schedule (typically the incumbent's suffix during a mid-run
/// reschedule) via [`schedule_hint`] + [`milp::solve_with_hint`]. An
/// infeasible hint is ignored; the optimum is unaffected either way.
pub fn solve_exact_with_hint(
    problem: &ScheduleProblem,
    opts: &SolveOptions,
    hint: &Schedule,
) -> Result<(Schedule, f64, milp::SolveStats), SolveError> {
    problem
        .validate()
        .map_err(|e| SolveError::BadModel(e.to_string()))?;
    let (model, vars) = build_exact(problem);
    let values = schedule_hint(problem, &model, &vars, hint);
    let sol = milp::solve_with_hint(&model, opts, &values)?;
    let schedule = extract_schedule(problem, &vars, &sol);
    Ok((schedule, sol.objective, sol.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::{AnalysisProfile, ResourceConfig};

    fn opts() -> SolveOptions {
        // every test below uses integer weights/counts, so the objective is
        // integral and a sub-1 absolute gap is still exact — it prunes the
        // plateaus of fractional big-M nodes that sit between the integer
        // optimum and optimum+1
        SolveOptions {
            abs_gap: 0.999,
            ..SolveOptions::default()
        }
    }

    #[test]
    fn single_cheap_analysis_runs_at_max_frequency() {
        // 20 steps, itv 5 => at most 4 analyses; budget ample
        let p = ScheduleProblem::new(
            vec![AnalysisProfile::new("a")
                .with_compute(1.0, 0.0)
                .with_interval(5)],
            ResourceConfig::from_total_threshold(20, 100.0, 1e9, 1e9),
        )
        .unwrap();
        let (s, obj) = solve_exact(&p, &opts()).unwrap();
        assert_eq!(s.per_analysis[0].count(), 4);
        assert_eq!(obj.round(), 5.0); // 1 (|A|) + 4 (w=1 count)
        assert!(s.per_analysis[0].min_gap().unwrap_or(usize::MAX) >= 5);
        // first analysis only after itv steps have elapsed
        assert!(*s.per_analysis[0].analysis_steps.first().unwrap() >= 5);
    }

    #[test]
    fn time_budget_limits_count() {
        // budget of 2.5 s, each analysis costs 1 s => 2 analyses max
        let p = ScheduleProblem::new(
            vec![AnalysisProfile::new("a")
                .with_compute(1.0, 0.0)
                .with_interval(2)],
            ResourceConfig::from_total_threshold(10, 2.5, 1e9, 1e9),
        )
        .unwrap();
        let (s, _) = solve_exact(&p, &opts()).unwrap();
        assert_eq!(s.per_analysis[0].count(), 2);
    }

    #[test]
    fn fixed_cost_can_evict_an_analysis() {
        // analysis b's fixed time alone exceeds the budget; a fits
        let p = ScheduleProblem::new(
            vec![
                AnalysisProfile::new("a").with_compute(0.1, 0.0).with_interval(5),
                AnalysisProfile::new("b")
                    .with_fixed(100.0, 0.0)
                    .with_compute(0.1, 0.0)
                    .with_interval(5),
            ],
            ResourceConfig::from_total_threshold(10, 5.0, 1e9, 1e9),
        )
        .unwrap();
        let (s, _) = solve_exact(&p, &opts()).unwrap();
        assert!(s.per_analysis[0].count() > 0);
        assert_eq!(s.per_analysis[1].count(), 0, "b must be excluded");
    }

    #[test]
    fn weights_prioritize_analyses() {
        // both cost 1 s; budget fits 3 runs total; b has weight 5
        let p = ScheduleProblem::new(
            vec![
                AnalysisProfile::new("a").with_compute(1.0, 0.0).with_interval(4),
                AnalysisProfile::new("b")
                    .with_compute(1.0, 0.0)
                    .with_interval(4)
                    .with_weight(5.0),
            ],
            ResourceConfig::from_total_threshold(12, 3.0, 1e9, 1e9),
        )
        .unwrap();
        let (s, _) = solve_exact(&p, &opts()).unwrap();
        // b should win the contested slots: 3 for b beats 3 for a
        assert_eq!(s.per_analysis[1].count(), 3);
        assert!(s.per_analysis[0].count() == 0);
    }

    #[test]
    fn output_cadence_forced() {
        // output_every = 1 forces one output per analysis step, each output
        // costs 1 s; budget 4 s, analysis cost 1 s => 2 analyses (2+2=4)
        let p = ScheduleProblem::new(
            vec![AnalysisProfile::new("a")
                .with_compute(1.0, 0.0)
                .with_output(1.0, 0.0, 1)
                .with_interval(2)],
            ResourceConfig::from_total_threshold(10, 4.0, 1e9, 1e9),
        )
        .unwrap();
        let (s, _) = solve_exact(&p, &opts()).unwrap();
        assert_eq!(s.per_analysis[0].count(), 2);
        assert_eq!(s.per_analysis[0].output_count(), 2);
        assert!(s.validate_structure(&p).is_ok());
    }

    #[test]
    fn no_output_when_cadence_zero() {
        let p = ScheduleProblem::new(
            vec![AnalysisProfile::new("a")
                .with_compute(0.1, 0.0)
                .with_interval(3)],
            ResourceConfig::from_total_threshold(9, 10.0, 1e9, 1e9),
        )
        .unwrap();
        let (s, _) = solve_exact(&p, &opts()).unwrap();
        assert!(s.per_analysis[0].count() > 0);
        assert_eq!(s.per_analysis[0].output_count(), 0);
    }

    #[test]
    fn memory_threshold_excludes_hungry_analysis() {
        // b needs 10 GB at each analysis step but only 1 GB is available
        let p = ScheduleProblem::new(
            vec![
                AnalysisProfile::new("a").with_compute(0.1, 0.0).with_interval(4),
                AnalysisProfile::new("b")
                    .with_compute(0.1, 10e9)
                    .with_interval(4),
            ],
            ResourceConfig::from_total_threshold(8, 10.0, 1e9, 1e9),
        )
        .unwrap();
        let (s, _) = solve_exact(&p, &opts()).unwrap();
        assert!(s.per_analysis[0].count() > 0);
        assert_eq!(s.per_analysis[1].count(), 0);
    }

    #[test]
    fn step_memory_accumulates_until_output() {
        // im = 1 GB/step accumulating; mth = 5 GB; without outputs the
        // analysis would blow the cap by step 6 => infeasible to run it
        // without outputs, feasible with outputs resetting the buffer.
        let p = ScheduleProblem::new(
            vec![AnalysisProfile::new("temporal")
                .with_per_step(0.0, 1e9)
                .with_compute(0.1, 0.0)
                .with_output(0.1, 0.0, 1)
                .with_interval(2)],
            ResourceConfig::from_total_threshold(12, 100.0, 5e9, 1e9),
        )
        .unwrap();
        let (s, _) = solve_exact(&p, &opts()).unwrap();
        let a = &s.per_analysis[0];
        assert!(a.count() > 0, "schedule must include the analysis");
        assert!(a.output_count() > 0, "outputs are required to reset memory");
        // no gap between consecutive outputs (or from start) may exceed 5
        let mut last = 0usize;
        for &o in &a.output_steps {
            assert!(o - last <= 5, "memory would exceed cap between {last} and {o}");
            last = o;
        }
    }

    #[test]
    fn hinted_exact_solve_accepts_the_incumbent_and_matches_cold() {
        // memory recursion active, so the mEnd half of the hint is exercised
        let p = ScheduleProblem::new(
            vec![AnalysisProfile::new("temporal")
                .with_per_step(0.0, 1e9)
                .with_compute(0.1, 0.0)
                .with_output(0.1, 0.0, 1)
                .with_interval(2)],
            ResourceConfig::from_total_threshold(12, 100.0, 5e9, 1e9),
        )
        .unwrap();
        let (cold_s, cold_obj, _) = solve_exact_with_stats(&p, &opts()).unwrap();
        let (hot_s, hot_obj, stats) = solve_exact_with_hint(&p, &opts(), &cold_s).unwrap();
        assert_eq!(cold_obj.to_bits(), hot_obj.to_bits());
        assert_eq!(cold_s, hot_s);
        // the hint (the cold optimum itself) must be the first incumbent,
        // offered before any node was explored
        let first = stats.incumbent_updates.first().expect("incumbent event");
        assert_eq!(first.node, 0);
        assert_eq!(first.objective.to_bits(), cold_obj.to_bits());
    }

    #[test]
    fn hint_with_unrepresentable_steps_degrades_gracefully() {
        let p = ScheduleProblem::new(
            vec![AnalysisProfile::new("a")
                .with_compute(1.0, 0.0)
                .with_interval(5)],
            ResourceConfig::from_total_threshold(20, 100.0, 1e9, 1e9),
        )
        .unwrap();
        // steps 2 and 3 are below itv=5 and don't exist in the model; the
        // hint keeps only step 10 and the solve still reaches the optimum
        let mut bad = Schedule::empty(1);
        bad.per_analysis[0] = AnalysisSchedule::new(vec![2, 3, 10], vec![]);
        let (model, vars) = build_exact(&p);
        let values = schedule_hint(&p, &model, &vars, &bad);
        assert_eq!(values[vars.run[0].index()], 1.0);
        assert_eq!(values[vars.analysis[0][10 - 5].1.index()], 1.0);
        assert_eq!(values.iter().filter(|&&v| v != 0.0).count(), 2);
        let (s, obj, _) = solve_exact_with_hint(&p, &opts(), &bad).unwrap();
        assert_eq!(s.per_analysis[0].count(), 4);
        assert_eq!(obj.round(), 5.0);
    }

    #[test]
    fn empty_problem_yields_empty_schedule() {
        let p = ScheduleProblem::new(vec![], ResourceConfig::from_total_threshold(5, 1.0, 1.0, 1.0))
            .unwrap();
        let (s, obj) = solve_exact(&p, &opts()).unwrap();
        assert!(s.per_analysis.is_empty());
        assert_eq!(obj, 0.0);
    }
}
