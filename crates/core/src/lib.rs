//! Optimal scheduling of in-situ analysis — the paper's core contribution.
//!
//! This crate implements the mixed-integer-linear-program formulation of
//! "Optimal Scheduling of In-situ Analysis for Large-scale Scientific
//! Simulations" (SC '15) on top of the workspace's from-scratch [`milp`]
//! solver, plus everything needed to act on a solution:
//!
//! * [`formulation`] — the exact time-indexed MILP of Eqs. 1–9 (binary
//!   `analysis[i][j]` / `output[i][j]` per simulation step),
//! * [`aggregate`] — an equivalent count-based reformulation that scales to
//!   the paper's `Steps = 1000` instances (see module docs for the
//!   equivalence argument),
//! * [`placement`] — turns optimal counts into concrete analysis/output
//!   steps with even spacing under the interval constraint,
//! * [`validate`] — an independent step-by-step simulator of the time and
//!   memory recursions (Eqs. 2–8) that certifies any schedule,
//! * [`baseline`] — the status quo the paper argues against: fixed
//!   user-chosen frequencies, plus a greedy heuristic,
//! * [`runtime`] — a coupler that executes a schedule against a live
//!   simulation (used by the mdsim/amrsim mini-apps),
//! * [`advisor`] — the high-level "recommend me a schedule" API,
//! * [`adaptive`] + [`runtime::run_coupled_adaptive`] — the closed
//!   control loop that re-solves mid-run when the measured costs drift
//!   from the model (`docs/ADAPTIVE.md`).
//!
//! # Quickstart
//!
//! ```
//! use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem, GIB};
//! use insitu_core::advisor::{Advisor, AdvisorOptions};
//!
//! let problem = ScheduleProblem::new(
//!     vec![
//!         AnalysisProfile::new("rdf").with_compute(0.5, GIB).with_interval(100)
//!             .with_output(0.1, 0.1 * GIB, 1),
//!         AnalysisProfile::new("msd").with_compute(4.0, 2.0 * GIB).with_interval(100)
//!             .with_output(1.0, GIB, 1),
//!     ],
//!     ResourceConfig::from_total_threshold(1000, 30.0, 64.0 * GIB, GIB),
//! ).unwrap();
//! let rec = Advisor::new(AdvisorOptions::default()).recommend(&problem).unwrap();
//! assert_eq!(rec.counts[0], 10);             // cheap analysis at max frequency
//! assert!(rec.predicted_time <= 30.0 + 1e-6); // within the threshold
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod advisor;
pub mod aggregate;
pub mod attribution;
pub mod baseline;
pub mod cosched;
pub mod formulation;
pub mod placement;
pub mod runtime;
pub mod validate;

pub use adaptive::{AdaptiveConfig, RescheduleRecord, TriggerReason};
pub use advisor::{Advisor, AdvisorOptions, Recommendation, RescheduleOutcome};
pub use attribution::{attribute, attribute_with_predicted, DriftReport, StepDrift};
pub use aggregate::{build_aggregate, solve_aggregate, AggregateModel};
pub use formulation::{solve_exact, solve_exact_with_stats};
pub use runtime::{run_coupled, run_coupled_adaptive, run_coupled_traced, AdaptiveReport};
pub use validate::{validate_schedule, ValidationReport};
