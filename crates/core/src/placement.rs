//! Placement: turning optimal counts into concrete schedule steps.
//!
//! Analysis steps are spread evenly: the `t`-th of `k` analyses lands on
//! step `⌊t·Steps/k⌋`. Standard floor arithmetic guarantees every gap is at
//! least `⌊Steps/k⌋ >= itv` (because the aggregate model capped
//! `k <= ⌊Steps/itv⌋`), the first analysis happens only after `itv` steps,
//! and the last analysis lands exactly on the final step — so accumulated
//! analysis memory is always flushed before the run ends when outputs are
//! requested. Outputs take every `⌈k/q⌉`-ish analysis slot, always
//! including the last.

use insitu_types::{AnalysisSchedule, Schedule, ScheduleProblem};

/// Evenly spaced 1-based analysis positions for `k` analyses in `steps`.
pub fn analysis_positions(steps: usize, k: usize) -> Vec<usize> {
    (1..=k).map(|t| t * steps / k).collect()
}

/// The subset of `positions` used for `q` outputs: analysis indices
/// `⌊u·k/q⌋` for `u = 1..=q` (so the final analysis always outputs).
pub fn output_positions(positions: &[usize], q: usize) -> Vec<usize> {
    let k = positions.len();
    if q == 0 || k == 0 {
        return Vec::new();
    }
    let q = q.min(k);
    let mut out: Vec<usize> = (1..=q).map(|u| positions[u * k / q - 1]).collect();
    out.dedup();
    out
}

/// Exact peak memory of analysis `i` under even placement with counts
/// `(k, q)`, by simulating the Eq. 5–7 recursion step by step.
pub fn exact_peak_memory(problem: &ScheduleProblem, i: usize, k: usize, q: usize) -> f64 {
    let a = &problem.analyses[i];
    let steps = problem.resources.steps;
    if k == 0 {
        return 0.0;
    }
    let positions = analysis_positions(steps, k);
    let outputs = output_positions(&positions, q);
    let mut next_a = 0usize;
    let mut next_o = 0usize;
    let mut mem = a.fixed_mem; // mEnd_{i,0} = fm (Eq. 7)
    let mut peak = mem;
    for j in 1..=steps {
        mem += a.step_mem; // im, every step (Eq. 5)
        let is_analysis = next_a < positions.len() && positions[next_a] == j;
        let is_output = next_o < outputs.len() && outputs[next_o] == j;
        if is_analysis {
            mem += a.compute_mem;
            next_a += 1;
        }
        if is_output {
            mem += a.output_mem;
            next_o += 1;
        }
        peak = peak.max(mem); // mStart_{i,j}
        if is_output {
            mem = a.fixed_mem; // reset (Eq. 6)
        }
    }
    peak
}

/// Places all analyses' counts into a [`Schedule`].
pub fn place_schedule(
    problem: &ScheduleProblem,
    counts: &[usize],
    output_counts: &[usize],
) -> Schedule {
    let steps = problem.resources.steps;
    let mut schedule = Schedule::empty(problem.len());
    for i in 0..problem.len() {
        let k = counts[i];
        if k == 0 {
            continue;
        }
        let positions = analysis_positions(steps, k);
        let outputs = output_positions(&positions, output_counts[i]);
        schedule.per_analysis[i] = AnalysisSchedule::new(positions, outputs);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::{AnalysisProfile, ResourceConfig};

    #[test]
    fn positions_are_even_and_end_on_last_step() {
        let p = analysis_positions(1000, 10);
        assert_eq!(p, vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]);
        let p = analysis_positions(10, 3);
        assert_eq!(p, vec![3, 6, 10]);
    }

    #[test]
    fn gaps_at_least_floor_steps_over_k() {
        for steps in [10usize, 97, 1000] {
            for k in 1..=10 {
                let p = analysis_positions(steps, k);
                let floor = steps / k;
                let mut last = 0;
                for &j in &p {
                    assert!(j - last >= floor, "steps={steps} k={k}: gap {} < {floor}", j - last);
                    last = j;
                }
                assert_eq!(*p.last().unwrap(), steps);
            }
        }
    }

    #[test]
    fn outputs_include_last_analysis() {
        let pos = analysis_positions(1000, 10);
        for q in 1..=10 {
            let o = output_positions(&pos, q);
            assert_eq!(*o.last().unwrap(), 1000, "q={q}");
            assert!(o.len() <= q);
            assert!(o.iter().all(|j| pos.contains(j)));
        }
        assert!(output_positions(&pos, 0).is_empty());
    }

    #[test]
    fn oversized_q_clamps_to_k() {
        let pos = analysis_positions(100, 4);
        let o = output_positions(&pos, 99);
        assert_eq!(o, pos);
    }

    fn mem_problem() -> ScheduleProblem {
        ScheduleProblem::new(
            vec![AnalysisProfile::new("x")
                .with_fixed(0.0, 10.0)
                .with_per_step(0.0, 2.0)
                .with_compute(0.0, 5.0)
                .with_output(0.0, 3.0, 1)
                .with_interval(1)],
            ResourceConfig::from_total_threshold(100, 1.0, 1e9, 1e9),
        )
        .unwrap()
    }

    #[test]
    fn peak_memory_simulation() {
        let p = mem_problem();
        // no runs: zero
        assert_eq!(exact_peak_memory(&p, 0, 0, 0), 0.0);
        // k=5, no outputs: fm + im*100, plus the cm buffers of all five
        // analysis steps (only outputs free memory, Eq. 6)
        assert_eq!(exact_peak_memory(&p, 0, 5, 0), 10.0 + 200.0 + 25.0);
        // k=4, q=4: resets every 25 steps; peak at an output step
        assert_eq!(exact_peak_memory(&p, 0, 4, 4), 10.0 + 50.0 + 5.0 + 3.0);
        // more outputs => lower peak
        assert!(exact_peak_memory(&p, 0, 10, 10) < exact_peak_memory(&p, 0, 10, 2));
    }

    #[test]
    fn schedule_placement_round_trip() {
        let p = mem_problem();
        let s = place_schedule(&p, &[4], &[2]);
        assert_eq!(s.per_analysis[0].count(), 4);
        assert_eq!(s.per_analysis[0].output_count(), 2);
        assert!(s.validate_structure(&p).is_ok());
        let s0 = place_schedule(&p, &[0], &[0]);
        assert_eq!(s0.per_analysis[0].count(), 0);
    }

    #[test]
    fn first_analysis_respects_interval() {
        // k = kmax = steps/itv: first position is exactly itv
        let steps = 1000;
        let itv = 100;
        let k = steps / itv;
        let pos = analysis_positions(steps, k);
        assert_eq!(pos[0], itv);
    }
}
