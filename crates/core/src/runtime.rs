//! The in-situ runtime coupler: executes a [`Schedule`] against a live
//! simulation (Figure 1's interleaving, for real).
//!
//! The coupler drives `S` steps of a [`Simulator`], and after each step
//! invokes, per the schedule, each analysis's per-step hook (the `it` cost:
//! e.g. copying state into a history buffer), its analyze hook (`ct`) and
//! its output hook (`ot`). All four phases are wall-clock timed per
//! analysis so a run can be compared against the model's predictions and
//! the threshold the schedule was solved for.
//!
//! [`run_coupled_traced`] additionally emits a **step-indexed run
//! timeline** into an [`obs::TraceHandle`]: one [`SPAN_STEP`] span per
//! simulation step with child spans per analysis execution and output
//! write, each tagged with the analysis index/name and the scheduled
//! `(analysis[i][j], output[i][j])` decision. The resulting
//! [`obs::Timeline`] is the measured half of
//! [`crate::attribution::attribute`]'s predicted-vs-measured drift
//! report; span names and tags are documented in `docs/OBSERVABILITY.md`.

use crate::adaptive::{
    remaining_problem, schedule_tail, splice_schedule, AdaptiveConfig, RescheduleRecord,
    TriggerReason,
};
use crate::advisor::{Advisor, AdvisorOptions};
use insitu_types::json::Value;
use insitu_types::{CouplingTrace, KernelTelemetry, Schedule, ScheduleProblem};
use perfmodel::Stopwatch;

/// Root span of a traced coupled run (tags: `steps`, `analyses`).
pub const SPAN_RUN: &str = "run.coupled";
/// One simulation step (tag: `step`, 1-based).
pub const SPAN_STEP: &str = "step";
/// The simulator's own advance inside a step (tag: `step`).
pub const SPAN_SIM_ADVANCE: &str = "sim.advance";
/// The simulator's own output write `O_S` (tag: `step`).
pub const SPAN_SIM_OUTPUT: &str = "sim.output";
/// One-time analysis setup, the `ft` bracket (tags: `analysis`, `name`).
pub const SPAN_ANALYSIS_SETUP: &str = "analysis.setup";
/// Per-step analysis hook, the `it` bracket (tags: `step`, `analysis`).
pub const SPAN_ANALYSIS_PER_STEP: &str = "analysis.per_step";
/// Analysis execution, the `ct` bracket (tags: `step`, `analysis`,
/// `name`, and `output` = the scheduled `output[i][j]` decision).
pub const SPAN_ANALYSIS_ANALYZE: &str = "analysis.analyze";
/// Analysis output write, the `ot` bracket (tags: `step`, `analysis`,
/// `name`).
pub const SPAN_ANALYSIS_OUTPUT: &str = "analysis.output";
/// One reschedule attempt of the adaptive coupler, wrapping the mid-run
/// re-solve and (on adoption) the setup of newly activated analyses
/// (tags: `step`, `reason`, `solve_ms`, `adopted`).
pub const SPAN_RESCHEDULE: &str = "reschedule";
/// Instantaneous event emitted per reschedule attempt, carrying the full
/// `reschedule/v1` payload as tags (see `docs/ADAPTIVE.md`).
pub const EVENT_RESCHEDULE: &str = "reschedule";

/// A simulation that can be advanced one time step at a time.
pub trait Simulator {
    /// The state handed to analyses (particle store, mesh, ...).
    type State;

    /// Read access to the current state.
    fn state(&self) -> &Self::State;

    /// Advances the simulation by one time step.
    fn advance(&mut self);

    /// Writes the simulation's own output (`O_S` in Figure 1).
    fn write_output(&mut self) {}

    /// The simulator's accumulated per-kernel telemetry, if it records
    /// any. The proxies (`mdsim::System`, `amrsim::FlashSim`) return
    /// their `KernelTelemetry`; the coupler snapshots it before the run
    /// and attributes the delta to [`RunReport::kernel_telemetry`], so
    /// per-kernel cost attribution works even with tracing disabled.
    fn kernel_telemetry(&self) -> Option<&KernelTelemetry> {
        None
    }
}

/// An in-situ analysis attached to a simulation with state `S`.
pub trait Analysis<S> {
    /// Display name (matched against the problem's profile names).
    fn name(&self) -> &str;

    /// One-time setup at simulation start (the `ft`/`fm` cost).
    fn setup(&mut self, _state: &S) {}

    /// Called after *every* simulation step while the analysis is active
    /// (the `it`/`im` cost, e.g. appending to a history buffer).
    fn per_step(&mut self, _state: &S) {}

    /// The analysis computation itself (the `ct`/`cm` cost).
    fn analyze(&mut self, state: &S);

    /// Writes the analysis results (the `ot`/`om` cost) and frees buffers.
    fn output(&mut self, _state: &S) {}
}

/// Coupler configuration.
#[derive(Debug, Clone)]
pub struct CouplerConfig {
    /// Number of simulation steps to run.
    pub steps: usize,
    /// Simulation output cadence (`O_S` every this many steps; 0 = never).
    pub sim_output_every: usize,
}

/// Measured wall-clock cost of one analysis across a coupled run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisTimes {
    /// Analysis name.
    pub name: String,
    /// Setup bracket (seconds).
    pub setup: f64,
    /// Sum of per-step brackets.
    pub per_step: f64,
    /// Sum of analyze brackets.
    pub analyze: f64,
    /// Sum of output brackets.
    pub output: f64,
    /// Number of analyze invocations.
    pub analyze_count: usize,
    /// Number of output invocations.
    pub output_count: usize,
}

impl AnalysisTimes {
    /// Total in-situ overhead attributable to this analysis: the sum of
    /// its four measured brackets, `setup + per_step + analyze + output`
    /// (the wall-clock counterparts of the model's `ft + Σit + Σct +
    /// Σot`).
    ///
    /// # Examples
    ///
    /// ```
    /// use insitu_core::runtime::AnalysisTimes;
    /// let t = AnalysisTimes {
    ///     setup: 1.0,
    ///     per_step: 0.5,
    ///     analyze: 2.0,
    ///     output: 0.25,
    ///     ..Default::default()
    /// };
    /// assert_eq!(t.total(), 3.75);
    /// assert_eq!(AnalysisTimes::default().total(), 0.0);
    /// ```
    pub fn total(&self) -> f64 {
        self.setup + self.per_step + self.analyze + self.output
    }
}

/// Result of a coupled run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Pure simulation time (stepping + simulation output).
    pub sim_time: f64,
    /// Per-analysis measured costs, parallel to the analyses slice.
    pub analysis_times: Vec<AnalysisTimes>,
    /// The executed coupling trace.
    pub trace: CouplingTrace,
    /// Per-kernel cost attribution: the simulator's kernel telemetry
    /// accumulated *during this run* (the delta against its pre-run
    /// state). Empty when the simulator records none
    /// ([`Simulator::kernel_telemetry`] returns `None`).
    pub kernel_telemetry: KernelTelemetry,
}

impl RunReport {
    /// Total in-situ analysis overhead across all analyses.
    pub fn total_analysis_time(&self) -> f64 {
        self.analysis_times.iter().map(AnalysisTimes::total).sum()
    }

    /// Analysis overhead as a fraction of simulation time:
    /// `total_analysis_time / sim_time`, the measured counterpart of the
    /// paper's 10%-threshold target. A degenerate run with zero (or
    /// negative-noise) simulation time reports `0.0` rather than
    /// NaN/infinity, so downstream tables and JSON stay finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use insitu_core::runtime::{AnalysisTimes, RunReport};
    /// use insitu_types::{CouplingTrace, KernelTelemetry, Schedule};
    /// let mut report = RunReport {
    ///     sim_time: 10.0,
    ///     analysis_times: vec![AnalysisTimes { analyze: 1.0, ..Default::default() }],
    ///     trace: CouplingTrace::from_schedule(&Schedule::empty(1), 0, 0),
    ///     kernel_telemetry: KernelTelemetry::new(),
    /// };
    /// assert_eq!(report.overhead_fraction(), 0.1);
    /// // zero-simulation-time guard: an empty run is 0.0, not NaN
    /// report.sim_time = 0.0;
    /// assert_eq!(report.overhead_fraction(), 0.0);
    /// ```
    pub fn overhead_fraction(&self) -> f64 {
        if self.sim_time > 0.0 {
            self.total_analysis_time() / self.sim_time
        } else {
            0.0
        }
    }

    /// Exports the run's measured costs into an [`obs::Registry`]:
    /// `run.sim_s` / `run.analysis_s` meters, per-analysis
    /// `run.analysis.<name>.{setup_s, per_step_s, analyze_s, output_s}`
    /// and the per-kernel attribution under `run.kernel.*`.
    pub fn export_into(&self, registry: &obs::Registry) {
        registry.observe("run.sim_s", self.sim_time);
        registry.observe("run.analysis_s", self.total_analysis_time());
        for t in &self.analysis_times {
            registry.observe(&format!("run.analysis.{}.setup_s", t.name), t.setup);
            registry.observe(&format!("run.analysis.{}.per_step_s", t.name), t.per_step);
            registry.observe(&format!("run.analysis.{}.analyze_s", t.name), t.analyze);
            registry.observe(&format!("run.analysis.{}.output_s", t.name), t.output);
            registry.add(
                &format!("run.analysis.{}.analyze_count", t.name),
                t.analyze_count as u64,
            );
            registry.add(
                &format!("run.analysis.{}.output_count", t.name),
                t.output_count as u64,
            );
        }
        self.kernel_telemetry.export_into("run.kernel", registry);
    }
}

/// Runs `sim` for `cfg.steps` steps with `analyses` coupled in-situ
/// according to `schedule`.
///
/// Analyses whose schedule entry is empty are fully inactive (no setup, no
/// per-step cost) — exactly the `run_i = 0` semantics of the formulation.
///
/// Equivalent to [`run_coupled_traced`] with a disabled trace handle
/// (spans cost nothing in that case).
pub fn run_coupled<Sim: Simulator>(
    sim: &mut Sim,
    analyses: &mut [Box<dyn Analysis<Sim::State> + '_>],
    schedule: &Schedule,
    cfg: &CouplerConfig,
) -> RunReport {
    run_coupled_traced(sim, analyses, schedule, cfg, &obs::TraceHandle::disabled())
}

/// [`run_coupled`] plus a step-indexed run timeline emitted into `trace`.
///
/// The span tree (names are the `SPAN_*` constants in this module):
///
/// ```text
/// run.coupled                       tags: steps, analyses
/// ├─ analysis.setup                 tags: analysis, name        (per active analysis)
/// └─ step                           tags: step                  (per simulation step)
///    ├─ sim.advance                 tags: step
///    ├─ sim.output                  tags: step                  (at the O_S cadence)
///    ├─ analysis.per_step           tags: step, analysis        (per active analysis)
///    ├─ analysis.analyze            tags: step, analysis, name, output
///    └─ analysis.output             tags: step, analysis, name
/// ```
///
/// `analysis.analyze` / `analysis.output` spans exist exactly where the
/// schedule sets `analysis[i][j]` / `output[i][j]`, so the timeline *is*
/// the executed decision matrix; the `output` tag on the analyze span
/// repeats the scheduled output decision so it survives even if the
/// output span record is dropped under overload. Every child carries its
/// own `step` tag for the same reason.
///
/// The wall-clock report is measured by the same `Stopwatch` brackets as
/// the untraced path — spans are additive instrumentation, not a
/// replacement for the report's timing.
pub fn run_coupled_traced<Sim: Simulator>(
    sim: &mut Sim,
    analyses: &mut [Box<dyn Analysis<Sim::State> + '_>],
    schedule: &Schedule,
    cfg: &CouplerConfig,
    trace: &obs::TraceHandle,
) -> RunReport {
    assert_eq!(
        analyses.len(),
        schedule.per_analysis.len(),
        "one schedule entry per analysis"
    );
    let mut times: Vec<AnalysisTimes> = analyses
        .iter()
        .map(|a| AnalysisTimes {
            name: a.name().to_string(),
            ..AnalysisTimes::default()
        })
        .collect();
    let active: Vec<bool> = schedule
        .per_analysis
        .iter()
        .map(|s| s.count() > 0)
        .collect();
    let telemetry_baseline = sim.kernel_telemetry().cloned().unwrap_or_default();

    let mut run_span = trace.span(SPAN_RUN);
    run_span.tag("steps", cfg.steps);
    run_span.tag("analyses", analyses.len());

    // one-time setup (ft)
    for (i, a) in analyses.iter_mut().enumerate() {
        if active[i] {
            let mut span = trace.span(SPAN_ANALYSIS_SETUP);
            span.tag("analysis", i);
            span.tag("name", a.name());
            let sw = Stopwatch::start();
            a.setup(sim.state());
            times[i].setup = sw.elapsed();
        }
    }

    let mut sim_time = 0.0;
    for j in 1..=cfg.steps {
        let mut step_span = trace.span(SPAN_STEP);
        step_span.tag("step", j);

        let sw = Stopwatch::start();
        {
            let mut span = trace.span(SPAN_SIM_ADVANCE);
            span.tag("step", j);
            sim.advance();
        }
        if cfg.sim_output_every > 0 && j % cfg.sim_output_every == 0 {
            let mut span = trace.span(SPAN_SIM_OUTPUT);
            span.tag("step", j);
            sim.write_output();
        }
        sim_time += sw.elapsed();

        for (i, a) in analyses.iter_mut().enumerate() {
            if !active[i] {
                continue;
            }
            let sched = &schedule.per_analysis[i];
            {
                let mut span = trace.span(SPAN_ANALYSIS_PER_STEP);
                span.tag("step", j);
                span.tag("analysis", i);
                let sw = Stopwatch::start();
                a.per_step(sim.state());
                times[i].per_step += sw.elapsed();
            }
            if sched.runs_at(j) {
                let scheduled_output = sched.outputs_at(j);
                {
                    let mut span = trace.span(SPAN_ANALYSIS_ANALYZE);
                    span.tag("step", j);
                    span.tag("analysis", i);
                    span.tag("name", a.name());
                    span.tag("output", scheduled_output);
                    let sw = Stopwatch::start();
                    a.analyze(sim.state());
                    times[i].analyze += sw.elapsed();
                    times[i].analyze_count += 1;
                }
                if scheduled_output {
                    let mut span = trace.span(SPAN_ANALYSIS_OUTPUT);
                    span.tag("step", j);
                    span.tag("analysis", i);
                    span.tag("name", a.name());
                    let sw = Stopwatch::start();
                    a.output(sim.state());
                    times[i].output += sw.elapsed();
                    times[i].output_count += 1;
                }
            }
        }
    }
    drop(run_span);

    let kernel_telemetry = sim
        .kernel_telemetry()
        .map(|t| t.delta_since(&telemetry_baseline))
        .unwrap_or_default();

    RunReport {
        sim_time,
        analysis_times: times,
        trace: CouplingTrace::from_schedule(schedule, cfg.steps, cfg.sim_output_every),
        kernel_telemetry,
    }
}

/// Result of an adaptive coupled run ([`run_coupled_adaptive`]).
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// The wall-clock run report, exactly as [`run_coupled`] would build
    /// it — `run.trace` reflects the *final composite* schedule.
    pub run: RunReport,
    /// The schedule that was actually executed: the static prefix up to
    /// each reschedule point plus every adopted suffix, in absolute
    /// steps. Feed this (not the original static schedule) to
    /// [`crate::attribution::attribute_with_predicted`].
    pub schedule: Schedule,
    /// Every reschedule attempt, adopted or not, in trigger order.
    pub reschedules: Vec<RescheduleRecord>,
    /// The model's cumulative analysis-time series the run was held
    /// against, `predicted[j]` = seconds after step `j` (index 0 = setup
    /// seed). Starts as the static schedule's Eq. 2–4 series; each
    /// adoption splices the re-solved suffix's series in at the measured
    /// baseline.
    pub predicted: Vec<f64>,
}

impl AdaptiveReport {
    /// Number of *adopted* reschedules.
    pub fn adopted_count(&self) -> usize {
        self.reschedules.iter().filter(|r| r.adopted).count()
    }

    /// JSON array of `reschedule/v1` objects, one per attempt.
    pub fn reschedules_json(&self) -> Value {
        Value::Array(self.reschedules.iter().map(RescheduleRecord::to_json).collect())
    }
}

/// [`run_coupled_traced`] wrapped in a model-predictive control loop:
/// executes `schedule`, monitors measured cost against the Eq. 2–4
/// prediction after every `adaptive.check_every` steps, and when a
/// trigger trips re-solves the MILP for the remaining steps from the
/// *measured* cost prefix and swaps the new schedule in without stopping
/// the simulation.
///
/// The control loop (full contract in `docs/ADAPTIVE.md`):
///
/// 1. **Monitor** — accumulate measured setup/per-step/analyze/output
///    time (the same stopwatch brackets as [`run_coupled`]). After step
///    `j`, trip on either trigger:
///    * *budget*: measured time since the last adopted schedule exceeds
///      that schedule's pro-rated budget `cth' · (j − j₀)`;
///    * *drift*: `measured_cum − predicted[j]` exceeds
///      [`AdaptiveConfig::drift_threshold`].
/// 2. **Re-model** — [`remaining_problem`] rebuilds the suffix problem
///    from measured per-call averages and the remaining budget.
/// 3. **Re-solve** — [`Advisor::recommend_remaining`] warm-starts the
///    MILP from the incumbent tail ([`milp::solve_with_hint`]'s
///    parent-basis seeding) so an already-good schedule closes quickly.
/// 4. **Re-certify** — the candidate is replayed with the exact mid-run
///    carry ([`certify::certify_suffix`]); an `Invalid` verdict keeps the
///    incumbent (recorded as a non-adopted attempt).
/// 5. **Swap** — [`splice_schedule`] grafts the suffix in; analyses the
///    new schedule activates for the first time get their `setup` hook
///    (timed, inside the [`SPAN_RESCHEDULE`] span); analyses it
///    deactivates stop paying per-step cost but keep their buffers (the
///    carry accounts for the held memory).
///
/// Every attempt emits a [`SPAN_RESCHEDULE`] span and an
/// [`EVENT_RESCHEDULE`] event tagged with the `reschedule/v1` payload
/// into `trace`, and is recorded in [`AdaptiveReport::reschedules`].
///
/// Determinism: with a fixed simulator/analysis workload, the *decision
/// path* (which schedules are adopted) depends on wall-clock
/// measurements, but each re-solve is deterministic for its inputs at
/// any [`milp::SolveOptions::threads`] count — same remaining problem,
/// same hint, same schedule out.
///
/// Errors only on structural mismatch (schedule/problem/analyses arity,
/// `cfg.steps` ≠ `problem.resources.steps`) or a non-finite model
/// parameter — never because a re-solve failed (those are recorded as
/// non-adopted attempts and the run continues on the incumbent).
pub fn run_coupled_adaptive<Sim: Simulator>(
    sim: &mut Sim,
    analyses: &mut [Box<dyn Analysis<Sim::State> + '_>],
    problem: &ScheduleProblem,
    schedule: &Schedule,
    cfg: &CouplerConfig,
    adaptive: &AdaptiveConfig,
    trace: &obs::TraceHandle,
) -> Result<AdaptiveReport, String> {
    let n = analyses.len();
    if schedule.per_analysis.len() != n || problem.analyses.len() != n {
        return Err(format!(
            "arity mismatch: {} analyses, {} schedule entries, {} profiles",
            n,
            schedule.per_analysis.len(),
            problem.analyses.len()
        ));
    }
    if cfg.steps != problem.resources.steps {
        return Err(format!(
            "coupler runs {} steps but the problem models {}",
            cfg.steps, problem.resources.steps
        ));
    }
    let steps = cfg.steps;
    let check_every = adaptive.check_every.max(1);
    let advisor = Advisor::new(AdvisorOptions {
        solver: adaptive.solver.clone(),
        exact_steps_limit: adaptive.exact_steps_limit,
    });

    let mut times: Vec<AnalysisTimes> = analyses
        .iter()
        .map(|a| AnalysisTimes {
            name: a.name().to_string(),
            ..AnalysisTimes::default()
        })
        .collect();
    let mut cur = schedule.clone();
    let mut active: Vec<bool> = cur.per_analysis.iter().map(|s| s.count() > 0).collect();
    let mut set_up = active.clone();
    let mut active_steps = vec![0usize; n];
    let mut predicted: Vec<f64> = certify::replay_time_series(problem, schedule)
        .map_err(|e| format!("predicted series replay failed: {e:?}"))?
        .iter()
        .map(|r| r.to_f64())
        .collect();
    let mut reschedules: Vec<RescheduleRecord> = Vec::new();

    // reset-baseline budget trigger state: the window opens at the start
    // of the last adopted schedule and is judged against *its* pro-rated
    // budget (docs/ADAPTIVE.md)
    let mut base_step = 0usize;
    let mut base_measured = 0.0f64;
    let mut base_rate = problem.resources.step_threshold;
    let mut last_attempt: Option<usize> = None;

    let telemetry_baseline = sim.kernel_telemetry().cloned().unwrap_or_default();
    // the whole adaptive run shares one deterministic trace context
    // (instance fingerprint, sequence 0), so its spans land in one lane
    // of the Chrome export and carry ids that reproduce across runs
    let run_ctx = obs::TraceContext::derive(certify::fingerprint(problem).0, 0);
    let _run_ctx_guard = run_ctx.enter();
    let mut run_span = trace.span(SPAN_RUN);
    run_span.tag("steps", steps);
    run_span.tag("analyses", n);
    run_span.tag("trace_id", run_ctx.trace_id_hex());

    let mut measured_cum = 0.0f64;
    for (i, a) in analyses.iter_mut().enumerate() {
        if active[i] {
            let mut span = trace.span(SPAN_ANALYSIS_SETUP);
            span.tag("analysis", i);
            span.tag("name", a.name());
            let sw = Stopwatch::start();
            a.setup(sim.state());
            times[i].setup = sw.elapsed();
            measured_cum += times[i].setup;
        }
    }

    let mut sim_time = 0.0;
    for j in 1..=steps {
        {
            let mut step_span = trace.span(SPAN_STEP);
            step_span.tag("step", j);

            let sw = Stopwatch::start();
            {
                let mut span = trace.span(SPAN_SIM_ADVANCE);
                span.tag("step", j);
                sim.advance();
            }
            if cfg.sim_output_every > 0 && j % cfg.sim_output_every == 0 {
                let mut span = trace.span(SPAN_SIM_OUTPUT);
                span.tag("step", j);
                sim.write_output();
            }
            sim_time += sw.elapsed();

            for (i, a) in analyses.iter_mut().enumerate() {
                if !active[i] {
                    continue;
                }
                active_steps[i] += 1;
                let sched = &cur.per_analysis[i];
                {
                    let mut span = trace.span(SPAN_ANALYSIS_PER_STEP);
                    span.tag("step", j);
                    span.tag("analysis", i);
                    let sw = Stopwatch::start();
                    a.per_step(sim.state());
                    let dt = sw.elapsed();
                    times[i].per_step += dt;
                    measured_cum += dt;
                }
                if sched.runs_at(j) {
                    let scheduled_output = sched.outputs_at(j);
                    {
                        let mut span = trace.span(SPAN_ANALYSIS_ANALYZE);
                        span.tag("step", j);
                        span.tag("analysis", i);
                        span.tag("name", a.name());
                        span.tag("output", scheduled_output);
                        let sw = Stopwatch::start();
                        a.analyze(sim.state());
                        let dt = sw.elapsed();
                        times[i].analyze += dt;
                        times[i].analyze_count += 1;
                        measured_cum += dt;
                    }
                    if scheduled_output {
                        let mut span = trace.span(SPAN_ANALYSIS_OUTPUT);
                        span.tag("step", j);
                        span.tag("analysis", i);
                        span.tag("name", a.name());
                        let sw = Stopwatch::start();
                        a.output(sim.state());
                        let dt = sw.elapsed();
                        times[i].output += dt;
                        times[i].output_count += 1;
                        measured_cum += dt;
                    }
                }
            }
        }

        // ---- control loop: evaluate triggers after step j ----
        if j == steps || j % check_every != 0 {
            continue;
        }
        if reschedules.len() >= adaptive.max_reschedules {
            continue;
        }
        if let Some(last) = last_attempt {
            if j < last + adaptive.cooldown_steps.max(1) {
                continue;
            }
        }
        let drift = measured_cum - predicted[j];
        let reason = if adaptive.trigger_on_budget
            && base_rate.is_finite()
            && measured_cum - base_measured > base_rate * (j - base_step) as f64
        {
            Some(TriggerReason::Budget)
        } else if adaptive.drift_threshold.is_finite() && drift > adaptive.drift_threshold {
            Some(TriggerReason::Drift)
        } else {
            None
        };
        let Some(reason) = reason else { continue };
        last_attempt = Some(j);

        // each attempt gets a derived child context: same lane (trace
        // id), a distinct deterministic span id per attempt ordinal
        let attempt_ctx = run_ctx.child(reschedules.len() as u64 + 1);
        let _attempt_guard = attempt_ctx.enter();
        let mut resched_span = trace.span(SPAN_RESCHEDULE);
        resched_span.tag("step", j);
        resched_span.tag("reason", reason.to_string().as_str());
        resched_span.tag("attempt_span", format!("{:016x}", attempt_ctx.span_id));
        let mut record = RescheduleRecord {
            step: j,
            reason,
            drift,
            measured_cum,
            predicted_cum: predicted[j],
            remaining_steps: steps - j,
            solve_ms: 0.0,
            old_objective: 0.0,
            new_objective: 0.0,
            adopted: false,
            verdict: String::new(),
        };

        let attempt = (|| -> Result<_, String> {
            let rp = remaining_problem(problem, &times, &active_steps, &set_up, j, measured_cum)?;
            let tail = schedule_tail(&cur, j);
            let held = certify::memory_state_at(problem, &cur, j, &set_up)
                .map_err(|e| format!("carry replay failed: {e:?}"))?;
            let carry = certify::SuffixCarry {
                held_mem: held.iter().map(|m| m.as_ref().map(|r| r.to_f64())).collect(),
                steps_since_run: cur
                    .per_analysis
                    .iter()
                    .map(|s| {
                        s.analysis_steps
                            .iter()
                            .rev()
                            .find(|&&r| r <= j)
                            .map(|&r| j - r)
                    })
                    .collect(),
            };
            let old_objective = tail.objective(&rp);
            let sw = Stopwatch::start();
            let outcome = advisor
                .recommend_remaining(&rp, &tail, &carry)
                .map_err(|e| e.to_string());
            let solve_ms = sw.elapsed() * 1e3;
            let out = outcome?;
            let suffix_series = certify::replay_time_series(&rp, &out.schedule)
                .map_err(|e| format!("suffix series replay failed: {e:?}"))?;
            Ok((rp, out, suffix_series, old_objective, solve_ms))
        })();

        match attempt {
            Ok((rp, out, suffix_series, old_objective, solve_ms)) => {
                record.solve_ms = solve_ms;
                record.old_objective = old_objective;
                record.new_objective = out.objective;
                record.adopted = true;
                record.verdict = out.certification.verdict.to_string();

                cur = splice_schedule(&cur, j, &out.schedule);
                // splice the new prediction in at the measured baseline
                // *before* paying new setups: the suffix series' index 0
                // is exactly those analyses' remaining fixed cost
                for (t, r) in suffix_series.iter().enumerate() {
                    predicted[j + t] = measured_cum + r.to_f64();
                }
                base_step = j;
                base_measured = measured_cum;
                base_rate = rp.resources.step_threshold;
                for (i, a) in analyses.iter_mut().enumerate() {
                    active[i] = out.schedule.per_analysis[i].count() > 0;
                    if active[i] && !set_up[i] {
                        let mut span = trace.span(SPAN_ANALYSIS_SETUP);
                        span.tag("analysis", i);
                        span.tag("name", a.name());
                        let sw = Stopwatch::start();
                        a.setup(sim.state());
                        times[i].setup = sw.elapsed();
                        measured_cum += times[i].setup;
                        set_up[i] = true;
                    }
                }
            }
            Err(e) => {
                record.verdict = e;
            }
        }

        resched_span.tag("solve_ms", record.solve_ms);
        resched_span.tag("adopted", record.adopted);
        trace.event(
            EVENT_RESCHEDULE,
            &[
                ("step", record.step.into()),
                ("reason", record.reason.to_string().as_str().into()),
                ("drift", record.drift.into()),
                ("measured_cum", record.measured_cum.into()),
                ("predicted_cum", record.predicted_cum.into()),
                ("remaining_steps", record.remaining_steps.into()),
                ("solve_ms", record.solve_ms.into()),
                ("old_objective", record.old_objective.into()),
                ("new_objective", record.new_objective.into()),
                ("adopted", record.adopted.into()),
                ("verdict", record.verdict.as_str().into()),
            ],
        );
        reschedules.push(record);
    }
    drop(run_span);

    let kernel_telemetry = sim
        .kernel_telemetry()
        .map(|t| t.delta_since(&telemetry_baseline))
        .unwrap_or_default();

    Ok(AdaptiveReport {
        run: RunReport {
            sim_time,
            analysis_times: times,
            trace: CouplingTrace::from_schedule(&cur, steps, cfg.sim_output_every),
            kernel_telemetry,
        },
        schedule: cur,
        reschedules,
        predicted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::AnalysisSchedule;

    /// Counts its own steps; state is the current step index.
    struct CounterSim {
        step: usize,
        outputs: usize,
    }
    impl Simulator for CounterSim {
        type State = usize;
        fn state(&self) -> &usize {
            &self.step
        }
        fn advance(&mut self) {
            self.step += 1;
        }
        fn write_output(&mut self) {
            self.outputs += 1;
        }
    }

    /// Records which steps it was invoked at.
    #[derive(Default)]
    struct Recorder {
        name: String,
        per_steps: Vec<usize>,
        analyzed: Vec<usize>,
        outputs: Vec<usize>,
    }
    impl Analysis<usize> for Recorder {
        fn name(&self) -> &str {
            &self.name
        }
        fn per_step(&mut self, state: &usize) {
            self.per_steps.push(*state);
        }
        fn analyze(&mut self, state: &usize) {
            self.analyzed.push(*state);
        }
        fn output(&mut self, state: &usize) {
            self.outputs.push(*state);
        }
    }

    #[test]
    fn coupler_follows_schedule() {
        let mut sim = CounterSim { step: 0, outputs: 0 };
        let mut schedule = Schedule::empty(2);
        schedule.per_analysis[0] = AnalysisSchedule::new(vec![4, 8], vec![8]);
        // analysis 1 inactive
        let mut analyses: Vec<Box<dyn Analysis<usize>>> = vec![
            Box::new(Recorder { name: "a".into(), ..Default::default() }),
            Box::new(Recorder { name: "b".into(), ..Default::default() }),
        ];
        let report = run_coupled(
            &mut sim,
            &mut analyses,
            &schedule,
            &CouplerConfig { steps: 10, sim_output_every: 5 },
        );
        assert_eq!(sim.step, 10);
        assert_eq!(sim.outputs, 2);
        assert_eq!(report.analysis_times[0].analyze_count, 2);
        assert_eq!(report.analysis_times[0].output_count, 1);
        assert_eq!(report.analysis_times[1].analyze_count, 0);
        assert_eq!(report.trace.sim_steps(), 10);
        assert!(report.sim_time >= 0.0);
        assert!(report.total_analysis_time() >= 0.0);
    }

    #[test]
    fn inactive_analyses_never_called() {
        let mut sim = CounterSim { step: 0, outputs: 0 };
        let schedule = Schedule::empty(1);
        let mut analyses: Vec<Box<dyn Analysis<usize>>> =
            vec![Box::new(Recorder { name: "idle".into(), ..Default::default() })];
        let report = run_coupled(
            &mut sim,
            &mut analyses,
            &schedule,
            &CouplerConfig { steps: 5, sim_output_every: 0 },
        );
        assert_eq!(report.analysis_times[0].total(), 0.0);
        assert_eq!(report.analysis_times[0].analyze_count, 0);
    }

    #[test]
    fn per_step_called_every_step_for_active() {
        let mut sim = CounterSim { step: 0, outputs: 0 };
        let mut schedule = Schedule::empty(1);
        schedule.per_analysis[0] = AnalysisSchedule::new(vec![3], vec![]);
        let mut rec = Recorder { name: "a".into(), ..Default::default() };
        {
            let mut analyses: Vec<Box<dyn Analysis<usize>>> = vec![Box::new(&mut rec)];
            run_coupled(
                &mut sim,
                &mut analyses,
                &schedule,
                &CouplerConfig { steps: 6, sim_output_every: 0 },
            );
        }
        assert_eq!(rec.per_steps, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(rec.analyzed, vec![3]);
        assert!(rec.outputs.is_empty());
    }

    impl<S, T: Analysis<S>> Analysis<S> for &mut T {
        fn name(&self) -> &str {
            T::name(self)
        }
        fn setup(&mut self, state: &S) {
            T::setup(self, state)
        }
        fn per_step(&mut self, state: &S) {
            T::per_step(self, state)
        }
        fn analyze(&mut self, state: &S) {
            T::analyze(self, state)
        }
        fn output(&mut self, state: &S) {
            T::output(self, state)
        }
    }

    #[test]
    fn traced_run_emits_the_step_indexed_span_tree() {
        let mut sim = CounterSim { step: 0, outputs: 0 };
        let mut schedule = Schedule::empty(1);
        schedule.per_analysis[0] = AnalysisSchedule::new(vec![2, 4], vec![4]);
        let mut analyses: Vec<Box<dyn Analysis<usize>>> =
            vec![Box::new(Recorder { name: "a".into(), ..Default::default() })];
        let tracer = std::sync::Arc::new(obs::Tracer::with_capacity(256));
        let handle = obs::TraceHandle::new(tracer.clone());
        run_coupled_traced(
            &mut sim,
            &mut analyses,
            &schedule,
            &CouplerConfig { steps: 4, sim_output_every: 2 },
            &handle,
        );
        let tl = tracer.timeline();
        tl.validate().unwrap();
        assert_eq!(tl.dropped, 0);

        // one root, one step span per simulation step, children hooked up
        let root = tl.spans_named(SPAN_RUN).next().expect("root span");
        assert_eq!(root.tag_i64("steps"), Some(4));
        let steps: Vec<_> = tl.spans_named(SPAN_STEP).collect();
        assert_eq!(steps.len(), 4);
        for (k, s) in steps.iter().enumerate() {
            assert_eq!(s.parent, Some(root.id));
            assert_eq!(s.tag_i64("step"), Some(k as i64 + 1));
        }

        // analyze spans exist exactly at the scheduled steps, tagged with
        // the scheduled output decision
        let analyzed: Vec<_> = tl.spans_named(SPAN_ANALYSIS_ANALYZE).collect();
        assert_eq!(
            analyzed.iter().map(|s| s.tag_i64("step")).collect::<Vec<_>>(),
            vec![Some(2), Some(4)]
        );
        assert_eq!(
            analyzed
                .iter()
                .map(|s| s.tag("output").and_then(|v| v.as_bool()))
                .collect::<Vec<_>>(),
            vec![Some(false), Some(true)]
        );
        assert_eq!(tl.spans_named(SPAN_ANALYSIS_OUTPUT).count(), 1);
        assert_eq!(tl.spans_named(SPAN_ANALYSIS_PER_STEP).count(), 4);
        assert_eq!(tl.spans_named(SPAN_SIM_ADVANCE).count(), 4);
        assert_eq!(tl.spans_named(SPAN_SIM_OUTPUT).count(), 2);
        assert_eq!(tl.spans_named(SPAN_ANALYSIS_SETUP).count(), 1);

        // every analyze span is a child of its step span
        for s in &analyzed {
            let parent = tl.spans.iter().find(|p| Some(p.id) == s.parent).unwrap();
            assert_eq!(parent.name, SPAN_STEP);
            assert_eq!(parent.tag_i64("step"), s.tag_i64("step"));
        }
    }

    #[test]
    fn untraced_run_reports_identically_and_emits_nothing() {
        let mk = || {
            let mut schedule = Schedule::empty(1);
            schedule.per_analysis[0] = AnalysisSchedule::new(vec![3], vec![3]);
            schedule
        };
        let mut sim = CounterSim { step: 0, outputs: 0 };
        let mut analyses: Vec<Box<dyn Analysis<usize>>> =
            vec![Box::new(Recorder { name: "a".into(), ..Default::default() })];
        let report = run_coupled(
            &mut sim,
            &mut analyses,
            &mk(),
            &CouplerConfig { steps: 5, sim_output_every: 0 },
        );
        assert_eq!(report.analysis_times[0].analyze_count, 1);
        assert!(report.kernel_telemetry.kernels.is_empty());
    }

    /// A sim that records kernel telemetry, to exercise the attribution
    /// hook.
    struct KernelSim {
        step: usize,
        telemetry: KernelTelemetry,
    }
    impl Simulator for KernelSim {
        type State = usize;
        fn state(&self) -> &usize {
            &self.step
        }
        fn advance(&mut self) {
            self.step += 1;
            self.telemetry.record("toy.step", 1, 1, 0.25, 0.0);
        }
        fn kernel_telemetry(&self) -> Option<&KernelTelemetry> {
            Some(&self.telemetry)
        }
    }

    #[test]
    fn kernel_telemetry_attributed_as_a_run_delta() {
        let mut sim = KernelSim { step: 0, telemetry: KernelTelemetry::new() };
        // pre-run activity (calibration) must not be attributed to the run
        sim.advance();
        sim.advance();
        let mut analyses: Vec<Box<dyn Analysis<usize>>> = vec![];
        let report = run_coupled(
            &mut sim,
            &mut analyses,
            &Schedule::empty(0),
            &CouplerConfig { steps: 3, sim_output_every: 0 },
        );
        let rec = report.kernel_telemetry.get("toy.step").unwrap();
        assert_eq!(rec.calls, 3, "only the run's own calls are attributed");
        assert!((rec.wall_s - 0.75).abs() < 1e-12);
        // ...while the sim's own accumulator keeps the full history
        assert_eq!(sim.telemetry.get("toy.step").unwrap().calls, 5);

        let reg = obs::Registry::new();
        report.export_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("run.kernel.toy.step.calls"), Some(3));
        assert!(snap.meter("run.sim_s").is_some());
    }

    use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem};

    /// Busy-waits a fixed wall-clock time per analyze call.
    struct Spin {
        name: String,
        analyze_s: f64,
    }
    impl Analysis<usize> for Spin {
        fn name(&self) -> &str {
            &self.name
        }
        fn analyze(&mut self, _state: &usize) {
            let sw = Stopwatch::start();
            while sw.elapsed() < self.analyze_s {}
        }
    }

    #[test]
    fn adaptive_run_without_drift_keeps_the_static_schedule() {
        let p = ScheduleProblem::new(
            vec![AnalysisProfile::new("a")
                .with_compute(0.001, 0.0)
                .with_interval(2)],
            // a budget vastly above anything a Recorder can spend
            ResourceConfig::from_total_threshold(10, 10.0, 1e9, 1e9),
        )
        .unwrap();
        let mut schedule = Schedule::empty(1);
        schedule.per_analysis[0] = AnalysisSchedule::new(vec![4, 8], vec![8]);
        let mut sim = CounterSim { step: 0, outputs: 0 };
        let mut analyses: Vec<Box<dyn Analysis<usize>>> =
            vec![Box::new(Recorder { name: "a".into(), ..Default::default() })];
        let report = run_coupled_adaptive(
            &mut sim,
            &mut analyses,
            &p,
            &schedule,
            &CouplerConfig { steps: 10, sim_output_every: 0 },
            &AdaptiveConfig::default(),
            &obs::TraceHandle::disabled(),
        )
        .unwrap();
        assert!(report.reschedules.is_empty());
        assert_eq!(report.schedule, schedule);
        assert_eq!(report.run.analysis_times[0].analyze_count, 2);
        assert_eq!(report.predicted.len(), 11);
        assert_eq!(report.adopted_count(), 0);
    }

    #[test]
    fn budget_blowout_triggers_an_adopted_reschedule() {
        // modeled at 0.1 ms/analyze, the hog actually spins 5 ms; the
        // first scheduled run blows the 1 ms/step pro-rated budget and
        // the re-solve (measured ct = 5 ms vs 3 ms of remaining budget)
        // must drop the remaining runs
        let p = ScheduleProblem::new(
            vec![AnalysisProfile::new("hog")
                .with_compute(0.0001, 0.0)
                .with_interval(2)],
            ResourceConfig::from_total_threshold(8, 0.008, 1e9, 1e9),
        )
        .unwrap();
        let mut schedule = Schedule::empty(1);
        schedule.per_analysis[0] = AnalysisSchedule::new(vec![2, 4, 6, 8], vec![]);
        let mut sim = CounterSim { step: 0, outputs: 0 };
        let mut analyses: Vec<Box<dyn Analysis<usize>>> =
            vec![Box::new(Spin { name: "hog".into(), analyze_s: 0.005 })];
        let tracer = std::sync::Arc::new(obs::Tracer::with_capacity(512));
        let report = run_coupled_adaptive(
            &mut sim,
            &mut analyses,
            &p,
            &schedule,
            &CouplerConfig { steps: 8, sim_output_every: 0 },
            &AdaptiveConfig::default(),
            &obs::TraceHandle::new(tracer.clone()),
        )
        .unwrap();
        assert_eq!(report.reschedules.len(), 1);
        let r = &report.reschedules[0];
        assert_eq!(r.step, 2);
        assert_eq!(r.reason, TriggerReason::Budget);
        assert!(r.adopted, "verdict: {}", r.verdict);
        assert_ne!(r.verdict, "INVALID");
        assert!(r.measured_cum > 0.002, "the hog's 5 ms run must show");
        assert!(r.new_objective < r.old_objective);
        // the composite schedule keeps the executed prefix, drops the rest
        assert_eq!(report.schedule.per_analysis[0].analysis_steps, vec![2]);
        assert_eq!(report.run.analysis_times[0].analyze_count, 1);
        // within the total budget that the static schedule (4 spins =
        // 20 ms vs 8 ms) could not have met
        assert!(report.run.total_analysis_time() < 0.008);
        // the reschedule span and event are both in the timeline
        let tl = tracer.timeline();
        let span = tl.spans_named(SPAN_RESCHEDULE).next().expect("span");
        assert_eq!(span.tag_i64("step"), Some(2));
        assert_eq!(span.tag("adopted").and_then(|v| v.as_bool()), Some(true));
        let ev = tl.events_named(EVENT_RESCHEDULE).next().expect("event");
        assert_eq!(ev.tag_i64("step"), Some(2));
        assert_eq!(
            ev.tag("reason").and_then(|v| v.as_str()),
            Some("budget")
        );
        assert!(ev.tag_f64("solve_ms").is_some());
        // every adaptive span/event carries the run's deterministic
        // trace id (fingerprint-derived, so stable across reruns)
        let expected = obs::TraceContext::derive(certify::fingerprint(&p).0, 0).trace_id;
        assert!(tl.spans.iter().all(|s| s.trace_id == Some(expected)));
        assert_eq!(ev.trace_id, Some(expected));
        // the spliced prediction holds the run to the *measured* baseline
        assert!(report.predicted[2] >= 0.005);
        // a reschedule JSON export carries the v1 schema
        let json = report.reschedules_json().to_string_pretty();
        assert!(json.contains("reschedule/v1"));
    }

    #[test]
    #[should_panic(expected = "one schedule entry per analysis")]
    fn arity_mismatch_panics() {
        let mut sim = CounterSim { step: 0, outputs: 0 };
        let schedule = Schedule::empty(2);
        let mut analyses: Vec<Box<dyn Analysis<usize>>> = vec![];
        run_coupled(
            &mut sim,
            &mut analyses,
            &schedule,
            &CouplerConfig { steps: 1, sim_output_every: 0 },
        );
    }
}
