//! The in-situ runtime coupler: executes a [`Schedule`] against a live
//! simulation (Figure 1's interleaving, for real).
//!
//! The coupler drives `S` steps of a [`Simulator`], and after each step
//! invokes, per the schedule, each analysis's per-step hook (the `it` cost:
//! e.g. copying state into a history buffer), its analyze hook (`ct`) and
//! its output hook (`ot`). All four phases are wall-clock timed per
//! analysis so a run can be compared against the model's predictions and
//! the threshold the schedule was solved for.

use insitu_types::{CouplingTrace, Schedule};
use perfmodel::Stopwatch;

/// A simulation that can be advanced one time step at a time.
pub trait Simulator {
    /// The state handed to analyses (particle store, mesh, ...).
    type State;

    /// Read access to the current state.
    fn state(&self) -> &Self::State;

    /// Advances the simulation by one time step.
    fn advance(&mut self);

    /// Writes the simulation's own output (`O_S` in Figure 1).
    fn write_output(&mut self) {}
}

/// An in-situ analysis attached to a simulation with state `S`.
pub trait Analysis<S> {
    /// Display name (matched against the problem's profile names).
    fn name(&self) -> &str;

    /// One-time setup at simulation start (the `ft`/`fm` cost).
    fn setup(&mut self, _state: &S) {}

    /// Called after *every* simulation step while the analysis is active
    /// (the `it`/`im` cost, e.g. appending to a history buffer).
    fn per_step(&mut self, _state: &S) {}

    /// The analysis computation itself (the `ct`/`cm` cost).
    fn analyze(&mut self, state: &S);

    /// Writes the analysis results (the `ot`/`om` cost) and frees buffers.
    fn output(&mut self, _state: &S) {}
}

/// Coupler configuration.
#[derive(Debug, Clone)]
pub struct CouplerConfig {
    /// Number of simulation steps to run.
    pub steps: usize,
    /// Simulation output cadence (`O_S` every this many steps; 0 = never).
    pub sim_output_every: usize,
}

/// Measured wall-clock cost of one analysis across a coupled run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisTimes {
    /// Analysis name.
    pub name: String,
    /// Setup bracket (seconds).
    pub setup: f64,
    /// Sum of per-step brackets.
    pub per_step: f64,
    /// Sum of analyze brackets.
    pub analyze: f64,
    /// Sum of output brackets.
    pub output: f64,
    /// Number of analyze invocations.
    pub analyze_count: usize,
    /// Number of output invocations.
    pub output_count: usize,
}

impl AnalysisTimes {
    /// Total in-situ overhead attributable to this analysis.
    pub fn total(&self) -> f64 {
        self.setup + self.per_step + self.analyze + self.output
    }
}

/// Result of a coupled run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Pure simulation time (stepping + simulation output).
    pub sim_time: f64,
    /// Per-analysis measured costs, parallel to the analyses slice.
    pub analysis_times: Vec<AnalysisTimes>,
    /// The executed coupling trace.
    pub trace: CouplingTrace,
}

impl RunReport {
    /// Total in-situ analysis overhead across all analyses.
    pub fn total_analysis_time(&self) -> f64 {
        self.analysis_times.iter().map(AnalysisTimes::total).sum()
    }

    /// Analysis overhead as a fraction of simulation time.
    pub fn overhead_fraction(&self) -> f64 {
        if self.sim_time > 0.0 {
            self.total_analysis_time() / self.sim_time
        } else {
            0.0
        }
    }
}

/// Runs `sim` for `cfg.steps` steps with `analyses` coupled in-situ
/// according to `schedule`.
///
/// Analyses whose schedule entry is empty are fully inactive (no setup, no
/// per-step cost) — exactly the `run_i = 0` semantics of the formulation.
pub fn run_coupled<Sim: Simulator>(
    sim: &mut Sim,
    analyses: &mut [Box<dyn Analysis<Sim::State> + '_>],
    schedule: &Schedule,
    cfg: &CouplerConfig,
) -> RunReport {
    assert_eq!(
        analyses.len(),
        schedule.per_analysis.len(),
        "one schedule entry per analysis"
    );
    let mut times: Vec<AnalysisTimes> = analyses
        .iter()
        .map(|a| AnalysisTimes {
            name: a.name().to_string(),
            ..AnalysisTimes::default()
        })
        .collect();
    let active: Vec<bool> = schedule
        .per_analysis
        .iter()
        .map(|s| s.count() > 0)
        .collect();

    // one-time setup (ft)
    for (i, a) in analyses.iter_mut().enumerate() {
        if active[i] {
            let sw = Stopwatch::start();
            a.setup(sim.state());
            times[i].setup = sw.elapsed();
        }
    }

    let mut sim_time = 0.0;
    for j in 1..=cfg.steps {
        let sw = Stopwatch::start();
        sim.advance();
        if cfg.sim_output_every > 0 && j % cfg.sim_output_every == 0 {
            sim.write_output();
        }
        sim_time += sw.elapsed();

        for (i, a) in analyses.iter_mut().enumerate() {
            if !active[i] {
                continue;
            }
            let sched = &schedule.per_analysis[i];
            let sw = Stopwatch::start();
            a.per_step(sim.state());
            times[i].per_step += sw.elapsed();
            if sched.runs_at(j) {
                let sw = Stopwatch::start();
                a.analyze(sim.state());
                times[i].analyze += sw.elapsed();
                times[i].analyze_count += 1;
                if sched.outputs_at(j) {
                    let sw = Stopwatch::start();
                    a.output(sim.state());
                    times[i].output += sw.elapsed();
                    times[i].output_count += 1;
                }
            }
        }
    }

    RunReport {
        sim_time,
        analysis_times: times,
        trace: CouplingTrace::from_schedule(schedule, cfg.steps, cfg.sim_output_every),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::AnalysisSchedule;

    /// Counts its own steps; state is the current step index.
    struct CounterSim {
        step: usize,
        outputs: usize,
    }
    impl Simulator for CounterSim {
        type State = usize;
        fn state(&self) -> &usize {
            &self.step
        }
        fn advance(&mut self) {
            self.step += 1;
        }
        fn write_output(&mut self) {
            self.outputs += 1;
        }
    }

    /// Records which steps it was invoked at.
    #[derive(Default)]
    struct Recorder {
        name: String,
        per_steps: Vec<usize>,
        analyzed: Vec<usize>,
        outputs: Vec<usize>,
    }
    impl Analysis<usize> for Recorder {
        fn name(&self) -> &str {
            &self.name
        }
        fn per_step(&mut self, state: &usize) {
            self.per_steps.push(*state);
        }
        fn analyze(&mut self, state: &usize) {
            self.analyzed.push(*state);
        }
        fn output(&mut self, state: &usize) {
            self.outputs.push(*state);
        }
    }

    #[test]
    fn coupler_follows_schedule() {
        let mut sim = CounterSim { step: 0, outputs: 0 };
        let mut schedule = Schedule::empty(2);
        schedule.per_analysis[0] = AnalysisSchedule::new(vec![4, 8], vec![8]);
        // analysis 1 inactive
        let mut analyses: Vec<Box<dyn Analysis<usize>>> = vec![
            Box::new(Recorder { name: "a".into(), ..Default::default() }),
            Box::new(Recorder { name: "b".into(), ..Default::default() }),
        ];
        let report = run_coupled(
            &mut sim,
            &mut analyses,
            &schedule,
            &CouplerConfig { steps: 10, sim_output_every: 5 },
        );
        assert_eq!(sim.step, 10);
        assert_eq!(sim.outputs, 2);
        assert_eq!(report.analysis_times[0].analyze_count, 2);
        assert_eq!(report.analysis_times[0].output_count, 1);
        assert_eq!(report.analysis_times[1].analyze_count, 0);
        assert_eq!(report.trace.sim_steps(), 10);
        assert!(report.sim_time >= 0.0);
        assert!(report.total_analysis_time() >= 0.0);
    }

    #[test]
    fn inactive_analyses_never_called() {
        let mut sim = CounterSim { step: 0, outputs: 0 };
        let schedule = Schedule::empty(1);
        let mut analyses: Vec<Box<dyn Analysis<usize>>> =
            vec![Box::new(Recorder { name: "idle".into(), ..Default::default() })];
        let report = run_coupled(
            &mut sim,
            &mut analyses,
            &schedule,
            &CouplerConfig { steps: 5, sim_output_every: 0 },
        );
        assert_eq!(report.analysis_times[0].total(), 0.0);
        assert_eq!(report.analysis_times[0].analyze_count, 0);
    }

    #[test]
    fn per_step_called_every_step_for_active() {
        let mut sim = CounterSim { step: 0, outputs: 0 };
        let mut schedule = Schedule::empty(1);
        schedule.per_analysis[0] = AnalysisSchedule::new(vec![3], vec![]);
        let mut rec = Recorder { name: "a".into(), ..Default::default() };
        {
            let mut analyses: Vec<Box<dyn Analysis<usize>>> = vec![Box::new(&mut rec)];
            run_coupled(
                &mut sim,
                &mut analyses,
                &schedule,
                &CouplerConfig { steps: 6, sim_output_every: 0 },
            );
        }
        assert_eq!(rec.per_steps, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(rec.analyzed, vec![3]);
        assert!(rec.outputs.is_empty());
    }

    impl<S, T: Analysis<S>> Analysis<S> for &mut T {
        fn name(&self) -> &str {
            T::name(self)
        }
        fn setup(&mut self, state: &S) {
            T::setup(self, state)
        }
        fn per_step(&mut self, state: &S) {
            T::per_step(self, state)
        }
        fn analyze(&mut self, state: &S) {
            T::analyze(self, state)
        }
        fn output(&mut self, state: &S) {
            T::output(self, state)
        }
    }

    #[test]
    #[should_panic(expected = "one schedule entry per analysis")]
    fn arity_mismatch_panics() {
        let mut sim = CounterSim { step: 0, outputs: 0 };
        let schedule = Schedule::empty(2);
        let mut analyses: Vec<Box<dyn Analysis<usize>>> = vec![];
        run_coupled(
            &mut sim,
            &mut analyses,
            &schedule,
            &CouplerConfig { steps: 1, sim_output_every: 0 },
        );
    }
}
