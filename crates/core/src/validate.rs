//! Independent schedule certification.
//!
//! Re-checks a concrete [`Schedule`] against the paper's constraints by
//! literally running the recursions of Eqs. 2–8 step by step — no shared
//! code with the MILP formulations, so a bug in either is caught by the
//! other. Every schedule the advisor returns has passed this check.

use insitu_types::{Schedule, ScheduleProblem, Seconds};

/// Outcome of certifying one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Total in-situ analysis time (LHS of Eq. 4).
    pub total_time: Seconds,
    /// The budget (RHS of Eq. 4, `cth * Steps`).
    pub time_budget: Seconds,
    /// Peak over steps of `Σ_i mStart_{i,j}` (LHS of Eq. 8).
    pub peak_memory: f64,
    /// Objective value (Eq. 1).
    pub objective: f64,
    /// Human-readable violations; empty = certified feasible.
    pub violations: Vec<String>,
}

impl ValidationReport {
    /// True when no constraint is violated.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fraction of the time budget actually used (the paper's "% within
    /// threshold" column).
    pub fn budget_utilization(&self) -> f64 {
        if self.time_budget > 0.0 {
            self.total_time / self.time_budget
        } else {
            0.0
        }
    }
}

/// Certifies `schedule` against `problem` (Eqs. 2–9 plus structure).
pub fn validate_schedule(problem: &ScheduleProblem, schedule: &Schedule) -> ValidationReport {
    let steps = problem.resources.steps;
    let mut violations = Vec::new();

    if schedule.per_analysis.len() != problem.len() {
        violations.push(format!(
            "schedule covers {} analyses, problem has {}",
            schedule.per_analysis.len(),
            problem.len()
        ));
        return ValidationReport {
            total_time: 0.0,
            time_budget: problem.resources.total_threshold(),
            peak_memory: 0.0,
            objective: 0.0,
            violations,
        };
    }
    if let Err(e) = schedule.validate_structure(problem) {
        violations.push(e.to_string());
    }

    // --- interval constraint (Eq. 9 / §3.2 "running total") ---
    for (i, s) in schedule.per_analysis.iter().enumerate() {
        let a = &problem.analyses[i];
        let itv = a.min_interval.max(1);
        let mut last = 0usize; // running total counts from simulation start
        for &j in &s.analysis_steps {
            if j - last < itv {
                violations.push(format!(
                    "analysis `{}`: steps {last} -> {j} violate interval {itv}",
                    a.name
                ));
            }
            last = j;
        }
        if s.count() > a.max_analysis_steps(steps) {
            violations.push(format!(
                "analysis `{}`: {} analysis steps exceed Steps/itv = {}",
                a.name,
                s.count(),
                a.max_analysis_steps(steps)
            ));
        }
    }

    // --- time recursion (Eqs. 2–4) ---
    let mut total_time = 0.0;
    for (i, s) in schedule.per_analysis.iter().enumerate() {
        let a = &problem.analyses[i];
        if s.count() == 0 {
            continue;
        }
        let mut t = a.fixed_time; // Eq. 3
        for j in 1..=steps {
            t += a.step_time;
            if s.runs_at(j) {
                t += a.compute_time;
            }
            if s.outputs_at(j) {
                t += a.output_time;
            }
        }
        total_time += t;
    }
    let time_budget = problem.resources.total_threshold();
    if total_time > time_budget * (1.0 + 1e-9) + 1e-9 {
        violations.push(format!(
            "total analysis time {total_time:.6} exceeds budget {time_budget:.6}"
        ));
    }

    // --- memory recursion (Eqs. 5–8) ---
    let mut mem_end: Vec<f64> = schedule
        .per_analysis
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if s.count() > 0 {
                problem.analyses[i].fixed_mem
            } else {
                0.0
            }
        })
        .collect();
    let mut peak_memory = mem_end.iter().sum::<f64>();
    for j in 1..=steps {
        let mut step_total = 0.0;
        for (i, s) in schedule.per_analysis.iter().enumerate() {
            let a = &problem.analyses[i];
            if s.count() == 0 {
                continue;
            }
            let mut m_start = mem_end[i] + a.step_mem;
            if s.runs_at(j) {
                m_start += a.compute_mem;
            }
            if s.outputs_at(j) {
                m_start += a.output_mem;
            }
            mem_end[i] = if s.outputs_at(j) { a.fixed_mem } else { m_start };
            step_total += m_start;
        }
        if step_total > problem.resources.mem_threshold * (1.0 + 1e-9) + 1e-9 {
            violations.push(format!(
                "step {j}: memory {step_total:.3e} exceeds mth {:.3e}",
                problem.resources.mem_threshold
            ));
        }
        peak_memory = peak_memory.max(step_total);
    }

    ValidationReport {
        total_time,
        time_budget,
        peak_memory,
        objective: schedule.objective(problem),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::{AnalysisProfile, AnalysisSchedule, ResourceConfig};

    fn problem() -> ScheduleProblem {
        ScheduleProblem::new(
            vec![AnalysisProfile::new("a")
                .with_fixed(1.0, 100.0)
                .with_per_step(0.01, 1.0)
                .with_compute(2.0, 10.0)
                .with_output(0.5, 5.0, 1)
                .with_interval(10)],
            ResourceConfig::from_total_threshold(100, 20.0, 1000.0, 1e9),
        )
        .unwrap()
    }

    #[test]
    fn feasible_schedule_certifies() {
        let p = problem();
        let mut s = Schedule::empty(1);
        s.per_analysis[0] = AnalysisSchedule::new(vec![20, 40, 60, 80, 100], vec![100]);
        let r = validate_schedule(&p, &s);
        assert!(r.is_feasible(), "{:?}", r.violations);
        // time: ft 1 + 100*0.01 + 5*2 + 1*0.5 = 12.5
        assert!((r.total_time - 12.5).abs() < 1e-9);
        assert!(r.budget_utilization() > 0.6 && r.budget_utilization() < 0.63);
        assert_eq!(r.objective, 6.0); // 1 + 5
    }

    #[test]
    fn detects_time_violation() {
        let p = problem();
        let mut s = Schedule::empty(1);
        // ft 1 + it 1 + 9 analyses * 2 s + 1 output * 0.5 = 20.5 > 20 budget
        s.per_analysis[0] = AnalysisSchedule::new(
            vec![10, 20, 30, 40, 50, 60, 70, 80, 90],
            vec![90],
        );
        let r = validate_schedule(&p, &s);
        assert!(!r.is_feasible());
        assert!(r.violations.iter().any(|v| v.contains("exceeds budget")));
    }

    #[test]
    fn detects_interval_violation() {
        let p = problem();
        let mut s = Schedule::empty(1);
        s.per_analysis[0] = AnalysisSchedule::new(vec![10, 15], vec![]);
        let r = validate_schedule(&p, &s);
        assert!(r
            .violations
            .iter()
            .any(|v| v.contains("violate interval")));
    }

    #[test]
    fn detects_early_first_analysis() {
        let p = problem();
        let mut s = Schedule::empty(1);
        s.per_analysis[0] = AnalysisSchedule::new(vec![5], vec![]);
        let r = validate_schedule(&p, &s);
        assert!(!r.is_feasible(), "first analysis before itv must fail");
    }

    #[test]
    fn detects_memory_violation() {
        // accumulate 1/step with no outputs: by step 100 memory > 1000? no
        // (100*1 + 100 fm + 10 cm = 210). Shrink mth to trigger.
        let mut p = problem();
        p.resources.mem_threshold = 150.0;
        let mut s = Schedule::empty(1);
        s.per_analysis[0] = AnalysisSchedule::new(vec![50, 100], vec![]);
        let r = validate_schedule(&p, &s);
        assert!(r.violations.iter().any(|v| v.contains("memory")));
    }

    #[test]
    fn outputs_reset_memory() {
        let mut p = problem();
        p.resources.mem_threshold = 170.0;
        let mut s = Schedule::empty(1);
        // outputs at every analysis keep peak low: fm100 + im*50 + cm10 + om5 = 165
        s.per_analysis[0] = AnalysisSchedule::new(vec![50, 100], vec![50, 100]);
        let r = validate_schedule(&p, &s);
        assert!(r.is_feasible(), "{:?}", r.violations);
        assert!((r.peak_memory - 165.0).abs() < 1e-9);
    }

    #[test]
    fn empty_schedule_is_feasible_and_free() {
        let p = problem();
        let s = Schedule::empty(1);
        let r = validate_schedule(&p, &s);
        assert!(r.is_feasible());
        assert_eq!(r.total_time, 0.0);
        assert_eq!(r.peak_memory, 0.0);
    }

    #[test]
    fn wrong_arity_reported() {
        let p = problem();
        let s = Schedule::empty(3);
        let r = validate_schedule(&p, &s);
        assert!(!r.is_feasible());
    }
}
