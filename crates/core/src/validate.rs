//! Independent schedule certification.
//!
//! Re-checks a concrete [`Schedule`] against the paper's constraints by
//! delegating to the `certify` crate, which replays the recursions of
//! Eqs. 2–9 step by step in **exact rational arithmetic** — no shared
//! code with the MILP formulations, so a bug in either is caught by the
//! other. Every schedule the advisor returns has passed this check.
//!
//! One deliberate difference from raw [`certify::replay()`]: schedules come
//! out of a floating-point MILP solve, so this wrapper forgives time and
//! memory excess below a solver-sized tolerance (`1e-9` relative). The
//! exact excess is known (the certifier computes it in rationals); the
//! tolerance is applied to that exact value, never to a float recursion.

use certify::ViolationKind;
use insitu_types::{Schedule, ScheduleProblem, Seconds};

/// Outcome of certifying one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Total in-situ analysis time (LHS of Eq. 4).
    pub total_time: Seconds,
    /// The budget (RHS of Eq. 4, `cth * Steps`).
    pub time_budget: Seconds,
    /// Peak over steps of `Σ_i mStart_{i,j}` (LHS of Eq. 8).
    pub peak_memory: f64,
    /// Objective value (Eq. 1).
    pub objective: f64,
    /// Human-readable violations; empty = certified feasible.
    pub violations: Vec<String>,
}

impl ValidationReport {
    /// True when no constraint is violated.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fraction of the time budget actually used (the paper's "% within
    /// threshold" column).
    pub fn budget_utilization(&self) -> f64 {
        if self.time_budget > 0.0 {
            self.total_time / self.time_budget
        } else {
            0.0
        }
    }
}

/// Certifies `schedule` against `problem` (Eqs. 2–9 plus structure) via
/// the exact replay in the `certify` crate.
///
/// Structural and interval violations are always fatal; time and memory
/// excess is forgiven below a `1e-9` relative tolerance because the
/// schedule was produced by a floating-point solver. The reported
/// `total_time` / `peak_memory` are the exactly-replayed values rounded
/// to the nearest `f64`.
pub fn validate_schedule(problem: &ScheduleProblem, schedule: &Schedule) -> ValidationReport {
    let time_budget = problem.resources.total_threshold();
    let replayed = match certify::replay(problem, schedule) {
        Ok(r) => r,
        Err(e) => {
            return ValidationReport {
                total_time: 0.0,
                time_budget,
                peak_memory: 0.0,
                objective: 0.0,
                violations: vec![format!("exact replay impossible: {e}")],
            }
        }
    };
    let time_tol = 1e-9 * (1.0 + time_budget.abs());
    let mem_tol = 1e-9 * (1.0 + problem.resources.mem_threshold.abs());
    let violations = replayed
        .violations
        .iter()
        .filter(|v| match v.kind {
            ViolationKind::Time => v.excess > time_tol,
            ViolationKind::Memory => v.excess > mem_tol,
            ViolationKind::Structure | ViolationKind::Interval => true,
        })
        .map(|v| v.message.clone())
        .collect();
    ValidationReport {
        total_time: replayed.total_time.to_f64(),
        time_budget,
        peak_memory: replayed.peak_memory.to_f64(),
        objective: replayed.objective.to_f64(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::{AnalysisProfile, AnalysisSchedule, ResourceConfig};

    fn problem() -> ScheduleProblem {
        ScheduleProblem::new(
            vec![AnalysisProfile::new("a")
                .with_fixed(1.0, 100.0)
                .with_per_step(0.01, 1.0)
                .with_compute(2.0, 10.0)
                .with_output(0.5, 5.0, 1)
                .with_interval(10)],
            ResourceConfig::from_total_threshold(100, 20.0, 1000.0, 1e9),
        )
        .unwrap()
    }

    #[test]
    fn feasible_schedule_certifies() {
        let p = problem();
        let mut s = Schedule::empty(1);
        s.per_analysis[0] = AnalysisSchedule::new(vec![20, 40, 60, 80, 100], vec![100]);
        let r = validate_schedule(&p, &s);
        assert!(r.is_feasible(), "{:?}", r.violations);
        // time: ft 1 + 100*0.01 + 5*2 + 1*0.5 = 12.5
        assert!((r.total_time - 12.5).abs() < 1e-9);
        assert!(r.budget_utilization() > 0.6 && r.budget_utilization() < 0.63);
        assert_eq!(r.objective, 6.0); // 1 + 5
    }

    #[test]
    fn detects_time_violation() {
        let p = problem();
        let mut s = Schedule::empty(1);
        // ft 1 + it 1 + 9 analyses * 2 s + 1 output * 0.5 = 20.5 > 20 budget
        s.per_analysis[0] = AnalysisSchedule::new(
            vec![10, 20, 30, 40, 50, 60, 70, 80, 90],
            vec![90],
        );
        let r = validate_schedule(&p, &s);
        assert!(!r.is_feasible());
        assert!(r.violations.iter().any(|v| v.contains("exceeds budget")));
    }

    #[test]
    fn detects_interval_violation() {
        let p = problem();
        let mut s = Schedule::empty(1);
        s.per_analysis[0] = AnalysisSchedule::new(vec![10, 15], vec![]);
        let r = validate_schedule(&p, &s);
        assert!(r
            .violations
            .iter()
            .any(|v| v.contains("violate interval")));
    }

    #[test]
    fn detects_early_first_analysis() {
        let p = problem();
        let mut s = Schedule::empty(1);
        s.per_analysis[0] = AnalysisSchedule::new(vec![5], vec![]);
        let r = validate_schedule(&p, &s);
        assert!(!r.is_feasible(), "first analysis before itv must fail");
    }

    #[test]
    fn detects_memory_violation() {
        // accumulate 1/step with no outputs: by step 100 memory > 1000? no
        // (100*1 + 100 fm + 10 cm = 210). Shrink mth to trigger.
        let mut p = problem();
        p.resources.mem_threshold = 150.0;
        let mut s = Schedule::empty(1);
        s.per_analysis[0] = AnalysisSchedule::new(vec![50, 100], vec![]);
        let r = validate_schedule(&p, &s);
        assert!(r.violations.iter().any(|v| v.contains("memory")));
    }

    #[test]
    fn outputs_reset_memory() {
        let mut p = problem();
        p.resources.mem_threshold = 170.0;
        let mut s = Schedule::empty(1);
        // outputs at every analysis keep peak low: fm100 + im*50 + cm10 + om5 = 165
        s.per_analysis[0] = AnalysisSchedule::new(vec![50, 100], vec![50, 100]);
        let r = validate_schedule(&p, &s);
        assert!(r.is_feasible(), "{:?}", r.violations);
        assert!((r.peak_memory - 165.0).abs() < 1e-9);
    }

    /// Regression for the Eqs. 5–8 reset semantics: an output step in the
    /// *middle* of the run must free the accumulated per-step memory so
    /// that a later accumulation phase fits under the threshold. A buggy
    /// validator that never resets (or resets to zero instead of `fm`)
    /// fails both halves of this test.
    #[test]
    fn mid_run_output_frees_memory_for_later_accumulation() {
        let mut p = problem();
        // footprint just before step 60's output: fm 100 + 60*im + 2*cm 10
        // + om 5 = 185; after the reset the second half peaks at
        // fm 100 + 40*im + cm 10 = 150. Without the mid-run reset step 100
        // would hold fm 100 + 100*im + 3*cm = 230.
        p.resources.mem_threshold = 190.0;
        let mut s = Schedule::empty(1);
        s.per_analysis[0] = AnalysisSchedule::new(vec![30, 60, 100], vec![60]);
        let r = validate_schedule(&p, &s);
        assert!(r.is_feasible(), "{:?}", r.violations);
        assert!((r.peak_memory - 185.0).abs() < 1e-9, "peak {}", r.peak_memory);

        // same schedule *without* the mid-run output must blow the budget
        let mut s2 = Schedule::empty(1);
        s2.per_analysis[0] = AnalysisSchedule::new(vec![30, 60, 100], vec![]);
        let r2 = validate_schedule(&p, &s2);
        assert!(!r2.is_feasible(), "reset-at-output was not load-bearing");
        assert!(r2.violations.iter().any(|v| v.contains("memory")));
        // and the reset target is fm, not zero: with outputs at 30 and 60
        // the peaks are 145 / 145 / 150 (the tail fm 100 + 40*im + cm 10);
        // a reset-to-zero bug would see only 50 at step 100 and wrongly
        // accept a threshold of 149
        p.resources.mem_threshold = 149.0;
        let mut s3 = Schedule::empty(1);
        s3.per_analysis[0] = AnalysisSchedule::new(vec![30, 60, 100], vec![30, 60]);
        let r3 = validate_schedule(&p, &s3);
        assert!(!r3.is_feasible(), "reset must restore fm, not zero");
        assert!((r3.peak_memory - 150.0).abs() < 1e-9, "peak {}", r3.peak_memory);
    }

    #[test]
    fn empty_schedule_is_feasible_and_free() {
        let p = problem();
        let s = Schedule::empty(1);
        let r = validate_schedule(&p, &s);
        assert!(r.is_feasible());
        assert_eq!(r.total_time, 0.0);
        assert_eq!(r.peak_memory, 0.0);
    }

    #[test]
    fn wrong_arity_reported() {
        let p = problem();
        let s = Schedule::empty(3);
        let r = validate_schedule(&p, &s);
        assert!(!r.is_feasible());
    }
}
