//! Property tests: the placement engine's output always satisfies the
//! constraints the aggregate model assumed.

use insitu_core::placement::{analysis_positions, exact_peak_memory, output_positions, place_schedule};
use insitu_core::validate_schedule;
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem};
use proptest::prelude::*;

proptest! {
    #[test]
    fn positions_respect_interval_and_range(steps in 4usize..500, itv in 1usize..50) {
        let kmax = steps / itv;
        for k in 1..=kmax.max(1).min(steps) {
            let pos = analysis_positions(steps, k);
            prop_assert_eq!(pos.len(), k);
            prop_assert!(*pos.last().unwrap() == steps);
            let mut last = 0usize;
            for &j in &pos {
                prop_assert!(j >= 1 && j <= steps);
                if k <= kmax && k > 0 {
                    prop_assert!(j - last >= steps / k, "gap {} < {}", j - last, steps / k);
                }
                last = j;
            }
        }
    }

    #[test]
    fn outputs_subset_and_include_last(steps in 10usize..300, k in 1usize..20, q in 0usize..25) {
        prop_assume!(k <= steps);
        let pos = analysis_positions(steps, k);
        let out = output_positions(&pos, q);
        prop_assert!(out.len() <= q.min(k));
        for &o in &out {
            prop_assert!(pos.contains(&o));
        }
        if q > 0 {
            prop_assert_eq!(*out.last().unwrap(), steps, "last analysis must flush");
        }
    }

    #[test]
    fn placed_schedules_always_certify(
        steps in 20usize..200,
        itv in 1usize..20,
        ct in 0u32..5,
        im in 0u32..4,
        q_frac in 0.0f64..1.0,
    ) {
        let profile = AnalysisProfile::new("a")
            .with_per_step(0.0, im as f64)
            .with_compute(ct as f64, 1.0)
            .with_output(0.1, 1.0, 1)
            .with_interval(itv);
        let kmax = profile.max_analysis_steps(steps);
        prop_assume!(kmax > 0);
        let k = kmax;
        let q = ((k as f64 * q_frac) as usize).clamp(1, k);
        // choose mth exactly at the placement's computed peak: the
        // validator must agree the placement fits
        let problem = ScheduleProblem::new(
            vec![profile],
            ResourceConfig::from_total_threshold(steps, 1e9, 0.0, 1e9),
        ).unwrap();
        let peak = exact_peak_memory(&problem, 0, k, q);
        let mut problem = problem;
        problem.resources.mem_threshold = peak;
        let sched = place_schedule(&problem, &[k], &[q]);
        let report = validate_schedule(&problem, &sched);
        prop_assert!(report.is_feasible(), "violations: {:?}", report.violations);
        prop_assert!((report.peak_memory - peak).abs() < 1e-9,
            "validator peak {} vs placement peak {}", report.peak_memory, peak);
    }
}
