//! Canonical instance form: order-independent normalization of a
//! [`ScheduleProblem`].
//!
//! Two users submitting the same analyses in a different order describe
//! the *same* optimization instance — Eq. 1's objective and Eqs. 2–9's
//! constraints are sums over the analysis set, so nothing about the
//! problem depends on list position. The serving tier exploits this:
//! every instance is rewritten into its canonical form (analyses sorted
//! by name — names are unique per [`ScheduleProblem::validate`], so the
//! order is total and deterministic) before fingerprinting, caching, or
//! solving, and results are permuted back into the requester's order on
//! the way out.
//!
//! The permutation returned by [`canonicalize`] is the bridge: `perm[c]`
//! is the requester-order index of the `c`-th canonical analysis, and
//! [`to_canonical`]/[`from_canonical`] move any per-analysis vector
//! (schedules, counts) across it.

use crate::problem::ScheduleProblem;
use crate::schedule::Schedule;

/// The permutation that sorts `problem.analyses` by name: `perm[c]` is
/// the original index of the `c`-th analysis in canonical order. The
/// sort is stable, so duplicate names (rejected by validation, but
/// representable) still produce a deterministic order.
pub fn canonical_order(problem: &ScheduleProblem) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..problem.len()).collect();
    perm.sort_by(|&a, &b| problem.analyses[a].name.cmp(&problem.analyses[b].name));
    perm
}

/// True when the analyses are already in canonical (name-sorted) order.
pub fn is_canonical(problem: &ScheduleProblem) -> bool {
    problem.analyses.windows(2).all(|w| w[0].name <= w[1].name)
}

/// Rewrites the problem into canonical form and returns it together with
/// the permutation mapping canonical indices back to the original order
/// (see [`canonical_order`]).
///
/// # Examples
///
/// ```
/// use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem};
/// use insitu_types::canonical::{canonicalize, from_canonical};
/// let p = ScheduleProblem::new(
///     vec![AnalysisProfile::new("msd"), AnalysisProfile::new("rdf")],
///     ResourceConfig::default(),
/// ).unwrap();
/// let q = ScheduleProblem::new(
///     vec![AnalysisProfile::new("rdf"), AnalysisProfile::new("msd")],
///     ResourceConfig::default(),
/// ).unwrap();
/// let (cp, perm_p) = canonicalize(&p);
/// let (cq, perm_q) = canonicalize(&q);
/// assert_eq!(cp, cq);                       // same instance, one canonical form
/// assert_eq!(from_canonical(&[10, 20], &perm_p), vec![10, 20]);
/// assert_eq!(from_canonical(&[10, 20], &perm_q), vec![20, 10]);
/// ```
pub fn canonicalize(problem: &ScheduleProblem) -> (ScheduleProblem, Vec<usize>) {
    let perm = canonical_order(problem);
    let analyses = perm.iter().map(|&i| problem.analyses[i].clone()).collect();
    (
        ScheduleProblem {
            analyses,
            resources: problem.resources.clone(),
        },
        perm,
    )
}

/// Permutes a per-analysis vector from the original order into canonical
/// order: `out[c] = items[perm[c]]`.
pub fn to_canonical<T: Clone>(items: &[T], perm: &[usize]) -> Vec<T> {
    perm.iter().map(|&i| items[i].clone()).collect()
}

/// Permutes a per-analysis vector from canonical order back into the
/// original order: `out[perm[c]] = items[c]`. Inverse of [`to_canonical`].
pub fn from_canonical<T: Clone + Default>(items: &[T], perm: &[usize]) -> Vec<T> {
    let mut out = vec![T::default(); items.len()];
    for (c, &i) in perm.iter().enumerate() {
        out[i] = items[c].clone();
    }
    out
}

/// [`to_canonical`] for a full [`Schedule`].
pub fn to_canonical_schedule(schedule: &Schedule, perm: &[usize]) -> Schedule {
    Schedule {
        per_analysis: to_canonical(&schedule.per_analysis, perm),
    }
}

/// [`from_canonical`] for a full [`Schedule`].
pub fn from_canonical_schedule(schedule: &Schedule, perm: &[usize]) -> Schedule {
    Schedule {
        per_analysis: from_canonical(&schedule.per_analysis, perm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AnalysisProfile;
    use crate::resources::ResourceConfig;
    use crate::schedule::AnalysisSchedule;

    fn problem(names: &[&str]) -> ScheduleProblem {
        ScheduleProblem::new(
            names.iter().map(|n| AnalysisProfile::new(*n)).collect(),
            ResourceConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn canonical_form_is_name_sorted_and_order_independent() {
        let p = problem(&["c", "a", "b"]);
        let (cp, perm) = canonicalize(&p);
        assert!(is_canonical(&cp));
        assert!(!is_canonical(&p));
        assert_eq!(perm, vec![1, 2, 0]);
        let q = problem(&["a", "b", "c"]);
        let (cq, perm_q) = canonicalize(&q);
        assert_eq!(cp, cq);
        assert_eq!(perm_q, vec![0, 1, 2]);
    }

    #[test]
    fn permutation_round_trips_vectors_and_schedules() {
        let p = problem(&["c", "a", "b"]);
        let perm = canonical_order(&p);
        let counts = vec![3usize, 1, 2];
        let canon = to_canonical(&counts, &perm);
        assert_eq!(canon, vec![1, 2, 3]); // a's, b's, c's count
        assert_eq!(from_canonical(&canon, &perm), counts);

        let mut sched = Schedule::empty(3);
        sched.per_analysis[0] = AnalysisSchedule::new(vec![10], vec![10]);
        sched.per_analysis[2] = AnalysisSchedule::new(vec![5, 9], vec![]);
        let canon = to_canonical_schedule(&sched, &perm);
        assert_eq!(canon.per_analysis[2], sched.per_analysis[0]); // "c" is last
        assert_eq!(from_canonical_schedule(&canon, &perm), sched);
    }

    #[test]
    fn empty_problem_is_canonical() {
        let p = problem(&[]);
        assert!(is_canonical(&p));
        let (cp, perm) = canonicalize(&p);
        assert!(cp.is_empty() && perm.is_empty());
    }
}
