//! Machine-checkable solve certificates.
//!
//! A [`SearchCertificate`] is the audit trail a branch-and-bound solver
//! leaves behind so that an *independent* checker (the `certify` crate,
//! which shares no code with the solver) can re-derive why a claimed
//! optimum is in fact optimal: every node of the search tree is listed with
//! its LP relaxation bound and the reason it was fathomed. The checker
//! walks the tree and verifies that
//!
//! 1. the records form one rooted binary tree whose leaves are all
//!    fathomed (integral, bound-pruned, or infeasible),
//! 2. bounds are monotone along every root-to-leaf path (a child can never
//!    claim a better LP bound than its parent),
//! 3. every bound-pruned leaf's bound is dominated by the claimed optimum
//!    plus the solver's absolute gap, and
//! 4. every integral leaf's objective is itself dominated by the claimed
//!    optimum.
//!
//! Together with an independent feasibility replay of the claimed solution,
//! that is exactly the classical "checker vs. solver" split: the solver's
//! arithmetic is never trusted for *feasibility* (replayed exactly) and its
//! search is never trusted for *optimality* (the pruning log must close the
//! tree). LP relaxation bounds and infeasibility claims remain attested by
//! the solver — the same trust model as LP-dual-bound certificates in
//! classical practice; see `docs/CERTIFY.md`.
//!
//! The types live here (not in `milp`) so that the producer (`milp`) and
//! the consumer (`certify`) can share them without depending on each other.

use crate::error::TypeError;
use crate::json::{FromJson, ToJson, Value};
use std::collections::BTreeMap;

/// Why a search node was fathomed (or expanded).
#[derive(Debug, Clone, PartialEq)]
pub enum NodeOutcome {
    /// The node's LP relaxation was fractional and two children were
    /// created by splitting an integer variable's domain.
    Branched,
    /// The node's LP relaxation was integral: a candidate incumbent with
    /// the recorded objective value.
    Integral {
        /// Objective of the integral point, in the model's own sense.
        objective: f64,
    },
    /// The node was discarded because its LP bound could not beat the
    /// incumbent (within the solver's absolute gap).
    PrunedBound,
    /// The node's LP relaxation (or variable-bound intersection) was
    /// infeasible.
    PrunedInfeasible,
}

/// One node of the branch-and-bound tree.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCert {
    /// Unique node id (the solver's creation sequence number).
    pub id: u64,
    /// Parent node id; `None` for the root.
    pub parent: Option<u64>,
    /// The best bound known for the subtree rooted at this node: its own
    /// LP relaxation objective when one was solved, else the parent's.
    pub lp_bound: f64,
    /// How the node was fathomed (or that it was branched on).
    pub outcome: NodeOutcome,
}

/// The complete optimality certificate of one branch-and-bound solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCertificate {
    /// Claimed optimal objective value.
    pub objective: f64,
    /// A solver-attested dual (LP relaxation) bound on the optimum: an
    /// upper bound for maximization, a lower bound for minimization. The
    /// root LP relaxation objective.
    pub dual_bound: f64,
    /// Absolute optimality gap the solve was allowed (`0` = exact).
    pub abs_gap: f64,
    /// `true` when the model sense is maximization.
    pub maximize: bool,
    /// `true` when the search terminated by exhausting the tree (vs. a
    /// node limit or error). Only an exhausted tree can prove optimality.
    pub proven_optimal: bool,
    /// Every node the search created, in no particular order.
    pub nodes: Vec<NodeCert>,
}

impl SearchCertificate {
    /// The root node record, if present.
    pub fn root(&self) -> Option<&NodeCert> {
        self.nodes.iter().find(|n| n.parent.is_none())
    }

    /// Number of leaf records (everything that is not `Branched`).
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.outcome != NodeOutcome::Branched)
            .count()
    }
}

impl ToJson for NodeCert {
    fn to_json(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("id".into(), Value::Number(self.id as f64));
        m.insert(
            "parent".into(),
            match self.parent {
                Some(p) => Value::Number(p as f64),
                None => Value::Null,
            },
        );
        m.insert("lp_bound".into(), Value::Number(self.lp_bound));
        let (kind, obj) = match &self.outcome {
            NodeOutcome::Branched => ("branched", None),
            NodeOutcome::Integral { objective } => ("integral", Some(*objective)),
            NodeOutcome::PrunedBound => ("pruned_bound", None),
            NodeOutcome::PrunedInfeasible => ("pruned_infeasible", None),
        };
        m.insert("outcome".into(), Value::String(kind.into()));
        if let Some(o) = obj {
            m.insert("objective".into(), Value::Number(o));
        }
        Value::Object(m)
    }
}

impl FromJson for NodeCert {
    fn from_json(v: &Value) -> Result<Self, TypeError> {
        const TY: &str = "NodeCert";
        let m = match v {
            Value::Object(m) => m,
            _ => return Err(TypeError::Parse(format!("{TY}: expected object"))),
        };
        let get = |name: &str| -> Result<&Value, TypeError> {
            m.get(name)
                .ok_or_else(|| TypeError::Parse(format!("{TY}: missing field '{name}'")))
        };
        let id = match get("id")? {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => *n as u64,
            _ => return Err(TypeError::Parse(format!("{TY}: bad id"))),
        };
        let parent = match get("parent")? {
            Value::Null => None,
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => return Err(TypeError::Parse(format!("{TY}: bad parent"))),
        };
        let lp_bound = match get("lp_bound")? {
            Value::Number(n) => *n,
            _ => return Err(TypeError::Parse(format!("{TY}: bad lp_bound"))),
        };
        let outcome = match get("outcome")? {
            Value::String(s) => match s.as_str() {
                "branched" => NodeOutcome::Branched,
                "integral" => {
                    let objective = match m.get("objective") {
                        Some(Value::Number(n)) => *n,
                        _ => {
                            return Err(TypeError::Parse(format!(
                                "{TY}: integral node missing objective"
                            )))
                        }
                    };
                    NodeOutcome::Integral { objective }
                }
                "pruned_bound" => NodeOutcome::PrunedBound,
                "pruned_infeasible" => NodeOutcome::PrunedInfeasible,
                other => {
                    return Err(TypeError::Parse(format!("{TY}: unknown outcome '{other}'")))
                }
            },
            _ => return Err(TypeError::Parse(format!("{TY}: bad outcome"))),
        };
        Ok(NodeCert {
            id,
            parent,
            lp_bound,
            outcome,
        })
    }
}

impl ToJson for SearchCertificate {
    fn to_json(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("objective".into(), Value::Number(self.objective));
        m.insert("dual_bound".into(), Value::Number(self.dual_bound));
        m.insert("abs_gap".into(), Value::Number(self.abs_gap));
        m.insert("maximize".into(), Value::Bool(self.maximize));
        m.insert("proven_optimal".into(), Value::Bool(self.proven_optimal));
        m.insert(
            "nodes".into(),
            Value::Array(self.nodes.iter().map(ToJson::to_json).collect()),
        );
        Value::Object(m)
    }
}

impl FromJson for SearchCertificate {
    fn from_json(v: &Value) -> Result<Self, TypeError> {
        const TY: &str = "SearchCertificate";
        let m = match v {
            Value::Object(m) => m,
            _ => return Err(TypeError::Parse(format!("{TY}: expected object"))),
        };
        let get = |name: &str| -> Result<&Value, TypeError> {
            m.get(name)
                .ok_or_else(|| TypeError::Parse(format!("{TY}: missing field '{name}'")))
        };
        let f = |name: &str| -> Result<f64, TypeError> {
            match get(name)? {
                Value::Number(n) => Ok(*n),
                _ => Err(TypeError::Parse(format!("{TY}: bad {name}"))),
            }
        };
        let b = |name: &str| -> Result<bool, TypeError> {
            match get(name)? {
                Value::Bool(x) => Ok(*x),
                _ => Err(TypeError::Parse(format!("{TY}: bad {name}"))),
            }
        };
        let nodes = match get("nodes")? {
            Value::Array(items) => items
                .iter()
                .map(NodeCert::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(TypeError::Parse(format!("{TY}: bad nodes"))),
        };
        Ok(SearchCertificate {
            objective: f("objective")?,
            dual_bound: f("dual_bound")?,
            abs_gap: f("abs_gap")?,
            maximize: b("maximize")?,
            proven_optimal: b("proven_optimal")?,
            nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> SearchCertificate {
        SearchCertificate {
            objective: 7.0,
            dual_bound: 7.5,
            abs_gap: 0.0,
            maximize: true,
            proven_optimal: true,
            nodes: vec![
                NodeCert {
                    id: 0,
                    parent: None,
                    lp_bound: 7.5,
                    outcome: NodeOutcome::Branched,
                },
                NodeCert {
                    id: 1,
                    parent: Some(0),
                    lp_bound: 7.0,
                    outcome: NodeOutcome::Integral { objective: 7.0 },
                },
                NodeCert {
                    id: 2,
                    parent: Some(0),
                    lp_bound: 6.2,
                    outcome: NodeOutcome::PrunedBound,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let c = sample();
        let text = json::to_string(&c);
        let back: SearchCertificate = json::from_str(&text).unwrap();
        assert_eq!(back, c);
        // pretty form too
        let back2: SearchCertificate = json::from_str(&json::to_string_pretty(&c)).unwrap();
        assert_eq!(back2, c);
    }

    #[test]
    fn accessors() {
        let c = sample();
        assert_eq!(c.root().unwrap().id, 0);
        assert_eq!(c.leaf_count(), 2);
    }

    #[test]
    fn malformed_json_rejected() {
        for text in [
            "{}",
            r#"{"objective":1,"dual_bound":1,"abs_gap":0,"maximize":true,"proven_optimal":true,"nodes":[{"id":-1,"parent":null,"lp_bound":1,"outcome":"branched"}]}"#,
            r#"{"objective":1,"dual_bound":1,"abs_gap":0,"maximize":true,"proven_optimal":true,"nodes":[{"id":0,"parent":null,"lp_bound":1,"outcome":"integral"}]}"#,
            r#"{"objective":1,"dual_bound":1,"abs_gap":0,"maximize":true,"proven_optimal":true,"nodes":[{"id":0,"parent":null,"lp_bound":1,"outcome":"nonsense"}]}"#,
        ] {
            assert!(
                json::from_str::<SearchCertificate>(text).is_err(),
                "{text}"
            );
        }
    }
}
