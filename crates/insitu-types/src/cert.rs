//! Machine-checkable solve certificates.
//!
//! A [`SearchCertificate`] is the audit trail a branch-and-bound solver
//! leaves behind so that an *independent* checker (the `certify` crate,
//! which shares no code with the solver) can re-derive why a claimed
//! optimum is in fact optimal: every node of the search tree is listed with
//! its LP relaxation bound and the reason it was fathomed. The checker
//! walks the tree and verifies that
//!
//! 1. the records form one rooted binary tree whose leaves are all
//!    fathomed (integral, bound-pruned, or infeasible),
//! 2. bounds are monotone along every root-to-leaf path (a child can never
//!    claim a better LP bound than its parent),
//! 3. every bound-pruned leaf's bound is dominated by the claimed optimum
//!    plus the solver's absolute gap, and
//! 4. every integral leaf's objective is itself dominated by the claimed
//!    optimum.
//!
//! Together with an independent feasibility replay of the claimed solution,
//! that is exactly the classical "checker vs. solver" split: the solver's
//! arithmetic is never trusted for *feasibility* (replayed exactly) and its
//! search is never trusted for *optimality* (the pruning log must close the
//! tree). LP relaxation bounds and infeasibility claims remain attested by
//! the solver — the same trust model as LP-dual-bound certificates in
//! classical practice; see `docs/CERTIFY.md`.
//!
//! The types live here (not in `milp`) so that the producer (`milp`) and
//! the consumer (`certify`) can share them without depending on each other.

use crate::error::TypeError;
use crate::json::{FromJson, ToJson, Value};
use std::collections::BTreeMap;

/// Why a search node was fathomed (or expanded).
#[derive(Debug, Clone, PartialEq)]
pub enum NodeOutcome {
    /// The node's LP relaxation was fractional and two children were
    /// created by splitting an integer variable's domain.
    Branched,
    /// The node's LP relaxation was integral: a candidate incumbent with
    /// the recorded objective value.
    Integral {
        /// Objective of the integral point, in the model's own sense.
        objective: f64,
    },
    /// The node was discarded because its LP bound could not beat the
    /// incumbent (within the solver's absolute gap).
    PrunedBound,
    /// The node's LP relaxation (or variable-bound intersection) was
    /// infeasible.
    PrunedInfeasible,
}

/// One variable's role in the attested base row of a Gomory cut.
///
/// The base row is the equality `Σ coeffᵢ·xᵢ = base_rhs` the solver read
/// from its LP basis (a tableau row with slacks substituted out). The
/// derivation shifts each variable to a non-negative one: `t = x − bound`
/// when `at_upper` is false, `t = bound − x` when it is true. `integral`
/// marks variables the derivation may round on — the checker additionally
/// requires the shift bound itself to be integral before trusting the
/// flag.
#[derive(Debug, Clone, PartialEq)]
pub struct GomoryVar {
    /// Model variable index.
    pub var: usize,
    /// Coefficient in the attested base equality.
    pub coeff: f64,
    /// The finite bound the shift uses (lower bound unless `at_upper`).
    pub bound: f64,
    /// Whether the shifted variable is integer-valued (integer variable
    /// with an integral shift bound).
    pub integral: bool,
    /// Shift from the upper bound (`t = bound − x`) instead of the lower.
    pub at_upper: bool,
}

/// Exact-rational validity proof for one cutting plane.
///
/// A branch-and-cut solver records one `CutProof` per cut it appended, so
/// the independent checker can re-derive the cut in `i128` rational
/// arithmetic and reject any tampered coefficient. The *source data*
/// (base row, variable bounds, integrality flags, knapsack row) is
/// solver-attested — the same trust class as the per-node LP bounds —
/// but the *derivation* from it is replayed exactly; see `docs/CERTIFY.md`.
#[derive(Debug, Clone, PartialEq)]
pub enum CutProof {
    /// A Gomory mixed-integer cut `Σ cutᵢ·xᵢ ≥ cut_rhs` derived from one
    /// attested base equality. The checker shifts every variable per its
    /// [`GomoryVar`], re-derives the GMI coefficients exactly, and
    /// verifies the recorded cut is dominated by the exact one
    /// (shifted-space coefficients no smaller, right-hand side no
    /// larger), which makes the recorded cut valid whenever the base row
    /// is.
    Gomory {
        /// Base-row terms: one entry per variable with its shift data.
        vars: Vec<GomoryVar>,
        /// Right-hand side of the attested base equality.
        base_rhs: f64,
        /// The recorded cut's model-space coefficients `(var, coeff)`.
        cut: Vec<(usize, f64)>,
        /// The recorded cut's right-hand side (`≥` sense).
        cut_rhs: f64,
    },
    /// A knapsack cover cut `Σ_{i ∈ members} xᵢ ≤ |members| − 1` from an
    /// attested row `Σ rowᵢ·xᵢ ≤ rhs` over binary variables. The checker
    /// verifies exactly that the members' coefficients are positive and
    /// sum to strictly more than `rhs` — so not all members can be 1
    /// simultaneously.
    Cover {
        /// The attested knapsack row's terms `(var, coeff)`.
        row: Vec<(usize, f64)>,
        /// The attested knapsack row's right-hand side.
        rhs: f64,
        /// Variable indices forming the cover.
        members: Vec<usize>,
    },
}

/// One node of the branch-and-bound tree.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCert {
    /// Unique node id (the solver's creation sequence number).
    pub id: u64,
    /// Parent node id; `None` for the root.
    pub parent: Option<u64>,
    /// The best bound known for the subtree rooted at this node: its own
    /// LP relaxation objective when one was solved, else the parent's.
    pub lp_bound: f64,
    /// How the node was fathomed (or that it was branched on).
    pub outcome: NodeOutcome,
}

/// The complete optimality certificate of one branch-and-bound solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCertificate {
    /// Claimed optimal objective value.
    pub objective: f64,
    /// A solver-attested dual (LP relaxation) bound on the optimum: an
    /// upper bound for maximization, a lower bound for minimization. The
    /// root LP relaxation objective.
    pub dual_bound: f64,
    /// Absolute optimality gap the solve was allowed (`0` = exact).
    pub abs_gap: f64,
    /// `true` when the model sense is maximization.
    pub maximize: bool,
    /// `true` when the search terminated by exhausting the tree (vs. a
    /// node limit or error). Only an exhausted tree can prove optimality.
    pub proven_optimal: bool,
    /// Every node the search created, in no particular order.
    pub nodes: Vec<NodeCert>,
    /// Every cutting plane the solve appended (root pool and node-local),
    /// each with its exact-rational validity proof. Empty for cut-free
    /// solves; absent in serialized pre-cut certificates (parsed as
    /// empty).
    pub cuts: Vec<CutProof>,
}

impl SearchCertificate {
    /// The root node record, if present.
    pub fn root(&self) -> Option<&NodeCert> {
        self.nodes.iter().find(|n| n.parent.is_none())
    }

    /// Number of leaf records (everything that is not `Branched`).
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.outcome != NodeOutcome::Branched)
            .count()
    }
}

impl ToJson for NodeCert {
    fn to_json(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("id".into(), Value::Number(self.id as f64));
        m.insert(
            "parent".into(),
            match self.parent {
                Some(p) => Value::Number(p as f64),
                None => Value::Null,
            },
        );
        m.insert("lp_bound".into(), Value::Number(self.lp_bound));
        let (kind, obj) = match &self.outcome {
            NodeOutcome::Branched => ("branched", None),
            NodeOutcome::Integral { objective } => ("integral", Some(*objective)),
            NodeOutcome::PrunedBound => ("pruned_bound", None),
            NodeOutcome::PrunedInfeasible => ("pruned_infeasible", None),
        };
        m.insert("outcome".into(), Value::String(kind.into()));
        if let Some(o) = obj {
            m.insert("objective".into(), Value::Number(o));
        }
        Value::Object(m)
    }
}

impl FromJson for NodeCert {
    fn from_json(v: &Value) -> Result<Self, TypeError> {
        const TY: &str = "NodeCert";
        let m = match v {
            Value::Object(m) => m,
            _ => return Err(TypeError::Parse(format!("{TY}: expected object"))),
        };
        let get = |name: &str| -> Result<&Value, TypeError> {
            m.get(name)
                .ok_or_else(|| TypeError::Parse(format!("{TY}: missing field '{name}'")))
        };
        let id = match get("id")? {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => *n as u64,
            _ => return Err(TypeError::Parse(format!("{TY}: bad id"))),
        };
        let parent = match get("parent")? {
            Value::Null => None,
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => return Err(TypeError::Parse(format!("{TY}: bad parent"))),
        };
        let lp_bound = match get("lp_bound")? {
            Value::Number(n) => *n,
            _ => return Err(TypeError::Parse(format!("{TY}: bad lp_bound"))),
        };
        let outcome = match get("outcome")? {
            Value::String(s) => match s.as_str() {
                "branched" => NodeOutcome::Branched,
                "integral" => {
                    let objective = match m.get("objective") {
                        Some(Value::Number(n)) => *n,
                        _ => {
                            return Err(TypeError::Parse(format!(
                                "{TY}: integral node missing objective"
                            )))
                        }
                    };
                    NodeOutcome::Integral { objective }
                }
                "pruned_bound" => NodeOutcome::PrunedBound,
                "pruned_infeasible" => NodeOutcome::PrunedInfeasible,
                other => {
                    return Err(TypeError::Parse(format!("{TY}: unknown outcome '{other}'")))
                }
            },
            _ => return Err(TypeError::Parse(format!("{TY}: bad outcome"))),
        };
        Ok(NodeCert {
            id,
            parent,
            lp_bound,
            outcome,
        })
    }
}

fn terms_to_json(terms: &[(usize, f64)]) -> Value {
    Value::Array(
        terms
            .iter()
            .map(|&(v, c)| {
                let mut m = BTreeMap::new();
                m.insert("var".into(), Value::Number(v as f64));
                m.insert("coeff".into(), Value::Number(c));
                Value::Object(m)
            })
            .collect(),
    )
}

fn terms_from_json(v: &Value, what: &str) -> Result<Vec<(usize, f64)>, TypeError> {
    let Value::Array(items) = v else {
        return Err(TypeError::Parse(format!("{what}: expected array")));
    };
    items
        .iter()
        .map(|item| {
            let Value::Object(m) = item else {
                return Err(TypeError::Parse(format!("{what}: expected object term")));
            };
            let var = match m.get("var") {
                Some(Value::Number(n)) if *n >= 0.0 && n.fract() == 0.0 => *n as usize,
                _ => return Err(TypeError::Parse(format!("{what}: bad var"))),
            };
            let coeff = match m.get("coeff") {
                Some(Value::Number(n)) => *n,
                _ => return Err(TypeError::Parse(format!("{what}: bad coeff"))),
            };
            Ok((var, coeff))
        })
        .collect()
}

impl ToJson for CutProof {
    fn to_json(&self) -> Value {
        let mut m = BTreeMap::new();
        match self {
            CutProof::Gomory {
                vars,
                base_rhs,
                cut,
                cut_rhs,
            } => {
                m.insert("kind".into(), Value::String("gomory".into()));
                m.insert(
                    "vars".into(),
                    Value::Array(
                        vars.iter()
                            .map(|g| {
                                let mut gm = BTreeMap::new();
                                gm.insert("var".into(), Value::Number(g.var as f64));
                                gm.insert("coeff".into(), Value::Number(g.coeff));
                                gm.insert("bound".into(), Value::Number(g.bound));
                                gm.insert("integral".into(), Value::Bool(g.integral));
                                gm.insert("at_upper".into(), Value::Bool(g.at_upper));
                                Value::Object(gm)
                            })
                            .collect(),
                    ),
                );
                m.insert("base_rhs".into(), Value::Number(*base_rhs));
                m.insert("cut".into(), terms_to_json(cut));
                m.insert("cut_rhs".into(), Value::Number(*cut_rhs));
            }
            CutProof::Cover { row, rhs, members } => {
                m.insert("kind".into(), Value::String("cover".into()));
                m.insert("row".into(), terms_to_json(row));
                m.insert("rhs".into(), Value::Number(*rhs));
                m.insert(
                    "members".into(),
                    Value::Array(
                        members.iter().map(|&i| Value::Number(i as f64)).collect(),
                    ),
                );
            }
        }
        Value::Object(m)
    }
}

impl FromJson for CutProof {
    fn from_json(v: &Value) -> Result<Self, TypeError> {
        const TY: &str = "CutProof";
        let Value::Object(m) = v else {
            return Err(TypeError::Parse(format!("{TY}: expected object")));
        };
        let num = |name: &str| -> Result<f64, TypeError> {
            match m.get(name) {
                Some(Value::Number(n)) => Ok(*n),
                _ => Err(TypeError::Parse(format!("{TY}: bad {name}"))),
            }
        };
        match m.get("kind") {
            Some(Value::String(s)) if s == "gomory" => {
                let vars = match m.get("vars") {
                    Some(Value::Array(items)) => items
                        .iter()
                        .map(|item| {
                            let Value::Object(gm) = item else {
                                return Err(TypeError::Parse(format!(
                                    "{TY}: expected gomory var object"
                                )));
                            };
                            let var = match gm.get("var") {
                                Some(Value::Number(n)) if *n >= 0.0 && n.fract() == 0.0 => {
                                    *n as usize
                                }
                                _ => return Err(TypeError::Parse(format!("{TY}: bad var"))),
                            };
                            let fetch = |name: &str| match gm.get(name) {
                                Some(Value::Number(n)) => Ok(*n),
                                _ => Err(TypeError::Parse(format!("{TY}: bad {name}"))),
                            };
                            let flag = |name: &str| match gm.get(name) {
                                Some(Value::Bool(b)) => Ok(*b),
                                _ => Err(TypeError::Parse(format!("{TY}: bad {name}"))),
                            };
                            Ok(GomoryVar {
                                var,
                                coeff: fetch("coeff")?,
                                bound: fetch("bound")?,
                                integral: flag("integral")?,
                                at_upper: flag("at_upper")?,
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(TypeError::Parse(format!("{TY}: bad vars"))),
                };
                Ok(CutProof::Gomory {
                    vars,
                    base_rhs: num("base_rhs")?,
                    cut: terms_from_json(
                        m.get("cut")
                            .ok_or_else(|| TypeError::Parse(format!("{TY}: missing cut")))?,
                        TY,
                    )?,
                    cut_rhs: num("cut_rhs")?,
                })
            }
            Some(Value::String(s)) if s == "cover" => {
                let members = match m.get("members") {
                    Some(Value::Array(items)) => items
                        .iter()
                        .map(|item| match item {
                            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => {
                                Ok(*n as usize)
                            }
                            _ => Err(TypeError::Parse(format!("{TY}: bad member"))),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(TypeError::Parse(format!("{TY}: bad members"))),
                };
                Ok(CutProof::Cover {
                    row: terms_from_json(
                        m.get("row")
                            .ok_or_else(|| TypeError::Parse(format!("{TY}: missing row")))?,
                        TY,
                    )?,
                    rhs: num("rhs")?,
                    members,
                })
            }
            Some(Value::String(other)) => {
                Err(TypeError::Parse(format!("{TY}: unknown kind '{other}'")))
            }
            _ => Err(TypeError::Parse(format!("{TY}: missing kind"))),
        }
    }
}

impl ToJson for SearchCertificate {
    fn to_json(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("objective".into(), Value::Number(self.objective));
        m.insert("dual_bound".into(), Value::Number(self.dual_bound));
        m.insert("abs_gap".into(), Value::Number(self.abs_gap));
        m.insert("maximize".into(), Value::Bool(self.maximize));
        m.insert("proven_optimal".into(), Value::Bool(self.proven_optimal));
        m.insert(
            "nodes".into(),
            Value::Array(self.nodes.iter().map(ToJson::to_json).collect()),
        );
        if !self.cuts.is_empty() {
            m.insert(
                "cuts".into(),
                Value::Array(self.cuts.iter().map(ToJson::to_json).collect()),
            );
        }
        Value::Object(m)
    }
}

impl FromJson for SearchCertificate {
    fn from_json(v: &Value) -> Result<Self, TypeError> {
        const TY: &str = "SearchCertificate";
        let m = match v {
            Value::Object(m) => m,
            _ => return Err(TypeError::Parse(format!("{TY}: expected object"))),
        };
        let get = |name: &str| -> Result<&Value, TypeError> {
            m.get(name)
                .ok_or_else(|| TypeError::Parse(format!("{TY}: missing field '{name}'")))
        };
        let f = |name: &str| -> Result<f64, TypeError> {
            match get(name)? {
                Value::Number(n) => Ok(*n),
                _ => Err(TypeError::Parse(format!("{TY}: bad {name}"))),
            }
        };
        let b = |name: &str| -> Result<bool, TypeError> {
            match get(name)? {
                Value::Bool(x) => Ok(*x),
                _ => Err(TypeError::Parse(format!("{TY}: bad {name}"))),
            }
        };
        let nodes = match get("nodes")? {
            Value::Array(items) => items
                .iter()
                .map(NodeCert::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(TypeError::Parse(format!("{TY}: bad nodes"))),
        };
        // absent in pre-branch-and-cut certificates: parse as empty
        let cuts = match m.get("cuts") {
            None => Vec::new(),
            Some(Value::Array(items)) => items
                .iter()
                .map(CutProof::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(TypeError::Parse(format!("{TY}: bad cuts"))),
        };
        Ok(SearchCertificate {
            objective: f("objective")?,
            dual_bound: f("dual_bound")?,
            abs_gap: f("abs_gap")?,
            maximize: b("maximize")?,
            proven_optimal: b("proven_optimal")?,
            nodes,
            cuts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> SearchCertificate {
        SearchCertificate {
            objective: 7.0,
            dual_bound: 7.5,
            abs_gap: 0.0,
            maximize: true,
            proven_optimal: true,
            nodes: vec![
                NodeCert {
                    id: 0,
                    parent: None,
                    lp_bound: 7.5,
                    outcome: NodeOutcome::Branched,
                },
                NodeCert {
                    id: 1,
                    parent: Some(0),
                    lp_bound: 7.0,
                    outcome: NodeOutcome::Integral { objective: 7.0 },
                },
                NodeCert {
                    id: 2,
                    parent: Some(0),
                    lp_bound: 6.2,
                    outcome: NodeOutcome::PrunedBound,
                },
            ],
            cuts: vec![
                CutProof::Gomory {
                    vars: vec![
                        GomoryVar {
                            var: 0,
                            coeff: 1.0,
                            bound: 0.0,
                            integral: true,
                            at_upper: false,
                        },
                        GomoryVar {
                            var: 1,
                            coeff: 2.5,
                            bound: 3.0,
                            integral: false,
                            at_upper: true,
                        },
                    ],
                    base_rhs: 4.5,
                    cut: vec![(0, 0.5), (1, -0.25)],
                    cut_rhs: 0.125,
                },
                CutProof::Cover {
                    row: vec![(0, 3.0), (2, 2.0)],
                    rhs: 4.0,
                    members: vec![0, 2],
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let c = sample();
        let text = json::to_string(&c);
        let back: SearchCertificate = json::from_str(&text).unwrap();
        assert_eq!(back, c);
        // pretty form too
        let back2: SearchCertificate = json::from_str(&json::to_string_pretty(&c)).unwrap();
        assert_eq!(back2, c);
    }

    #[test]
    fn accessors() {
        let c = sample();
        assert_eq!(c.root().unwrap().id, 0);
        assert_eq!(c.leaf_count(), 2);
    }

    #[test]
    fn missing_cuts_field_parses_as_empty() {
        // a pre-branch-and-cut certificate (no "cuts" key) must still load
        let mut c = sample();
        c.cuts.clear();
        let text = json::to_string(&c);
        assert!(!text.contains("\"cuts\""));
        let back: SearchCertificate = json::from_str(&text).unwrap();
        assert!(back.cuts.is_empty());
    }

    #[test]
    fn malformed_json_rejected() {
        for text in [
            "{}",
            // unknown cut kind
            r#"{"objective":1,"dual_bound":1,"abs_gap":0,"maximize":true,"proven_optimal":true,"nodes":[{"id":0,"parent":null,"lp_bound":1,"outcome":"integral","objective":1}],"cuts":[{"kind":"lift"}]}"#,
            // cover cut without members
            r#"{"objective":1,"dual_bound":1,"abs_gap":0,"maximize":true,"proven_optimal":true,"nodes":[{"id":0,"parent":null,"lp_bound":1,"outcome":"integral","objective":1}],"cuts":[{"kind":"cover","row":[],"rhs":1}]}"#,
            // gomory cut with a non-boolean flag
            r#"{"objective":1,"dual_bound":1,"abs_gap":0,"maximize":true,"proven_optimal":true,"nodes":[{"id":0,"parent":null,"lp_bound":1,"outcome":"integral","objective":1}],"cuts":[{"kind":"gomory","vars":[{"var":0,"coeff":1,"bound":0,"integral":1,"at_upper":false}],"base_rhs":0.5,"cut":[],"cut_rhs":0.5}]}"#,
            r#"{"objective":1,"dual_bound":1,"abs_gap":0,"maximize":true,"proven_optimal":true,"nodes":[{"id":-1,"parent":null,"lp_bound":1,"outcome":"branched"}]}"#,
            r#"{"objective":1,"dual_bound":1,"abs_gap":0,"maximize":true,"proven_optimal":true,"nodes":[{"id":0,"parent":null,"lp_bound":1,"outcome":"integral"}]}"#,
            r#"{"objective":1,"dual_bound":1,"abs_gap":0,"maximize":true,"proven_optimal":true,"nodes":[{"id":0,"parent":null,"lp_bound":1,"outcome":"nonsense"}]}"#,
        ] {
            assert!(
                json::from_str::<SearchCertificate>(text).is_err(),
                "{text}"
            );
        }
    }
}
