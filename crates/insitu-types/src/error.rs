//! Error type for model construction and validation.

use std::fmt;

/// Errors raised while building or validating scheduling-model data.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// A parameter that must be non-negative was negative.
    NegativeParameter {
        /// Which analysis the parameter belongs to.
        analysis: String,
        /// Parameter name as in Table 1 (e.g. `ct`).
        parameter: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A parameter that must be finite was NaN or infinite.
    NonFiniteParameter {
        /// Which analysis the parameter belongs to.
        analysis: String,
        /// Parameter name as in Table 1.
        parameter: &'static str,
    },
    /// The minimum interval `itv` must be at least 1.
    ZeroInterval {
        /// Which analysis the parameter belongs to.
        analysis: String,
    },
    /// The problem must simulate at least one step.
    ZeroSteps,
    /// A schedule referenced a step outside `1..=steps`.
    StepOutOfRange {
        /// Which analysis the step belongs to.
        analysis: String,
        /// The offending step index.
        step: usize,
        /// Total number of steps in the problem.
        steps: usize,
    },
    /// An output step was scheduled where no analysis step exists.
    OutputWithoutAnalysis {
        /// Which analysis the output belongs to.
        analysis: String,
        /// The offending output step.
        step: usize,
    },
    /// Two analyses share the same name; names key the schedule.
    DuplicateAnalysis {
        /// The duplicated name.
        analysis: String,
    },
    /// Free-form trace parse failure.
    TraceParse(String),
    /// JSON (de)serialization failure; see [`crate::json`].
    Parse(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::NegativeParameter {
                analysis,
                parameter,
                value,
            } => write!(
                f,
                "analysis `{analysis}`: parameter {parameter} must be >= 0, got {value}"
            ),
            TypeError::NonFiniteParameter {
                analysis,
                parameter,
            } => write!(
                f,
                "analysis `{analysis}`: parameter {parameter} must be finite"
            ),
            TypeError::ZeroInterval { analysis } => {
                write!(f, "analysis `{analysis}`: minimum interval itv must be >= 1")
            }
            TypeError::ZeroSteps => write!(f, "problem must have at least one simulation step"),
            TypeError::StepOutOfRange {
                analysis,
                step,
                steps,
            } => write!(
                f,
                "analysis `{analysis}`: step {step} outside valid range 1..={steps}"
            ),
            TypeError::OutputWithoutAnalysis { analysis, step } => write!(
                f,
                "analysis `{analysis}`: output at step {step} has no matching analysis step"
            ),
            TypeError::DuplicateAnalysis { analysis } => {
                write!(f, "duplicate analysis name `{analysis}`")
            }
            TypeError::TraceParse(msg) => write!(f, "trace parse error: {msg}"),
            TypeError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TypeError::NegativeParameter {
            analysis: "msd".into(),
            parameter: "ct",
            value: -1.0,
        };
        let s = e.to_string();
        assert!(s.contains("msd") && s.contains("ct") && s.contains("-1"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(TypeError::ZeroSteps);
        assert!(e.to_string().contains("at least one"));
    }
}
