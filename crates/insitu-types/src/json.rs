//! Self-contained JSON persistence for the scheduling data model.
//!
//! Profiles measured on one machine are stored as JSON and re-used as a
//! profiling database for later scheduling runs. The build environment is
//! offline (no serde), so this module implements the round-trip by hand: a
//! tiny JSON value tree, a recursive-descent parser, and explicit
//! [`ToJson`] / [`FromJson`] impls for the public types. Field names match
//! the Rust struct fields (`compute_time`, `min_interval`, ...) and are a
//! stability guarantee for external tooling — see
//! `tests/serde_roundtrip.rs`.
//!
//! Numbers are rendered with Rust's shortest-round-trip float formatting,
//! so `from_str(&to_string(x)) == x` exactly, bit for bit.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::error::TypeError;
use crate::problem::ScheduleProblem;
use crate::profile::AnalysisProfile;
use crate::resources::ResourceConfig;
use crate::schedule::{AnalysisSchedule, Schedule};

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys sorted for deterministic rendering.
    Object(BTreeMap<String, Value>),
}

/// Renders compact JSON (and powers `Value::to_string`).
impl core::fmt::Display for Value {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl Value {
    /// Renders human-readable JSON with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => render_number(*n, out),
            Value::String(s) => render_string(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.render(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    render_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// Hardened against adversarial input: numbers that overflow `f64` to
    /// infinity (e.g. `1e999`) are rejected rather than silently becoming
    /// non-finite values the data model forbids, and nesting deeper than
    /// [`MAX_DEPTH`] is rejected rather than overflowing the parser's
    /// recursion stack.
    pub fn parse(text: &str) -> Result<Value, TypeError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON document"));
        }
        Ok(v)
    }

    pub(crate) fn expect_object(&self, what: &str) -> Result<&BTreeMap<String, Value>, TypeError> {
        match self {
            Value::Object(m) => Ok(m),
            _ => Err(TypeError::Parse(format!("{what}: expected object"))),
        }
    }

    pub(crate) fn expect_array(&self, what: &str) -> Result<&[Value], TypeError> {
        match self {
            Value::Array(a) => Ok(a),
            _ => Err(TypeError::Parse(format!("{what}: expected array"))),
        }
    }

    pub(crate) fn expect_f64(&self, what: &str) -> Result<f64, TypeError> {
        match self {
            Value::Number(n) => Ok(*n),
            _ => Err(TypeError::Parse(format!("{what}: expected number"))),
        }
    }

    pub(crate) fn expect_usize(&self, what: &str) -> Result<usize, TypeError> {
        let n = self.expect_f64(what)?;
        if n < 0.0 || n.fract() != 0.0 || n > usize::MAX as f64 {
            return Err(TypeError::Parse(format!(
                "{what}: expected non-negative integer, got {n}"
            )));
        }
        Ok(n as usize)
    }

    pub(crate) fn expect_str(&self, what: &str) -> Result<&str, TypeError> {
        match self {
            Value::String(s) => Ok(s),
            _ => Err(TypeError::Parse(format!("{what}: expected string"))),
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no inf/nan; the data model never produces them, but fail
        // loudly rather than emitting invalid documents.
        panic!("cannot serialize non-finite number {n}");
    }
    if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's {:?} prints the shortest string that parses back exactly
        let _ = write!(out, "{n:?}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum array/object nesting depth [`Value::parse`] accepts. The
/// recursive-descent parser uses one stack frame per level, so the limit
/// turns a would-be stack overflow (an abort) into a parse error.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> TypeError {
        TypeError::Parse(format!("json at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), TypeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, TypeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), TypeError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than MAX_DEPTH"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, TypeError> {
        self.enter()?;
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, TypeError> {
        self.enter()?;
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, TypeError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, TypeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        if !n.is_finite() {
            // "1e999" parses to +inf under Rust's f64 rules; JSON numbers
            // must stay finite or the data model's invariants break
            return Err(self.error("number overflows the f64 range"));
        }
        Ok(Value::Number(n))
    }
}

// ---------------------------------------------------------------------------
// Type conversions
// ---------------------------------------------------------------------------

/// Types that render to a JSON [`Value`].
pub trait ToJson {
    /// Converts to a JSON value tree.
    fn to_json(&self) -> Value;
}

/// Types that parse from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Converts from a JSON value tree.
    fn from_json(v: &Value) -> Result<Self, TypeError>;
}

/// Serializes any [`ToJson`] type to compact JSON.
pub fn to_string<T: ToJson>(value: &T) -> String {
    value.to_json().to_string()
}

/// Serializes any [`ToJson`] type to pretty-printed JSON.
pub fn to_string_pretty<T: ToJson>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Parses any [`FromJson`] type from JSON text.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, TypeError> {
    T::from_json(&Value::parse(text)?)
}

fn num(n: f64) -> Value {
    Value::Number(n)
}

fn unum(n: usize) -> Value {
    Value::Number(n as f64)
}

fn field<'v>(map: &'v BTreeMap<String, Value>, ty: &str, name: &str) -> Result<&'v Value, TypeError> {
    map.get(name)
        .ok_or_else(|| TypeError::Parse(format!("{ty}: missing field '{name}'")))
}

impl ToJson for AnalysisProfile {
    fn to_json(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("name".into(), Value::String(self.name.clone()));
        m.insert("fixed_time".into(), num(self.fixed_time));
        m.insert("step_time".into(), num(self.step_time));
        m.insert("compute_time".into(), num(self.compute_time));
        m.insert("output_time".into(), num(self.output_time));
        m.insert("fixed_mem".into(), num(self.fixed_mem));
        m.insert("step_mem".into(), num(self.step_mem));
        m.insert("compute_mem".into(), num(self.compute_mem));
        m.insert("output_mem".into(), num(self.output_mem));
        m.insert("weight".into(), num(self.weight));
        m.insert("min_interval".into(), unum(self.min_interval));
        m.insert("output_every".into(), unum(self.output_every));
        Value::Object(m)
    }
}

impl FromJson for AnalysisProfile {
    fn from_json(v: &Value) -> Result<Self, TypeError> {
        const TY: &str = "AnalysisProfile";
        let m = v.expect_object(TY)?;
        Ok(AnalysisProfile {
            name: field(m, TY, "name")?.expect_str("name")?.to_string(),
            fixed_time: field(m, TY, "fixed_time")?.expect_f64("fixed_time")?,
            step_time: field(m, TY, "step_time")?.expect_f64("step_time")?,
            compute_time: field(m, TY, "compute_time")?.expect_f64("compute_time")?,
            output_time: field(m, TY, "output_time")?.expect_f64("output_time")?,
            fixed_mem: field(m, TY, "fixed_mem")?.expect_f64("fixed_mem")?,
            step_mem: field(m, TY, "step_mem")?.expect_f64("step_mem")?,
            compute_mem: field(m, TY, "compute_mem")?.expect_f64("compute_mem")?,
            output_mem: field(m, TY, "output_mem")?.expect_f64("output_mem")?,
            weight: field(m, TY, "weight")?.expect_f64("weight")?,
            min_interval: field(m, TY, "min_interval")?.expect_usize("min_interval")?,
            output_every: field(m, TY, "output_every")?.expect_usize("output_every")?,
        })
    }
}

impl ToJson for ResourceConfig {
    fn to_json(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("steps".into(), unum(self.steps));
        m.insert("step_threshold".into(), num(self.step_threshold));
        m.insert("mem_threshold".into(), num(self.mem_threshold));
        m.insert("io_bandwidth".into(), num(self.io_bandwidth));
        Value::Object(m)
    }
}

impl FromJson for ResourceConfig {
    fn from_json(v: &Value) -> Result<Self, TypeError> {
        const TY: &str = "ResourceConfig";
        let m = v.expect_object(TY)?;
        Ok(ResourceConfig {
            steps: field(m, TY, "steps")?.expect_usize("steps")?,
            step_threshold: field(m, TY, "step_threshold")?.expect_f64("step_threshold")?,
            mem_threshold: field(m, TY, "mem_threshold")?.expect_f64("mem_threshold")?,
            io_bandwidth: field(m, TY, "io_bandwidth")?.expect_f64("io_bandwidth")?,
        })
    }
}

impl ToJson for ScheduleProblem {
    fn to_json(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert(
            "analyses".into(),
            Value::Array(self.analyses.iter().map(ToJson::to_json).collect()),
        );
        m.insert("resources".into(), self.resources.to_json());
        Value::Object(m)
    }
}

impl FromJson for ScheduleProblem {
    fn from_json(v: &Value) -> Result<Self, TypeError> {
        const TY: &str = "ScheduleProblem";
        let m = v.expect_object(TY)?;
        let analyses = field(m, TY, "analyses")?
            .expect_array("analyses")?
            .iter()
            .map(AnalysisProfile::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let resources = ResourceConfig::from_json(field(m, TY, "resources")?)?;
        // bypass `new` so stored-but-invalid problems can still be loaded
        // and re-validated by the caller with a better error context
        Ok(ScheduleProblem { analyses, resources })
    }
}

impl ToJson for AnalysisSchedule {
    fn to_json(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert(
            "analysis_steps".into(),
            Value::Array(self.analysis_steps.iter().map(|&j| unum(j)).collect()),
        );
        m.insert(
            "output_steps".into(),
            Value::Array(self.output_steps.iter().map(|&j| unum(j)).collect()),
        );
        Value::Object(m)
    }
}

impl FromJson for AnalysisSchedule {
    fn from_json(v: &Value) -> Result<Self, TypeError> {
        const TY: &str = "AnalysisSchedule";
        let m = v.expect_object(TY)?;
        let steps = |name: &str| -> Result<Vec<usize>, TypeError> {
            field(m, TY, name)?
                .expect_array(name)?
                .iter()
                .map(|x| x.expect_usize(name))
                .collect()
        };
        // `new` re-canonicalizes (sort + dedup), keeping the invariant even
        // for hand-edited files
        Ok(AnalysisSchedule::new(
            steps("analysis_steps")?,
            steps("output_steps")?,
        ))
    }
}

impl ToJson for Schedule {
    fn to_json(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert(
            "per_analysis".into(),
            Value::Array(self.per_analysis.iter().map(ToJson::to_json).collect()),
        );
        Value::Object(m)
    }
}

impl FromJson for Schedule {
    fn from_json(v: &Value) -> Result<Self, TypeError> {
        const TY: &str = "Schedule";
        let m = v.expect_object(TY)?;
        let per_analysis = field(m, TY, "per_analysis")?
            .expect_array("per_analysis")?
            .iter()
            .map(AnalysisSchedule::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Schedule { per_analysis })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors_navigate_parsed_documents() {
        let v = Value::parse("{\"a\": [1, true, \"x\"], \"b\": {\"c\": 2}}").unwrap();
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(Value::as_f64), Some(2.0));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_bool(), Some(true));
        assert_eq!(a[2].as_str(), Some("x"));
        assert_eq!(v.as_object().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
        assert!(a[0].get("not-an-object").is_none());
        assert!(v.as_str().is_none() && v.as_f64().is_none() && v.as_bool().is_none());
    }

    #[test]
    fn value_parse_rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1, 2,]").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn value_round_trips_basics() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.25",
            "\"a b\"",
            "[1,2,3]",
            "{\"k\":[true,null]}",
        ] {
            let v = Value::parse(text).unwrap();
            assert_eq!(Value::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = Value::String("quote \" slash \\ newline \n tab \t".into());
        let back = Value::parse(&s.to_string()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.07, 1e-12, 64.69, 1.0 / 3.0, 5.34e8, f64::MIN_POSITIVE] {
            let v = num(x);
            let back = Value::parse(&v.to_string()).unwrap();
            assert_eq!(back.expect_f64("x").unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = Value::parse("{\"a\":[1,2],\"b\":{\"c\":true}}").unwrap();
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  "));
        assert_eq!(Value::parse(&pretty).unwrap(), v);
    }
}
