//! Shared vocabulary for the in-situ analysis scheduling system.
//!
//! This crate defines the data model that every other crate in the workspace
//! speaks: the per-analysis resource profiles of Table 1 of the paper
//! ("Optimal Scheduling of In-situ Analysis for Large-scale Scientific
//! Simulations", SC '15), the global resource configuration, the scheduling
//! problem, the resulting [`Schedule`], and the Figure-1 coupling-trace
//! notation (`S S S S A O_A ...`).
//!
//! Keeping these types in a leaf crate lets the MILP solver, the machine
//! model, the performance model and both mini-apps depend on them without
//! depending on each other.

pub mod canonical;
pub mod cert;
pub mod error;
pub mod json;
pub mod problem;
pub mod profile;
pub mod resources;
pub mod schedule;
pub mod service;
pub mod telemetry;
pub mod trace;
pub mod units;

pub use cert::{CutProof, GomoryVar, NodeCert, NodeOutcome, SearchCertificate};
pub use error::TypeError;
pub use problem::ScheduleProblem;
pub use profile::{AnalysisId, AnalysisProfile};
pub use resources::ResourceConfig;
pub use schedule::{AnalysisSchedule, Schedule};
pub use service::{ResponseSource, ServiceRequest, ServiceResponse, SERVICE_SCHEMA};
pub use telemetry::{KernelRecord, KernelTelemetry};
pub use trace::{CouplingTrace, StepEvent};
pub use units::{Bytes, Seconds, GIB, KIB, MIB};
