//! The scheduling problem: a set of candidate analyses plus resources.

use crate::error::TypeError;
use crate::profile::{AnalysisId, AnalysisProfile};
use crate::resources::ResourceConfig;
use crate::units::Seconds;

/// A complete instance of the paper's optimization problem: the candidate
/// analysis set `A` (with per-analysis Table-1 parameters) and the global
/// resource configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleProblem {
    /// Candidate analyses, indexed by [`AnalysisId`].
    pub analyses: Vec<AnalysisProfile>,
    /// Global resource limits and step count.
    pub resources: ResourceConfig,
}

impl ScheduleProblem {
    /// Builds and validates a problem instance.
    pub fn new(
        analyses: Vec<AnalysisProfile>,
        resources: ResourceConfig,
    ) -> Result<Self, TypeError> {
        let p = ScheduleProblem { analyses, resources };
        p.validate()?;
        Ok(p)
    }

    /// Number of candidate analyses.
    pub fn len(&self) -> usize {
        self.analyses.len()
    }

    /// True when no analyses are requested.
    pub fn is_empty(&self) -> bool {
        self.analyses.is_empty()
    }

    /// Looks up an analysis index by name.
    pub fn id_of(&self, name: &str) -> Option<AnalysisId> {
        self.analyses.iter().position(|a| a.name == name)
    }

    /// The unavoidable per-run floor cost of enabling analysis `i`: its
    /// fixed time plus the per-step facilitation time over all steps.
    pub fn floor_time(&self, i: AnalysisId) -> Seconds {
        let a = &self.analyses[i];
        a.fixed_time + a.step_time * self.resources.steps as f64
    }

    /// Validates every profile, the resource block, and name uniqueness.
    pub fn validate(&self) -> Result<(), TypeError> {
        self.resources.validate()?;
        let mut names = std::collections::HashSet::new();
        for a in &self.analyses {
            a.validate()?;
            if !names.insert(a.name.as_str()) {
                return Err(TypeError::DuplicateAnalysis {
                    analysis: a.name.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::GIB;

    fn problem() -> ScheduleProblem {
        ScheduleProblem::new(
            vec![
                AnalysisProfile::new("rdf").with_compute(1.0, GIB).with_interval(100),
                AnalysisProfile::new("msd")
                    .with_fixed(2.0, GIB)
                    .with_per_step(0.01, 0.0)
                    .with_compute(5.0, GIB)
                    .with_interval(100),
            ],
            ResourceConfig::new(1000, 0.05, 8.0 * GIB, GIB),
        )
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let p = problem();
        assert_eq!(p.id_of("msd"), Some(1));
        assert_eq!(p.id_of("nope"), None);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn floor_time_includes_per_step_cost() {
        let p = problem();
        assert!((p.floor_time(0) - 0.0).abs() < 1e-12);
        assert!((p.floor_time(1) - (2.0 + 0.01 * 1000.0)).abs() < 1e-12);
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = ScheduleProblem::new(
            vec![AnalysisProfile::new("x"), AnalysisProfile::new("x")],
            ResourceConfig::default(),
        );
        assert!(matches!(r, Err(TypeError::DuplicateAnalysis { .. })));
    }

    #[test]
    fn invalid_profile_rejected() {
        let mut a = AnalysisProfile::new("bad");
        a.weight = -3.0;
        let r = ScheduleProblem::new(vec![a], ResourceConfig::default());
        assert!(r.is_err());
    }
}
