//! Per-analysis resource profiles — the rows of Table 1 of the paper.

use crate::error::TypeError;
use crate::units::{Bytes, Seconds};

/// Index of an analysis within a [`crate::ScheduleProblem`].
pub type AnalysisId = usize;

/// Resource profile of one candidate in-situ analysis (Table 1).
///
/// Every time is in seconds, every memory amount in bytes. A field is zero
/// when the corresponding cost does not apply to the analysis implementation
/// (e.g. FLASH-style analyses allocate on the fly, so `fm == 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisProfile {
    /// Human-readable name, unique within a problem (e.g. `"msd (A4)"`).
    pub name: String,
    /// `ft` — fixed setup time paid once at simulation start.
    pub fixed_time: Seconds,
    /// `it` — time paid at *every simulation step* to facilitate the
    /// analysis (e.g. copying simulation data into a history buffer).
    pub step_time: Seconds,
    /// `ct` — compute time paid at every *analysis* step.
    pub compute_time: Seconds,
    /// `ot` — time paid at every *output* step (writing analysis results).
    pub output_time: Seconds,
    /// `fm` — fixed memory allocated once at simulation start.
    pub fixed_mem: Bytes,
    /// `im` — input memory allocated at every simulation step.
    pub step_mem: Bytes,
    /// `cm` — memory allocated at every analysis step.
    pub compute_mem: Bytes,
    /// `om` — output buffer allocated at every output step.
    pub output_mem: Bytes,
    /// `w` — importance weight; larger = more important (Eq. 1).
    pub weight: f64,
    /// `itv` — minimum number of simulation steps between consecutive
    /// analysis steps. Must be >= 1.
    pub min_interval: usize,
    /// Number of analysis steps per output step (Fig. 1 shows output every 2
    /// analysis steps). `0` means the analysis never writes output.
    pub output_every: usize,
}

impl AnalysisProfile {
    /// Creates a profile with the given name and all costs zero, weight 1,
    /// interval 1 and no output. Use the builder-style `with_*` methods to
    /// fill in costs.
    pub fn new(name: impl Into<String>) -> Self {
        AnalysisProfile {
            name: name.into(),
            fixed_time: 0.0,
            step_time: 0.0,
            compute_time: 0.0,
            output_time: 0.0,
            fixed_mem: 0.0,
            step_mem: 0.0,
            compute_mem: 0.0,
            output_mem: 0.0,
            weight: 1.0,
            min_interval: 1,
            output_every: 0,
        }
    }

    /// Sets `ft` and `fm`, the one-time setup cost.
    pub fn with_fixed(mut self, time: Seconds, mem: Bytes) -> Self {
        self.fixed_time = time;
        self.fixed_mem = mem;
        self
    }

    /// Sets `it` and `im`, the per-simulation-step facilitation cost.
    pub fn with_per_step(mut self, time: Seconds, mem: Bytes) -> Self {
        self.step_time = time;
        self.step_mem = mem;
        self
    }

    /// Sets `ct` and `cm`, the per-analysis-step cost.
    pub fn with_compute(mut self, time: Seconds, mem: Bytes) -> Self {
        self.compute_time = time;
        self.compute_mem = mem;
        self
    }

    /// Sets `ot`, `om` and the output cadence (`output_every` analysis steps
    /// per output step).
    pub fn with_output(mut self, time: Seconds, mem: Bytes, every: usize) -> Self {
        self.output_time = time;
        self.output_mem = mem;
        self.output_every = every;
        self
    }

    /// Sets the importance weight `w`.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the minimum interval `itv` between analysis steps.
    pub fn with_interval(mut self, itv: usize) -> Self {
        self.min_interval = itv;
        self
    }

    /// Largest number of analysis steps possible in `steps` simulation steps
    /// under the interval constraint (Eq. 9): `floor(steps / itv)`.
    pub fn max_analysis_steps(&self, steps: usize) -> usize {
        steps / self.min_interval.max(1)
    }

    /// Total time this analysis costs if it runs `k` analysis steps and `q`
    /// output steps over a simulation of `steps` steps (the telescoped form
    /// of Eqs. 2–3):
    /// `ft + steps*it + k*ct + q*ot`.
    pub fn total_time(&self, steps: usize, k: usize, q: usize) -> Seconds {
        self.fixed_time
            + steps as Seconds * self.step_time
            + k as Seconds * self.compute_time
            + q as Seconds * self.output_time
    }

    /// Peak memory this analysis can hold at one instant: fixed + per-step
    /// accumulation is modelled by the recursion in Eqs. 5–7; the worst case
    /// within one output period of length `p` steps is
    /// `fm + p*im + cm + om`.
    pub fn peak_mem_over_period(&self, period: usize) -> Bytes {
        self.fixed_mem + period as Bytes * self.step_mem + self.compute_mem + self.output_mem
    }

    /// Validates all Table-1 invariants (non-negative, finite, `itv >= 1`).
    pub fn validate(&self) -> Result<(), TypeError> {
        let checks: [(&'static str, f64); 9] = [
            ("ft", self.fixed_time),
            ("it", self.step_time),
            ("ct", self.compute_time),
            ("ot", self.output_time),
            ("fm", self.fixed_mem),
            ("im", self.step_mem),
            ("cm", self.compute_mem),
            ("om", self.output_mem),
            ("w", self.weight),
        ];
        for (parameter, value) in checks {
            if !value.is_finite() {
                return Err(TypeError::NonFiniteParameter {
                    analysis: self.name.clone(),
                    parameter,
                });
            }
            if value < 0.0 {
                return Err(TypeError::NegativeParameter {
                    analysis: self.name.clone(),
                    parameter,
                    value,
                });
            }
        }
        if self.min_interval == 0 {
            return Err(TypeError::ZeroInterval {
                analysis: self.name.clone(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MIB;

    fn sample() -> AnalysisProfile {
        AnalysisProfile::new("msd (A4)")
            .with_fixed(0.5, 128.0 * MIB)
            .with_per_step(0.001, MIB)
            .with_compute(2.0, 16.0 * MIB)
            .with_output(0.8, 8.0 * MIB, 2)
            .with_weight(2.0)
            .with_interval(100)
    }

    #[test]
    fn builder_sets_all_fields() {
        let p = sample();
        assert_eq!(p.fixed_time, 0.5);
        assert_eq!(p.step_time, 0.001);
        assert_eq!(p.compute_time, 2.0);
        assert_eq!(p.output_time, 0.8);
        assert_eq!(p.weight, 2.0);
        assert_eq!(p.min_interval, 100);
        assert_eq!(p.output_every, 2);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn max_analysis_steps_obeys_interval() {
        let p = sample();
        assert_eq!(p.max_analysis_steps(1000), 10);
        assert_eq!(p.max_analysis_steps(99), 0);
        assert_eq!(p.max_analysis_steps(100), 1);
    }

    #[test]
    fn total_time_telescopes() {
        let p = sample();
        // ft + steps*it + k*ct + q*ot
        let t = p.total_time(1000, 10, 5);
        assert!((t - (0.5 + 1.0 + 20.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_negatives() {
        let mut p = sample();
        p.compute_time = -1.0;
        assert!(matches!(
            p.validate(),
            Err(TypeError::NegativeParameter { parameter: "ct", .. })
        ));
    }

    #[test]
    fn validation_rejects_nan_and_zero_interval() {
        let mut p = sample();
        p.output_mem = f64::NAN;
        assert!(matches!(
            p.validate(),
            Err(TypeError::NonFiniteParameter { parameter: "om", .. })
        ));
        let mut p = sample();
        p.min_interval = 0;
        assert!(matches!(p.validate(), Err(TypeError::ZeroInterval { .. })));
    }

    #[test]
    fn peak_memory_includes_all_buffers() {
        let p = sample();
        let peak = p.peak_mem_over_period(10);
        assert!((peak - (128.0 * MIB + 10.0 * MIB + 16.0 * MIB + 8.0 * MIB)).abs() < 1.0);
    }
}
