//! Global resource configuration — the bottom rows of Table 1.

use crate::error::TypeError;
use crate::units::{Bytes, Seconds, GIB};

/// System-side inputs to the scheduling problem.
///
/// The paper expresses the analysis-time budget either as a *per-step*
/// threshold `cth` (Table 5: a percentage of simulation time divided by the
/// number of steps) or as a *total* threshold (Table 6). We store the
/// per-step form; [`ResourceConfig::total_threshold`] gives the product
/// `cth * Steps` used by Eq. 4.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceConfig {
    /// `Steps` — number of simulation time steps.
    pub steps: usize,
    /// `cth` — maximum analysis time allowed per simulation step (seconds).
    pub step_threshold: Seconds,
    /// `mth` — maximum memory available for analyses (bytes).
    pub mem_threshold: Bytes,
    /// `bw` — average write bandwidth from the simulation site to storage
    /// (bytes/second). Used to derive `ot = om / bw` when an analysis gives
    /// only its output size.
    pub io_bandwidth: f64,
}

impl ResourceConfig {
    /// Creates a configuration from the raw Table-1 quantities.
    pub fn new(steps: usize, step_threshold: Seconds, mem_threshold: Bytes, io_bandwidth: f64) -> Self {
        ResourceConfig {
            steps,
            step_threshold,
            mem_threshold,
            io_bandwidth,
        }
    }

    /// Convenience: budget expressed as a *fraction of the simulation time*
    /// (the Table-5 use case: "allow 10% overhead"). `sim_time` is the
    /// total simulation time for `steps` steps.
    pub fn from_overhead_fraction(
        steps: usize,
        sim_time: Seconds,
        fraction: f64,
        mem_threshold: Bytes,
        io_bandwidth: f64,
    ) -> Self {
        ResourceConfig::new(steps, sim_time * fraction / steps as f64, mem_threshold, io_bandwidth)
    }

    /// Convenience: budget expressed as a *total* number of seconds (the
    /// Table-6 use case: "at most 200 s of in-situ analysis").
    pub fn from_total_threshold(
        steps: usize,
        total: Seconds,
        mem_threshold: Bytes,
        io_bandwidth: f64,
    ) -> Self {
        ResourceConfig::new(steps, total / steps as f64, mem_threshold, io_bandwidth)
    }

    /// `cth * Steps` — the right-hand side of Eq. 4.
    pub fn total_threshold(&self) -> Seconds {
        self.step_threshold * self.steps as f64
    }

    /// Time to write `bytes` of analysis output through the storage path.
    pub fn write_time(&self, bytes: Bytes) -> Seconds {
        if self.io_bandwidth > 0.0 {
            bytes / self.io_bandwidth
        } else {
            0.0
        }
    }

    /// Validates invariants (positive step count, finite non-negative caps).
    pub fn validate(&self) -> Result<(), TypeError> {
        if self.steps == 0 {
            return Err(TypeError::ZeroSteps);
        }
        for (name, v) in [
            ("cth", self.step_threshold),
            ("mth", self.mem_threshold),
            ("bw", self.io_bandwidth),
        ] {
            if !v.is_finite() {
                return Err(TypeError::NonFiniteParameter {
                    analysis: "<resources>".into(),
                    parameter: match name {
                        "cth" => "cth",
                        "mth" => "mth",
                        _ => "bw",
                    },
                });
            }
            if v < 0.0 {
                return Err(TypeError::NegativeParameter {
                    analysis: "<resources>".into(),
                    parameter: match name {
                        "cth" => "cth",
                        "mth" => "mth",
                        _ => "bw",
                    },
                    value: v,
                });
            }
        }
        Ok(())
    }
}

impl Default for ResourceConfig {
    /// 1000 steps, 0.1 s/step analysis budget, 16 GiB of analysis memory and
    /// 1 GiB/s of storage bandwidth — a reasonable single-node default.
    fn default() -> Self {
        ResourceConfig::new(1000, 0.1, 16.0 * GIB, GIB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_fraction_matches_table5_arithmetic() {
        // Table 5: 1000 steps, total sim time 646.78 s, 10% threshold
        // => 64.678 s total => 0.064678 s per step.
        let rc = ResourceConfig::from_overhead_fraction(1000, 646.78, 0.10, GIB, GIB);
        assert!((rc.step_threshold - 0.064678).abs() < 1e-9);
        assert!((rc.total_threshold() - 64.678).abs() < 1e-9);
    }

    #[test]
    fn total_threshold_round_trips() {
        let rc = ResourceConfig::from_total_threshold(1000, 200.0, GIB, GIB);
        assert!((rc.total_threshold() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn write_time_uses_bandwidth() {
        let rc = ResourceConfig::new(10, 1.0, GIB, 2.0 * GIB);
        assert!((rc.write_time(GIB) - 0.5).abs() < 1e-12);
        let rc0 = ResourceConfig::new(10, 1.0, GIB, 0.0);
        assert_eq!(rc0.write_time(GIB), 0.0);
    }

    #[test]
    fn validation_catches_zero_steps() {
        let rc = ResourceConfig {
            steps: 0,
            ..ResourceConfig::default()
        };
        assert!(matches!(rc.validate(), Err(TypeError::ZeroSteps)));
    }

    #[test]
    fn default_validates() {
        assert!(ResourceConfig::default().validate().is_ok());
    }
}
