//! Schedules: the decision variables `C` (analysis steps) and `O` (output
//! steps) of the optimization problem, per analysis.

use crate::error::TypeError;
use crate::problem::ScheduleProblem;
use crate::units::Seconds;

/// The schedule of one analysis: which simulation steps it runs after, and
/// at which of those it writes output. Steps are 1-based (step `j` means
/// "after the j-th simulation step"), matching the paper's `j ∈ {1..Steps}`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalysisSchedule {
    /// `C_i` — sorted, deduplicated analysis steps.
    pub analysis_steps: Vec<usize>,
    /// `O_i ⊆ C_i` — sorted, deduplicated output steps.
    pub output_steps: Vec<usize>,
}

impl AnalysisSchedule {
    /// Builds a schedule from (possibly unsorted) step lists.
    pub fn new(mut analysis_steps: Vec<usize>, mut output_steps: Vec<usize>) -> Self {
        analysis_steps.sort_unstable();
        analysis_steps.dedup();
        output_steps.sort_unstable();
        output_steps.dedup();
        AnalysisSchedule {
            analysis_steps,
            output_steps,
        }
    }

    /// `|C_i|` — how many times the analysis runs.
    pub fn count(&self) -> usize {
        self.analysis_steps.len()
    }

    /// `|O_i|` — how many times the analysis writes output.
    pub fn output_count(&self) -> usize {
        self.output_steps.len()
    }

    /// True if the analysis runs after simulation step `j`.
    pub fn runs_at(&self, j: usize) -> bool {
        self.analysis_steps.binary_search(&j).is_ok()
    }

    /// True if the analysis outputs after simulation step `j`.
    pub fn outputs_at(&self, j: usize) -> bool {
        self.output_steps.binary_search(&j).is_ok()
    }

    /// Smallest gap between consecutive analysis steps, or `None` when
    /// fewer than two steps are scheduled.
    pub fn min_gap(&self) -> Option<usize> {
        self.analysis_steps
            .windows(2)
            .map(|w| w[1] - w[0])
            .min()
    }
}

/// A full schedule: one [`AnalysisSchedule`] per candidate analysis, in the
/// same order as [`ScheduleProblem::analyses`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    /// Per-analysis schedules, parallel to the problem's analysis list.
    pub per_analysis: Vec<AnalysisSchedule>,
}

impl Schedule {
    /// An empty schedule (no analysis runs) for `n` analyses.
    pub fn empty(n: usize) -> Self {
        Schedule {
            per_analysis: vec![AnalysisSchedule::default(); n],
        }
    }

    /// The set `A` of the paper: indices of analyses that run at least once.
    pub fn active(&self) -> Vec<usize> {
        (0..self.per_analysis.len())
            .filter(|&i| self.per_analysis[i].count() > 0)
            .collect()
    }

    /// Objective value of Eq. 1: `|A| + Σ_i w_i * |C_i|`.
    pub fn objective(&self, problem: &ScheduleProblem) -> f64 {
        let mut obj = 0.0;
        for (i, s) in self.per_analysis.iter().enumerate() {
            if s.count() > 0 {
                obj += 1.0 + problem.analyses[i].weight * s.count() as f64;
            }
        }
        obj
    }

    /// Total in-situ analysis time under this schedule (left-hand side of
    /// Eq. 4, telescoped): active analyses pay `ft + Steps*it`, plus `ct`
    /// per analysis step and `ot` per output step.
    pub fn total_time(&self, problem: &ScheduleProblem) -> Seconds {
        let steps = problem.resources.steps;
        self.per_analysis
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count() > 0)
            .map(|(i, s)| problem.analyses[i].total_time(steps, s.count(), s.output_count()))
            .sum()
    }

    /// Basic structural validation: steps in range, outputs subset of
    /// analysis steps, one schedule per candidate analysis.
    pub fn validate_structure(&self, problem: &ScheduleProblem) -> Result<(), TypeError> {
        let steps = problem.resources.steps;
        for (i, s) in self.per_analysis.iter().enumerate() {
            let name = &problem.analyses[i].name;
            for &j in s.analysis_steps.iter().chain(&s.output_steps) {
                if j == 0 || j > steps {
                    return Err(TypeError::StepOutOfRange {
                        analysis: name.clone(),
                        step: j,
                        steps,
                    });
                }
            }
            for &j in &s.output_steps {
                if !s.runs_at(j) {
                    return Err(TypeError::OutputWithoutAnalysis {
                        analysis: name.clone(),
                        step: j,
                    });
                }
            }
        }
        Ok(())
    }

    /// Renders a human-readable frequency summary like the paper's tables:
    /// `hydronium rdf (A1): 10x (every ~100 steps), 5 outputs`.
    pub fn summary(&self, problem: &ScheduleProblem) -> String {
        let steps = problem.resources.steps;
        let mut out = String::new();
        for (i, s) in self.per_analysis.iter().enumerate() {
            let name = &problem.analyses[i].name;
            if s.count() == 0 {
                out.push_str(&format!("{name}: not scheduled\n"));
            } else {
                out.push_str(&format!(
                    "{name}: {}x (every ~{} steps), {} outputs\n",
                    s.count(),
                    steps / s.count(),
                    s.output_count()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AnalysisProfile;
    use crate::resources::ResourceConfig;
    use crate::units::GIB;

    fn problem() -> ScheduleProblem {
        ScheduleProblem::new(
            vec![
                AnalysisProfile::new("a")
                    .with_compute(1.0, 0.0)
                    .with_output(0.5, 0.0, 1)
                    .with_weight(2.0),
                AnalysisProfile::new("b")
                    .with_fixed(3.0, 0.0)
                    .with_per_step(0.01, 0.0)
                    .with_compute(2.0, 0.0),
            ],
            ResourceConfig::new(100, 1.0, GIB, GIB),
        )
        .unwrap()
    }

    #[test]
    fn counts_and_membership() {
        let s = AnalysisSchedule::new(vec![30, 10, 20, 20], vec![20]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.output_count(), 1);
        assert!(s.runs_at(20));
        assert!(!s.runs_at(15));
        assert!(s.outputs_at(20));
        assert_eq!(s.min_gap(), Some(10));
    }

    #[test]
    fn objective_matches_eq1() {
        let p = problem();
        let mut sched = Schedule::empty(2);
        sched.per_analysis[0] = AnalysisSchedule::new(vec![10, 20, 30], vec![10, 20, 30]);
        // |A| = 1, w_0 * |C_0| = 2*3 => 7
        assert!((sched.objective(&p) - 7.0).abs() < 1e-12);
        sched.per_analysis[1] = AnalysisSchedule::new(vec![50], vec![]);
        // + 1 + 1*1 => 9
        assert!((sched.objective(&p) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn total_time_matches_eq4_lhs() {
        let p = problem();
        let mut sched = Schedule::empty(2);
        sched.per_analysis[0] = AnalysisSchedule::new(vec![10, 20], vec![20]);
        sched.per_analysis[1] = AnalysisSchedule::new(vec![50], vec![]);
        // a: 2*1.0 + 1*0.5 = 2.5 ; b: 3.0 + 100*0.01 + 2.0 = 6.0
        assert!((sched.total_time(&p) - 8.5).abs() < 1e-12);
    }

    #[test]
    fn inactive_analyses_cost_nothing() {
        let p = problem();
        let sched = Schedule::empty(2);
        assert_eq!(sched.total_time(&p), 0.0);
        assert_eq!(sched.objective(&p), 0.0);
        assert!(sched.active().is_empty());
    }

    #[test]
    fn structure_validation() {
        let p = problem();
        let mut sched = Schedule::empty(2);
        sched.per_analysis[0] = AnalysisSchedule::new(vec![101], vec![]);
        assert!(matches!(
            sched.validate_structure(&p),
            Err(TypeError::StepOutOfRange { .. })
        ));
        let mut sched = Schedule::empty(2);
        sched.per_analysis[0] = AnalysisSchedule::new(vec![10], vec![10]);
        assert!(sched.validate_structure(&p).is_ok());
        sched.per_analysis[0].output_steps = vec![11];
        // bypass constructor to simulate corrupt data
        assert!(matches!(
            sched.validate_structure(&p),
            Err(TypeError::OutputWithoutAnalysis { .. })
        ));
    }

    #[test]
    fn summary_mentions_frequencies() {
        let p = problem();
        let mut sched = Schedule::empty(2);
        sched.per_analysis[0] = AnalysisSchedule::new(vec![25, 50, 75, 100], vec![50, 100]);
        let s = sched.summary(&p);
        assert!(s.contains("a: 4x (every ~25 steps), 2 outputs"));
        assert!(s.contains("b: not scheduled"));
    }
}
