//! `service/v1` wire format of the scheduler-as-a-service tier.
//!
//! A request is a [`ScheduleProblem`] plus a caller-chosen correlation
//! id; a response carries the schedule **in the requester's own analysis
//! order**, the instance fingerprint the service cached it under, how
//! the result was produced ([`ResponseSource`]), and the certification
//! verdict string (`PROVED` / `FEASIBLE-ONLY` — the service never emits
//! `INVALID`; an uncertifiable result becomes an error instead). See
//! `docs/SERVICE.md` for the full contract.

use std::collections::BTreeMap;

use crate::error::TypeError;
use crate::json::{FromJson, ToJson, Value};
use crate::problem::ScheduleProblem;
use crate::schedule::Schedule;

/// Schema tag stamped on every `service/v1` request and response.
pub const SERVICE_SCHEMA: &str = "service/v1";

/// How a response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseSource {
    /// Solved cold: no cached neighbor, no identical in-flight solve.
    Fresh,
    /// Served from the solved-instance cache.
    Hit,
    /// Coalesced onto an identical in-flight solve (one solve, many
    /// waiters).
    Dedup,
    /// Solved, but warm-started from the cached incumbent of the nearest
    /// cached neighbor.
    Warm,
}

impl ResponseSource {
    /// Wire name of the source.
    pub fn as_str(&self) -> &'static str {
        match self {
            ResponseSource::Fresh => "fresh",
            ResponseSource::Hit => "hit",
            ResponseSource::Dedup => "dedup",
            ResponseSource::Warm => "warm",
        }
    }

    /// Parses a wire name back into a source.
    pub fn parse(s: &str) -> Result<Self, TypeError> {
        match s {
            "fresh" => Ok(ResponseSource::Fresh),
            "hit" => Ok(ResponseSource::Hit),
            "dedup" => Ok(ResponseSource::Dedup),
            "warm" => Ok(ResponseSource::Warm),
            other => Err(TypeError::Parse(format!(
                "ResponseSource: unknown source '{other}'"
            ))),
        }
    }
}

impl std::fmt::Display for ResponseSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One solve request on the `service/v1` wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRequest {
    /// Caller-chosen correlation id, echoed back on the response.
    pub id: u64,
    /// The instance to solve, in the caller's own analysis order.
    pub problem: ScheduleProblem,
}

/// One solve response on the `service/v1` wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceResponse {
    /// Correlation id of the request this answers.
    pub id: u64,
    /// Canonical instance fingerprint (32 hex chars) the service keyed
    /// the solve under; identical instances — in any analysis order —
    /// share it.
    pub fingerprint: String,
    /// How the result was produced.
    pub source: ResponseSource,
    /// Certification verdict string (`PROVED` or `FEASIBLE-ONLY`).
    pub verdict: String,
    /// Optimal Eq. 1 objective value.
    pub objective: f64,
    /// The optimal schedule, permuted back into the requester's analysis
    /// order.
    pub schedule: Schedule,
    /// Per-analysis analysis counts `k_i`, requester order.
    pub counts: Vec<usize>,
    /// Per-analysis output counts `q_i`, requester order.
    pub output_counts: Vec<usize>,
    /// Branch-and-bound nodes of the underlying solve (0 for cache hits).
    pub solver_nodes: usize,
    /// Whether the underlying solve's warm-start hint seeded the
    /// incumbent (always `false` for cache hits and cold solves).
    pub hint_accepted: bool,
}

fn check_schema(m: &BTreeMap<String, Value>, ty: &str) -> Result<(), TypeError> {
    let schema = m
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| TypeError::Parse(format!("{ty}: missing field 'schema'")))?;
    if schema != SERVICE_SCHEMA {
        return Err(TypeError::Parse(format!(
            "{ty}: expected schema '{SERVICE_SCHEMA}', got '{schema}'"
        )));
    }
    Ok(())
}

fn req_field<'v>(
    m: &'v BTreeMap<String, Value>,
    ty: &str,
    name: &str,
) -> Result<&'v Value, TypeError> {
    m.get(name)
        .ok_or_else(|| TypeError::Parse(format!("{ty}: missing field '{name}'")))
}

impl ToJson for ServiceRequest {
    fn to_json(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("schema".into(), Value::String(SERVICE_SCHEMA.into()));
        m.insert("id".into(), Value::Number(self.id as f64));
        m.insert("problem".into(), self.problem.to_json());
        Value::Object(m)
    }
}

impl FromJson for ServiceRequest {
    fn from_json(v: &Value) -> Result<Self, TypeError> {
        const TY: &str = "ServiceRequest";
        let m = match v {
            Value::Object(m) => m,
            _ => return Err(TypeError::Parse(format!("{TY}: expected object"))),
        };
        check_schema(m, TY)?;
        Ok(ServiceRequest {
            id: req_field(m, TY, "id")?.expect_usize("id")? as u64,
            problem: ScheduleProblem::from_json(req_field(m, TY, "problem")?)?,
        })
    }
}

impl ToJson for ServiceResponse {
    fn to_json(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("schema".into(), Value::String(SERVICE_SCHEMA.into()));
        m.insert("id".into(), Value::Number(self.id as f64));
        m.insert(
            "fingerprint".into(),
            Value::String(self.fingerprint.clone()),
        );
        m.insert("source".into(), Value::String(self.source.as_str().into()));
        m.insert("verdict".into(), Value::String(self.verdict.clone()));
        m.insert("objective".into(), Value::Number(self.objective));
        m.insert("schedule".into(), self.schedule.to_json());
        m.insert(
            "counts".into(),
            Value::Array(self.counts.iter().map(|&k| Value::Number(k as f64)).collect()),
        );
        m.insert(
            "output_counts".into(),
            Value::Array(
                self.output_counts
                    .iter()
                    .map(|&q| Value::Number(q as f64))
                    .collect(),
            ),
        );
        m.insert(
            "solver_nodes".into(),
            Value::Number(self.solver_nodes as f64),
        );
        m.insert("hint_accepted".into(), Value::Bool(self.hint_accepted));
        Value::Object(m)
    }
}

impl FromJson for ServiceResponse {
    fn from_json(v: &Value) -> Result<Self, TypeError> {
        const TY: &str = "ServiceResponse";
        let m = match v {
            Value::Object(m) => m,
            _ => return Err(TypeError::Parse(format!("{TY}: expected object"))),
        };
        check_schema(m, TY)?;
        let usizes = |name: &str| -> Result<Vec<usize>, TypeError> {
            req_field(m, TY, name)?
                .expect_array(name)?
                .iter()
                .map(|x| x.expect_usize(name))
                .collect()
        };
        Ok(ServiceResponse {
            id: req_field(m, TY, "id")?.expect_usize("id")? as u64,
            fingerprint: req_field(m, TY, "fingerprint")?
                .expect_str("fingerprint")?
                .to_string(),
            source: ResponseSource::parse(req_field(m, TY, "source")?.expect_str("source")?)?,
            verdict: req_field(m, TY, "verdict")?.expect_str("verdict")?.to_string(),
            objective: req_field(m, TY, "objective")?.expect_f64("objective")?,
            schedule: Schedule::from_json(req_field(m, TY, "schedule")?)?,
            counts: usizes("counts")?,
            output_counts: usizes("output_counts")?,
            solver_nodes: req_field(m, TY, "solver_nodes")?.expect_usize("solver_nodes")?,
            hint_accepted: req_field(m, TY, "hint_accepted")?
                .as_bool()
                .ok_or_else(|| TypeError::Parse(format!("{TY}: hint_accepted: expected bool")))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::profile::AnalysisProfile;
    use crate::resources::ResourceConfig;
    use crate::schedule::AnalysisSchedule;

    fn request() -> ServiceRequest {
        ServiceRequest {
            id: 42,
            problem: ScheduleProblem::new(
                vec![AnalysisProfile::new("rdf").with_compute(1.0, 0.0).with_interval(10)],
                ResourceConfig::from_total_threshold(100, 5.0, 1e9, 1e9),
            )
            .unwrap(),
        }
    }

    #[test]
    fn request_round_trips() {
        let r = request();
        let text = json::to_string(&r);
        assert!(text.contains("\"schema\":\"service/v1\""));
        assert_eq!(json::from_str::<ServiceRequest>(&text).unwrap(), r);
    }

    #[test]
    fn response_round_trips() {
        let mut schedule = Schedule::empty(1);
        schedule.per_analysis[0] = AnalysisSchedule::new(vec![50, 100], vec![100]);
        let r = ServiceResponse {
            id: 7,
            fingerprint: "00ff".repeat(8),
            source: ResponseSource::Warm,
            verdict: "PROVED".into(),
            objective: 3.5,
            schedule,
            counts: vec![2],
            output_counts: vec![1],
            solver_nodes: 9,
            hint_accepted: true,
        };
        let text = json::to_string(&r);
        assert_eq!(json::from_str::<ServiceResponse>(&text).unwrap(), r);
    }

    #[test]
    fn wrong_schema_rejected() {
        let mut v = request().to_json();
        if let Value::Object(m) = &mut v {
            m.insert("schema".into(), Value::String("service/v0".into()));
        }
        assert!(ServiceRequest::from_json(&v).is_err());
    }

    #[test]
    fn source_names_round_trip() {
        for s in [
            ResponseSource::Fresh,
            ResponseSource::Hit,
            ResponseSource::Dedup,
            ResponseSource::Warm,
        ] {
            assert_eq!(ResponseSource::parse(s.as_str()).unwrap(), s);
            assert_eq!(format!("{s}"), s.as_str());
        }
        assert!(ResponseSource::parse("nope").is_err());
    }
}
