//! Per-kernel execution telemetry.
//!
//! Every parallelized simulation/analysis kernel records how long it ran,
//! how many threads it used, how the work was chunked and how long the
//! ordered merge of partial results took. The records accumulate on the
//! owning state (`System`, `FlashSim`) or kernel struct and surface in the
//! bench tables and `BENCH_sim.json`.

use crate::json::Value;
use std::collections::BTreeMap;

/// Accumulated telemetry of one kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelRecord {
    /// Number of invocations recorded.
    pub calls: usize,
    /// Threads used by the most recent invocation.
    pub threads: usize,
    /// Chunk count of the most recent invocation.
    pub chunks: usize,
    /// Total wall seconds across all invocations.
    pub wall_s: f64,
    /// Total seconds spent in ordered merges across all invocations.
    pub merge_s: f64,
    /// Scratch buffers freshly allocated across all invocations (pool
    /// misses). Zero in steady state once the kernel's scratch pool is
    /// warm.
    pub scratch_allocs: usize,
    /// Scratch buffers served from the pool across all invocations.
    pub scratch_reuses: usize,
}

impl KernelRecord {
    /// Mean wall seconds per invocation.
    pub fn mean_wall_s(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.wall_s / self.calls as f64
        }
    }
}

/// Telemetry registry: one [`KernelRecord`] per kernel name.
///
/// Kernel names are dotted lowercase identifiers (`md.force`,
/// `hydro.step`, ...); the `BTreeMap` keeps reports and JSON output in a
/// stable order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelTelemetry {
    /// Records keyed by kernel name.
    pub kernels: BTreeMap<String, KernelRecord>,
}

impl KernelTelemetry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one invocation of `kernel`.
    pub fn record(&mut self, kernel: &str, threads: usize, chunks: usize, wall_s: f64, merge_s: f64) {
        let r = self.kernels.entry(kernel.to_string()).or_default();
        r.calls += 1;
        r.threads = threads;
        r.chunks = chunks;
        r.wall_s += wall_s;
        r.merge_s += merge_s;
    }

    /// Adds scratch-pool activity to `kernel` without counting a call.
    /// Kernels call this right after [`KernelTelemetry::record`] with the
    /// pool-counter delta of the invocation, so `BENCH_sim.json` can show
    /// steady-state allocations reaching zero.
    pub fn record_scratch(&mut self, kernel: &str, allocs: usize, reuses: usize) {
        let r = self.kernels.entry(kernel.to_string()).or_default();
        r.scratch_allocs += allocs;
        r.scratch_reuses += reuses;
    }

    /// Record for `kernel`, if any invocation has been recorded.
    pub fn get(&self, kernel: &str) -> Option<&KernelRecord> {
        self.kernels.get(kernel)
    }

    /// Folds another registry into this one (summing calls and times;
    /// threads/chunks take the other's most recent values).
    pub fn merge_from(&mut self, other: &KernelTelemetry) {
        for (name, r) in &other.kernels {
            let mine = self.kernels.entry(name.clone()).or_default();
            mine.calls += r.calls;
            mine.threads = r.threads;
            mine.chunks = r.chunks;
            mine.wall_s += r.wall_s;
            mine.merge_s += r.merge_s;
            mine.scratch_allocs += r.scratch_allocs;
            mine.scratch_reuses += r.scratch_reuses;
        }
    }

    /// Drops all records.
    pub fn clear(&mut self) {
        self.kernels.clear();
    }

    /// Returns the telemetry accumulated *since* `baseline` was cloned
    /// off this registry: per-kernel call counts and times are
    /// subtracted, kernels with no new calls are omitted.
    ///
    /// The coupler snapshots a simulator's telemetry before the run and
    /// uses this to attribute kernel time to the run itself, even when
    /// the same `System`/`FlashSim` instance already ran a calibration
    /// phase.
    pub fn delta_since(&self, baseline: &KernelTelemetry) -> KernelTelemetry {
        let mut out = KernelTelemetry::new();
        for (name, r) in &self.kernels {
            let base = baseline.get(name).copied().unwrap_or_default();
            if r.calls > base.calls {
                out.kernels.insert(
                    name.clone(),
                    KernelRecord {
                        calls: r.calls - base.calls,
                        threads: r.threads,
                        chunks: r.chunks,
                        wall_s: r.wall_s - base.wall_s,
                        merge_s: r.merge_s - base.merge_s,
                        scratch_allocs: r.scratch_allocs - base.scratch_allocs,
                        scratch_reuses: r.scratch_reuses - base.scratch_reuses,
                    },
                );
            }
        }
        out
    }

    /// Exports every kernel record into an [`obs::Registry`] under
    /// `<prefix>.<kernel>.{calls, wall_s, merge_s}` — the adapter that
    /// lets simulation kernels report through the same sink as the
    /// solver and the coupler.
    pub fn export_into(&self, prefix: &str, registry: &obs::Registry) {
        for (name, r) in &self.kernels {
            registry.add(&format!("{prefix}.{name}.calls"), r.calls as u64);
            if r.calls > 0 {
                let mean = r.wall_s / r.calls as f64;
                registry.observe_agg(
                    &format!("{prefix}.{name}.wall_s"),
                    r.wall_s,
                    r.calls as u64,
                    mean,
                    mean,
                );
                registry.observe_agg(
                    &format!("{prefix}.{name}.merge_s"),
                    r.merge_s,
                    r.calls as u64,
                    r.merge_s / r.calls as f64,
                    r.merge_s / r.calls as f64,
                );
            }
        }
    }

    /// Plain-text table: one line per kernel.
    pub fn table(&self) -> String {
        let mut out = String::from(
            "kernel                 calls thr chk   wall(ms)  merge(ms)  alloc reuse\n",
        );
        for (name, r) in &self.kernels {
            out.push_str(&format!(
                "{name:<22} {:>5} {:>3} {:>3} {:>10.3} {:>10.3} {:>6} {:>5}\n",
                r.calls,
                r.threads,
                r.chunks,
                r.wall_s * 1e3,
                r.merge_s * 1e3,
                r.scratch_allocs,
                r.scratch_reuses,
            ));
        }
        out
    }

    /// JSON object keyed by kernel name (the `kernels` field of
    /// `BENCH_sim.json`).
    pub fn to_json(&self) -> Value {
        let mut root = BTreeMap::new();
        for (name, r) in &self.kernels {
            let mut o = BTreeMap::new();
            o.insert("calls".into(), Value::Number(r.calls as f64));
            o.insert("threads".into(), Value::Number(r.threads as f64));
            o.insert("chunks".into(), Value::Number(r.chunks as f64));
            o.insert("wall_ms".into(), Value::Number(r.wall_s * 1e3));
            o.insert("merge_ms".into(), Value::Number(r.merge_s * 1e3));
            o.insert("scratch_allocs".into(), Value::Number(r.scratch_allocs as f64));
            o.insert("scratch_reuses".into(), Value::Number(r.scratch_reuses as f64));
            root.insert(name.clone(), Value::Object(o));
        }
        Value::Object(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut t = KernelTelemetry::new();
        t.record("md.force", 4, 16, 0.5, 0.1);
        t.record("md.force", 2, 16, 0.25, 0.05);
        let r = t.get("md.force").unwrap();
        assert_eq!(r.calls, 2);
        assert_eq!(r.threads, 2, "threads reflect the latest call");
        assert!((r.wall_s - 0.75).abs() < 1e-12);
        assert!((r.mean_wall_s() - 0.375).abs() < 1e-12);
        assert!(t.get("md.rdf").is_none());
    }

    #[test]
    fn merge_from_sums_counterpart() {
        let mut a = KernelTelemetry::new();
        a.record("hydro.step", 1, 8, 1.0, 0.0);
        let mut b = KernelTelemetry::new();
        b.record("hydro.step", 2, 8, 2.0, 0.5);
        b.record("hydro.vorticity", 2, 4, 0.1, 0.0);
        a.merge_from(&b);
        assert_eq!(a.get("hydro.step").unwrap().calls, 2);
        assert!((a.get("hydro.step").unwrap().wall_s - 3.0).abs() < 1e-12);
        assert_eq!(a.kernels.len(), 2);
    }

    #[test]
    fn delta_since_subtracts_the_baseline() {
        let mut t = KernelTelemetry::new();
        t.record("md.force", 4, 16, 0.5, 0.1);
        let baseline = t.clone();
        t.record("md.force", 4, 16, 0.25, 0.05);
        t.record("md.rdf", 4, 8, 0.2, 0.0);
        let d = t.delta_since(&baseline);
        let force = d.get("md.force").unwrap();
        assert_eq!(force.calls, 1);
        assert!((force.wall_s - 0.25).abs() < 1e-12);
        assert!((force.merge_s - 0.05).abs() < 1e-12);
        assert_eq!(d.get("md.rdf").unwrap().calls, 1);
        // a kernel with no new calls is omitted entirely
        assert!(t.delta_since(&t.clone()).kernels.is_empty());
    }

    #[test]
    fn export_into_populates_the_registry() {
        let mut t = KernelTelemetry::new();
        t.record("md.force", 4, 16, 0.5, 0.1);
        t.record("md.force", 4, 16, 0.3, 0.1);
        let reg = obs::Registry::new();
        t.export_into("sim", &reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim.md.force.calls"), Some(2));
        let wall = snap.meter("sim.md.force.wall_s").unwrap();
        assert_eq!(wall.count, 2);
        assert!((wall.sum - 0.8).abs() < 1e-12);
    }

    #[test]
    fn scratch_counters_accumulate_and_delta() {
        let mut t = KernelTelemetry::new();
        t.record("md.force", 1, 8, 0.1, 0.0);
        t.record_scratch("md.force", 24, 0); // cold step: all misses
        let baseline = t.clone();
        t.record("md.force", 1, 8, 0.1, 0.0);
        t.record_scratch("md.force", 0, 24); // warm step: all reuses
        let r = t.get("md.force").unwrap();
        assert_eq!((r.scratch_allocs, r.scratch_reuses), (24, 24));
        let d = t.delta_since(&baseline);
        let dr = d.get("md.force").unwrap();
        assert_eq!((dr.scratch_allocs, dr.scratch_reuses), (0, 24));
        let mut merged = KernelTelemetry::new();
        merged.merge_from(&t);
        assert_eq!(merged.get("md.force").unwrap().scratch_allocs, 24);
        assert!(t.table().contains("alloc"));
        assert!(t.to_json().to_string_pretty().contains("\"scratch_allocs\""));
    }

    #[test]
    fn table_and_json_render_all_kernels() {
        let mut t = KernelTelemetry::new();
        t.record("md.force", 4, 16, 0.5, 0.1);
        t.record("md.rdf", 4, 8, 0.2, 0.02);
        let table = t.table();
        assert!(table.contains("md.force") && table.contains("md.rdf"));
        let json = t.to_json().to_string_pretty();
        assert!(json.contains("\"wall_ms\""));
        Value::parse(&json).expect("valid JSON");
        t.clear();
        assert!(t.kernels.is_empty());
    }
}
