//! The Figure-1 coupling-trace notation.
//!
//! The paper illustrates a schedule as a string over the alphabet
//! `S` (simulation step), `Os` (simulation output), `A` (analysis step) and
//! `Oa` (analysis output):
//!
//! ```text
//! S S S S A Oa S S S A Oa S S Os S S A S S S Os S A Oa S S S
//! ```
//!
//! [`CouplingTrace`] renders a [`Schedule`] in this notation and parses it
//! back, which gives tests a compact, human-auditable fixture format.

use crate::error::TypeError;
use crate::schedule::{AnalysisSchedule, Schedule};

/// One event in the coupling trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// A simulation time step.
    Sim,
    /// Simulation writes its own output (`O_S`).
    SimOutput,
    /// Analysis `i` runs (`A`).
    Analysis(usize),
    /// Analysis `i` writes output (`O_A`).
    AnalysisOutput(usize),
}

/// A linearized schedule: the exact sequence of simulation / analysis /
/// output events, in execution order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CouplingTrace {
    /// Events in execution order.
    pub events: Vec<StepEvent>,
}

impl CouplingTrace {
    /// Linearizes a [`Schedule`] over `steps` simulation steps, with the
    /// simulation itself writing output every `sim_output_every` steps
    /// (`0` = never). After each simulation step the events are ordered:
    /// simulation output first, then for each analysis (in index order) its
    /// analysis event followed by its output event.
    pub fn from_schedule(schedule: &Schedule, steps: usize, sim_output_every: usize) -> Self {
        let mut events = Vec::with_capacity(steps + steps / 4);
        for j in 1..=steps {
            events.push(StepEvent::Sim);
            if sim_output_every > 0 && j % sim_output_every == 0 {
                events.push(StepEvent::SimOutput);
            }
            for (i, s) in schedule.per_analysis.iter().enumerate() {
                if s.runs_at(j) {
                    events.push(StepEvent::Analysis(i));
                    if s.outputs_at(j) {
                        events.push(StepEvent::AnalysisOutput(i));
                    }
                }
            }
        }
        CouplingTrace { events }
    }

    /// Reconstructs the per-analysis schedule from the event stream.
    /// `n` is the number of candidate analyses.
    pub fn to_schedule(&self, n: usize) -> Schedule {
        let mut analysis_steps = vec![Vec::new(); n];
        let mut output_steps = vec![Vec::new(); n];
        let mut j = 0usize;
        for e in &self.events {
            match *e {
                StepEvent::Sim => j += 1,
                StepEvent::SimOutput => {}
                StepEvent::Analysis(i) => analysis_steps[i].push(j),
                StepEvent::AnalysisOutput(i) => output_steps[i].push(j),
            }
        }
        Schedule {
            per_analysis: analysis_steps
                .into_iter()
                .zip(output_steps)
                .map(|(a, o)| AnalysisSchedule::new(a, o))
                .collect(),
        }
    }

    /// Number of simulation steps in the trace.
    pub fn sim_steps(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, StepEvent::Sim))
            .count()
    }

    /// Renders the Figure-1 string. Analyses are numbered when there is more
    /// than one: `A1 Oa1 ...`; a single analysis prints bare `A Oa`.
    pub fn render(&self) -> String {
        let multi = self
            .events
            .iter()
            .any(|e| matches!(e, StepEvent::Analysis(i) | StepEvent::AnalysisOutput(i) if *i > 0));
        let mut parts = Vec::with_capacity(self.events.len());
        for e in &self.events {
            parts.push(match *e {
                StepEvent::Sim => "S".to_string(),
                StepEvent::SimOutput => "Os".to_string(),
                StepEvent::Analysis(i) => {
                    if multi {
                        format!("A{}", i + 1)
                    } else {
                        "A".to_string()
                    }
                }
                StepEvent::AnalysisOutput(i) => {
                    if multi {
                        format!("Oa{}", i + 1)
                    } else {
                        "Oa".to_string()
                    }
                }
            });
        }
        parts.join(" ")
    }

    /// Parses a trace rendered by [`CouplingTrace::render`]. Bare `A` / `Oa`
    /// tokens refer to analysis 0.
    pub fn parse(text: &str) -> Result<Self, TypeError> {
        let mut events = Vec::new();
        for tok in text.split_whitespace() {
            let e = if tok == "S" {
                StepEvent::Sim
            } else if tok == "Os" {
                StepEvent::SimOutput
            } else if let Some(rest) = tok.strip_prefix("Oa") {
                let i = if rest.is_empty() {
                    0
                } else {
                    rest.parse::<usize>()
                        .map_err(|_| TypeError::TraceParse(format!("bad token `{tok}`")))?
                        .checked_sub(1)
                        .ok_or_else(|| TypeError::TraceParse(format!("bad token `{tok}`")))?
                };
                StepEvent::AnalysisOutput(i)
            } else if let Some(rest) = tok.strip_prefix('A') {
                let i = if rest.is_empty() {
                    0
                } else {
                    rest.parse::<usize>()
                        .map_err(|_| TypeError::TraceParse(format!("bad token `{tok}`")))?
                        .checked_sub(1)
                        .ok_or_else(|| TypeError::TraceParse(format!("bad token `{tok}`")))?
                };
                StepEvent::Analysis(i)
            } else {
                return Err(TypeError::TraceParse(format!("unknown token `{tok}`")));
            };
            events.push(e);
        }
        Ok(CouplingTrace { events })
    }
}

impl std::fmt::Display for CouplingTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure-1 caption: analysis every 4 simulation steps, analysis
    /// output every 2 analysis steps, simulation output every 5 steps.
    fn figure1_schedule() -> Schedule {
        let mut s = Schedule::empty(1);
        s.per_analysis[0] =
            AnalysisSchedule::new(vec![4, 8, 12, 16, 20], vec![8, 16]);
        s
    }

    #[test]
    fn figure1_trace_renders_expected_pattern() {
        let trace = CouplingTrace::from_schedule(&figure1_schedule(), 20, 5);
        let s = trace.render();
        assert!(s.starts_with("S S S S A S Os"));
        // analysis output appears exactly at the 2nd and 4th analyses
        assert_eq!(s.matches("Oa").count(), 2);
        assert_eq!(s.matches('A').count(), 5);
        assert_eq!(trace.sim_steps(), 20);
    }

    #[test]
    fn round_trip_through_text() {
        let sched = figure1_schedule();
        let trace = CouplingTrace::from_schedule(&sched, 20, 5);
        let parsed = CouplingTrace::parse(&trace.render()).unwrap();
        assert_eq!(parsed, trace);
        assert_eq!(parsed.to_schedule(1), sched);
    }

    #[test]
    fn multi_analysis_tokens_are_numbered() {
        let mut sched = Schedule::empty(2);
        sched.per_analysis[0] = AnalysisSchedule::new(vec![2], vec![2]);
        sched.per_analysis[1] = AnalysisSchedule::new(vec![3], vec![]);
        let trace = CouplingTrace::from_schedule(&sched, 3, 0);
        let s = trace.render();
        assert_eq!(s, "S S A1 Oa1 S A2");
        let back = CouplingTrace::parse(&s).unwrap().to_schedule(2);
        assert_eq!(back, sched);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CouplingTrace::parse("S S X").is_err());
        assert!(CouplingTrace::parse("A0").is_err());
        assert!(CouplingTrace::parse("Aq").is_err());
    }

    #[test]
    fn sim_output_events_do_not_advance_analysis_steps() {
        let trace = CouplingTrace::parse("S Os S A").unwrap();
        let sched = trace.to_schedule(1);
        assert_eq!(sched.per_analysis[0].analysis_steps, vec![2]);
    }
}
