//! Unit conventions used across the workspace.
//!
//! Times are plain `f64` seconds and memory sizes plain `f64` bytes: the
//! optimization model is a *linear* program over these quantities, so
//! arithmetic-friendly floats beat strongly-typed wrappers here. The aliases
//! document intent at API boundaries.

/// A duration in seconds.
pub type Seconds = f64;

/// A memory size in bytes (fractional bytes arise from model arithmetic).
pub type Bytes = f64;

/// One kibibyte in bytes.
pub const KIB: Bytes = 1024.0;
/// One mebibyte in bytes.
pub const MIB: Bytes = 1024.0 * 1024.0;
/// One gibibyte in bytes.
pub const GIB: Bytes = 1024.0 * 1024.0 * 1024.0;

/// Formats a byte count with a human-friendly binary suffix.
pub fn fmt_bytes(b: Bytes) -> String {
    let abs = b.abs();
    if abs >= GIB {
        format!("{:.2} GiB", b / GIB)
    } else if abs >= MIB {
        format!("{:.2} MiB", b / MIB)
    } else if abs >= KIB {
        format!("{:.2} KiB", b / KIB)
    } else {
        format!("{:.0} B", b)
    }
}

/// Formats a duration with a sensible unit (s / ms / µs).
pub fn fmt_seconds(s: Seconds) -> String {
    let abs = s.abs();
    if abs >= 1.0 {
        format!("{:.2} s", s)
    } else if abs >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting_picks_unit() {
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(2048.0), "2.00 KiB");
        assert_eq!(fmt_bytes(3.5 * MIB), "3.50 MiB");
        assert_eq!(fmt_bytes(91.0 * GIB), "91.00 GiB");
    }

    #[test]
    fn second_formatting_picks_unit() {
        assert_eq!(fmt_seconds(2.3), "2.30 s");
        assert_eq!(fmt_seconds(0.0023), "2.30 ms");
        assert_eq!(fmt_seconds(0.0000023), "2.30 µs");
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(MIB, KIB * 1024.0);
        assert_eq!(GIB, MIB * 1024.0);
    }
}
