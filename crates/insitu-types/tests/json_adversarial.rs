//! Adversarial tests for the hand-rolled JSON module: hostile numbers,
//! hostile nesting, hostile strings, and truncated/trailing input. The
//! profiles database and the certificate corpus are both parsed with this
//! code, so "garbage in" must always mean `Err`, never a panic, an abort,
//! or a silently-wrong value.

use insitu_types::json::{self, Value, MAX_DEPTH};
use insitu_types::{AnalysisProfile, ScheduleProblem};

#[test]
fn nan_and_inf_literals_rejected() {
    // JSON has no NaN/Infinity literals; they must not sneak in as idents
    for text in ["NaN", "nan", "Infinity", "-Infinity", "inf", "[NaN]"] {
        assert!(Value::parse(text).is_err(), "{text} must be rejected");
    }
}

#[test]
fn overflowing_exponents_rejected() {
    // Rust's f64 parser maps these to +/-inf; the JSON layer must refuse
    for text in ["1e999", "-1e999", "1e308999", "[1, 2, 1e999]"] {
        let r = Value::parse(text);
        assert!(r.is_err(), "{text} must be rejected, got {r:?}");
    }
    // near the edge of the representable range both sides behave sanely
    assert!(Value::parse("1e308").is_ok());
    assert!(Value::parse("1e309").is_err());
    // underflow to zero is representable, hence fine
    assert_eq!(Value::parse("1e-999").unwrap(), Value::Number(0.0));
}

#[test]
fn huge_integer_digit_strings_do_not_panic() {
    // 39+ digits overflow i128; 20+ overflow u64. The parser holds numbers
    // as f64, so these must parse (lossily) without panicking...
    let big = "123456789012345678901234567890123456789012345678";
    let v = Value::parse(big).unwrap();
    match v {
        Value::Number(n) => assert!(n.is_finite() && n > 1e47),
        other => panic!("expected number, got {other:?}"),
    }
    // ...but must be rejected where an exact integer is required
    let doc = format!(
        r#"{{"analysis_steps":[{big}],"output_steps":[]}}"#
    );
    assert!(
        json::from_str::<insitu_types::AnalysisSchedule>(&doc).is_err(),
        "usize field must reject a 48-digit integer"
    );
    // fractional and negative step indices are rejected too
    for steps in ["[1.5]", "[-1]"] {
        let doc = format!(r#"{{"analysis_steps":{steps},"output_steps":[]}}"#);
        assert!(json::from_str::<insitu_types::AnalysisSchedule>(&doc).is_err());
    }
}

#[test]
fn deep_nesting_is_an_error_not_a_stack_overflow() {
    // one past the limit fails cleanly
    let too_deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
    assert!(Value::parse(&too_deep).is_err());
    // ludicrous depth (would smash the stack without the limit) also fails
    let hostile = "[".repeat(100_000);
    assert!(Value::parse(&hostile).is_err());
    // mixed object/array nesting counts every level
    let mixed = "{\"a\":".repeat(MAX_DEPTH + 1) + "1" + &"}".repeat(MAX_DEPTH + 1);
    assert!(Value::parse(&mixed).is_err());
    // at the limit it still works
    let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
    let v = Value::parse(&ok).unwrap();
    assert_eq!(Value::parse(&v.to_string()).unwrap(), v);
}

#[test]
fn trailing_garbage_detected() {
    for text in [
        "{} x",
        "[1] [2]",
        "1 2",
        "null,",
        "truefalse",
        "\"s\" trailing",
        "{\"a\":1}}",
    ] {
        assert!(Value::parse(text).is_err(), "{text} must be rejected");
    }
}

#[test]
fn truncated_documents_rejected() {
    let full = json::to_string(&AnalysisProfile::new("x").with_compute(1.0, 2.0));
    // every proper prefix of a valid document must fail to parse
    for end in 1..full.len() {
        assert!(
            Value::parse(&full[..end]).is_err(),
            "prefix of len {end} parsed: {}",
            &full[..end]
        );
    }
}

#[test]
fn hostile_escapes_rejected() {
    for text in [
        r#""\x41""#,      // unknown escape
        r#""\u12""#,      // truncated \u
        r#""\u12zz""#,    // non-hex \u
        r#""\ud800""#,    // lone surrogate -> not a valid char
        "\"\\",           // escape at EOF
    ] {
        assert!(Value::parse(text).is_err(), "{text} must be rejected");
    }
}

#[test]
fn structural_type_confusion_rejected() {
    // right field names, wrong value types
    for doc in [
        r#"{"analyses":{},"resources":{"steps":1,"step_threshold":1,"mem_threshold":1,"io_bandwidth":1}}"#,
        r#"{"analyses":[],"resources":[]}"#,
        r#"{"analyses":[17],"resources":{"steps":1,"step_threshold":1,"mem_threshold":1,"io_bandwidth":1}}"#,
    ] {
        assert!(json::from_str::<ScheduleProblem>(doc).is_err(), "{doc}");
    }
}

#[test]
fn duplicate_keys_last_one_wins_deterministically() {
    // Not an error (matching common JSON practice), but must be
    // deterministic: the later binding wins via BTreeMap::insert.
    let v = Value::parse(r#"{"a":1,"a":2}"#).unwrap();
    match v {
        Value::Object(m) => assert_eq!(m.get("a"), Some(&Value::Number(2.0))),
        other => panic!("expected object, got {other:?}"),
    }
}

#[test]
fn non_utf8_inside_string_rejected() {
    // build a byte-invalid document: 0xFF inside a string literal
    let bytes = [b'"', 0xFF, b'"'];
    // SAFETY dance avoided: go through from_utf8_lossy? No — Value::parse
    // takes &str, so invalid UTF-8 cannot even reach it. Instead check the
    // escape path: \u0000 (NUL) is a valid code point and must round-trip.
    assert_eq!(bytes.len(), 3); // keep the construction honest
    let v = Value::parse("\"\\u0000\"").unwrap();
    assert_eq!(v, Value::String("\u{0}".into()));
    assert_eq!(Value::parse(&v.to_string()).unwrap(), v);
}
