//! Property tests on the Figure-1 coupling-trace notation and schedules.

use insitu_types::{AnalysisSchedule, CouplingTrace, Schedule};
use proptest::prelude::*;

/// Random schedules over up to 4 analyses and up to 40 steps.
fn arb_schedule() -> impl Strategy<Value = (Schedule, usize)> {
    (1usize..5, 5usize..40).prop_flat_map(|(n, steps)| {
        let per = prop::collection::vec(
            (
                prop::collection::vec(1..=steps, 0..8),
                prop::collection::vec(any::<bool>(), 8),
            ),
            n,
        );
        per.prop_map(move |entries| {
            let mut s = Schedule::empty(n);
            for (i, (asteps, oflags)) in entries.into_iter().enumerate() {
                let outputs: Vec<usize> = asteps
                    .iter()
                    .zip(&oflags)
                    .filter(|&(_, &o)| o)
                    .map(|(&j, _)| j)
                    .collect();
                s.per_analysis[i] = AnalysisSchedule::new(asteps, outputs);
            }
            (s, steps)
        })
    })
}

proptest! {
    #[test]
    fn trace_round_trips((schedule, steps) in arb_schedule(), sim_out in 0usize..7) {
        let trace = CouplingTrace::from_schedule(&schedule, steps, sim_out);
        prop_assert_eq!(trace.sim_steps(), steps);
        let text = trace.render();
        let parsed = CouplingTrace::parse(&text).unwrap();
        prop_assert_eq!(&parsed, &trace);
        let back = parsed.to_schedule(schedule.per_analysis.len());
        prop_assert_eq!(back, schedule);
    }

    #[test]
    fn schedules_are_canonical((schedule, _steps) in arb_schedule()) {
        for s in &schedule.per_analysis {
            // sorted and deduplicated
            prop_assert!(s.analysis_steps.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(s.output_steps.windows(2).all(|w| w[0] < w[1]));
            // outputs are a subset of analysis steps by construction here
            for &o in &s.output_steps {
                prop_assert!(s.runs_at(o));
            }
            // min_gap consistent with the raw list
            if let Some(g) = s.min_gap() {
                prop_assert!(g >= 1);
                prop_assert!(s.analysis_steps.windows(2).any(|w| w[1] - w[0] == g));
            }
        }
    }

    #[test]
    fn active_set_matches_counts((schedule, _steps) in arb_schedule()) {
        let active = schedule.active();
        for (i, s) in schedule.per_analysis.iter().enumerate() {
            prop_assert_eq!(active.contains(&i), s.count() > 0);
        }
    }
}
