//! JSON round-trips: profiles measured on one machine can be stored and
//! re-used as a profiling database for later scheduling runs.

use insitu_types::json;
use insitu_types::{AnalysisProfile, ResourceConfig, Schedule, ScheduleProblem};

fn sample_problem() -> ScheduleProblem {
    ScheduleProblem::new(
        vec![
            AnalysisProfile::new("rdf (A1)")
                .with_compute(0.07, 1e8)
                .with_output(0.005, 1e7, 1)
                .with_interval(100),
            AnalysisProfile::new("msd (A4)")
                .with_fixed(0.5, 1e9)
                .with_per_step(0.001, 1e6)
                .with_compute(25.0, 2e9)
                .with_output(5.0, 5e8, 2)
                .with_weight(2.0)
                .with_interval(100),
        ],
        ResourceConfig::from_total_threshold(1000, 64.7, 1e12, 1e9),
    )
    .unwrap()
}

#[test]
fn problem_round_trips_through_json() {
    let p = sample_problem();
    let text = json::to_string_pretty(&p);
    assert!(text.contains("msd (A4)"));
    assert!(text.contains("compute_time"));
    let back: ScheduleProblem = json::from_str(&text).unwrap();
    assert_eq!(back, p);
    assert!(back.validate().is_ok());
}

#[test]
fn schedule_round_trips_through_json() {
    let mut s = Schedule::empty(2);
    s.per_analysis[0] = insitu_types::AnalysisSchedule::new(vec![100, 200, 300], vec![300]);
    let text = json::to_string(&s);
    let back: Schedule = json::from_str(&text).unwrap();
    assert_eq!(back, s);
    assert_eq!(back.per_analysis[0].count(), 3);
}

#[test]
fn profile_fields_preserve_table1_names_in_code() {
    // guard: the serialized field names stay stable for external tooling
    let a = AnalysisProfile::new("x").with_compute(1.0, 2.0);
    let text = json::to_string(&a);
    for field in [
        "fixed_time",
        "step_time",
        "compute_time",
        "output_time",
        "fixed_mem",
        "step_mem",
        "compute_mem",
        "output_mem",
        "weight",
        "min_interval",
        "output_every",
    ] {
        assert!(text.contains(field), "missing field {field}: {text}");
    }
}

#[test]
fn malformed_json_is_rejected_with_context() {
    let err = json::from_str::<ScheduleProblem>("{\"analyses\": []}").unwrap_err();
    assert!(err.to_string().contains("resources"), "{err}");
    assert!(json::from_str::<Schedule>("[1,2,3]").is_err());
    assert!(json::from_str::<AnalysisProfile>("{").is_err());
}
