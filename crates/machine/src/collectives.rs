//! Latency–bandwidth cost models for MPI collectives.
//!
//! The analyses the paper schedules use collective communication —
//! `MPI_Allreduce` dominates (histogram merges, error norms). §4 of the
//! paper observes that the number of hops of a collective is proportional
//! to the network **diameter**, and uses the diameter as the y-variable of
//! its communication-time interpolation. This module provides the analytic
//! forward model with the same structure:
//!
//! ```text
//! T_coll(bytes, P) = software_latency * ceil(log2 P)
//!                  + hop_latency      * diameter
//!                  + bytes * chunks   / link_bandwidth
//!                  + bytes * reduce_cost                (reductions only)
//! ```

use crate::topology::Torus;

/// Tunable constants of the collective model. Defaults approximate a BG/Q:
/// ~2 µs software overhead per tree level, ~40 ns per hop, 2 GB/s per link
/// (the BG/Q torus link is 2 GB/s per direction), and ~0.5 ns/byte combine
/// cost for reductions.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveModel {
    /// Per-tree-level software latency (seconds).
    pub software_latency: f64,
    /// Per-hop wire latency (seconds).
    pub hop_latency: f64,
    /// Per-link bandwidth (bytes/second).
    pub link_bandwidth: f64,
    /// Per-byte reduction (combine) cost (seconds/byte).
    pub reduce_cost: f64,
}

impl Default for CollectiveModel {
    fn default() -> Self {
        CollectiveModel {
            software_latency: 2.0e-6,
            hop_latency: 40.0e-9,
            link_bandwidth: 2.0e9,
            reduce_cost: 0.5e-9,
        }
    }
}

impl CollectiveModel {
    fn latency(&self, procs: usize, topo: &Torus) -> f64 {
        let levels = (procs.max(2) as f64).log2().ceil();
        self.software_latency * levels + self.hop_latency * topo.diameter() as f64
    }

    /// Time for a barrier (pure latency).
    pub fn barrier(&self, procs: usize, topo: &Torus) -> f64 {
        self.latency(procs, topo)
    }

    /// Time for a broadcast of `bytes` from one rank to all.
    pub fn bcast(&self, bytes: f64, procs: usize, topo: &Torus) -> f64 {
        self.latency(procs, topo) + bytes / self.link_bandwidth
    }

    /// Time for a reduce of `bytes` per rank to the root.
    pub fn reduce(&self, bytes: f64, procs: usize, topo: &Torus) -> f64 {
        self.latency(procs, topo) + bytes / self.link_bandwidth + bytes * self.reduce_cost
    }

    /// Time for an allreduce of `bytes` per rank (reduce + broadcast along
    /// the same spanning tree; BG/Q does this in-network, hence a single
    /// bandwidth term with a 2x latency factor).
    pub fn allreduce(&self, bytes: f64, procs: usize, topo: &Torus) -> f64 {
        2.0 * self.latency(procs, topo) + bytes / self.link_bandwidth + bytes * self.reduce_cost
    }

    /// Time for an allgather where every rank contributes `bytes`
    /// (ring algorithm: (P-1)/P of the total data crosses each link).
    pub fn allgather(&self, bytes: f64, procs: usize, topo: &Torus) -> f64 {
        let p = procs.max(1) as f64;
        self.latency(procs, topo) + bytes * (p - 1.0) / self.link_bandwidth
    }

    /// Time for an all-to-all personalized exchange of `bytes` per pair.
    /// Bisection-limited: half the traffic crosses the bisection.
    pub fn alltoall(&self, bytes_per_pair: f64, procs: usize, topo: &Torus) -> f64 {
        let p = procs.max(1) as f64;
        let total = bytes_per_pair * p * p / 2.0;
        let bis_bw = topo.bisection_links() as f64 * self.link_bandwidth;
        self.latency(procs, topo) + total / bis_bw.max(self.link_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(nodes: usize) -> Torus {
        Torus::bgq_partition(nodes).unwrap()
    }

    #[test]
    fn allreduce_grows_with_diameter() {
        let m = CollectiveModel::default();
        let small = m.allreduce(8.0, 2048 * 16, &topo(2048));
        let large = m.allreduce(8.0, 32768 * 16, &topo(32768));
        assert!(large > small, "{large} <= {small}");
    }

    #[test]
    fn allreduce_grows_with_message_size() {
        let m = CollectiveModel::default();
        let t = topo(1024);
        let a = m.allreduce(1024.0, 1024, &t);
        let b = m.allreduce(1024.0 * 1024.0, 1024, &t);
        assert!(b > a);
    }

    #[test]
    fn allreduce_costs_more_than_reduce() {
        let m = CollectiveModel::default();
        let t = topo(512);
        assert!(m.allreduce(4096.0, 512, &t) > m.reduce(4096.0, 512, &t));
    }

    #[test]
    fn barrier_is_pure_latency() {
        let m = CollectiveModel::default();
        let t = topo(512);
        assert!(m.barrier(512, &t) < m.bcast(1e6, 512, &t));
        assert!(m.barrier(512, &t) > 0.0);
    }

    #[test]
    fn allgather_scales_with_procs() {
        let m = CollectiveModel::default();
        let t = topo(512);
        let a = m.allgather(1024.0, 16, &t);
        let b = m.allgather(1024.0, 8192, &t);
        assert!(b > a);
    }

    #[test]
    fn alltoall_bisection_limited() {
        let m = CollectiveModel::default();
        let t = topo(1024);
        // doubling per-pair bytes roughly doubles the bandwidth term
        let a = m.alltoall(64.0, 1024, &t);
        let b = m.alltoall(128.0, 1024, &t);
        assert!(b > a && b < 2.5 * a);
    }

    #[test]
    fn microsecond_scale_sanity() {
        // an 8-byte allreduce on a midplane should be tens of microseconds
        let m = CollectiveModel::default();
        let t = m.allreduce(8.0, 512 * 16, &topo(512));
        assert!(t > 1e-6 && t < 1e-3, "{t}");
    }
}
