//! Discrete-event replay of a coupled simulation+analysis run.
//!
//! The analytic formulation (Eq. 4) accounts for in-situ analysis time as
//! a straight sum because in-situ analyses *block* the simulation. This
//! module replays a [`Schedule`] through a small discrete-event engine
//! with three resources —
//!
//! * the **simulation partition** (sequential: steps, in-situ analyses,
//!   output writes and transfer sends serialize on it),
//! * the **network link** to staging (FIFO),
//! * the **staging partition** (a parallel server pool),
//!
//! — which (a) independently validates the analytic accounting for pure
//! in-situ schedules, and (b) quantifies the *overlap* benefit when
//! analyses are offloaded in-transit (the [`crate::machine`]-level view of
//! the co-scheduling extension): staging compute runs concurrently with
//! the simulation, so the makespan can beat the serialized sum.

use insitu_types::Schedule;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Where an analysis executes during replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplaySite {
    /// Blocks the simulation (base paper model).
    InSitu,
    /// Ships input over the link, computes on staging.
    InTransit,
}

/// Per-analysis replay costs.
#[derive(Debug, Clone)]
pub struct ReplayCost {
    /// Where it runs.
    pub site: ReplaySite,
    /// Blocking per-simulation-step cost (`it`).
    pub step_time: f64,
    /// In-situ compute (`ct`) or, for in-transit, the *staging* compute.
    pub compute_time: f64,
    /// Output write time (`ot`, always paid by the simulation side).
    pub output_time: f64,
    /// Transfer time per analysis step (in-transit only; paid by the
    /// simulation while sending, then the link is released).
    pub transfer_time: f64,
}

/// Aggregate replay outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// When the simulation partition finished its last action.
    pub sim_finish: f64,
    /// When staging finished its last analysis.
    pub staging_finish: f64,
    /// Total busy time of the simulation partition spent on analyses,
    /// transfers and analysis output (the Eq.-4 LHS analog).
    pub sim_analysis_busy: f64,
    /// Total staging busy time.
    pub staging_busy: f64,
    /// Peak number of queued-but-unstarted staging jobs.
    pub staging_queue_peak: usize,
}

impl ReplayReport {
    /// End-to-end makespan.
    pub fn makespan(&self) -> f64 {
        self.sim_finish.max(self.staging_finish)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct StagingDone {
    at: f64,
}
impl Eq for StagingDone {}
impl PartialOrd for StagingDone {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for StagingDone {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap by completion time
        other
            .at
            .partial_cmp(&self.at)
            .unwrap_or(Ordering::Equal)
    }
}

/// Replays `schedule` over `steps` simulation steps.
///
/// * `sim_step_time` — seconds per simulation step,
/// * `costs` — one [`ReplayCost`] per analysis (parallel to the schedule),
/// * `staging_slots` — number of concurrent staging servers (>= 1 when any
///   analysis is in-transit).
pub fn replay(
    schedule: &Schedule,
    steps: usize,
    sim_step_time: f64,
    costs: &[ReplayCost],
    staging_slots: usize,
) -> ReplayReport {
    assert_eq!(
        costs.len(),
        schedule.per_analysis.len(),
        "one ReplayCost per analysis"
    );
    let active: Vec<bool> = schedule
        .per_analysis
        .iter()
        .map(|s| s.count() > 0)
        .collect();
    let mut clock = 0.0f64; // simulation partition clock
    let mut sim_analysis_busy = 0.0f64;
    let mut staging_busy = 0.0f64;
    let mut staging_finish = 0.0f64;
    // running staging jobs as a min-heap of completion times
    let mut running: BinaryHeap<StagingDone> = BinaryHeap::new();
    let mut queued: Vec<f64> = Vec::new(); // durations waiting for a slot
    let mut staging_queue_peak = 0usize;

    let start_ready_jobs = |clock: f64,
                            running: &mut BinaryHeap<StagingDone>,
                            queued: &mut Vec<f64>,
                            staging_busy: &mut f64,
                            staging_finish: &mut f64| {
        // free finished servers
        while let Some(top) = running.peek() {
            if top.at <= clock {
                running.pop();
            } else {
                break;
            }
        }
        while running.len() < staging_slots && !queued.is_empty() {
            let dur = queued.remove(0);
            let done = clock + dur;
            *staging_busy += dur;
            *staging_finish = staging_finish.max(done);
            running.push(StagingDone { at: done });
        }
    };

    for j in 1..=steps {
        clock += sim_step_time;
        // per-step facilitation costs of active analyses
        for (i, c) in costs.iter().enumerate() {
            if active[i] && c.step_time > 0.0 {
                clock += c.step_time;
                sim_analysis_busy += c.step_time;
            }
        }
        for (i, sched) in schedule.per_analysis.iter().enumerate() {
            if !sched.runs_at(j) {
                continue;
            }
            let c = &costs[i];
            match c.site {
                ReplaySite::InSitu => {
                    clock += c.compute_time;
                    sim_analysis_busy += c.compute_time;
                }
                ReplaySite::InTransit => {
                    // the simulation blocks while sending, then hands off
                    clock += c.transfer_time;
                    sim_analysis_busy += c.transfer_time;
                    queued.push(c.compute_time);
                }
            }
            if sched.outputs_at(j) {
                clock += c.output_time;
                sim_analysis_busy += c.output_time;
            }
            start_ready_jobs(
                clock,
                &mut running,
                &mut queued,
                &mut staging_busy,
                &mut staging_finish,
            );
            staging_queue_peak = staging_queue_peak.max(queued.len());
        }
    }
    // drain the staging queue after the simulation ends
    let mut drain_clock = clock;
    while !queued.is_empty() || !running.is_empty() {
        start_ready_jobs(
            drain_clock,
            &mut running,
            &mut queued,
            &mut staging_busy,
            &mut staging_finish,
        );
        match running.peek() {
            Some(top) => drain_clock = drain_clock.max(top.at),
            None if queued.is_empty() => break,
            None => {}
        }
        // free at least the earliest completion each iteration
        if let Some(top) = running.pop() {
            drain_clock = drain_clock.max(top.at);
        }
    }

    ReplayReport {
        sim_finish: clock,
        staging_finish,
        sim_analysis_busy,
        staging_busy,
        staging_queue_peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::AnalysisSchedule;

    fn schedule(steps: Vec<usize>, outputs: Vec<usize>) -> Schedule {
        let mut s = Schedule::empty(1);
        s.per_analysis[0] = AnalysisSchedule::new(steps, outputs);
        s
    }

    fn insitu_cost(ct: f64, ot: f64) -> ReplayCost {
        ReplayCost {
            site: ReplaySite::InSitu,
            step_time: 0.0,
            compute_time: ct,
            output_time: ot,
            transfer_time: 0.0,
        }
    }

    #[test]
    fn empty_schedule_is_pure_simulation() {
        let r = replay(&Schedule::empty(1), 100, 0.5, &[insitu_cost(9.0, 9.0)], 1);
        assert!((r.sim_finish - 50.0).abs() < 1e-12);
        assert_eq!(r.sim_analysis_busy, 0.0);
        assert_eq!(r.makespan(), r.sim_finish);
    }

    #[test]
    fn insitu_replay_matches_analytic_sum() {
        // 10 analyses at 2 s, 5 outputs at 1 s, it = 0.01 every step
        let sched = schedule((1..=10).map(|t| t * 10).collect(), vec![20, 40, 60, 80, 100]);
        let mut cost = insitu_cost(2.0, 1.0);
        cost.step_time = 0.01;
        let r = replay(&sched, 100, 0.5, &[cost], 1);
        let expected_busy = 100.0 * 0.01 + 10.0 * 2.0 + 5.0 * 1.0;
        assert!((r.sim_analysis_busy - expected_busy).abs() < 1e-9);
        assert!((r.sim_finish - (50.0 + expected_busy)).abs() < 1e-9);
        assert_eq!(r.staging_busy, 0.0);
    }

    #[test]
    fn intransit_overlaps_staging_with_simulation() {
        // 5 offloaded analyses: transfer 0.1 s blocks the sim, compute 5 s
        // runs on staging concurrently
        let sched = schedule(vec![20, 40, 60, 80, 100], vec![]);
        let cost = ReplayCost {
            site: ReplaySite::InTransit,
            step_time: 0.0,
            compute_time: 5.0,
            output_time: 0.0,
            transfer_time: 0.1,
        };
        let r = replay(&sched, 100, 0.5, &[cost], 2);
        // sim only pays transfers
        assert!((r.sim_analysis_busy - 0.5).abs() < 1e-9);
        assert!((r.sim_finish - 50.5).abs() < 1e-9);
        // staging did 25 s of work...
        assert!((r.staging_busy - 25.0).abs() < 1e-9);
        // ...but the makespan is far below the serialized 75.5 s
        assert!(r.makespan() < 60.0, "makespan {}", r.makespan());
        // equivalent in-situ run would take 50 + 25 = 75 s
        let insitu = replay(&sched, 100, 0.5, &[insitu_cost(5.0, 0.0)], 1);
        assert!(r.makespan() < insitu.makespan());
    }

    #[test]
    fn staging_tail_extends_makespan() {
        // one slot, analyses arrive faster than staging drains: the last
        // jobs finish after the simulation
        let sched = schedule(vec![2, 4, 6, 8, 10], vec![]);
        let cost = ReplayCost {
            site: ReplaySite::InTransit,
            step_time: 0.0,
            compute_time: 10.0,
            output_time: 0.0,
            transfer_time: 0.0,
        };
        let r = replay(&sched, 10, 0.1, &[cost], 1);
        assert!(r.staging_queue_peak >= 1, "queue built up");
        assert!(r.staging_finish > r.sim_finish);
        // 5 jobs x 10 s on one server, first starts ~0.2 s
        assert!((r.staging_finish - 50.2).abs() < 0.2, "{}", r.staging_finish);
    }

    #[test]
    fn more_staging_slots_shrink_makespan() {
        let sched = schedule(vec![2, 4, 6, 8, 10], vec![]);
        let cost = ReplayCost {
            site: ReplaySite::InTransit,
            step_time: 0.0,
            compute_time: 10.0,
            output_time: 0.0,
            transfer_time: 0.0,
        };
        let one = replay(&sched, 10, 0.1, std::slice::from_ref(&cost), 1);
        let four = replay(&sched, 10, 0.1, &[cost], 4);
        assert!(four.makespan() < one.makespan());
        assert_eq!(four.staging_busy, one.staging_busy, "same total work");
    }

    #[test]
    #[should_panic(expected = "one ReplayCost per analysis")]
    fn arity_mismatch_panics() {
        replay(&Schedule::empty(2), 5, 0.1, &[insitu_cost(1.0, 0.0)], 1);
    }
}
