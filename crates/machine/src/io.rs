//! Storage subsystem model: shared parallel filesystem + NVRAM tier.
//!
//! Mira's GPFS has a 240 GB/s peak; an individual job sees a share that
//! saturates well below peak and scales with the number of I/O-active
//! nodes until the filesystem limit. Table 7 of the paper studies moving
//! analysis output to a faster tier (NVRAM / burst buffer); the
//! [`StorageTier`] enum models that choice.

/// Which storage tier an output stream is written to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageTier {
    /// The shared parallel filesystem (GPFS-like).
    ParallelFs,
    /// Node-local or near-node NVRAM / burst buffer.
    Nvram,
}

/// Analytic I/O bandwidth model.
///
/// BG/Q compute nodes reach the filesystem through dedicated I/O
/// forwarding nodes (1 per [`IoSubsystem::io_node_ratio`] compute nodes on
/// Mira), so a job's achievable bandwidth scales with its I/O-node count,
/// capped by the filesystem peak. The default effective per-I/O-node rate
/// is calibrated against the paper's Table 7: 91 GB written from 2 048
/// nodes in ~20 s ⇒ ≈4.5 GB/s job bandwidth ⇒ ≈285 MB/s per I/O node.
#[derive(Debug, Clone, PartialEq)]
pub struct IoSubsystem {
    /// Peak aggregate filesystem bandwidth (bytes/s) — e.g. 240 GB/s.
    pub fs_peak_bw: f64,
    /// Compute nodes per I/O forwarding node (128 on Mira).
    pub io_node_ratio: usize,
    /// Effective bandwidth per I/O forwarding node (bytes/s).
    pub per_io_node_bw: f64,
    /// Per-node NVRAM bandwidth (bytes/s); `0` when the machine has none.
    pub per_node_nvram_bw: f64,
    /// Fixed open/close/metadata overhead per I/O operation (seconds).
    pub metadata_overhead: f64,
}

impl IoSubsystem {
    /// Aggregate bandwidth seen by a job running on `nodes` nodes writing
    /// to `tier`.
    pub fn aggregate_bw(&self, nodes: usize, tier: StorageTier) -> f64 {
        match tier {
            StorageTier::ParallelFs => {
                let io_nodes = nodes.div_ceil(self.io_node_ratio.max(1));
                (io_nodes as f64 * self.per_io_node_bw).min(self.fs_peak_bw)
            }
            StorageTier::Nvram => nodes as f64 * self.per_node_nvram_bw,
        }
    }

    /// Time to write `bytes` from `nodes` nodes to `tier`.
    pub fn write_time(&self, bytes: f64, nodes: usize, tier: StorageTier) -> f64 {
        let bw = self.aggregate_bw(nodes, tier);
        if bw <= 0.0 {
            return f64::INFINITY;
        }
        self.metadata_overhead + bytes / bw
    }

    /// Time to read `bytes` back (same bandwidth model; reads on GPFS are
    /// comparable to writes at the granularity the scheduler cares about).
    pub fn read_time(&self, bytes: f64, nodes: usize, tier: StorageTier) -> f64 {
        self.write_time(bytes, nodes, tier)
    }
}

impl Default for IoSubsystem {
    /// Mira-like: 240 GB/s peak GPFS, one I/O node per 128 compute nodes
    /// at ~285 MB/s effective each (Table-7 calibration), no NVRAM, 5 ms
    /// metadata overhead.
    fn default() -> Self {
        IoSubsystem {
            fs_peak_bw: 240.0e9,
            io_node_ratio: 128,
            per_io_node_bw: 285.0e6,
            per_node_nvram_bw: 0.0,
            metadata_overhead: 5e-3,
        }
    }
}

impl IoSubsystem {
    /// Same filesystem plus a 2 GB/s-per-node NVRAM tier — the Table-7
    /// "higher bandwidth storage like NVRAM" scenario.
    pub fn with_nvram(mut self, per_node_bw: f64) -> Self {
        self.per_node_nvram_bw = per_node_bw;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_saturates_at_peak() {
        let io = IoSubsystem::default();
        let few = io.aggregate_bw(16, StorageTier::ParallelFs);
        let many = io.aggregate_bw(200_000, StorageTier::ParallelFs);
        assert!(few < io.fs_peak_bw);
        assert_eq!(many, io.fs_peak_bw);
    }

    #[test]
    fn write_time_91gb_at_scale_matches_paper_magnitude() {
        // Table 7: 91 GB per output step, ~20 s per write on 2048 nodes
        // (200.6 s for 10 outputs) — the calibration point of the model.
        let io = IoSubsystem::default();
        let t = io.write_time(91.0e9, 2048, StorageTier::ParallelFs);
        assert!((t - 20.0).abs() < 3.0, "write time {t}");
    }

    #[test]
    fn nvram_faster_than_fs() {
        let io = IoSubsystem::default().with_nvram(2.0e9);
        let fs = io.write_time(1e9, 64, StorageTier::ParallelFs);
        let nv = io.write_time(1e9, 64, StorageTier::Nvram);
        assert!(nv < fs);
    }

    #[test]
    fn missing_nvram_is_infinite() {
        let io = IoSubsystem::default();
        assert!(io
            .write_time(1.0, 4, StorageTier::Nvram)
            .is_infinite());
    }

    #[test]
    fn read_matches_write_model() {
        let io = IoSubsystem::default();
        assert_eq!(
            io.read_time(5e9, 128, StorageTier::ParallelFs),
            io.write_time(5e9, 128, StorageTier::ParallelFs)
        );
    }

    #[test]
    fn metadata_overhead_floors_small_writes() {
        let io = IoSubsystem::default();
        let t = io.write_time(1.0, 1024, StorageTier::ParallelFs);
        assert!(t >= io.metadata_overhead);
    }
}
