//! Analytic model of a leadership-class HPC machine.
//!
//! The paper's experiments ran on "Mira", the IBM Blue Gene/Q at Argonne
//! (48 racks, 16 GB RAM per node, 5-D torus interconnect, 240 GB/s peak
//! GPFS I/O bandwidth). We cannot run on a BG/Q, so this crate provides the
//! closest analytic stand-in the scheduling model needs:
//!
//! * [`topology`] — N-dimensional torus/mesh partitions with hop counts and
//!   network **diameter** (the y-variable of the paper's communication-time
//!   interpolation, §4),
//! * [`collectives`] — latency–bandwidth cost models for the MPI collectives
//!   the analysis kernels use (`MPI_Allreduce` et al.),
//! * [`io`] — a shared-filesystem bandwidth model (GPFS-like) plus an
//!   NVRAM/burst-buffer tier (the Table-7 what-if), and
//! * [`machine`] — node specs, partition allocation and the
//!   [`machine::Machine::mira`] preset.
//!
//! All quantities are *analytic predictions*, mirroring how the paper itself
//! predicts unmeasured configurations via interpolation rather than
//! measuring all of them.

pub mod collectives;
pub mod event;
pub mod io;
pub mod machine;
pub mod topology;

pub use collectives::CollectiveModel;
pub use event::{replay, ReplayCost, ReplayReport, ReplaySite};
pub use io::{IoSubsystem, StorageTier};
pub use machine::{Machine, NodeSpec, Partition};
pub use topology::Torus;
