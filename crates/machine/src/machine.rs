//! Whole-machine composition: nodes, partitions, interconnect, storage.

use crate::collectives::CollectiveModel;
use crate::io::{IoSubsystem, StorageTier};
use crate::topology::Torus;

/// Per-node hardware description.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Cores per node.
    pub cores: usize,
    /// Memory per node, bytes.
    pub mem_bytes: f64,
    /// Peak floating-point rate per node, flop/s.
    pub flops: f64,
}

/// A job partition: a topological block of nodes with a rank layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Topology of the allocated block.
    pub topology: Torus,
    /// MPI ranks per node.
    pub ranks_per_node: usize,
}

impl Partition {
    /// Number of nodes in the partition.
    pub fn nodes(&self) -> usize {
        self.topology.num_nodes()
    }

    /// Total MPI ranks.
    pub fn ranks(&self) -> usize {
        self.nodes() * self.ranks_per_node
    }
}

/// A complete machine model.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Marketing name, for reports.
    pub name: String,
    /// Node hardware.
    pub node: NodeSpec,
    /// Total nodes in the machine.
    pub total_nodes: usize,
    /// Collective-communication cost model.
    pub collectives: CollectiveModel,
    /// Storage model.
    pub io: IoSubsystem,
}

impl Machine {
    /// The Mira preset: IBM Blue Gene/Q, 49 152 nodes, 16 cores and 16 GB
    /// per node, 204.8 GF/node, 240 GB/s GPFS.
    pub fn mira() -> Self {
        Machine {
            name: "Mira (BG/Q model)".to_string(),
            node: NodeSpec {
                cores: 16,
                mem_bytes: 16.0 * 1024.0 * 1024.0 * 1024.0,
                flops: 204.8e9,
            },
            total_nodes: 49_152,
            collectives: CollectiveModel::default(),
            io: IoSubsystem::default(),
        }
    }

    /// Mira with an added NVRAM tier (Table-7 what-if).
    pub fn mira_with_nvram(per_node_bw: f64) -> Self {
        let mut m = Self::mira();
        m.io = m.io.with_nvram(per_node_bw);
        m.name = "Mira + NVRAM (model)".to_string();
        m
    }

    /// Allocates a partition of `nodes` nodes with `ranks_per_node` ranks.
    /// Node counts must match a known BG/Q block shape.
    pub fn partition(&self, nodes: usize, ranks_per_node: usize) -> Option<Partition> {
        if nodes > self.total_nodes || ranks_per_node == 0 {
            return None;
        }
        Torus::bgq_partition(nodes).map(|topology| Partition {
            topology,
            ranks_per_node,
        })
    }

    /// A partition sized by total rank count at 16 ranks/node (the paper's
    /// layout: "16384 processes (1024 nodes, 16 ranks per node)").
    pub fn partition_for_ranks(&self, ranks: usize) -> Option<Partition> {
        let rpn = self.node.cores;
        if !ranks.is_multiple_of(rpn) {
            return None;
        }
        self.partition(ranks / rpn, rpn)
    }

    /// Memory available for in-situ analyses on a partition, after the
    /// simulation has claimed `sim_bytes_per_node`.
    pub fn analysis_memory(&self, part: &Partition, sim_bytes_per_node: f64) -> f64 {
        ((self.node.mem_bytes - sim_bytes_per_node) * part.nodes() as f64).max(0.0)
    }

    /// Aggregate write bandwidth a partition sees to `tier`.
    pub fn write_bandwidth(&self, part: &Partition, tier: StorageTier) -> f64 {
        self.io.aggregate_bw(part.nodes(), tier)
    }

    /// Time to write `bytes` from a partition to `tier`.
    pub fn write_time(&self, bytes: f64, part: &Partition, tier: StorageTier) -> f64 {
        self.io.write_time(bytes, part.nodes(), tier)
    }

    /// Time for an allreduce of `bytes` per rank on a partition.
    pub fn allreduce_time(&self, bytes: f64, part: &Partition) -> f64 {
        self.collectives.allreduce(bytes, part.ranks(), &part.topology)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mira_preset_matches_published_specs() {
        let m = Machine::mira();
        assert_eq!(m.node.cores, 16);
        assert_eq!(m.total_nodes, 49_152);
        assert_eq!(m.node.mem_bytes, 16.0 * 1024.0f64.powi(3));
        assert_eq!(m.io.fs_peak_bw, 240.0e9);
    }

    #[test]
    fn paper_partitions_resolve() {
        let m = Machine::mira();
        // the paper's runs: 16384 cores = 1024 nodes, 32768 cores = 2048 nodes
        let p = m.partition_for_ranks(16_384).unwrap();
        assert_eq!(p.nodes(), 1024);
        assert_eq!(p.ranks(), 16_384);
        let p = m.partition_for_ranks(32_768).unwrap();
        assert_eq!(p.nodes(), 2048);
    }

    #[test]
    fn invalid_partitions_rejected() {
        let m = Machine::mira();
        assert!(m.partition(100, 16).is_none()); // not a block shape
        assert!(m.partition(512, 0).is_none());
        assert!(m.partition_for_ranks(100).is_none()); // not /16
        assert!(m.partition(1 << 20, 16).is_none()); // larger than machine
    }

    #[test]
    fn analysis_memory_subtracts_simulation() {
        let m = Machine::mira();
        let p = m.partition(512, 16).unwrap();
        let avail = m.analysis_memory(&p, 12.0 * 1024.0f64.powi(3));
        assert!((avail - 512.0 * 4.0 * 1024.0f64.powi(3)).abs() < 1.0);
        // over-subscribed simulation leaves zero, not negative
        assert_eq!(m.analysis_memory(&p, 20.0 * 1024.0f64.powi(3)), 0.0);
    }

    #[test]
    fn bigger_partitions_see_more_io_until_peak() {
        let m = Machine::mira();
        let small = m.partition(512, 16).unwrap();
        let large = m.partition(8192, 16).unwrap();
        let bw_s = m.write_bandwidth(&small, StorageTier::ParallelFs);
        let bw_l = m.write_bandwidth(&large, StorageTier::ParallelFs);
        assert!(bw_l >= bw_s);
        assert!(bw_l <= m.io.fs_peak_bw);
    }

    #[test]
    fn allreduce_time_reasonable() {
        let m = Machine::mira();
        let p = m.partition(1024, 16).unwrap();
        let t = m.allreduce_time(8.0 * 1024.0, &p);
        assert!(t > 0.0 && t < 1e-2, "allreduce time {t}");
    }
}
