//! N-dimensional torus/mesh partition topology.
//!
//! Blue Gene/Q partitions are blocks of a 5-D torus; a dimension is a ring
//! (wraparound) when the partition spans the full machine extent in that
//! dimension, otherwise a line (mesh). We model the convention used for
//! Mira allocations: dimensions of extent >= 4 wrap, smaller ones do not —
//! a documented approximation that matches the paper's use of the topology,
//! which only needs the network *diameter* as an interpolation variable.

/// An N-dimensional torus/mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Torus {
    /// Extent of each dimension (number of nodes along it).
    pub dims: Vec<usize>,
    /// Whether each dimension wraps around (ring) or not (line).
    pub wraps: Vec<bool>,
}

impl Torus {
    /// Builds a torus with explicit wrap flags.
    ///
    /// # Panics
    /// Panics when `dims` and `wraps` lengths differ or any extent is zero.
    pub fn with_wraps(dims: Vec<usize>, wraps: Vec<bool>) -> Self {
        assert_eq!(dims.len(), wraps.len(), "dims/wraps length mismatch");
        assert!(dims.iter().all(|&d| d > 0), "zero-extent dimension");
        Torus { dims, wraps }
    }

    /// Builds a torus using the BG/Q-style wrap convention: a dimension
    /// wraps iff its extent is at least 4.
    pub fn new(dims: Vec<usize>) -> Self {
        let wraps = dims.iter().map(|&d| d >= 4).collect();
        Torus::with_wraps(dims, wraps)
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.dims.iter().product()
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Hop distance along one dimension between coordinates `a` and `b`.
    fn dim_distance(&self, d: usize, a: usize, b: usize) -> usize {
        let lin = a.abs_diff(b);
        if self.wraps[d] {
            lin.min(self.dims[d] - lin)
        } else {
            lin
        }
    }

    /// Manhattan-style hop count between two node coordinates.
    ///
    /// # Panics
    /// Panics when a coordinate is out of range.
    pub fn hops(&self, a: &[usize], b: &[usize]) -> usize {
        assert_eq!(a.len(), self.ndims());
        assert_eq!(b.len(), self.ndims());
        (0..self.ndims())
            .map(|d| {
                assert!(a[d] < self.dims[d] && b[d] < self.dims[d], "coordinate out of range");
                self.dim_distance(d, a[d], b[d])
            })
            .sum()
    }

    /// Network diameter: maximum hop count over all node pairs. For a
    /// torus/mesh this is the sum of per-dimension maxima
    /// (`floor(n/2)` for rings, `n-1` for lines).
    pub fn diameter(&self) -> usize {
        (0..self.ndims())
            .map(|d| {
                if self.wraps[d] {
                    self.dims[d] / 2
                } else {
                    self.dims[d] - 1
                }
            })
            .sum()
    }

    /// Average hop distance from a node to all others, exact by dimension
    /// decomposition (used by uniform-traffic communication estimates).
    pub fn mean_hops(&self) -> f64 {
        // mean over pairs of per-dimension distance; dimensions independent
        let mut total = 0.0;
        for d in 0..self.ndims() {
            let n = self.dims[d];
            let mut sum = 0usize;
            for a in 0..n {
                for b in 0..n {
                    sum += self.dim_distance(d, a, b);
                }
            }
            total += sum as f64 / (n * n) as f64;
        }
        total
    }

    /// Bisection width in links: the minimum number of links cut when the
    /// machine is split across its largest dimension.
    pub fn bisection_links(&self) -> usize {
        let nodes = self.num_nodes();
        let (dmax_idx, &dmax) = self
            .dims
            .iter()
            .enumerate()
            .max_by_key(|&(_, &d)| d)
            .expect("at least one dimension");
        let cross_section = nodes / dmax;
        if self.wraps[dmax_idx] {
            2 * cross_section
        } else {
            cross_section
        }
    }

    /// BG/Q partition shape table for Mira-style allocations, keyed by node
    /// count. Shapes follow the published Mira block dimensions (A,B,C,D,E).
    pub fn bgq_partition(nodes: usize) -> Option<Torus> {
        let dims: &[usize] = match nodes {
            128 => &[2, 2, 4, 4, 2],
            256 => &[4, 2, 4, 4, 2],
            512 => &[4, 4, 4, 4, 2], // one midplane
            1024 => &[4, 4, 4, 8, 2],
            2048 => &[4, 4, 4, 16, 2],
            4096 => &[4, 4, 8, 16, 2],
            8192 => &[4, 4, 16, 16, 2],
            16384 => &[8, 4, 16, 16, 2],
            32768 => &[8, 8, 16, 16, 2],
            49152 => &[8, 12, 16, 16, 2], // full Mira
            _ => return None,
        };
        Some(Torus::new(dims.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgq_shapes_have_right_node_counts() {
        for nodes in [128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 49152] {
            let t = Torus::bgq_partition(nodes).unwrap();
            assert_eq!(t.num_nodes(), nodes, "shape for {nodes}");
            assert_eq!(t.ndims(), 5);
        }
        assert!(Torus::bgq_partition(123).is_none());
    }

    #[test]
    fn wrap_convention() {
        let t = Torus::new(vec![4, 2, 8]);
        assert_eq!(t.wraps, vec![true, false, true]);
    }

    #[test]
    fn ring_distance_wraps() {
        let t = Torus::new(vec![8]);
        assert_eq!(t.hops(&[0], &[7]), 1); // wraparound
        assert_eq!(t.hops(&[0], &[4]), 4); // antipodal
        let line = Torus::with_wraps(vec![8], vec![false]);
        assert_eq!(line.hops(&[0], &[7]), 7);
    }

    #[test]
    fn diameter_ring_vs_line() {
        assert_eq!(Torus::new(vec![8, 8]).diameter(), 8); // 4 + 4
        assert_eq!(Torus::with_wraps(vec![8, 8], vec![false, false]).diameter(), 14);
        // diameter grows with partition size on BG/Q shapes
        let d1 = Torus::bgq_partition(2048).unwrap().diameter();
        let d2 = Torus::bgq_partition(32768).unwrap().diameter();
        assert!(d2 > d1);
    }

    #[test]
    fn diameter_is_max_pairwise_hops_small_exhaustive() {
        let t = Torus::new(vec![4, 3, 2]);
        let mut max = 0;
        for a0 in 0..4 {
            for a1 in 0..3 {
                for a2 in 0..2 {
                    for b0 in 0..4 {
                        for b1 in 0..3 {
                            for b2 in 0..2 {
                                max = max.max(t.hops(&[a0, a1, a2], &[b0, b1, b2]));
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(t.diameter(), max);
    }

    #[test]
    fn mean_hops_below_diameter() {
        let t = Torus::bgq_partition(1024).unwrap();
        assert!(t.mean_hops() > 0.0);
        assert!(t.mean_hops() < t.diameter() as f64);
    }

    #[test]
    fn bisection_counts_links() {
        // 4x4 torus: largest dim 4, cross-section 4, wrapped => 8 links
        let t = Torus::new(vec![4, 4]);
        assert_eq!(t.bisection_links(), 8);
        let mesh = Torus::with_wraps(vec![4, 4], vec![false, false]);
        assert_eq!(mesh.bisection_links(), 4);
    }

    #[test]
    #[should_panic(expected = "coordinate out of range")]
    fn hops_panics_out_of_range() {
        Torus::new(vec![2, 2]).hops(&[0, 0], &[2, 0]);
    }
}
