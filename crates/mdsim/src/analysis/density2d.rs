//! 2-D density histograms (paper analyses R2 and R3).
//!
//! Bins the (x, y) positions of one species into an `nx × ny` grid — the
//! "2D histogram of the density profiles of all membranes/proteins" of
//! Table 3. Cost is O(N) per analysis step with a grid-sized memory
//! footprint, making R2/R3 the mid-weight analyses of the rhodopsin set
//! (17.19 s vs R1's 0.003 s in the paper's Table 6 inputs).

use crate::analysis::sink::OutputSink;
use crate::system::{Species, System};
use insitu_core::runtime::Analysis;
use insitu_types::KernelTelemetry;
use std::time::Instant;

/// 2-D (x, y) density histogram of one species.
#[derive(Debug)]
pub struct DensityHistogram {
    name: String,
    species: Species,
    bins: usize,
    /// Row-major accumulated counts, `bins × bins`.
    pub counts: Vec<u64>,
    /// Snapshots accumulated since last output.
    pub samples: usize,
    /// Per-kernel execution telemetry (`md.histogram`).
    pub telemetry: KernelTelemetry,
    /// Output destination.
    pub sink: OutputSink,
}

impl DensityHistogram {
    /// Creates a histogram with `bins × bins` cells.
    pub fn new(name: &str, species: Species, bins: usize) -> Self {
        DensityHistogram {
            name: name.to_string(),
            species,
            bins: bins.max(1),
            counts: vec![0; bins.max(1) * bins.max(1)],
            samples: 0,
            telemetry: KernelTelemetry::new(),
            sink: OutputSink::null(),
        }
    }

    /// Accumulates one snapshot.
    ///
    /// Particle-range chunks bin into per-chunk count grids merged in
    /// chunk order on `system.exec`.
    pub fn accumulate(&mut self, system: &System) {
        let s = self.species.index() as u8;
        let lx = system.bounds.lengths[0];
        let ly = system.bounds.lengths[1];
        let nb = self.bins as f64;
        let bins = self.bins;
        let n = system.len();
        let chunks = parallel::chunk_count(n, 4096);
        let (parts, stats) = parallel::map_chunks(&system.exec, chunks, |c| {
            let mut counts = vec![0u64; bins * bins];
            for i in parallel::chunk_bounds(n, chunks, c) {
                if system.species[i] != s {
                    continue;
                }
                let bx = ((system.pos[0][i] / lx * nb) as usize).min(bins - 1);
                let by = ((system.pos[1][i] / ly * nb) as usize).min(bins - 1);
                counts[by * bins + bx] += 1;
            }
            counts
        });
        let m0 = Instant::now();
        for part in parts {
            for (a, b) in self.counts.iter_mut().zip(part) {
                *a += b;
            }
        }
        let merge = m0.elapsed().as_secs_f64();
        self.telemetry.record(
            "md.histogram",
            stats.threads_used,
            stats.chunks,
            stats.wall_s() + merge,
            merge,
        );
        self.samples += 1;
    }

    /// Total count across all cells.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean density (particles per cell per snapshot).
    pub fn mean_density(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total() as f64 / (self.counts.len() as f64 * self.samples as f64)
        }
    }

    /// Grid edge size.
    pub fn bins(&self) -> usize {
        self.bins
    }
}

impl Analysis<System> for DensityHistogram {
    fn name(&self) -> &str {
        &self.name
    }

    fn analyze(&mut self, state: &System) {
        self.accumulate(state);
    }

    fn output(&mut self, state: &System) {
        let mut text = format!("# density {} step {} samples {}\n", self.name, state.step_count, self.samples);
        for by in 0..self.bins {
            let row: Vec<String> = (0..self.bins)
                .map(|bx| self.counts[by * self.bins + bx].to_string())
                .collect();
            text.push_str(&row.join(" "));
            text.push('\n');
        }
        self.sink.emit(text.as_bytes());
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.samples = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{rhodopsin_proxy, BuilderParams};
    use crate::force::ForceField;
    use crate::system::SimBox;

    #[test]
    fn counts_conserve_particles() {
        let s = rhodopsin_proxy(&BuilderParams {
            n_particles: 2000,
            ..Default::default()
        });
        let mut h = DensityHistogram::new("r2", Species::Membrane, 16);
        h.accumulate(&s);
        assert_eq!(h.total(), s.species_count(Species::Membrane) as u64);
    }

    #[test]
    fn particle_lands_in_right_cell() {
        let mut s = System::new(SimBox::cubic(10.0), ForceField::none(), 0.01);
        s.add_particle(Species::Protein, [2.5, 7.5, 5.0], [0.0; 3]);
        let mut h = DensityHistogram::new("r3", Species::Protein, 4);
        h.accumulate(&s);
        // x=2.5 => bin 1, y=7.5 => bin 3
        assert_eq!(h.counts[3 * 4 + 1], 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn protein_histogram_concentrated_at_centre() {
        let s = rhodopsin_proxy(&BuilderParams {
            n_particles: 8000,
            ..Default::default()
        });
        let mut h = DensityHistogram::new("r3", Species::Protein, 8);
        h.accumulate(&s);
        // central 4 cells hold the protein blob; corners empty
        let centre: u64 = [(3usize, 3usize), (3, 4), (4, 3), (4, 4)]
            .iter()
            .map(|&(x, y)| h.counts[y * 8 + x])
            .sum();
        let corners: u64 = [(0usize, 0usize), (0, 7), (7, 0), (7, 7)]
            .iter()
            .map(|&(x, y)| h.counts[y * 8 + x])
            .sum();
        assert!(centre > 0);
        assert_eq!(corners, 0, "protein must not reach the corners");
    }

    #[test]
    fn output_resets_accumulation() {
        let s = rhodopsin_proxy(&BuilderParams {
            n_particles: 1000,
            ..Default::default()
        });
        let mut h = DensityHistogram::new("r2", Species::Membrane, 8);
        h.analyze(&s);
        h.analyze(&s);
        assert_eq!(h.samples, 2);
        h.output(&s);
        assert_eq!(h.samples, 0);
        assert_eq!(h.total(), 0);
        assert!(h.sink.bytes_written > 0);
    }

    #[test]
    fn mean_density_averages_samples() {
        let mut s = System::new(SimBox::cubic(10.0), ForceField::none(), 0.01);
        for i in 0..16 {
            s.add_particle(
                Species::Membrane,
                [0.5 + (i % 4) as f64 * 2.5, 0.5 + (i / 4) as f64 * 2.5, 5.0],
                [0.0; 3],
            );
        }
        let mut h = DensityHistogram::new("r2", Species::Membrane, 4);
        h.accumulate(&s);
        h.accumulate(&s);
        assert!((h.mean_density() - 1.0).abs() < 1e-12);
    }
}
