//! Radius of gyration of a single assembly (paper analysis R1).
//!
//! R1 is the paper's cheapest analysis ("0.003 sec" per step at 1 B atoms):
//! a mass-weighted second moment about the centre of mass of the protein.
//! Positions are taken relative to the first protein site with the minimum
//! image convention, which is valid because the protein is a compact blob
//! far smaller than the box.

use crate::analysis::sink::OutputSink;
use crate::system::{Species, System};
use insitu_core::runtime::Analysis;
use insitu_types::KernelTelemetry;
use std::time::Instant;

/// Radius-of-gyration kernel for one species group.
#[derive(Debug)]
pub struct RadiusOfGyration {
    name: String,
    species: Species,
    members: Vec<usize>,
    /// `(step, Rg)` series accumulated since the last output.
    pub series: Vec<(usize, f64)>,
    /// Per-kernel execution telemetry (`md.gyration`).
    pub telemetry: KernelTelemetry,
    /// Output destination.
    pub sink: OutputSink,
}

impl RadiusOfGyration {
    /// Creates the kernel for `species`.
    pub fn new(name: &str, species: Species) -> Self {
        RadiusOfGyration {
            name: name.to_string(),
            species,
            members: Vec::new(),
            series: Vec::new(),
            telemetry: KernelTelemetry::new(),
            sink: OutputSink::null(),
        }
    }

    /// Computes Rg of the group in `system`.
    pub fn compute(&self, system: &System) -> f64 {
        let members: Vec<usize> = if self.members.is_empty() {
            system.of_species(self.species)
        } else {
            self.members.clone()
        };
        radius_of_gyration(system, &members)
    }
}

/// Mass-weighted radius of gyration of `members`, minimum-imaged around the
/// first member.
///
/// Two chunked passes over the members on `system.exec` (mass-weighted
/// centre of mass, then the second moment), each merged in ascending chunk
/// order — bitwise identical for any thread count.
pub fn radius_of_gyration(system: &System, members: &[usize]) -> f64 {
    if members.is_empty() {
        return 0.0;
    }
    let origin = system.position(members[0]);
    let n = members.len();
    let chunks = parallel::chunk_count(n, 2048);
    // pass 1: centre of mass in the unwrapped frame of the first member
    let ((com_sum, mass_total), _) = parallel::reduce_chunks(
        &system.exec,
        chunks,
        |c| {
            let mut com = [0.0f64; 3];
            let mut mass = 0.0f64;
            for t in parallel::chunk_bounds(n, chunks, c) {
                let i = members[t];
                let d = system.bounds.displacement(system.position(i), origin);
                let m = system.mass(i);
                for k in 0..3 {
                    com[k] += m * d[k];
                }
                mass += m;
            }
            (com, mass)
        },
        ([0.0f64; 3], 0.0f64),
        |(mut acc, total), (com, mass)| {
            for k in 0..3 {
                acc[k] += com[k];
            }
            (acc, total + mass)
        },
    );
    let com = [
        com_sum[0] / mass_total,
        com_sum[1] / mass_total,
        com_sum[2] / mass_total,
    ];
    // pass 2: second moment about the centre of mass
    let (sum, _) = parallel::reduce_chunks(
        &system.exec,
        chunks,
        |c| {
            let mut s = 0.0f64;
            for t in parallel::chunk_bounds(n, chunks, c) {
                let i = members[t];
                let d = system.bounds.displacement(system.position(i), origin);
                let m = system.mass(i);
                let dx = d[0] - com[0];
                let dy = d[1] - com[1];
                let dz = d[2] - com[2];
                s += m * (dx * dx + dy * dy + dz * dz);
            }
            s
        },
        0.0f64,
        |a, b| a + b,
    );
    (sum / mass_total).sqrt()
}

impl Analysis<System> for RadiusOfGyration {
    fn name(&self) -> &str {
        &self.name
    }

    fn setup(&mut self, state: &System) {
        self.members = state.of_species(self.species);
    }

    fn analyze(&mut self, state: &System) {
        let t0 = Instant::now();
        let rg = radius_of_gyration(state, &self.members);
        self.telemetry.record(
            "md.gyration",
            state.exec.threads(),
            parallel::chunk_count(self.members.len().max(1), 2048),
            t0.elapsed().as_secs_f64(),
            0.0,
        );
        self.series.push((state.step_count, rg));
    }

    fn output(&mut self, _state: &System) {
        let mut text = String::new();
        for (step, rg) in &self.series {
            text.push_str(&format!("{step} {rg:.8}\n"));
        }
        self.sink.emit(text.as_bytes());
        self.series.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::ForceField;
    use crate::system::SimBox;

    #[test]
    fn two_points_at_distance_d() {
        // two unit masses at distance d: Rg = d/2
        let mut s = System::new(SimBox::cubic(20.0), ForceField::none(), 0.01);
        s.add_particle(Species::Protein, [9.0, 10.0, 10.0], [0.0; 3]);
        s.add_particle(Species::Protein, [13.0, 10.0, 10.0], [0.0; 3]);
        let rg = radius_of_gyration(&s, &[0, 1]);
        assert!((rg - 2.0).abs() < 1e-12, "Rg {rg}");
    }

    #[test]
    fn single_point_is_zero() {
        let mut s = System::new(SimBox::cubic(20.0), ForceField::none(), 0.01);
        s.add_particle(Species::Protein, [5.0, 5.0, 5.0], [0.0; 3]);
        assert_eq!(radius_of_gyration(&s, &[0]), 0.0);
        assert_eq!(radius_of_gyration(&s, &[]), 0.0);
    }

    #[test]
    fn mass_weighting_shifts_com() {
        let mut s = System::new(SimBox::cubic(20.0), ForceField::none(), 0.01);
        s.masses[Species::Protein.index()] = 1.0;
        s.masses[Species::Ion.index()] = 3.0;
        s.add_particle(Species::Protein, [8.0, 10.0, 10.0], [0.0; 3]);
        s.add_particle(Species::Ion, [12.0, 10.0, 10.0], [0.0; 3]);
        // com at (8*1 + 12*3)/4 = 11; Rg² = (1*(3²) + 3*(1²))/4 = 3
        let rg = radius_of_gyration(&s, &[0, 1]);
        assert!((rg - 3.0f64.sqrt()).abs() < 1e-12, "Rg {rg}");
    }

    #[test]
    fn periodic_wrap_handled() {
        // cluster straddling the boundary: x = 19.5 and 0.5 are 1 apart
        let mut s = System::new(SimBox::cubic(20.0), ForceField::none(), 0.01);
        s.add_particle(Species::Protein, [19.5, 10.0, 10.0], [0.0; 3]);
        s.add_particle(Species::Protein, [0.5, 10.0, 10.0], [0.0; 3]);
        let rg = radius_of_gyration(&s, &[0, 1]);
        assert!((rg - 0.5).abs() < 1e-12, "wrapped Rg {rg}");
    }

    #[test]
    fn analysis_trait_series_and_output() {
        let mut s = System::new(SimBox::cubic(20.0), ForceField::none(), 0.01);
        s.add_particle(Species::Protein, [9.0, 10.0, 10.0], [0.0; 3]);
        s.add_particle(Species::Protein, [11.0, 10.0, 10.0], [0.0; 3]);
        let mut rg = RadiusOfGyration::new("r1", Species::Protein);
        rg.setup(&s);
        rg.analyze(&s);
        assert_eq!(rg.series.len(), 1);
        assert!((rg.series[0].1 - 1.0).abs() < 1e-12);
        rg.output(&s);
        assert!(rg.series.is_empty());
        assert!(rg.sink.bytes_written > 0);
    }
}
