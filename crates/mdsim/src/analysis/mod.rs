//! In-situ analysis kernels for the two LAMMPS problems.
//!
//! | Paper id | Kernel | Module |
//! |---|---|---|
//! | A1 | hydronium RDFs (hydronium–water/–hydronium/–ion) | [`rdf`] |
//! | A2 | ion RDFs (ion–water/–ion) | [`rdf`] |
//! | A3 | velocity auto-correlation function | [`vacf`] |
//! | A4 | mean squared displacement | [`msd`] |
//! | R1 | radius of gyration of the protein | [`gyration`] |
//! | R2 | 2-D density histogram of the membranes | [`density2d`] |
//! | R3 | 2-D density histogram of the proteins | [`density2d`] |
//!
//! Every kernel implements [`insitu_core::runtime::Analysis`] over
//! [`crate::System`], so they plug straight into the runtime coupler. Each
//! also exposes its computation as a pure function for direct testing.

pub mod density2d;
pub mod gyration;
pub mod msd;
pub mod rdf;
pub mod sink;
pub mod vacf;

pub use density2d::DensityHistogram;
pub use gyration::RadiusOfGyration;
pub use msd::Msd;
pub use rdf::Rdf;
pub use sink::OutputSink;
pub use vacf::Vacf;

use crate::system::Species;

/// Builds the paper's A1 analysis: hydronium-centred RDFs.
pub fn a1_hydronium_rdf() -> Rdf {
    Rdf::new(
        "hydronium rdf (A1)",
        vec![
            (Species::Hydronium, Species::Water),
            (Species::Hydronium, Species::Hydronium),
            (Species::Hydronium, Species::Ion),
        ],
        3.0,
        100,
    )
}

/// Builds the paper's A2 analysis: ion-centred RDFs.
pub fn a2_ion_rdf() -> Rdf {
    Rdf::new(
        "ion rdf (A2)",
        vec![(Species::Ion, Species::Water), (Species::Ion, Species::Ion)],
        3.0,
        100,
    )
}

/// Builds the paper's A3 analysis: VACF of water/hydronium/ion particles.
pub fn a3_vacf(window: usize) -> Vacf {
    Vacf::new(
        "vacf (A3)",
        vec![Species::Water, Species::Hydronium, Species::Ion],
        window,
    )
}

/// Builds the paper's A4 analysis: MSD of hydronium and ions.
pub fn a4_msd() -> Msd {
    Msd::new("msd (A4)", vec![Species::Hydronium, Species::Ion])
}

/// Builds the paper's R1 analysis: protein radius of gyration.
pub fn r1_gyration() -> RadiusOfGyration {
    RadiusOfGyration::new("radius of gyration (R1)", Species::Protein)
}

/// Builds the paper's R2 analysis: membrane 2-D density histogram.
pub fn r2_membrane_histogram(bins: usize) -> DensityHistogram {
    DensityHistogram::new("membrane histogram (R2)", Species::Membrane, bins)
}

/// Builds the paper's R3 analysis: protein 2-D density histogram.
pub fn r3_protein_histogram(bins: usize) -> DensityHistogram {
    DensityHistogram::new("protein histogram (R3)", Species::Protein, bins)
}
