//! Mean squared displacement (paper analysis A4).
//!
//! A4 is the paper's problem child: it "has both significantly higher
//! analysis execution time and analysis output time as well as requires
//! more memory" (§5.3.2) and "does not scale" (§5.3.3). The kernel mirrors
//! that structure: a large pre-allocated reference buffer (`fm`), unwrapped
//! coordinates maintained every step (`it`, via the system's image flags),
//! and an O(N_tracked) reduction per analysis step (`ct`) whose result
//! series is serialized at output steps (`ot`).

use crate::analysis::sink::OutputSink;
use crate::system::{Species, System};
use insitu_core::runtime::Analysis;
use insitu_types::KernelTelemetry;
use parallel::ParStats;

/// MSD kernel over a set of tracked species.
#[derive(Debug)]
pub struct Msd {
    name: String,
    species: Vec<Species>,
    tracked: Vec<usize>,
    /// Reference unwrapped positions at setup, SoA (3 × N_tracked).
    reference: [Vec<f64>; 3],
    /// `(step, msd)` series accumulated since the last output.
    pub series: Vec<(usize, f64)>,
    /// Per-kernel execution telemetry (`md.msd`).
    pub telemetry: KernelTelemetry,
    /// Output destination.
    pub sink: OutputSink,
}

impl Msd {
    /// Creates an MSD kernel tracking all particles of `species`.
    pub fn new(name: &str, species: Vec<Species>) -> Self {
        Msd {
            name: name.to_string(),
            species,
            tracked: Vec::new(),
            reference: [Vec::new(), Vec::new(), Vec::new()],
            series: Vec::new(),
            telemetry: KernelTelemetry::new(),
            sink: OutputSink::null(),
        }
    }

    /// Captures the reference positions (the `fm` allocation).
    pub fn capture_reference(&mut self, system: &System) {
        self.tracked = self
            .species
            .iter()
            .flat_map(|&s| system.of_species(s))
            .collect();
        for d in 0..3 {
            self.reference[d].clear();
        }
        for &i in &self.tracked {
            let u = system.unwrapped_position(i);
            for (refs, &ud) in self.reference.iter_mut().zip(&u) {
                refs.push(ud);
            }
        }
    }

    /// MSD of the tracked particles relative to the reference.
    ///
    /// Chunked over the tracked set with an ordered sum merge, so the
    /// value is bitwise identical for any thread count.
    pub fn compute(&self, system: &System) -> f64 {
        self.compute_with_stats(system).0
    }

    fn compute_with_stats(&self, system: &System) -> (f64, ParStats) {
        if self.tracked.is_empty() {
            return (0.0, ParStats::default());
        }
        let n = self.tracked.len();
        let chunks = parallel::chunk_count(n, 2048);
        let (sum, stats) = parallel::reduce_chunks(
            &system.exec,
            chunks,
            |c| {
                let mut s = 0.0;
                for t in parallel::chunk_bounds(n, chunks, c) {
                    let u = system.unwrapped_position(self.tracked[t]);
                    for (&ud, refs) in u.iter().zip(&self.reference) {
                        let dx = ud - refs[t];
                        s += dx * dx;
                    }
                }
                s
            },
            0.0f64,
            |a, b| a + b,
        );
        (sum / n as f64, stats)
    }

    /// Bytes held by the reference buffer (the `fm` the scheduler sees).
    pub fn reference_bytes(&self) -> usize {
        3 * self.reference[0].len() * std::mem::size_of::<f64>()
    }
}

impl Analysis<System> for Msd {
    fn name(&self) -> &str {
        &self.name
    }

    fn setup(&mut self, state: &System) {
        self.capture_reference(state);
    }

    fn analyze(&mut self, state: &System) {
        let (msd, stats) = self.compute_with_stats(state);
        self.telemetry.record(
            "md.msd",
            stats.threads_used,
            stats.chunks,
            stats.wall_s(),
            stats.merge_s(),
        );
        self.series.push((state.step_count, msd));
    }

    fn output(&mut self, _state: &System) {
        let mut text = String::new();
        for (step, msd) in &self.series {
            text.push_str(&format!("{step} {msd:.8}\n"));
        }
        self.sink.emit(text.as_bytes());
        self.series.clear(); // buffer freed at output (Eq. 6 semantics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::ForceField;
    use crate::system::SimBox;

    fn ballistic_system(v: f64) -> System {
        let mut s = System::new(SimBox::cubic(100.0), ForceField::none(), 0.1);
        s.add_particle(Species::Ion, [50.0, 50.0, 50.0], [v, 0.0, 0.0]);
        s.add_particle(Species::Ion, [10.0, 10.0, 10.0], [0.0, v, 0.0]);
        s
    }

    #[test]
    fn ballistic_msd_is_vt_squared() {
        let mut s = ballistic_system(2.0);
        let mut msd = Msd::new("t", vec![Species::Ion]);
        msd.setup(&s);
        for _ in 0..50 {
            s.step();
        }
        // t = 50 * 0.1 = 5; displacement = v*t = 10 => MSD = 100
        let value = msd.compute(&s);
        assert!((value - 100.0).abs() < 1e-9, "MSD {value}");
    }

    #[test]
    fn msd_crosses_periodic_boundaries() {
        let mut s = System::new(SimBox::cubic(5.0), ForceField::none(), 0.1);
        s.add_particle(Species::Ion, [4.5, 2.5, 2.5], [1.0, 0.0, 0.0]);
        let mut msd = Msd::new("t", vec![Species::Ion]);
        msd.setup(&s);
        for _ in 0..100 {
            s.step(); // travels 10 units, wrapping twice
        }
        let value = msd.compute(&s);
        assert!((value - 100.0).abs() < 1e-9, "wrapped MSD {value}");
    }

    #[test]
    fn only_tracked_species_counted() {
        let mut s = ballistic_system(1.0);
        s.add_particle(Species::Water, [20.0, 20.0, 20.0], [9.0, 0.0, 0.0]);
        let mut msd = Msd::new("t", vec![Species::Ion]);
        msd.setup(&s);
        assert_eq!(msd.tracked.len(), 2);
        for _ in 0..10 {
            s.step();
        }
        // water moved 9 units but must not contribute: ions moved 1 unit
        assert!((msd.compute(&s) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn series_accumulates_and_output_flushes() {
        let mut s = ballistic_system(1.0);
        let mut msd = Msd::new("t", vec![Species::Ion]);
        msd.setup(&s);
        for _ in 0..3 {
            s.step();
            msd.analyze(&s);
        }
        assert_eq!(msd.series.len(), 3);
        msd.output(&s);
        assert!(msd.series.is_empty());
        assert!(msd.sink.bytes_written > 0);
    }

    #[test]
    fn reference_bytes_reported() {
        let s = ballistic_system(1.0);
        let mut msd = Msd::new("t", vec![Species::Ion]);
        msd.setup(&s);
        assert_eq!(msd.reference_bytes(), 3 * 2 * 8);
    }
}
