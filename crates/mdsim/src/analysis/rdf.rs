//! Radial distribution functions (paper analyses A1 and A2).
//!
//! Accumulates pair-distance histograms for a set of species pairs using
//! the cell list (O(N) per analysis step), then normalizes by the ideal-gas
//! shell count to produce g(r). This is the canonical "accumulating
//! histograms" algorithm class the paper calls representative of a large
//! family of physical observables.

use crate::analysis::sink::OutputSink;
use crate::neighbor::CellList;
use crate::system::{Species, System};
use insitu_core::runtime::Analysis;
use insitu_types::KernelTelemetry;
use std::time::Instant;

/// One RDF kernel covering several species pairs.
#[derive(Debug)]
pub struct Rdf {
    name: String,
    pairs: Vec<(Species, Species)>,
    r_max: f64,
    bins: usize,
    /// `hist[p][b]` — accumulated pair counts per pair and bin.
    hist: Vec<Vec<u64>>,
    /// Number of analysis steps accumulated.
    samples: usize,
    /// Persistent cell list, rebuilt in place every snapshot.
    cells: Option<CellList>,
    /// Per-kernel execution telemetry (`md.rdf`).
    pub telemetry: KernelTelemetry,
    /// Output destination.
    pub sink: OutputSink,
}

impl Rdf {
    /// Creates an RDF kernel over `pairs` with `bins` bins up to `r_max`.
    pub fn new(name: &str, pairs: Vec<(Species, Species)>, r_max: f64, bins: usize) -> Self {
        let n = pairs.len();
        Rdf {
            name: name.to_string(),
            pairs,
            r_max,
            bins,
            hist: vec![vec![0; bins]; n],
            samples: 0,
            cells: None,
            telemetry: KernelTelemetry::new(),
            sink: OutputSink::null(),
        }
    }

    /// Accumulates one snapshot into the histograms.
    ///
    /// Runs on `system.exec`: cell-range chunks bin into per-chunk
    /// histograms merged in chunk order (u64 counts, so the merge is exact
    /// regardless — the ordering keeps the contract uniform).
    pub fn accumulate(&mut self, system: &System) {
        let mut cells = self.cells.take().unwrap_or_else(CellList::empty);
        cells.rebuild(&system.bounds, &system.pos, self.r_max, &system.exec);
        let inv_dr = self.bins as f64 / self.r_max;
        let pairs = &self.pairs;
        let bins = self.bins;
        let chunks = cells.pair_chunks();
        let ncells = cells.num_cells();
        let cells_ref = &cells;
        let (parts, stats) = parallel::map_chunks(&system.exec, chunks, move |c| {
            let mut hist = vec![vec![0u64; bins]; pairs.len()];
            let range = parallel::chunk_bounds(ncells, chunks, c);
            cells_ref.for_each_pair_in(&system.bounds, &system.pos, range, |i, j, r2| {
                let si = Species::from_index(system.species[i] as usize);
                let sj = Species::from_index(system.species[j] as usize);
                let b = (r2.sqrt() * inv_dr) as usize;
                if b >= bins {
                    return;
                }
                for (p, &(a, c)) in pairs.iter().enumerate() {
                    if (si == a && sj == c) || (si == c && sj == a) {
                        hist[p][b] += 1;
                    }
                }
            });
            hist
        });
        let m0 = Instant::now();
        for part in parts {
            for (mine, theirs) in self.hist.iter_mut().zip(part) {
                for (a, b) in mine.iter_mut().zip(theirs) {
                    *a += b;
                }
            }
        }
        let merge = m0.elapsed().as_secs_f64();
        self.telemetry.record(
            "md.rdf",
            stats.threads_used,
            stats.chunks,
            stats.wall_s() + merge,
            merge,
        );
        self.cells = Some(cells);
        self.samples += 1;
    }

    /// Normalized g(r) for pair index `p`: counts divided by the ideal-gas
    /// expectation for a uniform fluid of the two species.
    pub fn g_of_r(&self, system: &System, p: usize) -> Vec<f64> {
        let (a, c) = self.pairs[p];
        let na = system.species_count(a) as f64;
        let nc = system.species_count(c) as f64;
        let n_pairs = if a == c { na * (na - 1.0) / 2.0 } else { na * nc };
        let volume = system.bounds.volume();
        let dr = self.r_max / self.bins as f64;
        let samples = self.samples.max(1) as f64;
        (0..self.bins)
            .map(|b| {
                let r_lo = b as f64 * dr;
                let r_hi = r_lo + dr;
                let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
                let ideal = n_pairs * shell / volume;
                if ideal > 0.0 {
                    self.hist[p][b] as f64 / (ideal * samples)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Total accumulated pair count for pair `p`.
    pub fn total_counts(&self, p: usize) -> u64 {
        self.hist[p].iter().sum()
    }

    /// Number of accumulated snapshots.
    pub fn samples(&self) -> usize {
        self.samples
    }

    fn serialize(&self, system: &System) -> Vec<u8> {
        let mut out = String::new();
        for p in 0..self.pairs.len() {
            let g = self.g_of_r(system, p);
            out.push_str(&format!("# pair {p} step {}\n", system.step_count));
            for (b, v) in g.iter().enumerate() {
                out.push_str(&format!("{:.4} {:.6}\n", (b as f64 + 0.5) * self.r_max / self.bins as f64, v));
            }
        }
        out.into_bytes()
    }
}

impl Analysis<System> for Rdf {
    fn name(&self) -> &str {
        &self.name
    }

    fn analyze(&mut self, state: &System) {
        self.accumulate(state);
    }

    fn output(&mut self, state: &System) {
        let bytes = self.serialize(state);
        self.sink.emit(&bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{water_ions, BuilderParams};
    use crate::force::ForceField;
    use crate::system::SimBox;

    #[test]
    fn histogram_counts_every_pair_in_range() {
        // 3 waters in a line at spacing 1.0: pairs at r=1 (x2) and r=2 (x1)
        let mut s = System::new(SimBox::cubic(10.0), ForceField::none(), 0.01);
        for x in [1.0, 2.0, 3.0] {
            s.add_particle(Species::Water, [x, 5.0, 5.0], [0.0; 3]);
        }
        let mut rdf = Rdf::new("t", vec![(Species::Water, Species::Water)], 2.5, 25);
        rdf.accumulate(&s);
        assert_eq!(rdf.total_counts(0), 3);
        assert_eq!(rdf.hist[0][10], 2, "two pairs at r=1.0");
        assert_eq!(rdf.hist[0][20], 1, "one pair at r=2.0");
    }

    #[test]
    fn ideal_gas_grf_near_one() {
        // a dense jittered lattice approximates uniform density at long r
        let s = water_ions(&BuilderParams {
            n_particles: 3000,
            density: 0.8,
            ..Default::default()
        });
        let mut rdf = Rdf::new("t", vec![(Species::Water, Species::Water)], 3.0, 30);
        rdf.accumulate(&s);
        let g = rdf.g_of_r(&s, 0);
        // beyond the first shell structure, g(r) should hover near 1
        let tail: f64 = g[20..30].iter().sum::<f64>() / 10.0;
        assert!((tail - 1.0).abs() < 0.3, "tail g(r) = {tail}");
    }

    #[test]
    fn cross_species_pairs_only() {
        let mut s = System::new(SimBox::cubic(10.0), ForceField::none(), 0.01);
        s.add_particle(Species::Hydronium, [1.0, 1.0, 1.0], [0.0; 3]);
        s.add_particle(Species::Water, [2.0, 1.0, 1.0], [0.0; 3]);
        s.add_particle(Species::Ion, [1.0, 2.0, 1.0], [0.0; 3]);
        let mut rdf = Rdf::new(
            "t",
            vec![
                (Species::Hydronium, Species::Water),
                (Species::Hydronium, Species::Ion),
                (Species::Hydronium, Species::Hydronium),
            ],
            3.0,
            30,
        );
        rdf.accumulate(&s);
        assert_eq!(rdf.total_counts(0), 1);
        assert_eq!(rdf.total_counts(1), 1);
        assert_eq!(rdf.total_counts(2), 0);
    }

    #[test]
    fn samples_average_over_steps() {
        let s = water_ions(&BuilderParams {
            n_particles: 500,
            ..Default::default()
        });
        let mut rdf = Rdf::new("t", vec![(Species::Water, Species::Water)], 2.0, 20);
        rdf.accumulate(&s);
        let g1 = rdf.g_of_r(&s, 0);
        rdf.accumulate(&s);
        let g2 = rdf.g_of_r(&s, 0);
        // same snapshot twice: averaged g(r) unchanged
        for (a, b) in g1.iter().zip(&g2) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(rdf.samples(), 2);
    }

    #[test]
    fn output_serializes_g_of_r() {
        let s = water_ions(&BuilderParams {
            n_particles: 200,
            ..Default::default()
        });
        let mut rdf = super::super::a1_hydronium_rdf();
        rdf.analyze(&s);
        rdf.output(&s);
        assert!(rdf.sink.bytes_written > 0);
        assert_eq!(rdf.sink.writes, 1);
    }
}
