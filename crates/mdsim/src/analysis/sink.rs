//! Output sink shared by the analysis kernels.
//!
//! An analysis "output step" serializes the kernel's current results and
//! hands the bytes to a sink — a real file when a path is configured, or a
//! byte-counting null sink otherwise (so the serialization cost, the `ot`
//! component the scheduler reasons about, is paid either way).

use std::fs::File;
use std::io::Write;
use std::path::PathBuf;

/// Destination for analysis output.
#[derive(Debug, Default)]
pub struct OutputSink {
    path: Option<PathBuf>,
    /// Total bytes emitted across all output steps.
    pub bytes_written: u64,
    /// Number of output steps performed.
    pub writes: usize,
}

impl OutputSink {
    /// A sink that counts bytes but writes nowhere.
    pub fn null() -> Self {
        OutputSink::default()
    }

    /// A sink appending to `path`.
    pub fn to_file(path: impl Into<PathBuf>) -> Self {
        OutputSink {
            path: Some(path.into()),
            bytes_written: 0,
            writes: 0,
        }
    }

    /// Emits one output record.
    pub fn emit(&mut self, bytes: &[u8]) {
        if let Some(path) = &self.path {
            let mut f = File::options()
                .create(true)
                .append(true)
                .open(path)
                .expect("open analysis output file");
            f.write_all(bytes).expect("write analysis output");
        }
        self.bytes_written += bytes.len() as u64;
        self.writes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_counts() {
        let mut s = OutputSink::null();
        s.emit(b"hello");
        s.emit(b"world!");
        assert_eq!(s.bytes_written, 11);
        assert_eq!(s.writes, 2);
    }

    #[test]
    fn file_sink_appends() {
        let dir = std::env::temp_dir().join(format!("mdsim_sink_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.txt");
        let _ = std::fs::remove_file(&path);
        let mut s = OutputSink::to_file(&path);
        s.emit(b"a\n");
        s.emit(b"b\n");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\nb\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
