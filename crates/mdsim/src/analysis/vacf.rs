//! Velocity auto-correlation function (paper analysis A3).
//!
//! A temporal analysis: a ring buffer of velocity snapshots is appended to
//! **every simulation step** (this is exactly the paper's `it`/`im` cost —
//! "the time required to copy simulation data from simulation memory to
//! temporary analysis memory so that data is not overwritten and
//! facilitates temporal analysis", §3.2), and at each analysis step the
//! correlation `C(τ) = ⟨v(t)·v(t+τ)⟩ / ⟨v·v⟩` is evaluated over the window.

use crate::analysis::sink::OutputSink;
use crate::system::{Species, System};
use insitu_core::runtime::Analysis;
use parallel::ScratchPool;
use std::collections::VecDeque;

/// VACF kernel over a set of tracked species.
#[derive(Debug)]
pub struct Vacf {
    name: String,
    species: Vec<Species>,
    tracked: Vec<usize>,
    /// Ring buffer of velocity snapshots, each 3×N_tracked flattened.
    /// A `VecDeque` so eviction at capacity is O(1), not an O(window)
    /// front-shift.
    window: VecDeque<Vec<f64>>,
    capacity: usize,
    /// Evicted/flushed snapshot buffers, reused for new snapshots: in
    /// steady state the per-step `record` allocates nothing.
    pool: ScratchPool,
    /// Most recent correlation curve.
    pub correlation: Vec<f64>,
    /// Output destination.
    pub sink: OutputSink,
}

impl Vacf {
    /// Creates a VACF kernel with a history window of `capacity` steps.
    pub fn new(name: &str, species: Vec<Species>, capacity: usize) -> Self {
        Vacf {
            name: name.to_string(),
            species,
            tracked: Vec::new(),
            window: VecDeque::new(),
            capacity: capacity.max(2),
            pool: ScratchPool::new(),
            correlation: Vec::new(),
            sink: OutputSink::null(),
        }
    }

    fn snapshot(&self, system: &System) -> Vec<f64> {
        // pooled buffer, overwritten in full below
        let mut v = self.pool.take(3 * self.tracked.len());
        for (k, &i) in self.tracked.iter().enumerate() {
            let vel = system.velocity(i);
            v[3 * k] = vel[0];
            v[3 * k + 1] = vel[1];
            v[3 * k + 2] = vel[2];
        }
        v
    }

    /// Appends the current velocities to the history window.
    pub fn record(&mut self, system: &System) {
        // evict BEFORE snapshotting so the freed buffer serves the new
        // snapshot — steady state then cycles one buffer with zero allocs
        if self.window.len() == self.capacity {
            if let Some(old) = self.window.pop_front() {
                self.pool.put(old);
            }
        }
        let snap = self.snapshot(system);
        self.window.push_back(snap);
    }

    /// Scratch-pool counters: `(allocations, reuses)` since construction.
    pub fn scratch_counters(&self) -> (usize, usize) {
        let c = self.pool.counters();
        (c.allocs, c.reuses)
    }

    /// Computes the normalized correlation `C(τ)` for `τ = 0..window-1`,
    /// referenced to the oldest snapshot in the window.
    pub fn compute(&mut self) -> &[f64] {
        self.correlation.clear();
        let Some(reference) = self.window.front() else {
            return &self.correlation;
        };
        let norm: f64 = reference.iter().map(|v| v * v).sum();
        for snap in &self.window {
            let dot: f64 = reference.iter().zip(snap).map(|(a, b)| a * b).sum();
            self.correlation
                .push(if norm > 0.0 { dot / norm } else { 0.0 });
        }
        &self.correlation
    }

    /// Bytes held by the history window (the accumulating `im` memory).
    pub fn window_bytes(&self) -> usize {
        self.window.iter().map(|w| w.len() * 8).sum()
    }

    /// Number of snapshots currently held.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Empties the window, returning every snapshot buffer to the pool.
    fn drain_window_to_pool(&mut self) {
        while let Some(b) = self.window.pop_front() {
            self.pool.put(b);
        }
    }
}

impl Analysis<System> for Vacf {
    fn name(&self) -> &str {
        &self.name
    }

    fn setup(&mut self, state: &System) {
        self.tracked = self
            .species
            .iter()
            .flat_map(|&s| state.of_species(s))
            .collect();
        // tracked-set (and hence snapshot length) may change: drop the
        // window but keep the buffers — the pool shelves by size
        self.drain_window_to_pool();
    }

    fn per_step(&mut self, state: &System) {
        self.record(state);
    }

    fn analyze(&mut self, _state: &System) {
        self.compute();
    }

    fn output(&mut self, state: &System) {
        let mut text = format!("# vacf step {}\n", state.step_count);
        for (tau, c) in self.correlation.iter().enumerate() {
            text.push_str(&format!("{tau} {c:.8}\n"));
        }
        self.sink.emit(text.as_bytes());
        self.drain_window_to_pool(); // history released at output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::ForceField;
    use crate::system::SimBox;

    fn free_system() -> System {
        let mut s = System::new(SimBox::cubic(50.0), ForceField::none(), 0.05);
        s.add_particle(Species::Water, [10.0, 10.0, 10.0], [1.0, 0.0, 0.0]);
        s.add_particle(Species::Water, [20.0, 20.0, 20.0], [0.0, -1.0, 0.0]);
        s
    }

    #[test]
    fn constant_velocities_give_unit_correlation() {
        let mut s = free_system();
        let mut vacf = Vacf::new("t", vec![Species::Water], 10);
        vacf.setup(&s);
        for _ in 0..10 {
            s.step(); // no forces: velocities constant
            vacf.record(&s);
        }
        let c = vacf.compute().to_vec();
        assert_eq!(c.len(), 10);
        for v in c {
            assert!((v - 1.0).abs() < 1e-12, "correlation {v}");
        }
    }

    #[test]
    fn sign_flip_gives_negative_correlation() {
        let mut s = free_system();
        let mut vacf = Vacf::new("t", vec![Species::Water], 4);
        vacf.setup(&s);
        vacf.record(&s);
        // manually reverse all velocities (like a reflecting event)
        for d in 0..3 {
            s.vel[d].iter_mut().for_each(|v| *v = -*v);
        }
        vacf.record(&s);
        let c = vacf.compute().to_vec();
        assert!((c[0] - 1.0).abs() < 1e-12);
        assert!((c[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ring_buffer_caps_memory() {
        let s = free_system();
        let mut vacf = Vacf::new("t", vec![Species::Water], 5);
        vacf.setup(&s);
        for _ in 0..20 {
            vacf.record(&s);
        }
        assert_eq!(vacf.window_len(), 5);
        assert_eq!(vacf.window_bytes(), 5 * 2 * 3 * 8);
    }

    #[test]
    fn output_flushes_window() {
        let mut s = free_system();
        let mut vacf = Vacf::new("t", vec![Species::Water], 8);
        vacf.setup(&s);
        for _ in 0..5 {
            s.step();
            vacf.per_step(&s);
        }
        vacf.analyze(&s);
        assert!(!vacf.correlation.is_empty());
        vacf.output(&s);
        assert_eq!(vacf.window_len(), 0);
        assert!(vacf.sink.bytes_written > 0);
    }

    #[test]
    fn empty_window_is_safe() {
        let mut vacf = Vacf::new("t", vec![Species::Water], 4);
        assert!(vacf.compute().is_empty());
    }

    #[test]
    fn snapshot_pool_reaches_steady_state() {
        let s = free_system();
        let mut vacf = Vacf::new("t", vec![Species::Water], 5);
        vacf.setup(&s);
        // fill the window: one fresh buffer per snapshot
        for _ in 0..5 {
            vacf.record(&s);
        }
        let (cold, _) = vacf.scratch_counters();
        assert_eq!(cold, 5);
        // steady state: every eviction feeds the next snapshot
        for _ in 0..50 {
            vacf.record(&s);
        }
        let (allocs, reuses) = vacf.scratch_counters();
        assert_eq!(allocs, cold, "steady-state record must allocate nothing");
        assert_eq!(reuses, 50);
        // output drains the window into the pool; refills reuse it all
        vacf.output(&s);
        for _ in 0..5 {
            vacf.record(&s);
        }
        assert_eq!(vacf.scratch_counters().0, cold);
    }
}
