//! System builders for the paper's two LAMMPS problems.
//!
//! * [`water_ions`] — a periodic box of water solvating hydronium and
//!   dissolved ions (paper §5.2, analyses A1–A4). Composition follows the
//!   paper's description: mostly water with a small ionic fraction.
//! * [`rhodopsin_proxy`] — the rhodopsin benchmark's geometry (Figure 3): a
//!   protein blob embedded in a membrane slab, solvated by water above and
//!   below with ions sprinkled in.
//!
//! Both builders place particles on a jittered lattice (no overlaps, so
//! dynamics start stable) with Maxwell-ish random velocities.

use crate::force::ForceField;
use crate::system::{Bond, SimBox, Species, System};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Common builder knobs.
#[derive(Debug, Clone, Copy)]
pub struct BuilderParams {
    /// Total number of particles to place.
    pub n_particles: usize,
    /// Number density (particles per unit volume).
    pub density: f64,
    /// Initial temperature (reduced units).
    pub temperature: f64,
    /// Integration time step.
    pub dt: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BuilderParams {
    fn default() -> Self {
        BuilderParams {
            n_particles: 4096,
            density: 0.7,
            temperature: 1.0,
            dt: 0.004,
            seed: 20150817,
        }
    }
}

fn lattice_box(params: &BuilderParams) -> (SimBox, usize, f64) {
    let volume = params.n_particles as f64 / params.density;
    let l = volume.cbrt();
    // cells per side, enough sites for all particles
    let per_side = (params.n_particles as f64).cbrt().ceil() as usize;
    (SimBox::cubic(l), per_side, l / per_side as f64)
}

fn maxwell_velocity(rng: &mut StdRng, temperature: f64) -> [f64; 3] {
    let sigma = temperature.sqrt();
    let mut g = || {
        // Box-Muller
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * sigma
    };
    [g(), g(), g()]
}

fn remove_net_momentum(system: &mut System) {
    let total_mass: f64 = (0..system.len()).map(|i| system.mass(i)).sum();
    if total_mass == 0.0 {
        return;
    }
    for d in 0..3 {
        let momentum: f64 = (0..system.len())
            .map(|i| system.mass(i) * system.vel[d][i])
            .sum();
        let drift = momentum / total_mass;
        system.vel[d].iter_mut().for_each(|v| *v -= drift);
    }
}

/// Builds the water+ions problem: ~2 % hydronium, ~2 % ions, rest water.
pub fn water_ions(params: &BuilderParams) -> System {
    let (bounds, per_side, spacing) = lattice_box(params);
    let mut system = System::new(bounds, ForceField::default(), params.dt);
    system.target_temp = params.temperature;
    system.masses = [1.0, 1.05, 2.2, 1.4, 1.6];
    let mut rng = StdRng::seed_from_u64(params.seed);
    let jitter = spacing * 0.1;
    let mut placed = 0usize;
    'outer: for iz in 0..per_side {
        for iy in 0..per_side {
            for ix in 0..per_side {
                if placed >= params.n_particles {
                    break 'outer;
                }
                let r: f64 = rng.gen();
                let species = if r < 0.02 {
                    Species::Hydronium
                } else if r < 0.04 {
                    Species::Ion
                } else {
                    Species::Water
                };
                let pos = [
                    (ix as f64 + 0.5) * spacing + rng.gen_range(-jitter..jitter),
                    (iy as f64 + 0.5) * spacing + rng.gen_range(-jitter..jitter),
                    (iz as f64 + 0.5) * spacing + rng.gen_range(-jitter..jitter),
                ];
                let vel = maxwell_velocity(&mut rng, params.temperature);
                system.add_particle(species, pos, vel);
                placed += 1;
            }
        }
    }
    remove_net_momentum(&mut system);
    system
}

/// Builds the rhodopsin-proxy problem: protein sphere at the centre,
/// membrane slab through the middle (z within ±10 % of the box), water
/// above/below, ~1 % ions in the solvent. Protein sites are chained with
/// harmonic bonds so the radius of gyration is a meaningful observable.
pub fn rhodopsin_proxy(params: &BuilderParams) -> System {
    let (bounds, per_side, spacing) = lattice_box(params);
    let l = bounds.lengths[0];
    let mut system = System::new(bounds, ForceField::default(), params.dt);
    system.target_temp = params.temperature;
    system.masses = [1.0, 1.05, 2.2, 1.4, 1.6];
    let mut rng = StdRng::seed_from_u64(params.seed);
    let jitter = spacing * 0.1;
    let centre = [l / 2.0; 3];
    let protein_radius = l * 0.12;
    let membrane_half = l * 0.10;
    let mut placed = 0usize;
    let mut protein_sites: Vec<usize> = Vec::new();
    'outer: for iz in 0..per_side {
        for iy in 0..per_side {
            for ix in 0..per_side {
                if placed >= params.n_particles {
                    break 'outer;
                }
                let pos = [
                    (ix as f64 + 0.5) * spacing + rng.gen_range(-jitter..jitter),
                    (iy as f64 + 0.5) * spacing + rng.gen_range(-jitter..jitter),
                    (iz as f64 + 0.5) * spacing + rng.gen_range(-jitter..jitter),
                ];
                let dx = pos[0] - centre[0];
                let dy = pos[1] - centre[1];
                let dz = pos[2] - centre[2];
                let in_protein = (dx * dx + dy * dy + dz * dz).sqrt() < protein_radius;
                let in_membrane = (pos[2] - centre[2]).abs() < membrane_half;
                let species = if in_protein {
                    Species::Protein
                } else if in_membrane {
                    Species::Membrane
                } else if rng.gen::<f64>() < 0.01 {
                    Species::Ion
                } else {
                    Species::Water
                };
                let vel = maxwell_velocity(&mut rng, params.temperature);
                let idx = system.add_particle(species, pos, vel);
                if species == Species::Protein {
                    protein_sites.push(idx);
                }
                placed += 1;
            }
        }
    }
    // chain the protein sites (nearest in placement order) with soft bonds
    for w in protein_sites.windows(2) {
        let r = system
            .bounds
            .dist2(system.position(w[0]), system.position(w[1]))
            .sqrt();
        system.bonds.push(Bond {
            i: w[0],
            j: w[1],
            r0: r.min(2.0),
            k: 5.0,
        });
    }
    remove_net_momentum(&mut system);
    system
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BuilderParams {
        BuilderParams {
            n_particles: 1000,
            ..Default::default()
        }
    }

    #[test]
    fn water_ions_composition() {
        let s = water_ions(&small());
        assert_eq!(s.len(), 1000);
        let water = s.species_count(Species::Water);
        let hyd = s.species_count(Species::Hydronium);
        let ion = s.species_count(Species::Ion);
        assert_eq!(water + hyd + ion, 1000);
        assert!(water > 900, "water dominates: {water}");
        assert!(hyd > 0 && ion > 0, "ions present: {hyd} {ion}");
    }

    #[test]
    fn density_matches_request() {
        let p = small();
        let s = water_ions(&p);
        let actual = s.len() as f64 / s.bounds.volume();
        assert!((actual - p.density).abs() / p.density < 0.05, "density {actual}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = water_ions(&small());
        let b = water_ions(&small());
        assert_eq!(a.pos[0], b.pos[0]);
        assert_eq!(a.species, b.species);
        let c = water_ions(&BuilderParams { seed: 1, ..small() });
        assert_ne!(a.species, c.species);
    }

    #[test]
    fn rhodopsin_geometry() {
        let s = rhodopsin_proxy(&BuilderParams {
            n_particles: 4096,
            ..Default::default()
        });
        let l = s.bounds.lengths[0];
        // protein clustered at centre
        let protein = s.of_species(Species::Protein);
        assert!(!protein.is_empty());
        for &i in &protein {
            let p = s.position(i);
            let r = ((p[0] - l / 2.0).powi(2) + (p[1] - l / 2.0).powi(2) + (p[2] - l / 2.0).powi(2))
                .sqrt();
            assert!(r < l * 0.15, "protein site {i} too far out: {r}");
        }
        // membrane confined to the central slab
        for &i in &s.of_species(Species::Membrane) {
            let z = s.position(i)[2];
            assert!((z - l / 2.0).abs() < l * 0.12, "membrane z {z}");
        }
        // water both above and below the membrane
        let water_z: Vec<f64> = s.of_species(Species::Water).iter().map(|&i| s.position(i)[2]).collect();
        assert!(water_z.iter().any(|&z| z > l * 0.75));
        assert!(water_z.iter().any(|&z| z < l * 0.25));
        // bonds chain the protein
        assert_eq!(s.bonds.len(), protein.len() - 1);
    }

    #[test]
    fn net_momentum_zero() {
        let s = water_ions(&small());
        for d in 0..3 {
            let p: f64 = (0..s.len()).map(|i| s.mass(i) * s.vel[d][i]).sum();
            assert!(p.abs() < 1e-9, "net momentum dim {d}: {p}");
        }
    }

    #[test]
    fn built_system_steps_stably() {
        let mut s = water_ions(&BuilderParams {
            n_particles: 500,
            ..Default::default()
        });
        for _ in 0..20 {
            s.step();
        }
        // no NaNs, positions in box
        for d in 0..3 {
            assert!(s.pos[d].iter().all(|x| x.is_finite() && *x >= 0.0 && *x < s.bounds.lengths[d]));
            assert!(s.vel[d].iter().all(|v| v.is_finite()));
        }
        let t = s.temperature();
        assert!(t > 0.1 && t < 10.0, "temperature {t}");
    }
}
