//! Trajectory dump & read-back — the post-processing path of Table 4.
//!
//! The paper's Table 4 compares in-situ MSD against a post-processing tool
//! that must first *read the LAMMPS trajectory file* — the read utterly
//! dominates (2413 s read vs 17.85 s analyze at 100 k atoms). This module
//! provides the trajectory format: a simple binary layout (header + per-
//! frame species/positions/velocities) written by the simulation's output
//! steps and re-read by the post-processing example.

use crate::system::{Species, System};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: u32 = 0x4D44_5452; // "MDTR"

/// One stored trajectory frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Simulation step the frame was taken at.
    pub step: u64,
    /// Box edge lengths.
    pub box_lengths: [f64; 3],
    /// Species index per particle.
    pub species: Vec<u8>,
    /// Positions, SoA.
    pub pos: [Vec<f64>; 3],
    /// Velocities, SoA.
    pub vel: [Vec<f64>; 3],
}

impl Frame {
    /// Captures the current state of `system`.
    pub fn capture(system: &System) -> Frame {
        Frame {
            step: system.step_count as u64,
            box_lengths: system.bounds.lengths,
            species: system.species.clone(),
            pos: system.pos.clone(),
            vel: system.vel.clone(),
        }
    }

    /// Number of particles in the frame.
    pub fn len(&self) -> usize {
        self.species.len()
    }

    /// True when the frame has no particles.
    pub fn is_empty(&self) -> bool {
        self.species.is_empty()
    }

    /// Indices of particles of `species` in this frame.
    pub fn of_species(&self, species: Species) -> Vec<usize> {
        let s = species.index() as u8;
        (0..self.len()).filter(|&i| self.species[i] == s).collect()
    }

    /// On-disk size of this frame in bytes.
    pub fn byte_size(&self) -> u64 {
        // step + box + count + species + 6 f64 arrays
        8 + 24 + 8 + self.len() as u64 + 6 * 8 * self.len() as u64
    }
}

/// Streaming trajectory writer.
#[derive(Debug)]
pub struct TrajectoryWriter {
    w: BufWriter<File>,
    /// Frames written so far.
    pub frames: usize,
    /// Bytes written so far (payload accounting).
    pub bytes: u64,
}

fn write_f64s(w: &mut impl Write, v: &[f64]) -> io::Result<()> {
    for x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_f64s(r: &mut impl Read, n: usize) -> io::Result<Vec<f64>> {
    let mut buf = [0u8; 8];
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        r.read_exact(&mut buf)?;
        out.push(f64::from_le_bytes(buf));
    }
    Ok(out)
}

impl TrajectoryWriter {
    /// Creates/truncates a trajectory file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&MAGIC.to_le_bytes())?;
        Ok(TrajectoryWriter {
            w,
            frames: 0,
            bytes: 4,
        })
    }

    /// Appends one frame.
    pub fn write_frame(&mut self, frame: &Frame) -> io::Result<()> {
        let n = frame.len() as u64;
        self.w.write_all(&frame.step.to_le_bytes())?;
        for l in frame.box_lengths {
            self.w.write_all(&l.to_le_bytes())?;
        }
        self.w.write_all(&n.to_le_bytes())?;
        self.w.write_all(&frame.species)?;
        for d in 0..3 {
            write_f64s(&mut self.w, &frame.pos[d])?;
        }
        for d in 0..3 {
            write_f64s(&mut self.w, &frame.vel[d])?;
        }
        self.frames += 1;
        self.bytes += frame.byte_size();
        Ok(())
    }

    /// Flushes and closes the file.
    pub fn finish(mut self) -> io::Result<u64> {
        self.w.flush()?;
        Ok(self.bytes)
    }
}

/// Streaming trajectory reader.
#[derive(Debug)]
pub struct TrajectoryReader {
    r: BufReader<File>,
}

impl TrajectoryReader {
    /// Opens a trajectory file, validating the magic header.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if u32::from_le_bytes(magic) != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a trajectory file",
            ));
        }
        Ok(TrajectoryReader { r })
    }

    /// Reads the next frame, or `None` at end of file.
    pub fn next_frame(&mut self) -> io::Result<Option<Frame>> {
        let mut b8 = [0u8; 8];
        match self.r.read_exact(&mut b8) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let step = u64::from_le_bytes(b8);
        let mut box_lengths = [0.0; 3];
        for l in box_lengths.iter_mut() {
            self.r.read_exact(&mut b8)?;
            *l = f64::from_le_bytes(b8);
        }
        self.r.read_exact(&mut b8)?;
        let n = u64::from_le_bytes(b8) as usize;
        let mut species = vec![0u8; n];
        self.r.read_exact(&mut species)?;
        let mut pos: [Vec<f64>; 3] = Default::default();
        for p in pos.iter_mut() {
            *p = read_f64s(&mut self.r, n)?;
        }
        let mut vel: [Vec<f64>; 3] = Default::default();
        for v in vel.iter_mut() {
            *v = read_f64s(&mut self.r, n)?;
        }
        Ok(Some(Frame {
            step,
            box_lengths,
            species,
            pos,
            vel,
        }))
    }

    /// Reads all remaining frames.
    pub fn read_all(&mut self) -> io::Result<Vec<Frame>> {
        let mut frames = Vec::new();
        while let Some(f) = self.next_frame()? {
            frames.push(f);
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{water_ions, BuilderParams};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mdsim_{}_{}", std::process::id(), name))
    }

    #[test]
    fn round_trip_preserves_frames() {
        let mut s = water_ions(&BuilderParams {
            n_particles: 200,
            ..Default::default()
        });
        let path = tmp("roundtrip.trj");
        let mut w = TrajectoryWriter::create(&path).unwrap();
        let mut originals = Vec::new();
        for _ in 0..3 {
            for _ in 0..5 {
                s.step();
            }
            let f = Frame::capture(&s);
            w.write_frame(&f).unwrap();
            originals.push(f);
        }
        let bytes = w.finish().unwrap();
        assert!(bytes > 0);
        let mut r = TrajectoryReader::open(&path).unwrap();
        let frames = r.read_all().unwrap();
        assert_eq!(frames, originals);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn byte_size_matches_file_growth() {
        let s = water_ions(&BuilderParams {
            n_particles: 100,
            ..Default::default()
        });
        let path = tmp("size.trj");
        let mut w = TrajectoryWriter::create(&path).unwrap();
        let f = Frame::capture(&s);
        w.write_frame(&f).unwrap();
        let logical = w.finish().unwrap();
        let physical = std::fs::metadata(&path).unwrap().len();
        assert_eq!(logical, physical);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_garbage_files() {
        let path = tmp("garbage.trj");
        std::fs::write(&path, b"not a trajectory").unwrap();
        assert!(TrajectoryReader::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_trajectory_reads_empty() {
        let path = tmp("empty.trj");
        let w = TrajectoryWriter::create(&path).unwrap();
        w.finish().unwrap();
        let mut r = TrajectoryReader::open(&path).unwrap();
        assert!(r.read_all().unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn frame_species_selection() {
        let s = water_ions(&BuilderParams {
            n_particles: 500,
            ..Default::default()
        });
        let f = Frame::capture(&s);
        assert_eq!(
            f.of_species(Species::Ion).len(),
            s.species_count(Species::Ion)
        );
        assert_eq!(f.len(), 500);
    }
}
