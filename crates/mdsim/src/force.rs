//! Pairwise force field: truncated & shifted Lennard-Jones.
//!
//! A single (ε, σ) pair for all species keeps the engine lean; what the
//! scheduler cares about is the *cost shape* of the force loop and the
//! analyses, not chemical accuracy.

/// Lennard-Jones parameters with a finite cutoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForceField {
    /// Well depth ε.
    pub epsilon: f64,
    /// Length scale σ.
    pub sigma: f64,
    /// Interaction cutoff radius.
    pub cutoff: f64,
    /// Potential value at the cutoff (subtracted so E(cutoff) = 0).
    pub shift: f64,
}

impl ForceField {
    /// LJ force field with given parameters; the shift is derived.
    pub fn new(epsilon: f64, sigma: f64, cutoff: f64) -> Self {
        let sr6 = (sigma / cutoff).powi(6);
        let shift = 4.0 * epsilon * (sr6 * sr6 - sr6);
        ForceField {
            epsilon,
            sigma,
            cutoff,
            shift,
        }
    }

    /// A force field with no pairwise interaction (bonds only).
    pub fn none() -> Self {
        ForceField {
            epsilon: 0.0,
            sigma: 1.0,
            cutoff: 0.5,
            shift: 0.0,
        }
    }

    /// `(f/r, energy)` for a pair at squared distance `r2`; both zero past
    /// the cutoff. `f/r` is the scalar such that the force vector on `i`
    /// is `(f/r) * (r_i - r_j)` (positive = repulsive).
    #[inline]
    pub fn lj_pair(&self, r2: f64) -> (f64, f64) {
        if r2 >= self.cutoff * self.cutoff || self.epsilon == 0.0 {
            return (0.0, 0.0);
        }
        let inv_r2 = 1.0 / r2.max(1e-12);
        let sr2 = self.sigma * self.sigma * inv_r2;
        let sr6 = sr2 * sr2 * sr2;
        let sr12 = sr6 * sr6;
        let energy = 4.0 * self.epsilon * (sr12 - sr6) - self.shift;
        let fscale = 24.0 * self.epsilon * (2.0 * sr12 - sr6) * inv_r2;
        (fscale, energy)
    }
}

impl Default for ForceField {
    /// ε = 1, σ = 1, cutoff 2.5σ — the canonical reduced-unit LJ fluid.
    fn default() -> Self {
        ForceField::new(1.0, 1.0, 2.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_beyond_cutoff() {
        let ff = ForceField::default();
        let (f, e) = ff.lj_pair(2.5 * 2.5 + 0.01);
        assert_eq!((f, e), (0.0, 0.0));
    }

    #[test]
    fn energy_continuous_at_cutoff() {
        let ff = ForceField::default();
        let (_, e) = ff.lj_pair((2.5f64 - 1e-6).powi(2));
        assert!(e.abs() < 1e-4, "shifted potential must vanish at cutoff, got {e}");
    }

    #[test]
    fn minimum_at_two_pow_sixth_sigma() {
        let ff = ForceField::default();
        let rmin: f64 = 2.0f64.powf(1.0 / 6.0);
        let (f, _) = ff.lj_pair(rmin * rmin);
        assert!(f.abs() < 1e-9, "force at minimum {f}");
        // repulsive inside, attractive outside
        assert!(ff.lj_pair((rmin - 0.1) * (rmin - 0.1)).0 > 0.0);
        assert!(ff.lj_pair((rmin + 0.1) * (rmin + 0.1)).0 < 0.0);
    }

    #[test]
    fn force_is_negative_energy_gradient() {
        let ff = ForceField::default();
        let r = 1.3;
        let h = 1e-6;
        let (_, e1) = ff.lj_pair((r - h) * (r - h));
        let (_, e2) = ff.lj_pair((r + h) * (r + h));
        let dedr = (e2 - e1) / (2.0 * h);
        let (fscale, _) = ff.lj_pair(r * r);
        // F = -dE/dr along r, fscale = F/r
        assert!((fscale * r + dedr).abs() < 1e-4, "fscale*r {} vs -dE/dr {}", fscale * r, -dedr);
    }

    #[test]
    fn none_field_is_inert() {
        let ff = ForceField::none();
        assert_eq!(ff.lj_pair(0.01), (0.0, 0.0));
    }
}
