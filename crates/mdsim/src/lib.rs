//! A miniature LAMMPS: classical molecular dynamics with embedded in-situ
//! analysis kernels.
//!
//! The paper's first case study couples its scheduler to LAMMPS running two
//! problems — a water+ions system (analyses A1–A4 of Table 2) and the
//! rhodopsin protein benchmark (analyses R1–R3 of Table 3). This crate is
//! the workspace's stand-in: a real (laptop-scale) MD engine whose analysis
//! kernels have the same algorithmic shape as the paper's, so their
//! relative time/memory profiles (paper Figure 4) and scaling behaviour are
//! preserved:
//!
//! * [`system`] — SoA particle store, periodic box, velocity-Verlet
//!   integration with a Berendsen thermostat,
//! * [`neighbor`] — O(N) cell-list pair iteration (with an O(N²) reference
//!   used by the tests),
//! * [`force`] — truncated-shifted Lennard-Jones plus harmonic bonds,
//! * [`builder`] — water+ions and rhodopsin-proxy system generators,
//! * [`analysis`] — RDF (A1/A2), VACF (A3), MSD (A4), radius of gyration
//!   (R1) and 2-D density histograms (R2/R3), each implementing the
//!   [`insitu_core::runtime::Analysis`] trait,
//! * [`dump`] — trajectory write/read for the Table-4 post-processing
//!   comparison,
//! * [`render`] — an orthographic PPM snapshot (paper Figure 3).

pub mod analysis;
pub mod builder;
pub mod dump;
pub mod force;
pub mod neighbor;
pub mod render;
pub mod system;

pub use builder::{rhodopsin_proxy, water_ions, BuilderParams};
pub use system::{SimBox, Species, System, NUM_SPECIES};
