//! Cell-list neighbour search: O(N) pair iteration under a cutoff.
//!
//! The box is diced into cells at least one cutoff wide; each particle
//! interacts only with particles in its own and the 13 forward-neighbour
//! cells (half stencil), so every unordered pair is visited exactly once.
//! Falls back to a single cell per dimension for small boxes, where the
//! stencil degenerates gracefully.

use crate::system::SimBox;
use parallel::Exec;

/// A rebuildable cell list.
#[derive(Debug, Clone)]
pub struct CellList {
    dims: [usize; 3],
    /// Head-of-chain particle index per cell (usize::MAX = empty).
    heads: Vec<usize>,
    /// Next-particle chain.
    next: Vec<usize>,
    /// Scratch: cell index per particle, reused across rebuilds.
    cell_idx: Vec<usize>,
    cutoff: f64,
}

const EMPTY: usize = usize::MAX;

impl CellList {
    /// An empty cell list to be populated by [`CellList::rebuild`].
    pub fn empty() -> Self {
        CellList {
            dims: [1; 3],
            heads: Vec::new(),
            next: Vec::new(),
            cell_idx: Vec::new(),
            cutoff: 0.0,
        }
    }

    /// Builds a cell list for `pos` (SoA layout) with interaction `cutoff`.
    pub fn build(bounds: &SimBox, pos: &[Vec<f64>; 3], cutoff: f64) -> Self {
        let mut cl = CellList::empty();
        cl.rebuild(bounds, pos, cutoff, &Exec::serial());
        cl
    }

    /// Rebuilds in place, reusing the `heads`/`next`/`cell_idx` allocations
    /// from the previous build when the sizes still fit.
    ///
    /// The per-particle cell indices are computed in parallel (a pure
    /// per-element map); the chain linking stays serial so the chain order
    /// — and therefore the pair visit order — is identical for every
    /// thread count.
    pub fn rebuild(&mut self, bounds: &SimBox, pos: &[Vec<f64>; 3], cutoff: f64, exec: &Exec) {
        let n = pos[0].len();
        self.cutoff = cutoff;
        for (dim, &len) in self.dims.iter_mut().zip(&bounds.lengths) {
            *dim = (len / cutoff).floor().max(1.0) as usize;
        }
        let ncells = self.dims[0] * self.dims[1] * self.dims[2];
        self.heads.clear();
        self.heads.resize(ncells, EMPTY);
        self.next.clear();
        self.next.resize(n, EMPTY);
        self.cell_idx.clear();
        self.cell_idx.resize(n, 0);
        let dims = self.dims;
        parallel::fill_chunks(
            exec,
            &mut self.cell_idx,
            parallel::chunk_count(n, 2048),
            |_, start, slice| {
                for (k, c) in slice.iter_mut().enumerate() {
                    let i = start + k;
                    *c = Self::cell_of(bounds, dims, [pos[0][i], pos[1][i], pos[2][i]]);
                }
            },
        );
        for i in 0..n {
            let c = self.cell_idx[i];
            self.next[i] = self.heads[c];
            self.heads[c] = i;
        }
    }

    #[inline]
    fn cell_of(bounds: &SimBox, dims: [usize; 3], p: [f64; 3]) -> usize {
        let mut idx = [0usize; 3];
        for d in 0..3 {
            let frac = (p[d] / bounds.lengths[d]).clamp(0.0, 1.0 - 1e-12);
            idx[d] = ((frac * dims[d] as f64) as usize).min(dims[d] - 1);
        }
        (idx[2] * dims[1] + idx[1]) * dims[0] + idx[0]
    }

    /// Visits every unordered pair `(i, j)` with minimum-image squared
    /// distance `r2 < cutoff²`, exactly once.
    pub fn for_each_pair(
        &self,
        bounds: &SimBox,
        pos: &[Vec<f64>; 3],
        f: impl FnMut(usize, usize, f64),
    ) {
        self.for_each_pair_in(bounds, pos, 0..self.num_cells(), f);
    }

    /// True when any grid dimension has <= 2 cells, which makes the torus
    /// alias unordered cell pairs across different home cells. Such grids
    /// need the global pair dedup and therefore a single full-range pass.
    pub fn is_degenerate(&self) -> bool {
        self.dims.iter().any(|&d| d <= 2)
    }

    /// Deterministic chunk count for parallel pair iteration: a fixed
    /// function of the cell count (see `parallel::chunk_count`), forced to
    /// 1 on degenerate grids where pair dedup is global.
    pub fn pair_chunks(&self) -> usize {
        if self.is_degenerate() {
            1
        } else {
            parallel::chunk_count(self.num_cells(), 32)
        }
    }

    /// Visits every unordered pair whose *home* cell (the cell owning the
    /// half stencil) has linear index in `cells`. Ranges partition the
    /// pair set: iterating disjoint ranges that cover `0..num_cells()`
    /// visits exactly the pairs of [`CellList::for_each_pair`], each once.
    ///
    /// Degenerate grids ([`CellList::is_degenerate`]) dedup aliased cell
    /// pairs globally, so they only support the full range — which
    /// [`CellList::pair_chunks`] guarantees by returning one chunk.
    pub fn for_each_pair_in(
        &self,
        bounds: &SimBox,
        pos: &[Vec<f64>; 3],
        cells: std::ops::Range<usize>,
        mut f: impl FnMut(usize, usize, f64),
    ) {
        debug_assert!(
            !self.is_degenerate() || (cells.start == 0 && cells.end == self.num_cells()),
            "degenerate grids need the global pair dedup: full range only"
        );
        let [nx, ny, nz] = self.dims;
        let cut2 = self.cutoff * self.cutoff;
        // half stencil: self + 13 forward neighbours
        let mut stencil: Vec<[i64; 3]> = Vec::with_capacity(14);
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if (dz, dy, dx) >= (0, 0, 0) {
                        stencil.push([dx, dy, dz]);
                    }
                }
            }
        }
        // Under tiny dimensions the torus aliases the stencil two ways:
        // two offsets from one cell can land on the same neighbour (handled
        // by `seen_cells`), and — when a dimension has 2 or fewer cells —
        // the SAME unordered cell pair is reachable from both of its cells
        // through two *different* half-stencil offsets (offset components
        // sum to 0 mod n only when n <= 2 for components in {-2..2}), so a
        // global pair dedup is needed. The global set is only engaged on
        // such degenerate grids to keep the production path allocation-free.
        let wrap = |v: i64, n: usize| -> usize { v.rem_euclid(n as i64) as usize };
        let degenerate = self.is_degenerate();
        let mut visited_pairs: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        debug_assert!(cells.end <= nx * ny * nz);
        let mut seen_cells = Vec::with_capacity(14);
        for c in cells {
            let cx = c % nx;
            let cy = (c / nx) % ny;
            let cz = c / (nx * ny);
            seen_cells.clear();
            for s in &stencil {
                let ox = wrap(cx as i64 + s[0], nx);
                let oy = wrap(cy as i64 + s[1], ny);
                let oz = wrap(cz as i64 + s[2], nz);
                let o = (oz * ny + oy) * nx + ox;
                if seen_cells.contains(&o) {
                    continue; // aliased neighbour under small dims
                }
                seen_cells.push(o);
                if degenerate && o != c && !visited_pairs.insert((c.min(o), c.max(o))) {
                    continue; // unordered cell pair already covered
                }
                let same = o == c;
                let mut i = self.heads[c];
                while i != EMPTY {
                    let pi = [pos[0][i], pos[1][i], pos[2][i]];
                    let mut j = if same { self.next[i] } else { self.heads[o] };
                    while j != EMPTY {
                        let pj = [pos[0][j], pos[1][j], pos[2][j]];
                        let r2 = bounds.dist2(pi, pj);
                        if r2 < cut2 {
                            f(i, j, r2);
                        }
                        j = self.next[j];
                    }
                    i = self.next[i];
                }
            }
        }
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.heads.len()
    }
}

/// O(N²) reference pair iteration — the test oracle.
pub fn brute_force_pairs(
    bounds: &SimBox,
    pos: &[Vec<f64>; 3],
    cutoff: f64,
    mut f: impl FnMut(usize, usize, f64),
) {
    let n = pos[0].len();
    let cut2 = cutoff * cutoff;
    for i in 0..n {
        let pi = [pos[0][i], pos[1][i], pos[2][i]];
        for (j, ((&xj, &yj), &zj)) in pos[0]
            .iter()
            .zip(&pos[1])
            .zip(&pos[2])
            .enumerate()
            .skip(i + 1)
        {
            let r2 = bounds.dist2(pi, [xj, yj, zj]);
            if r2 < cut2 {
                f(i, j, r2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn random_positions(n: usize, l: f64, seed: u64) -> [Vec<f64>; 3] {
        // deterministic LCG to avoid pulling rand into the unit test
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut nextf = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * l
        };
        let mut pos = [Vec::new(), Vec::new(), Vec::new()];
        for _ in 0..n {
            for p in pos.iter_mut() {
                p.push(nextf());
            }
        }
        pos
    }

    fn pair_set(
        iter: impl FnOnce(&mut dyn FnMut(usize, usize, f64)),
    ) -> HashSet<(usize, usize)> {
        let mut set = HashSet::new();
        let mut f = |i: usize, j: usize, _r2: f64| {
            let key = (i.min(j), i.max(j));
            assert!(set.insert(key), "pair {key:?} visited twice");
        };
        iter(&mut f);
        set
    }

    #[test]
    fn matches_brute_force_large_box() {
        let bounds = SimBox::cubic(12.0);
        let pos = random_positions(300, 12.0, 42);
        let cutoff = 2.5;
        let cl = CellList::build(&bounds, &pos, cutoff);
        let fast = pair_set(|f| cl.for_each_pair(&bounds, &pos, f));
        let slow = pair_set(|f| brute_force_pairs(&bounds, &pos, cutoff, f));
        assert_eq!(fast, slow);
        assert!(!slow.is_empty());
    }

    #[test]
    fn matches_brute_force_small_box() {
        // box barely larger than the cutoff: stencil aliases heavily
        let bounds = SimBox::cubic(3.0);
        let pos = random_positions(40, 3.0, 7);
        let cutoff = 1.4;
        let cl = CellList::build(&bounds, &pos, cutoff);
        let fast = pair_set(|f| cl.for_each_pair(&bounds, &pos, f));
        let slow = pair_set(|f| brute_force_pairs(&bounds, &pos, cutoff, f));
        assert_eq!(fast, slow);
    }

    #[test]
    fn matches_brute_force_anisotropic_box() {
        let bounds = SimBox {
            lengths: [10.0, 4.0, 7.0],
        };
        let mut pos = random_positions(150, 1.0, 3);
        for (d, l) in [(0usize, 10.0), (1, 4.0), (2, 7.0)] {
            pos[d].iter_mut().for_each(|x| *x *= l);
        }
        let cutoff = 1.8;
        let cl = CellList::build(&bounds, &pos, cutoff);
        let fast = pair_set(|f| cl.for_each_pair(&bounds, &pos, f));
        let slow = pair_set(|f| brute_force_pairs(&bounds, &pos, cutoff, f));
        assert_eq!(fast, slow);
    }

    #[test]
    fn distances_match_min_image() {
        let bounds = SimBox::cubic(10.0);
        let pos: [Vec<f64>; 3] = [vec![0.5, 9.5], vec![1.0, 1.0], vec![1.0, 1.0]];
        let cl = CellList::build(&bounds, &pos, 2.0);
        let mut found = None;
        cl.for_each_pair(&bounds, &pos, |i, j, r2| {
            found = Some((i.min(j), i.max(j), r2));
        });
        let (i, j, r2) = found.expect("wrapped pair must be found");
        assert_eq!((i, j), (0, 1));
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rebuild_reuses_allocations_and_matches_build() {
        let bounds = SimBox::cubic(12.0);
        let pos = random_positions(300, 12.0, 42);
        let mut cl = CellList::build(&bounds, &pos, 2.5);
        let heads_ptr = cl.heads.as_ptr();
        let next_ptr = cl.next.as_ptr();
        // same-size rebuild on moved particles: no reallocation
        let pos2 = random_positions(300, 12.0, 43);
        cl.rebuild(&bounds, &pos2, 2.5, &Exec::with_threads(2));
        assert_eq!(cl.heads.as_ptr(), heads_ptr, "heads reallocated");
        assert_eq!(cl.next.as_ptr(), next_ptr, "next reallocated");
        let fresh = CellList::build(&bounds, &pos2, 2.5);
        let rebuilt = pair_set(|f| cl.for_each_pair(&bounds, &pos2, f));
        let built = pair_set(|f| fresh.for_each_pair(&bounds, &pos2, f));
        assert_eq!(rebuilt, built);
    }

    #[test]
    fn ranged_iteration_partitions_the_pair_set() {
        let bounds = SimBox::cubic(12.0);
        let pos = random_positions(300, 12.0, 9);
        let cl = CellList::build(&bounds, &pos, 2.5);
        assert!(!cl.is_degenerate());
        let chunks = cl.pair_chunks();
        assert!(chunks > 1, "expected a multi-chunk grid, got {chunks}");
        let full = pair_set(|f| cl.for_each_pair(&bounds, &pos, f));
        let mut union = HashSet::new();
        for c in 0..chunks {
            let range = parallel::chunk_bounds(cl.num_cells(), chunks, c);
            cl.for_each_pair_in(&bounds, &pos, range, |i, j, _| {
                let key = (i.min(j), i.max(j));
                assert!(union.insert(key), "pair {key:?} in two chunks");
            });
        }
        assert_eq!(union, full);
    }

    #[test]
    fn degenerate_grids_force_one_chunk() {
        let bounds = SimBox::cubic(3.0);
        let pos = random_positions(40, 3.0, 7);
        let cl = CellList::build(&bounds, &pos, 1.4);
        assert!(cl.is_degenerate());
        assert_eq!(cl.pair_chunks(), 1);
    }

    #[test]
    fn empty_and_single_particle() {
        let bounds = SimBox::cubic(5.0);
        let empty: [Vec<f64>; 3] = [vec![], vec![], vec![]];
        let cl = CellList::build(&bounds, &empty, 1.0);
        cl.for_each_pair(&bounds, &empty, |_, _, _| panic!("no pairs expected"));
        let single: [Vec<f64>; 3] = [vec![1.0], vec![1.0], vec![1.0]];
        let cl = CellList::build(&bounds, &single, 1.0);
        cl.for_each_pair(&bounds, &single, |_, _, _| panic!("no pairs expected"));
        assert_eq!(cl.num_cells(), 125);
    }
}
