//! Orthographic particle snapshot (paper Figure 3).
//!
//! Figure 3 is a VMD rendering of the rhodopsin benchmark: protein (solid
//! purple, centre) in a membrane (translucent green) solvated by water
//! (translucent blue) and ions (orange). This module renders the same view
//! as a binary PPM image: an orthographic x–z projection with painter's
//! ordering by species prominence, so the structure is recognizable.

use crate::system::{Species, System};
use std::io::{self, Write};
use std::path::Path;

/// Species colours (R, G, B), matching the paper's VMD palette.
fn color(species: Species) -> [u8; 3] {
    match species {
        Species::Water => [120, 160, 235],    // translucent blue
        Species::Hydronium => [235, 120, 200],
        Species::Ion => [245, 150, 40],       // orange
        Species::Membrane => [110, 200, 120], // translucent green
        Species::Protein => [150, 60, 200],   // solid purple
    }
}

/// Painter's priority: higher draws later (on top).
fn priority(species: Species) -> u8 {
    match species {
        Species::Water => 0,
        Species::Membrane => 1,
        Species::Hydronium => 2,
        Species::Ion => 3,
        Species::Protein => 4,
    }
}

/// A simple RGB raster.
#[derive(Debug, Clone)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// RGB24 pixels, row-major.
    pub pixels: Vec<u8>,
}

impl Image {
    fn new(width: usize, height: usize) -> Self {
        Image {
            width,
            height,
            pixels: vec![20; width * height * 3], // near-black background
        }
    }

    fn splat(&mut self, x: i64, y: i64, radius: i64, rgb: [u8; 3]) {
        for dy in -radius..=radius {
            for dx in -radius..=radius {
                if dx * dx + dy * dy > radius * radius {
                    continue;
                }
                let px = x + dx;
                let py = y + dy;
                if px < 0 || py < 0 || px >= self.width as i64 || py >= self.height as i64 {
                    continue;
                }
                let idx = (py as usize * self.width + px as usize) * 3;
                self.pixels[idx..idx + 3].copy_from_slice(&rgb);
            }
        }
    }

    /// Pixel at `(x, y)`.
    pub fn pixel(&self, x: usize, y: usize) -> [u8; 3] {
        let idx = (y * self.width + x) * 3;
        [self.pixels[idx], self.pixels[idx + 1], self.pixels[idx + 2]]
    }

    /// Writes the image as binary PPM (P6).
    pub fn write_ppm(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        write!(f, "P6\n{} {}\n255\n", self.width, self.height)?;
        f.write_all(&self.pixels)?;
        Ok(())
    }
}

/// Renders an orthographic x–z projection of `system` (x horizontal, z
/// vertical — the membrane slab reads as a horizontal band, as in Fig. 3).
pub fn render_xz(system: &System, width: usize) -> Image {
    let lx = system.bounds.lengths[0];
    let lz = system.bounds.lengths[2];
    let height = ((width as f64) * lz / lx).round().max(1.0) as usize;
    let mut img = Image::new(width, height);
    // draw in priority order so the protein ends up on top
    let mut order: Vec<usize> = (0..system.len()).collect();
    order.sort_by_key(|&i| priority(Species::from_index(system.species[i] as usize)));
    let radius = (width as i64 / 256).max(1);
    for i in order {
        let sp = Species::from_index(system.species[i] as usize);
        let x = (system.pos[0][i] / lx * width as f64) as i64;
        // flip z so "up" is up
        let y = ((1.0 - system.pos[2][i] / lz) * height as f64) as i64;
        img.splat(x, y, radius, color(sp));
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{rhodopsin_proxy, BuilderParams};
    use crate::force::ForceField;
    use crate::system::SimBox;

    #[test]
    fn image_dimensions_follow_box_aspect() {
        let mut s = System::new(
            SimBox {
                lengths: [20.0, 10.0, 10.0],
            },
            ForceField::none(),
            0.01,
        );
        s.add_particle(Species::Water, [1.0, 1.0, 1.0], [0.0; 3]);
        let img = render_xz(&s, 200);
        assert_eq!(img.width, 200);
        assert_eq!(img.height, 100);
    }

    #[test]
    fn protein_painted_over_water() {
        let mut s = System::new(SimBox::cubic(10.0), ForceField::none(), 0.01);
        s.add_particle(Species::Protein, [5.0, 5.0, 5.0], [0.0; 3]);
        s.add_particle(Species::Water, [5.0, 5.0, 5.0], [0.0; 3]);
        let img = render_xz(&s, 64);
        // centre pixel must be protein purple despite water at same spot
        let p = img.pixel(32, 32);
        assert_eq!(p, [150, 60, 200]);
    }

    #[test]
    fn rhodopsin_snapshot_shows_membrane_band() {
        let s = rhodopsin_proxy(&BuilderParams {
            n_particles: 4096,
            ..Default::default()
        });
        let img = render_xz(&s, 128);
        let count_in_band = |y0: usize, y1: usize, rgb: [u8; 3]| -> usize {
            let mut n = 0;
            for y in y0..y1 {
                for x in 0..img.width {
                    if img.pixel(x, y) == rgb {
                        n += 1;
                    }
                }
            }
            n
        };
        let h = img.height;
        let green = [110, 200, 120];
        let blue = [120, 160, 235];
        // the central band is dominated by membrane, the top band by water
        assert!(
            count_in_band(h * 45 / 100, h * 55 / 100, green) > 0,
            "no membrane green in the central band"
        );
        assert!(
            count_in_band(0, h / 10, blue) > 0,
            "no water blue in the top band"
        );
        assert_eq!(
            count_in_band(0, h / 10, green),
            0,
            "membrane must not reach the top band"
        );
    }

    #[test]
    fn ppm_file_well_formed() {
        let mut s = System::new(SimBox::cubic(5.0), ForceField::none(), 0.01);
        s.add_particle(Species::Ion, [2.5, 2.5, 2.5], [0.0; 3]);
        let img = render_xz(&s, 32);
        let path = std::env::temp_dir().join(format!("mdsim_render_{}.ppm", std::process::id()));
        img.write_ppm(&path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P6\n32 32\n255\n"));
        assert_eq!(data.len(), 13 + 32 * 32 * 3);
        std::fs::remove_file(&path).unwrap();
    }
}
