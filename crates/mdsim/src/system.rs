//! Particle store, periodic box and time integration.
//!
//! Structure-of-arrays layout per the Rust performance guide: the hot force
//! and integration loops stream over contiguous `Vec<f64>` coordinates.

use crate::force::ForceField;
use crate::neighbor::CellList;
use insitu_core::runtime::Simulator;
use insitu_types::KernelTelemetry;
use parallel::{Exec, ScratchPool};
use std::time::Instant;

/// Number of species understood by the builders/analyses.
pub const NUM_SPECIES: usize = 5;

/// Particle species, mirroring the paper's two LAMMPS problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Species {
    /// Water (single-site, water+ions problem; solvent in rhodopsin).
    Water = 0,
    /// Hydronium ion (water+ions problem).
    Hydronium = 1,
    /// Dissolved ion (both problems).
    Ion = 2,
    /// Membrane lipid site (rhodopsin problem).
    Membrane = 3,
    /// Protein site (rhodopsin problem).
    Protein = 4,
}

impl Species {
    /// All species in index order.
    pub const ALL: [Species; NUM_SPECIES] = [
        Species::Water,
        Species::Hydronium,
        Species::Ion,
        Species::Membrane,
        Species::Protein,
    ];

    /// Species from its index.
    pub fn from_index(i: usize) -> Species {
        Species::ALL[i]
    }

    /// Index of the species.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Orthorhombic periodic simulation box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimBox {
    /// Edge lengths.
    pub lengths: [f64; 3],
}

impl SimBox {
    /// Cubic box of edge `l`.
    pub fn cubic(l: f64) -> Self {
        SimBox {
            lengths: [l, l, l],
        }
    }

    /// Box volume.
    pub fn volume(&self) -> f64 {
        self.lengths[0] * self.lengths[1] * self.lengths[2]
    }

    /// Minimum-image displacement component along dimension `d`.
    #[inline]
    pub fn min_image(&self, d: usize, dx: f64) -> f64 {
        let l = self.lengths[d];
        dx - l * (dx / l).round()
    }

    /// Minimum-image vector between two positions.
    #[inline]
    pub fn displacement(&self, a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        [
            self.min_image(0, a[0] - b[0]),
            self.min_image(1, a[1] - b[1]),
            self.min_image(2, a[2] - b[2]),
        ]
    }

    /// Squared minimum-image distance.
    #[inline]
    pub fn dist2(&self, a: [f64; 3], b: [f64; 3]) -> f64 {
        let d = self.displacement(a, b);
        d[0] * d[0] + d[1] * d[1] + d[2] * d[2]
    }

    /// Wraps a coordinate into `[0, L)` along dimension `d`.
    #[inline]
    pub fn wrap(&self, d: usize, x: f64) -> f64 {
        let l = self.lengths[d];
        x.rem_euclid(l)
    }
}

/// A harmonic bond between two particles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bond {
    /// First particle index.
    pub i: usize,
    /// Second particle index.
    pub j: usize,
    /// Equilibrium length.
    pub r0: f64,
    /// Spring constant.
    pub k: f64,
}

/// The full MD system: SoA particle state + box + force field.
#[derive(Debug, Clone)]
pub struct System {
    /// Periodic box.
    pub bounds: SimBox,
    /// Positions, wrapped into the box. `pos[d][i]`.
    pub pos: [Vec<f64>; 3],
    /// Velocities. `vel[d][i]`.
    pub vel: [Vec<f64>; 3],
    /// Forces (scratch). `force[d][i]`.
    pub force: [Vec<f64>; 3],
    /// Per-particle accumulated periodic image shifts (for unwrapped
    /// positions, needed by MSD). `image[d][i]` counts box crossings.
    pub image: [Vec<i32>; 3],
    /// Species index per particle.
    pub species: Vec<u8>,
    /// Mass per species.
    pub masses: [f64; NUM_SPECIES],
    /// Harmonic bonds (intramolecular structure).
    pub bonds: Vec<Bond>,
    /// Pairwise force field.
    pub ff: ForceField,
    /// Integration time step.
    pub dt: f64,
    /// Target temperature for the Berendsen thermostat (0 = NVE).
    pub target_temp: f64,
    /// Thermostat coupling constant (fraction per step).
    pub thermostat_coupling: f64,
    /// Completed time steps.
    pub step_count: usize,
    /// Execution context for the parallel kernels (thread count). Set from
    /// `INSITU_THREADS` at construction; results are bitwise identical for
    /// any value (see the `parallel` crate docs).
    pub exec: Exec,
    /// Accumulated per-kernel telemetry (force loop, cell rebuilds, ...).
    pub telemetry: KernelTelemetry,
    /// Trace sink for kernel-boundary spans (`md.cell_rebuild`,
    /// `md.force`). Disabled by default; attach a handle to see the
    /// simulation's kernels inside a coupled-run timeline.
    pub tracer: obs::TraceHandle,
    /// Reusable per-chunk scratch buffers for the force kernel. After the
    /// first step every per-chunk accumulator is served from here, so
    /// steady-state stepping performs zero scratch allocations (tracked as
    /// `scratch_allocs` / `scratch_reuses` on the `md.force` telemetry).
    /// Cloning a `System` starts the clone with an empty pool.
    pub scratch: ScratchPool,
    cells: Option<CellList>,
}

impl System {
    /// Creates an empty system in `bounds` with force field `ff`.
    pub fn new(bounds: SimBox, ff: ForceField, dt: f64) -> Self {
        System {
            bounds,
            pos: [Vec::new(), Vec::new(), Vec::new()],
            vel: [Vec::new(), Vec::new(), Vec::new()],
            force: [Vec::new(), Vec::new(), Vec::new()],
            image: [Vec::new(), Vec::new(), Vec::new()],
            species: Vec::new(),
            masses: [1.0; NUM_SPECIES],
            bonds: Vec::new(),
            ff,
            dt,
            target_temp: 0.0,
            thermostat_coupling: 0.1,
            step_count: 0,
            exec: Exec::from_env(),
            telemetry: KernelTelemetry::new(),
            tracer: obs::TraceHandle::disabled(),
            scratch: ScratchPool::new(),
            cells: None,
        }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.species.len()
    }

    /// True when the system has no particles.
    pub fn is_empty(&self) -> bool {
        self.species.is_empty()
    }

    /// Appends a particle; returns its index.
    pub fn add_particle(&mut self, species: Species, pos: [f64; 3], vel: [f64; 3]) -> usize {
        for d in 0..3 {
            self.pos[d].push(self.bounds.wrap(d, pos[d]));
            self.vel[d].push(vel[d]);
            self.force[d].push(0.0);
            self.image[d].push(0);
        }
        self.species.push(species.index() as u8);
        self.species.len() - 1
    }

    /// Position of particle `i`.
    #[inline]
    pub fn position(&self, i: usize) -> [f64; 3] {
        [self.pos[0][i], self.pos[1][i], self.pos[2][i]]
    }

    /// Velocity of particle `i`.
    #[inline]
    pub fn velocity(&self, i: usize) -> [f64; 3] {
        [self.vel[0][i], self.vel[1][i], self.vel[2][i]]
    }

    /// Unwrapped position (adds accumulated image shifts), for MSD.
    #[inline]
    pub fn unwrapped_position(&self, i: usize) -> [f64; 3] {
        [
            self.pos[0][i] + self.image[0][i] as f64 * self.bounds.lengths[0],
            self.pos[1][i] + self.image[1][i] as f64 * self.bounds.lengths[1],
            self.pos[2][i] + self.image[2][i] as f64 * self.bounds.lengths[2],
        ]
    }

    /// Mass of particle `i`.
    #[inline]
    pub fn mass(&self, i: usize) -> f64 {
        self.masses[self.species[i] as usize]
    }

    /// Indices of all particles of `species`.
    pub fn of_species(&self, species: Species) -> Vec<usize> {
        let s = species.index() as u8;
        (0..self.len()).filter(|&i| self.species[i] == s).collect()
    }

    /// Count of particles of `species`.
    pub fn species_count(&self, species: Species) -> usize {
        let s = species.index() as u8;
        self.species.iter().filter(|&&x| x == s).count()
    }

    /// Kinetic energy `Σ ½ m v²`.
    pub fn kinetic_energy(&self) -> f64 {
        (0..self.len())
            .map(|i| {
                let v = self.velocity(i);
                0.5 * self.mass(i) * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2])
            })
            .sum()
    }

    /// Instantaneous temperature (k_B = 1 units): `2 KE / (3 N)`.
    pub fn temperature(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.kinetic_energy() / (3.0 * self.len() as f64)
        }
    }

    /// Recomputes forces (pairwise + bonds) into `self.force`; returns the
    /// potential energy.
    ///
    /// The LJ pair loop runs on `self.exec`: cell-range chunks accumulate
    /// into per-chunk force arrays that are merged in ascending chunk
    /// order, so the result is bitwise identical for any thread count.
    pub fn compute_forces(&mut self) -> f64 {
        for d in 0..3 {
            self.force[d].iter_mut().for_each(|f| *f = 0.0);
        }
        let n = self.len();
        let cutoff = self.ff.cutoff;
        let mut potential = 0.0;
        let ff = self.ff;
        let bounds = self.bounds;
        // accumulate pairwise LJ; an inert force field (ε = 0) skips the
        // cell list entirely — bonds-only systems in huge boxes would
        // otherwise allocate millions of empty cells every step
        let mut fx = std::mem::take(&mut self.force[0]);
        let mut fy = std::mem::take(&mut self.force[1]);
        let mut fz = std::mem::take(&mut self.force[2]);
        let tracer = self.tracer.clone();
        if ff.epsilon != 0.0 {
            let t0 = Instant::now();
            let mut cells = self.cells.take().unwrap_or_else(CellList::empty);
            {
                let mut span = tracer.span("md.cell_rebuild");
                span.tag("threads", self.exec.threads());
                cells.rebuild(&self.bounds, &self.pos, cutoff, &self.exec);
            }
            self.telemetry.record(
                "md.cell_rebuild",
                self.exec.threads(),
                parallel::chunk_count(n, 2048),
                t0.elapsed().as_secs_f64(),
                0.0,
            );
            // cap chunks below pair_chunks' bound: every chunk carries a
            // 3·N scratch accumulator, and the ordered merge is O(chunks·N)
            let chunks = cells.pair_chunks().min(self.exec.chunk_cap());
            let ncells = cells.num_cells();
            let pos = &self.pos;
            let cells_ref = &cells;
            let pool = &self.scratch;
            let scratch0 = pool.counters();
            let mut force_span = tracer.span("md.force");
            force_span.tag("threads", self.exec.threads());
            force_span.tag("chunks", chunks);
            force_span.tag("chunk_cap", self.exec.chunk_cap());
            let (parts, stats) = parallel::map_chunks(&self.exec, chunks, move |c| {
                let mut cfx = pool.take_zeroed(n);
                let mut cfy = pool.take_zeroed(n);
                let mut cfz = pool.take_zeroed(n);
                let mut cpot = 0.0f64;
                let range = parallel::chunk_bounds(ncells, chunks, c);
                cells_ref.for_each_pair_in(&bounds, pos, range, |i, j, r2| {
                    let (fscale, e) = ff.lj_pair(r2);
                    cpot += e;
                    let dx = bounds.min_image(0, pos[0][i] - pos[0][j]);
                    let dy = bounds.min_image(1, pos[1][i] - pos[1][j]);
                    let dz = bounds.min_image(2, pos[2][i] - pos[2][j]);
                    cfx[i] += fscale * dx;
                    cfy[i] += fscale * dy;
                    cfz[i] += fscale * dz;
                    cfx[j] -= fscale * dx;
                    cfy[j] -= fscale * dy;
                    cfz[j] -= fscale * dz;
                });
                (cfx, cfy, cfz, cpot)
            });
            let m0 = Instant::now();
            for (cfx, cfy, cfz, cpot) in parts {
                potential += cpot;
                for (dst, src) in fx.iter_mut().zip(&cfx) {
                    *dst += src;
                }
                for (dst, src) in fy.iter_mut().zip(&cfy) {
                    *dst += src;
                }
                for (dst, src) in fz.iter_mut().zip(&cfz) {
                    *dst += src;
                }
                self.scratch.put(cfx);
                self.scratch.put(cfy);
                self.scratch.put(cfz);
            }
            let merge = m0.elapsed();
            drop(force_span);
            self.telemetry.record(
                "md.force",
                stats.threads_used,
                stats.chunks,
                stats.wall_s() + merge.as_secs_f64(),
                merge.as_secs_f64(),
            );
            let ds = self.scratch.counters().since(&scratch0);
            self.telemetry.record_scratch("md.force", ds.allocs, ds.reuses);
            self.cells = Some(cells);
        }
        // bonds
        for b in &self.bonds {
            let pi = [self.pos[0][b.i], self.pos[1][b.i], self.pos[2][b.i]];
            let pj = [self.pos[0][b.j], self.pos[1][b.j], self.pos[2][b.j]];
            let d = bounds.displacement(pi, pj);
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt().max(1e-12);
            let fmag = -b.k * (r - b.r0) / r; // force per unit displacement
            potential += 0.5 * b.k * (r - b.r0) * (r - b.r0);
            fx[b.i] += fmag * d[0];
            fy[b.i] += fmag * d[1];
            fz[b.i] += fmag * d[2];
            fx[b.j] -= fmag * d[0];
            fy[b.j] -= fmag * d[1];
            fz[b.j] -= fmag * d[2];
        }
        self.force[0] = fx;
        self.force[1] = fy;
        self.force[2] = fz;
        potential
    }

    /// One velocity-Verlet step (with optional Berendsen velocity rescale).
    ///
    /// The integrator and thermostat loops run on `self.exec`,
    /// parallelized over the three dimensions: each dimension owns its
    /// coordinate arrays exclusively and the per-particle arithmetic is
    /// unchanged, so any thread count is bitwise identical to the serial
    /// loop. Recorded as the `md.integrate` kernel.
    pub fn step(&mut self) {
        let n = self.len();
        if self.step_count == 0 {
            self.compute_forces();
        }
        let dt = self.dt;
        let masses = self.masses;
        let lengths = self.bounds.lengths;
        let mut integrate_s = 0.0;
        let mut threads_used = 1;
        // half kick + drift
        {
            let species = &self.species;
            let [px, py, pz] = &mut self.pos;
            let [vx, vy, vz] = &mut self.vel;
            let [ix, iy, iz] = &mut self.image;
            let [fx, fy, fz] = &self.force;
            // (axis, positions, velocities, images, forces): one
            // dimension's exclusive view for the integrator
            type AxisView<'a> =
                (usize, &'a mut [f64], &'a mut [f64], &'a mut [i32], &'a [f64]);
            let mut dims: [AxisView<'_>; 3] = [
                (0, px, vx, ix, fx),
                (1, py, vy, iy, fy),
                (2, pz, vz, iz, fz),
            ];
            let stats =
                parallel::for_each_mut(&self.exec, &mut dims, |_, (d, pos, vel, image, force)| {
                    let l = lengths[*d];
                    for i in 0..n {
                        let inv_m = 1.0 / masses[species[i] as usize];
                        vel[i] += 0.5 * dt * force[i] * inv_m;
                        let mut x = pos[i] + dt * vel[i];
                        if x < 0.0 {
                            x += l;
                            image[i] -= 1;
                        } else if x >= l {
                            x -= l;
                            image[i] += 1;
                        }
                        // guard against large excursions (should not
                        // happen at sane dt)
                        pos[i] = x.rem_euclid(l);
                    }
                });
            integrate_s += stats.wall_s();
            threads_used = threads_used.max(stats.threads_used);
        }
        self.compute_forces();
        // second half kick
        {
            let species = &self.species;
            let [vx, vy, vz] = &mut self.vel;
            let [fx, fy, fz] = &self.force;
            let mut dims: [(&mut [f64], &[f64]); 3] = [(vx, fx), (vy, fy), (vz, fz)];
            let stats = parallel::for_each_mut(&self.exec, &mut dims, |_, (vel, force)| {
                for i in 0..n {
                    let inv_m = 1.0 / masses[species[i] as usize];
                    vel[i] += 0.5 * dt * force[i] * inv_m;
                }
            });
            integrate_s += stats.wall_s();
            threads_used = threads_used.max(stats.threads_used);
        }
        // Berendsen thermostat
        if self.target_temp > 0.0 {
            let t = self.temperature();
            if t > 1e-12 {
                let lambda =
                    (1.0 + self.thermostat_coupling * (self.target_temp / t - 1.0)).sqrt();
                let stats = parallel::for_each_mut(&self.exec, &mut self.vel, |_, v| {
                    v.iter_mut().for_each(|x| *x *= lambda);
                });
                integrate_s += stats.wall_s();
                threads_used = threads_used.max(stats.threads_used);
            }
        }
        self.telemetry
            .record("md.integrate", threads_used, 3, integrate_s, 0.0);
        self.step_count += 1;
    }
}

impl Simulator for System {
    type State = System;

    fn state(&self) -> &System {
        self
    }

    fn advance(&mut self) {
        self.step();
    }

    fn kernel_telemetry(&self) -> Option<&KernelTelemetry> {
        Some(&self.telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::ForceField;

    fn two_body() -> System {
        let mut s = System::new(SimBox::cubic(20.0), ForceField::default(), 0.001);
        s.add_particle(Species::Water, [9.0, 10.0, 10.0], [0.0; 3]);
        s.add_particle(Species::Water, [11.0, 10.0, 10.0], [0.0; 3]);
        s
    }

    #[test]
    fn min_image_wraps() {
        let b = SimBox::cubic(10.0);
        assert_eq!(b.min_image(0, 9.0), -1.0);
        assert_eq!(b.min_image(0, -9.0), 1.0);
        assert_eq!(b.min_image(0, 3.0), 3.0);
        assert!((b.dist2([0.5, 0.0, 0.0], [9.5, 0.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_into_box() {
        let b = SimBox::cubic(10.0);
        assert!((b.wrap(0, -0.5) - 9.5).abs() < 1e-12);
        assert!((b.wrap(0, 10.5) - 0.5).abs() < 1e-12);
        assert_eq!(b.volume(), 1000.0);
    }

    #[test]
    fn newtons_third_law() {
        let mut s = two_body();
        s.compute_forces();
        for d in 0..3 {
            assert!(
                (s.force[d][0] + s.force[d][1]).abs() < 1e-9,
                "dim {d}: {} vs {}",
                s.force[d][0],
                s.force[d][1]
            );
        }
        // particles at r=2 sigma=1: attractive => f on particle 0 points +x
        assert!(s.force[0][0] > 0.0);
    }

    #[test]
    fn energy_roughly_conserved_nve() {
        let mut s = two_body();
        // give them a gentle approach velocity
        s.vel[0][0] = 0.2;
        s.vel[0][1] = -0.2;
        let e0 = s.compute_forces() + s.kinetic_energy();
        for _ in 0..500 {
            s.step();
        }
        let e1 = s.compute_forces() + s.kinetic_energy();
        assert!(
            (e1 - e0).abs() < 2e-3 * e0.abs().max(1.0),
            "energy drift {e0} -> {e1}"
        );
    }

    #[test]
    fn thermostat_drives_temperature() {
        let mut s = System::new(SimBox::cubic(12.0), ForceField::default(), 0.002);
        // small lattice with random-ish velocities
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    let phase = (i * 16 + j * 4 + k) as f64;
                    s.add_particle(
                        Species::Water,
                        [1.5 * i as f64 + 0.75, 1.5 * j as f64 + 0.75, 1.5 * k as f64 + 0.75],
                        [0.1 * phase.sin(), 0.1 * phase.cos(), 0.05],
                    );
                }
            }
        }
        s.target_temp = 0.8;
        s.thermostat_coupling = 0.5;
        for _ in 0..300 {
            s.step();
        }
        let t = s.temperature();
        assert!((t - 0.8).abs() < 0.25, "temperature {t} not near 0.8");
    }

    #[test]
    fn unwrapped_positions_track_crossings() {
        let mut s = System::new(SimBox::cubic(5.0), ForceField::none(), 0.1);
        s.add_particle(Species::Ion, [4.9, 2.5, 2.5], [1.0, 0.0, 0.0]);
        for _ in 0..20 {
            s.step();
        }
        // travelled 2.0 in x from 4.9 => unwrapped 6.9
        let u = s.unwrapped_position(0);
        assert!((u[0] - 6.9).abs() < 1e-9, "unwrapped {}", u[0]);
        assert!(s.position(0)[0] < 5.0);
    }

    #[test]
    fn kernel_spans_emitted_when_traced() {
        let mut s = two_body();
        let tracer = std::sync::Arc::new(obs::Tracer::with_capacity(64));
        s.tracer = obs::TraceHandle::new(tracer.clone());
        s.step();
        let tl = tracer.timeline();
        assert!(tl.spans_named("md.cell_rebuild").count() >= 1);
        let force = tl.spans_named("md.force").next().expect("force span");
        assert!(force.tag_i64("threads").is_some());
        // the Simulator hook exposes the same accumulator the kernels
        // record into
        let t: &dyn Simulator<State = System> = &s;
        assert!(t.kernel_telemetry().unwrap().get("md.force").is_some());
    }

    #[test]
    fn force_scratch_pool_reaches_steady_state() {
        let mut s = two_body();
        s.step();
        let cold = s.telemetry.get("md.force").unwrap().scratch_allocs;
        assert!(cold > 0, "first step must populate the pool");
        s.step();
        s.step();
        let r = s.telemetry.get("md.force").unwrap();
        assert_eq!(
            r.scratch_allocs, cold,
            "steady-state steps must allocate nothing"
        );
        assert!(r.scratch_reuses > 0, "warm steps must reuse the pool");
    }

    #[test]
    fn integrator_is_bitwise_identical_across_thread_counts() {
        let build = |threads: usize| {
            let mut s = System::new(SimBox::cubic(12.0), ForceField::default(), 0.002);
            for i in 0..27 {
                let p = i as f64;
                s.add_particle(
                    Species::Water,
                    [
                        1.3 * (i % 3) as f64 + 0.7,
                        1.3 * ((i / 3) % 3) as f64 + 0.7,
                        1.3 * (i / 9) as f64 + 0.7,
                    ],
                    [0.1 * p.sin(), 0.1 * p.cos(), 0.05],
                );
            }
            s.target_temp = 0.8;
            s.exec = Exec::with_threads(threads);
            s
        };
        let mut serial = build(1);
        let mut par = build(4);
        for _ in 0..25 {
            serial.step();
            par.step();
        }
        for d in 0..3 {
            assert_eq!(serial.pos[d], par.pos[d], "pos dim {d} diverged");
            assert_eq!(serial.vel[d], par.vel[d], "vel dim {d} diverged");
            assert_eq!(serial.image[d], par.image[d], "image dim {d} diverged");
        }
        assert!(par.telemetry.get("md.integrate").unwrap().calls > 0);
    }

    #[test]
    fn chunk_cap_is_tunable_and_tagged() {
        let mut s = two_body();
        s.exec = s.exec.with_chunk_cap(2);
        let tracer = std::sync::Arc::new(obs::Tracer::with_capacity(64));
        s.tracer = obs::TraceHandle::new(tracer.clone());
        s.step();
        let tl = tracer.timeline();
        let force = tl.spans_named("md.force").next().unwrap();
        assert_eq!(force.tag_i64("chunk_cap"), Some(2));
        assert!(s.telemetry.get("md.force").unwrap().chunks <= 2);
    }

    #[test]
    fn species_bookkeeping() {
        let mut s = two_body();
        s.add_particle(Species::Ion, [1.0, 1.0, 1.0], [0.0; 3]);
        assert_eq!(s.species_count(Species::Water), 2);
        assert_eq!(s.species_count(Species::Ion), 1);
        assert_eq!(s.of_species(Species::Ion), vec![2]);
        assert_eq!(Species::from_index(4), Species::Protein);
    }

    #[test]
    fn bonds_pull_particles_together() {
        let mut s = System::new(SimBox::cubic(20.0), ForceField::none(), 0.01);
        s.add_particle(Species::Protein, [8.0, 10.0, 10.0], [0.0; 3]);
        s.add_particle(Species::Protein, [12.0, 10.0, 10.0], [0.0; 3]);
        s.bonds.push(Bond { i: 0, j: 1, r0: 1.0, k: 10.0 });
        let d0 = s.bounds.dist2(s.position(0), s.position(1)).sqrt();
        for _ in 0..100 {
            s.step();
        }
        let d1 = s.bounds.dist2(s.position(0), s.position(1)).sqrt();
        assert!(d1 < d0, "bond must contract: {d0} -> {d1}");
    }
}
