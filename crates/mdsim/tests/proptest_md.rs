//! Property tests for the MD substrate: the cell list must agree with the
//! O(N²) oracle for arbitrary boxes/cutoffs, and core invariants must hold
//! across random systems.

use mdsim::neighbor::{brute_force_pairs, CellList};
use mdsim::{water_ions, BuilderParams, SimBox, Species};
use proptest::prelude::*;
use std::collections::HashSet;

fn positions_strategy() -> impl Strategy<Value = ([f64; 3], Vec<[f64; 3]>, f64)> {
    (
        prop::array::uniform3(4.0f64..20.0), // box lengths
        1.0f64..3.5,                         // cutoff
        prop::collection::vec(prop::array::uniform3(0.0f64..1.0), 2..120),
    )
        .prop_map(|(lengths, cutoff, fracs)| {
            let pos = fracs
                .into_iter()
                .map(|f| [f[0] * lengths[0], f[1] * lengths[1], f[2] * lengths[2]])
                .collect();
            (lengths, pos, cutoff)
        })
}

fn to_soa(pos: &[[f64; 3]]) -> [Vec<f64>; 3] {
    let mut soa: [Vec<f64>; 3] = Default::default();
    for p in pos {
        for d in 0..3 {
            soa[d].push(p[d]);
        }
    }
    soa
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cell_list_matches_oracle((lengths, pos, cutoff) in positions_strategy()) {
        let bounds = SimBox { lengths };
        let soa = to_soa(&pos);
        let cl = CellList::build(&bounds, &soa, cutoff);
        let mut fast: HashSet<(usize, usize)> = HashSet::new();
        let mut duplicates = 0usize;
        let mut out_of_range = 0usize;
        cl.for_each_pair(&bounds, &soa, |i, j, r2| {
            if r2 >= cutoff * cutoff + 1e-12 {
                out_of_range += 1;
            }
            if !fast.insert((i.min(j), i.max(j))) {
                duplicates += 1;
            }
        });
        prop_assert_eq!(duplicates, 0, "pairs visited twice");
        prop_assert_eq!(out_of_range, 0, "pairs beyond the cutoff");
        let mut slow: HashSet<(usize, usize)> = HashSet::new();
        brute_force_pairs(&bounds, &soa, cutoff, |i, j, _| {
            slow.insert((i.min(j), i.max(j)));
        });
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn energy_and_momentum_invariants(n in 50usize..400, seed in 0u64..50) {
        let mut sys = water_ions(&BuilderParams {
            n_particles: n,
            seed,
            ..Default::default()
        });
        sys.target_temp = 0.0; // NVE
        let e0 = sys.compute_forces() + sys.kinetic_energy();
        for _ in 0..10 {
            sys.step();
        }
        // momentum stays (numerically) zero in NVE
        for d in 0..3 {
            let p: f64 = (0..sys.len()).map(|i| sys.mass(i) * sys.vel[d][i]).sum();
            prop_assert!(p.abs() < 1e-6, "momentum[{d}] = {p}");
        }
        // energy drift stays small over 10 steps
        let e1 = sys.compute_forces() + sys.kinetic_energy();
        let scale = e0.abs().max(n as f64);
        prop_assert!((e1 - e0).abs() / scale < 0.05, "drift {e0} -> {e1}");
        // positions stay wrapped and finite
        for d in 0..3 {
            for &x in &sys.pos[d] {
                prop_assert!(x.is_finite() && x >= 0.0 && x < sys.bounds.lengths[d]);
            }
        }
    }

    #[test]
    fn species_partition_is_total(n in 20usize..300, seed in 0u64..30) {
        let sys = water_ions(&BuilderParams {
            n_particles: n,
            seed,
            ..Default::default()
        });
        let total: usize = Species::ALL
            .iter()
            .map(|&s| sys.species_count(s))
            .sum();
        prop_assert_eq!(total, n);
        for &s in &Species::ALL {
            prop_assert_eq!(sys.of_species(s).len(), sys.species_count(s));
        }
    }
}
