//! Branch & bound for mixed-integer programs.
//!
//! Best-first search on LP-relaxation bounds with most-fractional
//! branching. Each node re-solves its LP from scratch — fine at the scale
//! of the scheduling formulations this crate exists for (the paper's own
//! CPLEX solves took 0.17–1.36 s; ours are far smaller after the aggregate
//! reduction).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::SolveError;
use crate::model::{Model, Sense};
use crate::options::SolveOptions;
use crate::simplex::solve_lp_relaxation;
use crate::solution::Solution;

/// A live search node: bound overrides relative to the original model plus
/// the LP optimum of the node.
#[derive(Debug, Clone)]
struct Node {
    /// `(var, lower, upper)` overrides accumulated from the root.
    overrides: Vec<(usize, f64, f64)>,
    /// LP relaxation optimum of this node.
    relax: Solution,
    /// Sense-adjusted priority (larger = explored first).
    key: f64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.partial_cmp(&other.key).unwrap_or(Ordering::Equal)
    }
}

fn apply_overrides(model: &Model, overrides: &[(usize, f64, f64)]) -> Model {
    let mut m = model.clone();
    for &(v, lo, hi) in overrides {
        m.vars[v].lower = m.vars[v].lower.max(lo);
        m.vars[v].upper = m.vars[v].upper.min(hi);
    }
    m
}

/// Most fractional integer variable of a solution, if any.
fn fractional_var(model: &Model, sol: &Solution, tol: f64) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, f64)> = None; // (var, value, dist-to-half)
    for i in model.integer_vars() {
        let v = sol.values[i];
        let frac = v - v.floor();
        if frac > tol && frac < 1.0 - tol {
            let dist = (frac - 0.5).abs();
            match best {
                Some((_, _, d)) if d <= dist => {}
                _ => best = Some((i, v, dist)),
            }
        }
    }
    best.map(|(i, v, _)| (i, v))
}

/// Rounds the integer variables of an LP point and keeps it if feasible.
fn rounded_candidate(model: &Model, sol: &Solution, tol: f64) -> Option<Solution> {
    let mut values = sol.values.clone();
    for i in model.integer_vars() {
        values[i] = values[i].round();
    }
    if model.is_feasible(&values, tol * 10.0) {
        let objective = model.objective_value(&values);
        Some(Solution {
            values,
            objective,
            iterations: 0,
            nodes: 0,
            proven_optimal: false,
        })
    } else {
        None
    }
}

/// Solves a mixed-integer linear program to proven optimality (within
/// `opts.abs_gap`).
///
/// Errors with [`SolveError::Infeasible`] / [`SolveError::Unbounded`] when
/// the instance has no optimum, and [`SolveError::NodeLimit`] when the node
/// budget runs out first.
pub fn solve(model: &Model, opts: &SolveOptions) -> Result<Solution, SolveError> {
    model.validate()?;
    let presolved;
    let model = if opts.presolve {
        let mut reduced = model.clone();
        crate::presolve::presolve(&mut reduced, opts.tol)?;
        presolved = reduced;
        &presolved
    } else {
        model
    };
    let sign = match model.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let root = solve_lp_relaxation(model, opts)?;
    let mut incumbent: Option<Solution> = None;
    let mut total_iters = root.iterations;
    if opts.rounding_heuristic {
        incumbent = rounded_candidate(model, &root, opts.tol);
    }
    let mut heap = BinaryHeap::new();
    heap.push(Node {
        overrides: Vec::new(),
        key: sign * root.objective,
        relax: root,
    });
    let mut nodes = 0usize;

    // Best-first with plunging: from every node popped off the heap we dive
    // straight down (always following the better-bound child, parking the
    // sibling on the heap) until reaching an integral or pruned leaf. The
    // dive finds incumbents early, which is what makes bound pruning bite —
    // pure best-first crawls objective plateaus breadth-first and can go
    // exponential before finding its first feasible point.
    'search: while let Some(node) = heap.pop() {
        // best-first invariant: if the best remaining bound can't beat the
        // incumbent, the whole search is done.
        if let Some(inc) = &incumbent {
            if sign * node.relax.objective <= sign * inc.objective + opts.abs_gap {
                break;
            }
        }
        let mut cur = Some(node);
        while let Some(node) = cur.take() {
            nodes += 1;
            if nodes > opts.max_nodes {
                return Err(SolveError::NodeLimit {
                    nodes,
                    incumbent: incumbent.map(|s| s.objective),
                });
            }
            if let Some(inc) = &incumbent {
                if sign * node.relax.objective <= sign * inc.objective + opts.abs_gap {
                    continue 'search; // this dive is dominated; pick next best
                }
            }
            match fractional_var(model, &node.relax, opts.tol) {
                None => {
                    // integral: candidate incumbent (snap values to integers)
                    let mut values = node.relax.values.clone();
                    for i in model.integer_vars() {
                        values[i] = values[i].round();
                    }
                    let objective = model.objective_value(&values);
                    let better = incumbent
                        .as_ref()
                        .map_or(true, |inc| model.better(objective, inc.objective));
                    if better {
                        incumbent = Some(Solution {
                            values,
                            objective,
                            iterations: 0,
                            nodes: 0,
                            proven_optimal: false,
                        });
                    }
                }
                Some((var, value)) => {
                    let floor = value.floor();
                    let mut children: Vec<Node> = Vec::with_capacity(2);
                    for (lo, hi) in
                        [(f64::NEG_INFINITY, floor), (floor + 1.0, f64::INFINITY)]
                    {
                        let mut overrides = node.overrides.clone();
                        overrides.push((var, lo, hi));
                        let child_model = apply_overrides(model, &overrides);
                        if child_model.vars[var].lower > child_model.vars[var].upper {
                            continue;
                        }
                        match solve_lp_relaxation(&child_model, opts) {
                            Ok(relax) => {
                                total_iters += relax.iterations;
                                // bound-based pruning at generation time
                                if let Some(inc) = &incumbent {
                                    if sign * relax.objective
                                        <= sign * inc.objective + opts.abs_gap
                                    {
                                        continue;
                                    }
                                }
                                children.push(Node {
                                    overrides,
                                    key: sign * relax.objective,
                                    relax,
                                });
                            }
                            Err(SolveError::Infeasible) => continue,
                            Err(e) => return Err(e),
                        }
                    }
                    // dive into the better child, park the other (or park
                    // both when plunging is disabled — pure best-first)
                    children.sort_by(|a, b| {
                        b.key.partial_cmp(&a.key).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    let mut it = children.into_iter();
                    if opts.plunge {
                        cur = it.next();
                    }
                    for sibling in it {
                        heap.push(sibling);
                    }
                }
            }
        }
    }

    match incumbent {
        Some(mut sol) => {
            sol.iterations = total_iters;
            sol.nodes = nodes;
            sol.proven_optimal = true;
            Ok(sol)
        }
        None => Err(SolveError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::Cmp;

    fn opts() -> SolveOptions {
        SolveOptions::default()
    }

    #[test]
    fn knapsack_exact() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary => a=0? enumerate:
        // (1,0,1)=17 w5; (0,1,1)=20 w6 best; (1,1,0)=23 w7 infeasible
        let mut m = Model::new(Sense::Maximize);
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        m.add_con(
            LinExpr::new().term(a, 3.0).term(b, 4.0).term(c, 2.0),
            Cmp::Le,
            6.0,
        );
        m.set_objective(LinExpr::new().term(a, 10.0).term(b, 13.0).term(c, 7.0));
        let s = solve(&m, &opts()).unwrap();
        assert_eq!(s.objective.round(), 20.0);
        assert!(s.is_one(b) && s.is_one(c) && !s.is_one(a));
        assert!(s.proven_optimal);
    }

    #[test]
    fn integer_rounding_is_not_assumed() {
        // max x + y, 2x + 2y <= 5, int => LP opt 2.5, IP opt 2
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.add_con(LinExpr::new().term(x, 2.0).term(y, 2.0), Cmp::Le, 5.0);
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let s = solve(&m, &opts()).unwrap();
        assert_eq!(s.objective.round(), 2.0);
    }

    #[test]
    fn minimization_sense() {
        // min 5x + 4y s.t. x + y >= 3, 2x + y >= 4, integers
        // candidates: x=1,y=2 => 13; x=2,y=1 =>14; x=0,y=4 => 16; x=1,y=2 best
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 3.0);
        m.add_con(LinExpr::new().term(x, 2.0).term(y, 1.0), Cmp::Ge, 4.0);
        m.set_objective(LinExpr::new().term(x, 5.0).term(y, 4.0));
        let s = solve(&m, &opts()).unwrap();
        assert_eq!(s.objective.round(), 13.0);
        assert_eq!(s.int_value(x), 1);
        assert_eq!(s.int_value(y), 2);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max y + 2z, y integer <= 3.7-ish constraint, z continuous <= 0.5
        let mut m = Model::new(Sense::Maximize);
        let y = m.int_var("y", 0.0, 100.0);
        let z = m.num_var("z", 0.0, 0.5);
        m.add_con(LinExpr::new().term(y, 1.0).term(z, 1.0), Cmp::Le, 3.7);
        m.set_objective(LinExpr::new().term(y, 1.0).term(z, 2.0));
        let s = solve(&m, &opts()).unwrap();
        // y=3, z=0.5 => 4.0
        assert!((s.objective - 4.0).abs() < 1e-5);
        assert_eq!(s.int_value(y), 3);
    }

    #[test]
    fn infeasible_integer_problem() {
        // 0.4 <= x <= 0.6, x integer
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 1.0);
        m.add_con(LinExpr::var(x), Cmp::Ge, 0.4);
        m.add_con(LinExpr::var(x), Cmp::Le, 0.6);
        m.set_objective(LinExpr::var(x));
        assert_eq!(solve(&m, &opts()).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn weighted_choice_mirrors_paper_structure() {
        // Two "analyses" with counts k1, k2 <= 10, activation binaries,
        // time budget: 2*k1 + 5*k2 <= 20, maximize (r1 + r2) + (k1 + 2*k2).
        // Mirrors Eq. 1's |A| + w|C| structure.
        let mut m = Model::new(Sense::Maximize);
        let r1 = m.binary("run1");
        let r2 = m.binary("run2");
        let k1 = m.int_var("k1", 0.0, 10.0);
        let k2 = m.int_var("k2", 0.0, 10.0);
        // k_i <= 10 * run_i  (activation linking)
        m.add_con(LinExpr::new().term(k1, 1.0).term(r1, -10.0), Cmp::Le, 0.0);
        m.add_con(LinExpr::new().term(k2, 1.0).term(r2, -10.0), Cmp::Le, 0.0);
        m.add_con(LinExpr::new().term(k1, 2.0).term(k2, 5.0), Cmp::Le, 20.0);
        m.set_objective(
            LinExpr::new()
                .term(r1, 1.0)
                .term(r2, 1.0)
                .term(k1, 1.0)
                .term(k2, 2.0),
        );
        let s = solve(&m, &opts()).unwrap();
        // best: k1=10 (cost 20), k2=0 but then r2 can still be 1 with k2=0:
        // obj = 1 + 1 + 10 + 0 = 12. Alternative k1=5,k2=2: 1+1+5+4=11.
        assert_eq!(s.objective.round(), 12.0);
        assert_eq!(s.int_value(k1), 10);
    }

    #[test]
    fn plunging_and_pure_best_first_agree() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|i| m.binary(&format!("x{i}"))).collect();
        let w = [3.0, 5.0, 2.0, 7.0, 4.0, 1.0, 6.0, 2.5];
        let p = [9.0, 12.0, 4.0, 15.0, 8.0, 2.0, 11.0, 5.0];
        m.add_con(
            LinExpr::sum(vars.iter().zip(w).map(|(&v, w)| (v, w))),
            Cmp::Le,
            14.0,
        );
        m.set_objective(LinExpr::sum(vars.iter().zip(p).map(|(&v, p)| (v, p))));
        let with = solve(&m, &opts()).unwrap();
        let without = solve(
            &m,
            &SolveOptions {
                plunge: false,
                ..opts()
            },
        )
        .unwrap();
        assert!((with.objective - without.objective).abs() < 1e-9);
        assert!(with.proven_optimal && without.proven_optimal);
    }

    #[test]
    fn node_limit_reported() {
        let mut m = Model::new(Sense::Maximize);
        let mut obj = LinExpr::new();
        let mut row = LinExpr::new();
        for i in 0..14 {
            let v = m.int_var(&format!("x{i}"), 0.0, 1.0);
            obj = obj.term(v, 1.0 + (i as f64) * 0.01);
            row = row.term(v, 2.0);
        }
        m.add_con(row, Cmp::Le, 13.0); // forces fractionality
        m.set_objective(obj);
        let tight = SolveOptions {
            max_nodes: 2,
            rounding_heuristic: false,
            ..opts()
        };
        match solve(&m, &tight) {
            Err(SolveError::NodeLimit { nodes, .. }) => assert!(nodes >= 2),
            Ok(s) => panic!("expected node limit, got obj {}", s.objective),
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
